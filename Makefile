# Convenience targets for the OFAR reproduction.

GO ?= go

.PHONY: all build test test-short test-race bench bench-json bench-h6 bench-h8 bench-compare golden-regen vet cover cover-check figures figures-h6 fuzz serve smoke-serve smoke-trace clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the parallel router engine (and everything else).
test-race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -short -cover ./...

# Coverage floor over the internal packages (the simulation engine). The
# floor is the measured total at the time the gate was added, rounded down —
# raise it when coverage genuinely grows, never lower it to make a PR pass.
COVER_FLOOR ?= 74.0

cover-check:
	$(GO) test -short -coverprofile=$(or $(TMPDIR),/tmp)/cover_internal.out ./internal/...
	@total=$$($(GO) tool cover -func=$(or $(TMPDIR),/tmp)/cover_internal.out | awk '/^total:/ {sub(/%/,"",$$NF); print $$NF}'); \
	echo "internal/... coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_FLOOR))}" || { echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

bench:
	$(GO) test -bench . -benchmem .

# Machine-readable Step benchmarks (name, ns/op, allocs/op) across the load
# range, scheduler on/off, serial and pooled (4 and 8 workers), plus the
# isolated pool-dispatch barrier cost — the tracked perf baseline of the
# activity scheduler and the worker pool. -count 3 with benchjson's
# min-fold absorbs shared-machine noise (single runs swing ±10%). Compare
# against the committed BENCH_step.json.
BENCH_TIME ?= 1s
BENCH_COUNT ?= 3
# The full matrix at default settings runs well past go test's 10-minute
# default; a timeout mid-pipe truncates the JSON silently (benchjson drops
# the panic dump as non-bench lines), so give the binary explicit headroom.
BENCH_TIMEOUT ?= 40m

bench-json:
	$(GO) test ./internal/network -run '^$$' -bench 'StepByLoad|StepPhases|NetworkStep|PoolDispatch|Snapshot' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) -timeout $(BENCH_TIMEOUT) \
		| $(GO) run ./cmd/benchjson -phases \
		-note "Snapshot* rows are the checkpoint layer: encode/restore a warm h=3 image (~0.7 MB) in ~3 ms, full Fork ~9 ms — the fixed cost each warm-fork sweep point pays." \
		-note "warm-cache sweep speedup: sweep -h 3 -points 5 -warmup 3000 -measure 1000 with -checkpoint/-restore dropped 1.43 s -> 0.53 s (~2.7x) on the second invocation, restoring all 5 points and skipping 15000 warmup cycles; CSV rows bit-identical (TestWarmCacheSweep)." \
		-note "h6 rows are the full-scale regime (876 routers): serial vs ShardByGroup+4 workers through the production cutover (on a single-P host both take the serial path; on multicore the shard rows dispatch whole groups to the pool, bit-identically — TestH6ShardedSmoke). The group-sharding PR cut the saturated (load=0.90) h=6 serial step from 6.84 ms (min of 3, pre-PR engine on this machine) to 4.35-4.9 ms (~1.5x on the min-fold) via per-group SoA arenas, block-carved packet allocation, the Cycle head/arbiter prefetch pass and the serial event-loop lookahead." \
		-note "h8 rows are the stretch regime the sharded injection front-end opened (a=16, 129 groups, 2064 routers, 16512 nodes): load edges only, 500-cycle warm-up — a cost tracker, not the paper protocol. StepPhases rows carry the per-phase breakdown (see the phases map); the host block records the machine shape the numbers were taken on." \
		-note "injection-shard no-regression check: interleaved same-day A/B of the pre-shard engine vs this one on h6/load=0.90/serial (8 samples each, 1s benchtime) gave old min 4.78 ms / new min 4.87 ms with overlapping spreads and a slightly better new-engine mean — parity within this box's ±8% noise; bytes/op rose ~2 KB from the per-group packet pools (allocs/op unchanged at 6)." \
		> BENCH_step.json
	@cat BENCH_step.json

# Full-scale h=6 Step rows only (876 routers; serial vs group-sharded):
# the headline numbers of the sharded engine and the default figure regime
# since ShardByGroup. Warm-up dominates (2000 full-size cycles per row).
bench-h6:
	$(GO) test ./internal/network -run '^$$' -bench 'StepByLoad/h6' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) -timeout $(BENCH_TIMEOUT)

# Stretch-regime h=8 Step rows (a=16, 129 groups, 2064 routers, 16512 nodes;
# serial vs group-sharded): the regime the sharded injection front-end
# opened. Load edges only — see BenchmarkStepByLoad for why.
bench-h8:
	$(GO) test ./internal/network -run '^$$' -bench 'StepByLoad/h8' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) -timeout $(BENCH_TIMEOUT)

# Rebuild every golden trace fixture (testdata/golden_*.json) from the
# serial reference engine. Run after a deliberate physics change — e.g. a
# new RNG derivation order — then inspect the diff; the non-serial variants
# still compare against the rewritten file in the same run, so a divergence
# between engines fails even while regenerating.
golden-regen:
	$(GO) test ./internal/network -run TestGoldenTrace -update-golden -count=1

# Informational perf diff against the committed baseline: rerun the tracked
# Step benchmarks to a temp file and print per-row ns/op deltas versus
# BENCH_step.json. Never gates a build — timing on shared machines is
# advisory (override BENCH_TIME/BENCH_COUNT for a quicker, noisier pass).
bench-compare:
	$(GO) test ./internal/network -run '^$$' -bench 'StepByLoad|StepPhases|NetworkStep|PoolDispatch|Snapshot' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) -timeout $(BENCH_TIMEOUT) \
		| $(GO) run ./cmd/benchjson -phases > $(or $(TMPDIR),/tmp)/bench_fresh.json
	$(GO) run ./cmd/benchcmp BENCH_step.json $(or $(TMPDIR),/tmp)/bench_fresh.json

# Regenerate every paper figure at laptop scale (h=3) with SVG charts.
figures:
	$(GO) run ./cmd/experiments -fig all -h 3 -points 8 -svg figures | tee experiments_h3.txt

# Paper-scale (h=6, 5256 nodes) headline figure — the routine regime since
# the group-sharded Step; -workers/-shard engage the sharded engine on
# multicore hosts (bit-identical results either way).
figures-h6:
	$(GO) run ./cmd/experiments -fig fig5 -h 6 -points 6 -workers 4 -shard

# Run the sweep service: HTTP/JSON experiment requests with a
# determinism-backed result cache (see docs/ARCHITECTURE.md "The sweep
# service"). SWEEPD_DIR persists results + warm snapshots across restarts.
SWEEPD_DIR ?= ./sweepd-cache
serve:
	$(GO) run ./cmd/sweepd -addr :8080 -disk $(SWEEPD_DIR)

# Service smoke: the end-to-end server tests — cold sweep matches
# RunLoadSweepOpt byte-for-byte, repeated request is served from cache with
# no simulation, concurrent identical requests coalesce onto one simulation,
# overload sheds 429.
smoke-serve:
	$(GO) test -run 'TestServer|TestConcurrentIdentical|TestOverload|TestDiskPersistence' -v ./internal/service

# Trace record/replay smoke: record a run's generated packets with ofarsim
# -trace-out, replay the file with -trace-in, and require the two grant
# digests to match bit for bit (the tentpole determinism claim, end to end
# through the CLI).
smoke-trace:
	$(GO) build -o $(or $(TMPDIR),/tmp)/ofarsim-smoke ./cmd/ofarsim
	$(or $(TMPDIR),/tmp)/ofarsim-smoke -h 2 -routing OFAR -pattern ADV+1 -load 0.4 \
		-warmup 500 -measure 1000 -trace-out $(or $(TMPDIR),/tmp)/smoke.trace -q \
		| tee $(or $(TMPDIR),/tmp)/smoke_record.txt
	$(or $(TMPDIR),/tmp)/ofarsim-smoke -h 2 -trace-in $(or $(TMPDIR),/tmp)/smoke.trace \
		-warmup 500 -measure 1000 -q | tee $(or $(TMPDIR),/tmp)/smoke_replay.txt
	@rec=$$(grep 'grant digest' $(or $(TMPDIR),/tmp)/smoke_record.txt); \
	rep=$$(grep 'grant digest' $(or $(TMPDIR),/tmp)/smoke_replay.txt); \
	echo "record: $$rec"; echo "replay: $$rep"; \
	[ -n "$$rec" ] && [ "$$rec" = "$$rep" ] || { echo "trace replay digest mismatch"; exit 1; }

fuzz:
	$(GO) test -fuzz FuzzTopologyInvariants -fuzztime 30s ./internal/topology
	$(GO) test -fuzz FuzzParsePattern -fuzztime 20s .
	$(GO) test -fuzz FuzzParallelConservation -fuzztime 30s .
	$(GO) test -fuzz FuzzRouteCache -fuzztime 30s .
	$(GO) test -fuzz FuzzTraceRoundTrip -fuzztime 20s ./internal/trace

clean:
	rm -rf figures test_output.txt bench_output.txt
