# Convenience targets for the OFAR reproduction.

GO ?= go

.PHONY: all build test test-short test-race bench bench-json bench-compare vet cover cover-check figures figures-h6 fuzz clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the parallel router engine (and everything else).
test-race:
	$(GO) test -race -short ./...

cover:
	$(GO) test -short -cover ./...

# Coverage floor over the internal packages (the simulation engine). The
# floor is the measured total at the time the gate was added, rounded down —
# raise it when coverage genuinely grows, never lower it to make a PR pass.
COVER_FLOOR ?= 74.0

cover-check:
	$(GO) test -short -coverprofile=$(or $(TMPDIR),/tmp)/cover_internal.out ./internal/...
	@total=$$($(GO) tool cover -func=$(or $(TMPDIR),/tmp)/cover_internal.out | awk '/^total:/ {sub(/%/,"",$$NF); print $$NF}'); \
	echo "internal/... coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_FLOOR))}" || { echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

bench:
	$(GO) test -bench . -benchmem .

# Machine-readable Step benchmarks (name, ns/op, allocs/op) across the load
# range, scheduler on/off, serial and pooled (4 and 8 workers), plus the
# isolated pool-dispatch barrier cost — the tracked perf baseline of the
# activity scheduler and the worker pool. -count 3 with benchjson's
# min-fold absorbs shared-machine noise (single runs swing ±10%). Compare
# against the committed BENCH_step.json.
BENCH_TIME ?= 1s
BENCH_COUNT ?= 3

bench-json:
	$(GO) test ./internal/network -run '^$$' -bench 'StepByLoad|NetworkStep|PoolDispatch|Snapshot' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) \
		| $(GO) run ./cmd/benchjson \
		-note "Snapshot* rows are the checkpoint layer: encode/restore a warm h=3 image (~0.7 MB) in ~3 ms, full Fork ~9 ms — the fixed cost each warm-fork sweep point pays." \
		-note "warm-cache sweep speedup: sweep -h 3 -points 5 -warmup 3000 -measure 1000 with -checkpoint/-restore dropped 1.43 s -> 0.53 s (~2.7x) on the second invocation, restoring all 5 points and skipping 15000 warmup cycles; CSV rows bit-identical (TestWarmCacheSweep)." \
		> BENCH_step.json
	@cat BENCH_step.json

# Informational perf diff against the committed baseline: rerun the tracked
# Step benchmarks to a temp file and print per-row ns/op deltas versus
# BENCH_step.json. Never gates a build — timing on shared machines is
# advisory (override BENCH_TIME/BENCH_COUNT for a quicker, noisier pass).
bench-compare:
	$(GO) test ./internal/network -run '^$$' -bench 'StepByLoad|NetworkStep|PoolDispatch|Snapshot' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) \
		| $(GO) run ./cmd/benchjson > $(or $(TMPDIR),/tmp)/bench_fresh.json
	$(GO) run ./cmd/benchcmp BENCH_step.json $(or $(TMPDIR),/tmp)/bench_fresh.json

# Regenerate every paper figure at laptop scale (h=3) with SVG charts.
figures:
	$(GO) run ./cmd/experiments -fig all -h 3 -points 8 -svg figures | tee experiments_h3.txt

# Paper-scale (h=6, 5256 nodes) headline figure — slow.
figures-h6:
	$(GO) run ./cmd/experiments -fig fig5 -h 6 -points 6

fuzz:
	$(GO) test -fuzz FuzzTopologyInvariants -fuzztime 30s ./internal/topology
	$(GO) test -fuzz FuzzParsePattern -fuzztime 20s .
	$(GO) test -fuzz FuzzParallelConservation -fuzztime 30s .
	$(GO) test -fuzz FuzzRouteCache -fuzztime 30s .

clean:
	rm -rf figures test_output.txt bench_output.txt
