package ofar

import "ofar/internal/simcore"

// newBenchRNG gives benchmarks a deterministic generator.
func newBenchRNG() *simcore.RNG { return simcore.NewRNG(99) }
