package ofar

import (
	"fmt"
	"testing"

	"ofar/internal/topology"
	"ofar/internal/traffic"
)

// Benchmarks regenerate each figure of the paper's evaluation at bench
// scale (h=2 unless noted: 72 nodes, short windows) and report the figure's
// metric via b.ReportMetric, so `go test -bench .` doubles as a quick
// regeneration of every table/figure. cmd/experiments produces the full
// series at h=3/h=6.

const (
	benchWarm = 1500
	benchMeas = 2500
)

func benchCfg(rt Routing, h int) Config {
	cfg := DefaultConfig(h)
	cfg.Routing = rt
	if rt == MIN || rt == VAL || rt == PB || rt == UGAL {
		cfg.Ring = RingNone
	}
	return cfg
}

// BenchmarkFig2b: VAL saturation for a benign and a pathological offset.
func BenchmarkFig2b(b *testing.B) {
	for _, off := range []int{1, 2} { // h=2: ADV+2 is the ADV+h worst case
		b.Run(fmt.Sprintf("ADV+%d", off), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				r, err := RunSteady(benchCfg(VAL, 2), Adv(off), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

func benchSteady(b *testing.B, rt Routing, ps PatternSpec, load float64) {
	b.Helper()
	var lat, thr float64
	for i := 0; i < b.N; i++ {
		r, err := RunSteady(benchCfg(rt, 2), ps, load, benchWarm, benchMeas)
		if err != nil {
			b.Fatal(err)
		}
		lat, thr = r.AvgLatency, r.Throughput
	}
	b.ReportMetric(lat, "cycles-latency")
	b.ReportMetric(thr, "phits/node/cycle")
}

// BenchmarkFig3: uniform traffic — latency at 0.2 load and saturation
// throughput for each mechanism.
func BenchmarkFig3(b *testing.B) {
	for _, rt := range []Routing{MIN, PB, OFAR, OFARL} {
		b.Run(string(rt)+"/load0.2", func(b *testing.B) { benchSteady(b, rt, Uniform(), 0.2) })
		b.Run(string(rt)+"/saturation", func(b *testing.B) { benchSteady(b, rt, Uniform(), 1.0) })
	}
}

// BenchmarkFig4: ADV+2.
func BenchmarkFig4(b *testing.B) {
	for _, rt := range []Routing{VAL, PB, OFAR, OFARL} {
		b.Run(string(rt), func(b *testing.B) { benchSteady(b, rt, Adv(2), 1.0) })
	}
}

// BenchmarkFig5: ADV+h (h=3 here so that ADV+h and ADV+2 differ, matching
// the paper's distinction between Figs. 4 and 5).
func BenchmarkFig5(b *testing.B) {
	for _, rt := range []Routing{VAL, PB, OFAR, OFARL} {
		b.Run(string(rt), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				r, err := RunSteady(benchCfg(rt, 3), Adv(3), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

// BenchmarkFig6: transient adaptation — the latency penalty right after the
// UN→ADV+2 switch (mean of the first 500 post-switch cycles).
func BenchmarkFig6(b *testing.B) {
	for _, rt := range []Routing{PB, OFAR, OFARL} {
		b.Run(string(rt), func(b *testing.B) {
			var penalty float64
			for i := 0; i < b.N; i++ {
				res, err := RunTransient(benchCfg(rt, 2), Uniform(), Adv(2), 0.14,
					benchWarm, 1500, 2500, 100)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				var n int
				for _, p := range res.Points {
					if p.Cycle >= 0 && p.Cycle < 500 {
						sum += p.MeanLatency
						n++
					}
				}
				if n > 0 {
					penalty = sum / float64(n)
				}
			}
			b.ReportMetric(penalty, "cycles-post-switch")
		})
	}
}

// BenchmarkFig7: burst consumption time per mechanism on MIX1.
func BenchmarkFig7(b *testing.B) {
	for _, rt := range []Routing{PB, OFAR, OFARL} {
		b.Run(string(rt), func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				res, err := RunBurst(benchCfg(rt, 2), PaperMixes(2)[0], 50, 10_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Drained {
					b.Fatal("burst not drained")
				}
				cycles = float64(res.Cycles)
			}
			b.ReportMetric(cycles, "cycles-to-drain")
		})
	}
}

// BenchmarkFig8: OFAR with physical vs embedded escape ring.
func BenchmarkFig8(b *testing.B) {
	for _, mode := range []RingMode{RingPhysical, RingEmbedded} {
		b.Run(mode.String(), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(OFAR, 2)
				cfg.Ring = mode
				r, err := RunSteady(cfg, Adv(2), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

// BenchmarkFig9: full vs reduced VC configuration under adversarial load.
func BenchmarkFig9(b *testing.B) {
	for _, reduced := range []bool{false, true} {
		name := "fullVC"
		if reduced {
			name = "reducedVC"
		}
		b.Run(name, func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(OFAR, 2)
				cfg.Ring = RingEmbedded
				if reduced {
					cfg.LocalVCs, cfg.GlobalVCs, cfg.InjVCs = 2, 1, 2
				}
				r, err := RunSteady(cfg, Adv(2), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

// --- ablation benches (DESIGN.md §7) ----------------------------------------

// BenchmarkAblationThreshold: the misroute-threshold knobs of both
// policies — the §IV-B static candidate bound and the §V variable factor.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, static := range []float64{0.2, 0.4, 0.8} {
		b.Run(fmt.Sprintf("static%.1f", static), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(OFAR, 2)
				cfg.OFAR.StaticNonMin = static
				r, err := RunSteady(cfg, Adv(2), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
	for _, factor := range []float64{0.5, 0.9, 1.0} {
		b.Run(fmt.Sprintf("variable%.1f", factor), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(OFAR, 2)
				cfg.OFAR = DefaultOFARVariableConfig()
				cfg.OFAR.NonMinFactor = factor
				r, err := RunSteady(cfg, Adv(2), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

// BenchmarkAblationEscapeTimeout: how soon blocked packets divert to the
// escape ring.
func BenchmarkAblationEscapeTimeout(b *testing.B) {
	for _, to := range []int{0, 32, 256} {
		b.Run(fmt.Sprintf("timeout%d", to), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(OFAR, 2)
				cfg.OFAR.EscapeTimeout = to
				r, err := RunSteady(cfg, Adv(2), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

// BenchmarkAblationMultiRing: one vs two embedded escape rings.
func BenchmarkAblationMultiRing(b *testing.B) {
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("rings%d", k), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(OFAR, 2)
				cfg.Ring = RingEmbedded
				cfg.NumRings = k
				r, err := RunSteady(cfg, Adv(2), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

// --- engine micro-benchmarks -------------------------------------------------

// BenchmarkSimCycle measures raw simulation speed: cycles per second of an
// h=3 network under moderate uniform load.
func BenchmarkSimCycle(b *testing.B) {
	cfg := DefaultConfig(3)
	s, err := NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.SetTraffic(Uniform(), 0.3)
	s.Run(2000) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkSimCycleSaturated: the worst-case per-cycle cost (every buffer
// occupied, maximal routing work).
func BenchmarkSimCycleSaturated(b *testing.B) {
	cfg := DefaultConfig(3)
	s, err := NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.SetTraffic(Adv(3), 1.0)
	s.Run(4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkMinimalPort: topology routing-table lookup cost.
func BenchmarkMinimalPort(b *testing.B) {
	d, err := topology.NewBalanced(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += d.MinimalPort(i%d.Routers, (i*7)%d.Nodes)
	}
	_ = acc
}

// BenchmarkTrafficGen: pattern destination sampling.
func BenchmarkTrafficGen(b *testing.B) {
	d, _ := topology.NewBalanced(6)
	for _, name := range []string{"UN", "ADV", "MIX"} {
		b.Run(name, func(b *testing.B) {
			sim, _ := NewSimulator(DefaultConfig(2))
			_ = sim
			var p traffic.Pattern
			switch name {
			case "UN":
				p = traffic.NewUniform(d)
			case "ADV":
				p = traffic.NewAdv(d, 6)
			default:
				p = traffic.NewMix("m", []traffic.Pattern{traffic.NewUniform(d), traffic.NewAdv(d, 6)}, []float64{1, 1})
			}
			rng := newBenchRNG()
			b.ResetTimer()
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += p.Dest(rng, i%d.Nodes)
			}
			_ = acc
		})
	}
}

// BenchmarkAblationSelection tests the §IV-B claim that random misroute
// candidate selection outperforms always picking the least-occupied output
// (which synchronizes competing inputs onto the same port).
func BenchmarkAblationSelection(b *testing.B) {
	for _, least := range []bool{false, true} {
		name := "random"
		if least {
			name = "leastOccupied"
		}
		b.Run(name, func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(OFAR, 3)
				cfg.OFAR.LeastOccupied = least
				r, err := RunSteady(cfg, Adv(3), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

// BenchmarkAblationAllocIters: the paper's separable allocator runs 3
// arbitration iterations ("resembling the design in [22]"); this measures
// what the iterations buy.
func BenchmarkAblationAllocIters(b *testing.B) {
	for _, iters := range []int{1, 3} {
		b.Run(fmt.Sprintf("iters%d", iters), func(b *testing.B) {
			var thr float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(OFAR, 2)
				cfg.AllocIters = iters
				r, err := RunSteady(cfg, Uniform(), 1.0, benchWarm, benchMeas)
				if err != nil {
					b.Fatal(err)
				}
				thr = r.Throughput
			}
			b.ReportMetric(thr, "phits/node/cycle")
		})
	}
}

// BenchmarkAblationPolicy: the §IV-B static threshold policy (repository
// default) against the paper's §V variable policy, on both traffic kinds.
func BenchmarkAblationPolicy(b *testing.B) {
	cases := []struct {
		name string
		ps   PatternSpec
	}{{"UN", Uniform()}, {"ADVh", Adv(2)}}
	for _, c := range cases {
		for _, variable := range []bool{false, true} {
			name := c.name + "/static"
			if variable {
				name = c.name + "/variable"
			}
			b.Run(name, func(b *testing.B) {
				var thr float64
				for i := 0; i < b.N; i++ {
					cfg := benchCfg(OFAR, 2)
					if variable {
						cfg.OFAR = DefaultOFARVariableConfig()
					}
					r, err := RunSteady(cfg, c.ps, 1.0, benchWarm, benchMeas)
					if err != nil {
						b.Fatal(err)
					}
					thr = r.Throughput
				}
				b.ReportMetric(thr, "phits/node/cycle")
			})
		}
	}
}
