package ofar

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"ofar/internal/network"
	"ofar/internal/traffic"
)

// WarmState is a network that has finished its warm-up phase and is held as
// a measurement parent: every Measure call forks it and runs the measurement
// window on the fork, leaving the parent untouched. This turns the paper's
// warm-then-measure methodology into "warm once, fork N times" — and because
// a fork is bit-identical to the original, a measurement taken off a fork
// equals the classic uninterrupted RunSteady run exactly.
//
// Warm states serialize: Snapshot writes the parent's full image, and
// WarmFromSnapshot rebuilds a warm state from one without re-simulating the
// warm-up. The snapshot header pins the format version, the engine's
// golden-trace digest and the normalized configuration, so a stale file can
// never silently resume into changed physics — it just fails to restore.
type WarmState struct {
	cfg     Config
	load    float64
	pattern string
	net     *network.Network
}

// Warm builds a network, attaches an open-loop Bernoulli source for the
// pattern and load, and simulates the warm-up phase (with the latency
// histogram enabled, exactly as RunSteady does). Close the result when done.
func Warm(cfg Config, ps PatternSpec, load float64, warmup int) (*WarmState, error) {
	n, err := network.New(cfg)
	if err != nil {
		return nil, err
	}
	pattern := ps.build(n.Topo)
	n.SetGenerator(traffic.NewBernoulli(pattern, load, cfg.PacketSize))
	n.Stats.EnableHistogram()
	n.Run(warmup)
	return &WarmState{cfg: cfg, load: load, pattern: pattern.Name(), net: n}, nil
}

// WarmFromSnapshot rebuilds a warm state from a snapshot written by
// WarmState.Snapshot, skipping the warm-up simulation. cfg, ps and load must
// match the warming run (the snapshot rejects a different configuration; the
// pattern and load re-create the identical traffic source, whose RNG
// position the snapshot carries).
func WarmFromSnapshot(cfg Config, ps PatternSpec, load float64, r io.Reader) (*WarmState, error) {
	n, err := network.New(cfg)
	if err != nil {
		return nil, err
	}
	pattern := ps.build(n.Topo)
	n.SetGenerator(traffic.NewBernoulli(pattern, load, cfg.PacketSize))
	if err := n.Restore(r); err != nil {
		n.Close()
		return nil, err
	}
	return &WarmState{cfg: cfg, load: load, pattern: pattern.Name(), net: n}, nil
}

// Warmup returns the simulated cycle the warm state is parked at.
func (w *WarmState) Warmup() int64 { return w.net.Now() }

// Snapshot writes the warm parent's full state; WarmFromSnapshot reads it.
func (w *WarmState) Snapshot(wr io.Writer) error { return w.net.Snapshot(wr) }

// Close releases the parent network (its worker pool, when configured).
func (w *WarmState) Close() { w.net.Close() }

// Measure forks the warm state and runs one measurement window on the fork,
// returning the same SteadyResult an uninterrupted RunSteady with this
// configuration, pattern, load and warm-up would. The parent is not
// perturbed, so Measure can be called repeatedly.
func (w *WarmState) Measure(measure int) (SteadyResult, error) {
	n, err := w.net.Fork()
	if err != nil {
		return SteadyResult{}, err
	}
	defer n.Close()
	return measureSteady(n, w.pattern, w.load, measure)
}

// MeasureTimed is Measure with per-phase Step timing enabled on the fork,
// additionally returning where the measurement window's wall-clock went.
// The result is bit-identical to Measure's — timing is observation only —
// and the parent stays untouched either way.
func (w *WarmState) MeasureTimed(measure int) (SteadyResult, PhaseNanos, error) {
	n, err := w.net.Fork()
	if err != nil {
		return SteadyResult{}, PhaseNanos{}, err
	}
	defer n.Close()
	n.EnablePhaseTimings()
	res, err := measureSteady(n, w.pattern, w.load, measure)
	return res, n.PhaseTimings(), err
}

// EngineDigest returns the engine's physics fingerprint: the grant digest of
// one small canonical run, computed once per process (see
// network.EngineDigest). Snapshot restores refuse images written by a
// behaviorally different build, and the sweep service folds this digest into
// every result-cache key, so a code change that moves the physics can never
// serve a stale cached result.
func EngineDigest() uint64 { return network.EngineDigest() }

// CanonicalConfigJSON returns the canonical identity of a configuration: its
// JSON encoding with the wall-clock-only execution fields (Workers,
// ParallelCutover, ShardByGroup, scheduler/cache toggles) normalized away.
// Two configurations that provably simulate bit-identically — differing only
// in those fields — canonicalize to the same bytes, which is what lets the
// warm-snapshot cache and the sweep service's result cache share entries
// across execution settings.
func CanonicalConfigJSON(cfg Config) ([]byte, error) { return network.SnapshotConfigJSON(cfg) }

// sweepPoint produces one sweep point through the warm-fork path, consulting
// the options' warm cache. It reports whether the point's warmup was skipped
// by a cache hit.
func sweepPoint(cfg Config, ps PatternSpec, load float64, warmup, measure int, opt SweepOptions) (SteadyResult, bool, error) {
	w, restored, err := warmFor(cfg, ps, load, warmup, opt)
	if err != nil {
		return SteadyResult{}, false, err
	}
	defer w.Close()
	if opt.PhaseSink != nil {
		res, ph, err := w.MeasureTimed(measure)
		if err == nil {
			opt.PhaseSink(ph)
		}
		return res, restored, err
	}
	res, err := w.Measure(measure)
	return res, restored, err
}

// warmFor obtains the warm state for one sweep point: from the restore
// directory when a usable snapshot exists there, otherwise by simulating the
// warm-up (and checkpointing it when a checkpoint directory is set).
func warmFor(cfg Config, ps PatternSpec, load float64, warmup int, opt SweepOptions) (*WarmState, bool, error) {
	var name string
	if opt.RestoreDir != "" || opt.CheckpointDir != "" {
		var err error
		if name, err = warmSnapshotName(cfg, ps, load, warmup); err != nil {
			return nil, false, err
		}
	}
	if opt.RestoreDir != "" {
		if f, err := os.Open(filepath.Join(opt.RestoreDir, name)); err == nil {
			w, rerr := WarmFromSnapshot(cfg, ps, load, f)
			f.Close()
			if rerr == nil {
				return w, true, nil
			}
			// Stale or corrupt entry (different physics, truncated write):
			// fall through and warm from cycle 0 like a cache miss.
		}
	}
	w, err := Warm(cfg, ps, load, warmup)
	if err != nil {
		return nil, false, err
	}
	if opt.CheckpointDir != "" {
		if err := writeWarmSnapshot(filepath.Join(opt.CheckpointDir, name), w); err != nil {
			w.Close()
			return nil, false, err
		}
	}
	return w, false, nil
}

// warmSnapshotName derives the cache file name of a warm state from
// everything that determines it: the snapshot-normalized configuration (so
// worker/scheduler/cache settings share entries, as they share snapshots),
// the pattern, the load and the warm-up length.
func warmSnapshotName(cfg Config, ps PatternSpec, load float64, warmup int) (string, error) {
	cj, err := network.SnapshotConfigJSON(cfg)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(cj)
	fmt.Fprintf(h, "|%s|%016x|%d", ps.Name(), math.Float64bits(load), warmup)
	return fmt.Sprintf("warm-%016x.ofarsnap", h.Sum64()), nil
}

// writeWarmSnapshot persists a warm state atomically (temp file + rename), so
// concurrent sweep points — or concurrent sweep processes sharing a cache
// directory — never observe a half-written snapshot.
func writeWarmSnapshot(path string, w *WarmState) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".warm-*")
	if err != nil {
		return err
	}
	if err := w.Snapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
