package ofar

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func warmTestConfig() Config {
	cfg := DefaultConfig(2)
	cfg.Seed = 11
	return cfg
}

// TestWarmMeasureMatchesRunSteady pins the PR's core equivalence at the API
// surface: warming once and measuring on a fork reports the exact
// SteadyResult of the classic uninterrupted run — every field, including
// histogram quantiles and fault counters.
func TestWarmMeasureMatchesRunSteady(t *testing.T) {
	cfg := warmTestConfig()
	const warmup, measure = 300, 400

	classic, err := RunSteady(cfg, Uniform(), 0.6, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Warm(cfg, Uniform(), 0.6, warmup)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	forked, err := w.Measure(measure)
	if err != nil {
		t.Fatal(err)
	}
	if forked != classic {
		t.Fatalf("warm-fork result diverged from RunSteady:\n fork    %+v\n classic %+v", forked, classic)
	}

	// The parent is reusable: a second measurement is identical too.
	again, err := w.Measure(measure)
	if err != nil {
		t.Fatal(err)
	}
	if again != classic {
		t.Fatalf("second measurement off the same warm state diverged:\n again   %+v\n classic %+v", again, classic)
	}
}

// TestMeasureTimedMatchesMeasure pins the phase-timing contract: MeasureTimed
// returns the exact SteadyResult Measure does (timing is observation only)
// plus a breakdown that accounted every measured cycle.
func TestMeasureTimedMatchesMeasure(t *testing.T) {
	cfg := warmTestConfig()
	const warmup, measure = 300, 400
	w, err := Warm(cfg, Uniform(), 0.6, warmup)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	plain, err := w.Measure(measure)
	if err != nil {
		t.Fatal(err)
	}
	timed, ph, err := w.MeasureTimed(measure)
	if err != nil {
		t.Fatal(err)
	}
	if timed != plain {
		t.Fatalf("timed measurement diverged from plain:\n timed %+v\n plain %+v", timed, plain)
	}
	if ph.Cycles != measure {
		t.Fatalf("phase breakdown covered %d cycles, want %d", ph.Cycles, measure)
	}
	if ph.Events < 0 || ph.Generate < 0 || ph.Routers < 0 {
		t.Fatalf("negative phase times: %+v", ph)
	}
}

// TestWarmSnapshotRoundTrip proves a warm state survives serialization: a
// measurement off a WarmFromSnapshot parent equals one off the original.
func TestWarmSnapshotRoundTrip(t *testing.T) {
	cfg := warmTestConfig()
	w, err := Warm(cfg, Adv(2), 0.4, 250)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var buf bytes.Buffer
	if err := w.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := w.Measure(300)
	if err != nil {
		t.Fatal(err)
	}

	r, err := WarmFromSnapshot(cfg, Adv(2), 0.4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Warmup() != w.Warmup() {
		t.Fatalf("restored warm state parked at cycle %d, want %d", r.Warmup(), w.Warmup())
	}
	got, err := r.Measure(300)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("measurement off restored warm state diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestWarmCacheSweep is the sweep acceptance test: a cached sweep reports the
// same rows as the classic sweep, and a second invocation against the cache
// re-simulates zero warmup cycles. A poisoned cache entry must degrade to a
// plain warm-up, never to a wrong row.
func TestWarmCacheSweep(t *testing.T) {
	cfg := warmTestConfig()
	loads := []float64{0.1, 0.5, 0.8}
	const warmup, measure = 250, 300
	dir := t.TempDir()
	opt := SweepOptions{Parallel: 2, CheckpointDir: dir, RestoreDir: dir}

	classic, err := RunLoadSweep(cfg, Uniform(), loads, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}

	first, st1, err := RunLoadSweepOpt(cfg, Uniform(), loads, warmup, measure, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Warmed != len(loads) || st1.Restored != 0 {
		t.Fatalf("cold cache: warmed %d / restored %d, want %d / 0", st1.Warmed, st1.Restored, len(loads))
	}
	second, st2, err := RunLoadSweepOpt(cfg, Uniform(), loads, warmup, measure, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Restored != len(loads) || st2.WarmupCyclesRun != 0 {
		t.Fatalf("warm cache: restored %d points, ran %d warmup cycles, want %d points and 0 cycles",
			st2.Restored, st2.WarmupCyclesRun, len(loads))
	}
	if st2.WarmupCyclesSkipped != int64(warmup*len(loads)) {
		t.Fatalf("warm cache skipped %d cycles, want %d", st2.WarmupCyclesSkipped, warmup*len(loads))
	}
	for i := range loads {
		if first[i] != classic[i] || second[i] != classic[i] {
			t.Fatalf("load %.2f: sweep rows diverged\n classic %+v\n cold    %+v\n cached  %+v",
				loads[i], classic[i], first[i], second[i])
		}
	}

	// Poison one entry: the sweep must fall back to warming and still
	// produce the identical row.
	name, err := warmSnapshotName(cfg, Uniform(), loads[0], warmup)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	third, st3, err := RunLoadSweepOpt(cfg, Uniform(), loads, warmup, measure, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Warmed != 1 || st3.Restored != len(loads)-1 {
		t.Fatalf("poisoned cache: warmed %d / restored %d, want 1 / %d", st3.Warmed, st3.Restored, len(loads)-1)
	}
	for i := range loads {
		if third[i] != classic[i] {
			t.Fatalf("load %.2f after cache poisoning: %+v != %+v", loads[i], third[i], classic[i])
		}
	}
}

// TestSimulatorSnapshotForkRestore exercises the public Simulator wrappers:
// fork and snapshot/restore both reproduce the step-level trajectory.
func TestSimulatorSnapshotForkRestore(t *testing.T) {
	cfg := warmTestConfig()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.SetTraffic(Uniform(), 0.5)
	sim.Run(200)

	var buf bytes.Buffer
	if err := sim.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fork, err := sim.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer fork.Close()

	restored, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	restored.SetTraffic(Uniform(), 0.5)
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}

	sim.Run(200)
	fork.Run(200)
	restored.Run(200)
	if a, b := sim.Stats().Delivered, fork.Stats().Delivered; a != b {
		t.Fatalf("fork delivered %d packets, original %d", b, a)
	}
	if a, b := sim.Stats().Delivered, restored.Stats().Delivered; a != b {
		t.Fatalf("restored delivered %d packets, original %d", b, a)
	}
	var s1, s2 bytes.Buffer
	if err := sim.Snapshot(&s1); err != nil {
		t.Fatal(err)
	}
	if err := restored.Snapshot(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("restored simulator's trajectory diverged from the original")
	}
}
