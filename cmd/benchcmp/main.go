// Command benchcmp diffs two bench-json documents (the output of
// cmd/benchjson): a committed baseline and a fresh run. It prints one row per
// benchmark with the ns/op delta in percent plus the alloc counters, flags
// rows present on only one side, and always exits 0 when both files parse —
// timing on shared machines is advisory, so the diff is informational and
// must never gate a build. Non-zero exit is reserved for unreadable or
// malformed input.
//
// When both documents carry a host block (GOMAXPROCS / CPU count, recorded
// by benchjson since the sharded-injection PR) and the shapes differ — or
// one side predates the block — a warning goes to stderr: a delta between a
// 1-P container and a multicore workstation measures the machines, not the
// code. The diff still prints; the warning is context, not a gate.
//
//	make bench-json                         # refresh BENCH_step.json
//	go run ./cmd/benchcmp old.json new.json # or `make bench-compare`
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

// result mirrors cmd/benchjson's Result; the two commands share a wire
// format, not code, so the baseline file stays self-describing.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// host mirrors cmd/benchjson's Host; a nil pointer after load means the
// document predates the host block.
type host struct {
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
}

func load(path string) ([]result, map[string]result, *host, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	// Two wire formats: the bare array, or the envelope wrapping the rows
	// with a host block and annotations. Notes never diff.
	var rs []result
	var h *host
	if err := json.Unmarshal(data, &rs); err != nil {
		var doc struct {
			Host       *host    `json:"host"`
			Benchmarks []result `json:"benchmarks"`
		}
		if err2 := json.Unmarshal(data, &doc); err2 != nil || doc.Benchmarks == nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		rs, h = doc.Benchmarks, doc.Host
	}
	byName := make(map[string]result, len(rs))
	for _, r := range rs {
		byName[r.Name] = r
	}
	return rs, byName, h, nil
}

// describe renders a host block for the shape warning.
func describe(h *host) string {
	if h == nil {
		return "unrecorded"
	}
	return fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d", h.GoMaxProcs, h.NumCPU)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: %s OLD.json NEW.json\n", os.Args[0])
		os.Exit(2)
	}
	oldRows, _, oldHost, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	_, newBy, newHost, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	if oldHost == nil || newHost == nil || *oldHost != *newHost {
		fmt.Fprintf(os.Stderr, "benchcmp: warning: host shapes differ (old: %s, new: %s) — ns/op deltas compare machines as much as code\n",
			describe(oldHost), describe(newHost))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs/op\t")
	seen := make(map[string]bool, len(oldRows))
	for _, o := range oldRows {
		seen[o.Name] = true
		n, ok := newBy[o.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t%.0f\t-\tgone\t\t\n", o.Name, o.NsPerOp)
			continue
		}
		delta := "~"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (n.NsPerOp-o.NsPerOp)/o.NsPerOp*100)
		}
		allocs := fmt.Sprintf("%.0f", n.AllocsPerOp)
		if n.AllocsPerOp != o.AllocsPerOp {
			allocs = fmt.Sprintf("%.0f→%.0f", o.AllocsPerOp, n.AllocsPerOp)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%s\t\n", o.Name, o.NsPerOp, n.NsPerOp, delta, allocs)
	}
	// Rows the baseline has never recorded (a new benchmark case), in a
	// stable order.
	var extras []string
	for name := range newBy {
		if !seen[name] {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		n := newBy[name]
		fmt.Fprintf(w, "%s\t-\t%.0f\tnew\t%.0f\t\n", name, n.NsPerOp, n.AllocsPerOp)
	}
	w.Flush()
}
