// Command benchcmp diffs two bench-json documents (the output of
// cmd/benchjson): a committed baseline and a fresh run. It prints one row per
// benchmark with the ns/op delta in percent plus the alloc counters, flags
// rows present on only one side, and always exits 0 when both files parse —
// timing on shared machines is advisory, so the diff is informational and
// must never gate a build. Non-zero exit is reserved for unreadable or
// malformed input.
//
//	make bench-json                         # refresh BENCH_step.json
//	go run ./cmd/benchcmp old.json new.json # or `make bench-compare`
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

// result mirrors cmd/benchjson's Result; the two commands share a wire
// format, not code, so the baseline file stays self-describing.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func load(path string) ([]result, map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	// Two wire formats: the bare array, or (when benchjson was given -note)
	// an object wrapping the rows with annotations. Notes never diff.
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		var doc struct {
			Benchmarks []result `json:"benchmarks"`
		}
		if err2 := json.Unmarshal(data, &doc); err2 != nil || doc.Benchmarks == nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		rs = doc.Benchmarks
	}
	byName := make(map[string]result, len(rs))
	for _, r := range rs {
		byName[r.Name] = r
	}
	return rs, byName, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: %s OLD.json NEW.json\n", os.Args[0])
		os.Exit(2)
	}
	oldRows, _, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	_, newBy, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs/op\t")
	seen := make(map[string]bool, len(oldRows))
	for _, o := range oldRows {
		seen[o.Name] = true
		n, ok := newBy[o.Name]
		if !ok {
			fmt.Fprintf(w, "%s\t%.0f\t-\tgone\t\t\n", o.Name, o.NsPerOp)
			continue
		}
		delta := "~"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (n.NsPerOp-o.NsPerOp)/o.NsPerOp*100)
		}
		allocs := fmt.Sprintf("%.0f", n.AllocsPerOp)
		if n.AllocsPerOp != o.AllocsPerOp {
			allocs = fmt.Sprintf("%.0f→%.0f", o.AllocsPerOp, n.AllocsPerOp)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%s\t\n", o.Name, o.NsPerOp, n.NsPerOp, delta, allocs)
	}
	// Rows the baseline has never recorded (a new benchmark case), in a
	// stable order.
	var extras []string
	for name := range newBy {
		if !seen[name] {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		n := newBy[name]
		fmt.Fprintf(w, "%s\t-\t%.0f\tnew\t%.0f\t\n", name, n.NsPerOp, n.AllocsPerOp)
	}
	w.Flush()
}
