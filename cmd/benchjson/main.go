// Command benchjson converts `go test -bench` text output on stdin into a
// small JSON document on stdout, recording one entry per benchmark with its
// name, ns/op and allocs/op. It exists so `make bench-json` can commit a
// stable, diffable baseline (BENCH_step.json) instead of raw bench logs.
//
// Lines that are not benchmark result lines (the "goos:"/"pkg:" header, PASS,
// ok, log output) are ignored, so the tool can consume the full stdout of a
// bench run:
//
//	go test -bench StepByLoad -benchmem ./internal/network | go run ./cmd/benchjson
//
// Repeated names (a `-count N` run) are folded into one entry keeping the
// best (minimum) ns/op and B/op and the worst (maximum) allocs/op: minimum
// time is the least-interference estimate on a noisy shared machine, while
// maximum allocs keeps the committed zero-alloc claim honest — a single
// allocating run must show. Iterations accumulate across the folded runs.
//
// The document is an envelope {"host": {...}, "notes": [...], "benchmarks":
// [...]} (notes omitted when none were given); cmd/benchcmp also still reads
// the bare-array form older baselines used. The host block records the
// machine shape the numbers were taken on — GOMAXPROCS (parsed from the
// `-N` suffix Go appends to benchmark names when it is >1, else the tool's
// own runtime value) and the CPU count — because ns/op from a 1-P container
// and a 32-core workstation are not comparable and the file itself should
// say which one it is. The `-N` suffix is stripped from the recorded names
// so the same benchmark folds to the same key on every host.
//
// Each -note flag (repeatable) attaches a free-form annotation. With -phases,
// custom per-phase metrics (the `<phase>-ns/op` columns BenchmarkStepPhases
// reports via b.ReportMetric) are captured into a "phases" map per entry,
// min-folded like ns/op; without the flag they are ignored, keeping
// long-tracked entries byte-stable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
)

// Result is one benchmark line. NsPerOp and AllocsPerOp mirror the columns
// testing.B reports; BytesPerOp rides along when -benchmem was set, Phases
// when -phases captured custom <phase>-ns/op metrics.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Phases      map[string]float64 `json:"phases,omitempty"`
}

// Host is the machine shape a baseline was recorded on.
type Host struct {
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
}

// splitProcs strips the "-N" GOMAXPROCS suffix Go appends to benchmark names
// (only when GOMAXPROCS > 1), returning the bare name and N (0 when absent).
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 {
		return name, 0
	}
	return name[:i], n
}

// parseLine decodes one "BenchmarkX-8  123  456 ns/op  7 B/op  8 allocs/op"
// line, returning ok=false for anything that is not a benchmark result.
// procs is the GOMAXPROCS suffix of the name (0 when absent). With phases
// set, custom "<phase>-ns/op" units are collected into r.Phases.
func parseLine(line string, phases bool) (r Result, procs int, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, 0, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, 0, false
	}
	name, procs := splitProcs(f[0])
	r = Result{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, 0, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if phases && strings.HasSuffix(unit, "-ns/op") {
				if r.Phases == nil {
					r.Phases = make(map[string]float64)
				}
				r.Phases[strings.TrimSuffix(unit, "-ns/op")] = v
			}
		}
	}
	return r, procs, seen
}

func main() {
	// pprof hooks, mirroring cmd/ofarsim: the parser is never hot, but the
	// flags keep the whole bench pipeline attributable without code edits.
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	phases := flag.Bool("phases", false, "capture custom <phase>-ns/op metrics into a per-entry phases map")
	var notes notesFlag
	flag.Var(&notes, "note", "annotation recorded in the document (repeatable)")
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
	}

	var results []Result
	index := make(map[string]int) // name → position in results
	maxProcs := 0                 // largest -N suffix seen (0: none, i.e. GOMAXPROCS=1)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, procs, ok := parseLine(sc.Text(), *phases)
		if !ok {
			continue
		}
		if procs > maxProcs {
			maxProcs = procs
		}
		i, seen := index[r.Name]
		if !seen {
			index[r.Name] = len(results)
			results = append(results, r)
			continue
		}
		// -count N repeat: fold into the existing entry (see doc comment).
		prev := &results[i]
		prev.Iterations += r.Iterations
		prev.NsPerOp = min(prev.NsPerOp, r.NsPerOp)
		prev.BytesPerOp = min(prev.BytesPerOp, r.BytesPerOp)
		prev.AllocsPerOp = max(prev.AllocsPerOp, r.AllocsPerOp)
		for k, v := range r.Phases {
			if old, ok := prev.Phases[k]; !ok || v < old {
				if prev.Phases == nil {
					prev.Phases = make(map[string]float64)
				}
				prev.Phases[k] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	host := Host{GoMaxProcs: maxProcs, NumCPU: runtime.NumCPU()}
	if host.GoMaxProcs == 0 {
		// No -N suffix on any line: the bench ran at GOMAXPROCS=1, or the
		// input predates the suffix — fall back to this process's view.
		host.GoMaxProcs = runtime.GOMAXPROCS(0)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	doc := struct {
		Host       Host     `json:"host"`
		Notes      []string `json:"notes,omitempty"`
		Benchmarks []Result `json:"benchmarks"`
	}{host, notes, results}
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// notesFlag collects repeated -note values.
type notesFlag []string

func (n *notesFlag) String() string     { return strings.Join(*n, "; ") }
func (n *notesFlag) Set(s string) error { *n = append(*n, s); return nil }
