// Command benchjson converts `go test -bench` text output on stdin into a
// small JSON document on stdout, recording one entry per benchmark with its
// name, ns/op and allocs/op. It exists so `make bench-json` can commit a
// stable, diffable baseline (BENCH_step.json) instead of raw bench logs.
//
// Lines that are not benchmark result lines (the "goos:"/"pkg:" header, PASS,
// ok, log output) are ignored, so the tool can consume the full stdout of a
// bench run:
//
//	go test -bench StepByLoad -benchmem ./internal/network | go run ./cmd/benchjson
//
// Repeated names (a `-count N` run) are folded into one entry keeping the
// best (minimum) ns/op and B/op and the worst (maximum) allocs/op: minimum
// time is the least-interference estimate on a noisy shared machine, while
// maximum allocs keeps the committed zero-alloc claim honest — a single
// allocating run must show. Iterations accumulate across the folded runs.
//
// Each -note flag (repeatable) attaches a free-form annotation; with notes
// the document becomes {"notes": [...], "benchmarks": [...]} instead of the
// bare array, which cmd/benchcmp reads either way.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
)

// Result is one benchmark line. NsPerOp and AllocsPerOp mirror the columns
// testing.B reports; BytesPerOp rides along when -benchmem was set.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// parseLine decodes one "BenchmarkX-8  123  456 ns/op  7 B/op  8 allocs/op"
// line, returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, seen
}

func main() {
	// pprof hooks, mirroring cmd/ofarsim: the parser is never hot, but the
	// flags keep the whole bench pipeline attributable without code edits.
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	var notes notesFlag
	flag.Var(&notes, "note", "annotation recorded in the document (repeatable)")
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
	}

	var results []Result
	index := make(map[string]int) // name → position in results
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		i, seen := index[r.Name]
		if !seen {
			index[r.Name] = len(results)
			results = append(results, r)
			continue
		}
		// -count N repeat: fold into the existing entry (see doc comment).
		prev := &results[i]
		prev.Iterations += r.Iterations
		prev.NsPerOp = min(prev.NsPerOp, r.NsPerOp)
		prev.BytesPerOp = min(prev.BytesPerOp, r.BytesPerOp)
		prev.AllocsPerOp = max(prev.AllocsPerOp, r.AllocsPerOp)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	var doc any = results
	if len(notes) > 0 {
		doc = struct {
			Notes      []string `json:"notes"`
			Benchmarks []Result `json:"benchmarks"`
		}{notes, results}
	}
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// notesFlag collects repeated -note values.
type notesFlag []string

func (n *notesFlag) String() string     { return strings.Join(*n, "; ") }
func (n *notesFlag) Set(s string) error { *n = append(*n, s); return nil }
