// Command benchjson converts `go test -bench` text output on stdin into a
// small JSON document on stdout, recording one entry per benchmark with its
// name, ns/op and allocs/op. It exists so `make bench-json` can commit a
// stable, diffable baseline (BENCH_step.json) instead of raw bench logs.
//
// Lines that are not benchmark result lines (the "goos:"/"pkg:" header, PASS,
// ok, log output) are ignored, so the tool can consume the full stdout of a
// bench run:
//
//	go test -bench StepByLoad -benchmem ./internal/network | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. NsPerOp and AllocsPerOp mirror the columns
// testing.B reports; BytesPerOp rides along when -benchmem was set.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// parseLine decodes one "BenchmarkX-8  123  456 ns/op  7 B/op  8 allocs/op"
// line, returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, seen
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
