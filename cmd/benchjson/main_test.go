package main

import "testing"

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkStepByLoad/load=0.05/serial/sched-8", "BenchmarkStepByLoad/load=0.05/serial/sched", 8},
		{"BenchmarkStepByLoad/load=0.05/serial/sched", "BenchmarkStepByLoad/load=0.05/serial/sched", 0},
		{"BenchmarkFoo-16", "BenchmarkFoo", 16},
		{"BenchmarkFoo", "BenchmarkFoo", 0},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", c.in, name, procs, c.name, c.procs)
		}
	}
}

func TestParseLinePhases(t *testing.T) {
	line := "BenchmarkStepPhases/h6/load=0.50/serial-4 \t 50\t 2205257 ns/op\t 594992 events-ns/op\t 178714 generate-ns/op"
	r, procs, ok := parseLine(line, true)
	if !ok {
		t.Fatal("line did not parse")
	}
	if procs != 4 {
		t.Errorf("procs = %d, want 4", procs)
	}
	if r.Name != "BenchmarkStepPhases/h6/load=0.50/serial" {
		t.Errorf("name = %q", r.Name)
	}
	if r.NsPerOp != 2205257 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.Phases["events"] != 594992 || r.Phases["generate"] != 178714 {
		t.Errorf("phases = %v", r.Phases)
	}
	// Without -phases the custom units must be dropped, keeping long-tracked
	// entries byte-stable.
	r2, _, ok := parseLine(line, false)
	if !ok || r2.Phases != nil {
		t.Errorf("phases captured without the flag: %v", r2.Phases)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tofar/internal/network\t30.1s",
		"BenchmarkBroken notanumber 5 ns/op",
	} {
		if _, _, ok := parseLine(line, true); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
