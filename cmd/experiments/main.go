// Command experiments regenerates the tables and figures of the paper's
// evaluation section (Figs. 2b–9). Each figure prints the same series the
// paper plots; EXPERIMENTS.md records the measured outputs next to the
// paper's values.
//
// The default scale is h=3 (342 nodes) so every figure regenerates in
// minutes on a laptop; pass -h 6 for the paper's full-size network
// (5,256 nodes — much slower).
//
// Examples:
//
//	experiments -fig fig5
//	experiments -fig all -h 3
//	experiments -fig fig7 -burst 200
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ofar"
	"ofar/internal/plot"
)

type scale struct {
	h       int
	warmup  int
	measure int
	burst   int // packets per node in fig7
	maxCyc  int
	seed    uint64
	svgDir  string // when non-empty, write an SVG per figure
	workers int    // intra-network router-stage pool workers (0/1 = serial)
	shard   bool   // shard each cycle by dragonfly group across the workers
	cutover int    // serial/parallel cutover (0 = auto-calibrate)
	faults  []ofar.Fault
	ckptDir string // when non-empty, write per-point warm snapshots here
	restDir string // when non-empty, restore warm snapshots from here
}

// sweep runs one load sweep through the warm-fork driver, with the warm
// cache when -checkpoint/-restore are set. Rows are bit-identical to the
// classic per-point runs either way.
func (sc scale) sweep(cfg ofar.Config, ps ofar.PatternSpec, loads []float64) ([]ofar.SteadyResult, error) {
	rs, st, err := ofar.RunLoadSweepOpt(cfg, ps, loads, sc.warmup, sc.measure,
		ofar.SweepOptions{CheckpointDir: sc.ckptDir, RestoreDir: sc.restDir})
	if err == nil && (sc.ckptDir != "" || sc.restDir != "") {
		fmt.Fprintf(os.Stderr, "experiments: %s %s: warm cache: %d restored (%d warmup cycles skipped), %d warmed\n",
			cfg.Routing, ps.Name(), st.Restored, st.WarmupCyclesSkipped, st.Warmed)
	}
	return rs, err
}

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: fig2b,fig3,fig4,fig5,fig6,fig7,fig8,fig9,bounds,all; extensions: stencil,fig9m,degradation,interference")
		h      = flag.Int("h", 3, "dragonfly parameter h (6 = paper scale)")
		warm   = flag.Int("warmup", 3000, "warm-up cycles per point")
		meas   = flag.Int("measure", 5000, "measurement cycles per point")
		burst  = flag.Int("burst", 100, "burst size per node for fig7 (paper: 2000)")
		seed   = flag.Uint64("seed", 1, "random seed")
		points = flag.Int("points", 8, "load points per sweep")
		svgDir = flag.String("svg", "", "directory to write one SVG chart per figure (optional)")
		work   = flag.Int("workers", 0, "router-stage pool workers per network (0/1 = serial; bit-identical results, useful at h=6)")
		shard  = flag.Bool("shard", false, "shard each network's cycle by dragonfly group across the workers (needs -workers > 1; bit-identical)")
		cut    = flag.Int("cutover", 0, "active-router count below which a parallel step runs serially (0 = auto)")
		faults = flag.String("faults", "", "fault schedule applied to every run: a JSON file of Fault objects, or inline like link@5000:12:7")
		ckpt   = flag.String("checkpoint", "", "directory to write per-point warm snapshots into (reuse with -restore)")
		rest   = flag.String("restore", "", "directory of warm snapshots: sweep points found there skip warmup, bit-identically")
	)
	flag.Parse()
	sc := scale{h: *h, warmup: *warm, measure: *meas, burst: *burst, maxCyc: 50_000_000, seed: *seed, svgDir: *svgDir, workers: *work, shard: *shard, cutover: *cut, ckptDir: *ckpt, restDir: *rest}
	if *faults != "" {
		fs, err := ofar.LoadFaults(*faults)
		check(err)
		sc.faults = fs
	}
	if sc.svgDir != "" {
		if err := os.MkdirAll(sc.svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	figs := map[string]func(scale, int){
		"fig2b":        fig2b,
		"fig3":         fig3,
		"fig4":         fig4,
		"fig5":         fig5,
		"fig6":         fig6,
		"fig7":         fig7,
		"fig8":         fig8,
		"fig9":         fig9,
		"bounds":       bounds,
		"stencil":      stencil,      // extension: §III application-workload table
		"fig9m":        fig9m,        // extension: fig9 with the congestion manager
		"degradation":  degradation,  // extension: throughput/p99 vs failed global links
		"interference": interference, // extension: per-job p99 slowdown, mapping × routing
	}
	order := []string{"bounds", "fig2b", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
	name := strings.ToLower(*fig)
	if name == "all" {
		for _, f := range order {
			figs[f](sc, *points)
		}
		return
	}
	f, ok := figs[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		os.Exit(1)
	}
	f(sc, *points)
}

// stencil reproduces the repository's §III application-workload table:
// {MIN, OFAR} × {linear, random} task mapping on a 3-D halo exchange.
func stencil(sc scale, _ int) {
	header("Extension — 3-D stencil halo exchange, mapping × routing")
	dims := bestStencilDims(sc)
	fmt.Printf("task grid: %dx%dx%d\n", dims[0], dims[1], dims[2])
	fmt.Printf("%-10s %-10s %12s %12s\n", "routing", "mapping", "latency@0.3", "saturation")
	for _, rt := range []ofar.Routing{ofar.MIN, ofar.OFAR} {
		for _, random := range []bool{false, true} {
			ps := ofar.Stencil3D(dims[0], dims[1], dims[2], random)
			lat, err := ofar.RunSteady(cfgFor(sc, rt), ps, 0.3, sc.warmup, sc.measure)
			check(err)
			sat, err := ofar.RunSteady(cfgFor(sc, rt), ps, 1.0, sc.warmup, sc.measure)
			check(err)
			mapping := "linear"
			if random {
				mapping = "random"
			}
			fmt.Printf("%-10s %-10s %12.1f %12.4f\n", rt, mapping, lat.AvgLatency, sat.Throughput)
		}
	}
}

// interference measures how much concurrent jobs hurt each other: a mixed
// job set shares the network, then each job re-runs with every other job
// silenced but placement unchanged, and the table reports per-job shared p99
// and p99(shared)/p99(alone) for {MIN, OFAR} × {linear, random} task mapping.
// Linear mapping isolates each job in its own groups, so MIN shows almost no
// interference but a wide per-job p99 skew; OFAR's misrouting exports each
// job's load onto its neighbors' groups and rings. Random mapping makes every
// job share every link and flattens the skew for both routings.
func interference(sc scale, _ int) {
	header("Extension — job interference, p99 slowdown = shared / alone")
	w := defaultJobMix(sc)
	fmt.Printf("job set: %s\n", w.Name())
	fmt.Printf("%-10s %-10s %-44s %s\n", "routing", "mapping", "per-job shared p99 (cycles)", "p99 slowdown")
	for _, rt := range []ofar.Routing{ofar.MIN, ofar.OFAR} {
		for _, random := range []bool{false, true} {
			wm := w
			wm.RandomMap = random
			res, err := ofar.RunInterference(cfgFor(sc, rt), wm, 1.0, sc.warmup, sc.measure)
			check(err)
			mapping := "linear"
			if random {
				mapping = "random"
			}
			shared, slow := "", ""
			for _, p := range res.Points {
				shared += fmt.Sprintf(" %s=%.0f", p.Job, p.SharedP99)
				slow += fmt.Sprintf(" %s=%.2f", p.Job, p.SlowdownP99)
			}
			fmt.Printf("%-10s %-10s %-44s%s\n", rt, mapping, shared, slow)
		}
	}
}

// defaultJobMix sizes a four-job mix from the network: a near-cubic stencil
// and an all-to-all on a quarter of the nodes each, a ring on another
// quarter, a parameter-server fan-in on an eighth, light uniform background
// on the rest.
func defaultJobMix(sc scale) ofar.Workload {
	nodes := sc.h * 2 * sc.h * (2*sc.h*sc.h + 1)
	q := nodes / 4
	dims := cubicDims(q)
	return ofar.Workload{
		Jobs: []ofar.JobSpec{
			{Kind: "stencil", Tasks: dims[0] * dims[1] * dims[2], Dims: dims, Load: 0.3},
			{Kind: "a2a", Tasks: q, Load: 0.5},
			{Kind: "ring", Tasks: q, Load: 0.2},
			{Kind: "ps", Tasks: max(nodes/8, 3), Load: 0.4},
		},
		Background: 0.1,
	}
}

// cubicDims picks the near-cubic x≤y≤z grid with the most cells ≤ n.
func cubicDims(n int) [3]int {
	best, bestV := [3]int{1, 1, 2}, 2
	for x := 1; x*x*x <= n; x++ {
		for y := x; x*y*y <= n; y++ {
			z := n / (x * y)
			if z < y {
				continue
			}
			v := x * y * z
			if v > n {
				continue
			}
			// Same cell count: prefer the more cubic grid.
			if v > bestV || (v == bestV && z-x < best[2]-best[0]) {
				best, bestV = [3]int{x, y, z}, v
			}
		}
	}
	return best
}

// bestStencilDims picks a near-cubic grid filling most of the network.
func bestStencilDims(sc scale) [3]int {
	nodes := sc.h * 2 * sc.h * (2*sc.h*sc.h + 1)
	best := [3]int{1, 1, 1}
	bestV := 0
	for x := 2; x*x*x <= nodes*2; x++ {
		for y := x; x*y*y <= nodes*2; y++ {
			z := nodes / (x * y)
			if z < 2 {
				continue
			}
			if v := x * y * z; v <= nodes && v > bestV {
				best, bestV = [3]int{x, y, z}, v
			}
		}
	}
	return best
}

// fig9m repeats the Fig. 9 reduced-VC experiment with the injection
// throttle enabled — the congestion-management future work of §VII.
func fig9m(sc scale, points int) {
	header("Extension — Fig. 9 scenario with injection-throttling congestion management")
	ps := ofar.Adv(sc.h)
	loads := loadSeries(0.6, points)
	mk := func(managed bool) ofar.Config {
		cfg := cfgFor(sc, ofar.OFAR)
		cfg.Ring = ofar.RingEmbedded
		cfg.LocalVCs, cfg.GlobalVCs, cfg.InjVCs = 2, 1, 2
		cfg.Congestion.Enabled = managed
		cfg.Congestion.Threshold = 0.5
		return cfg
	}
	plain, err := sc.sweep(mk(false), ps, loads)
	check(err)
	managed, err := sc.sweep(mk(true), ps, loads)
	check(err)
	fmt.Printf("%-8s %14s %14s\n", "load", "unmanaged", "managed")
	ch := &plot.Chart{Title: "Fig. 9 scenario + congestion management (" + ps.Name() + ")",
		XLabel: "offered load", YLabel: "accepted (phits/node/cycle)"}
	var pPts, mPts []plot.Point
	for i, load := range loads {
		fmt.Printf("%-8.3f %14.4f %14.4f\n", load, plain[i].Throughput, managed[i].Throughput)
		pPts = append(pPts, plot.Point{X: load, Y: plain[i].Throughput})
		mPts = append(mPts, plot.Point{X: load, Y: managed[i].Throughput})
	}
	ch.Add("unmanaged", pPts)
	ch.Add("managed", mPts)
	writeChart(sc, "fig9m", ch)
}

func cfgFor(sc scale, rt ofar.Routing) ofar.Config {
	cfg := ofar.DefaultConfig(sc.h)
	cfg.Seed = sc.seed
	cfg.Workers = sc.workers
	cfg.ShardByGroup = sc.shard
	cfg.ParallelCutover = sc.cutover
	cfg.Routing = rt
	cfg.Faults = sc.faults
	if rt == ofar.MIN || rt == ofar.VAL || rt == ofar.PB || rt == ofar.UGAL {
		cfg.Ring = ofar.RingNone
	}
	return cfg
}

// degradation measures graceful degradation: OFAR on uniform traffic with
// an increasing number of failed global links, killed mid-warm-up so the
// measurement window sees only the degraded network.
func degradation(sc scale, _ int) {
	header("Extension — graceful degradation under global-link faults (OFAR)")
	cfg := cfgFor(sc, ofar.OFAR)
	cfg.Faults = nil // RunDegradation installs its own schedule per point
	faultAt := int64(sc.warmup / 2)
	pts, err := ofar.RunDegradation(cfg, ofar.Uniform(), 0.3, faultAt, 4, sc.warmup, sc.measure)
	check(err)
	fmt.Printf("%-12s %12s %12s %12s %10s %10s %10s\n",
		"failed-links", "throughput", "avg-lat", "p99-lat", "dropped", "reroutes", "flows")
	ch := &plot.Chart{Title: "Graceful degradation — OFAR, uniform at 0.3",
		XLabel: "failed global links", YLabel: "normalized to fault-free"}
	var thr, p99 []plot.Point
	for _, p := range pts {
		fmt.Printf("%-12d %12.4f %12.1f %12.1f %10d %10d %10d\n",
			p.FailedLinks, p.Throughput, p.AvgLatency, p.P99Latency,
			p.Dropped, p.FaultReroutes, p.AffectedFlows)
		thr = append(thr, plot.Point{X: float64(p.FailedLinks), Y: p.Throughput / pts[0].Throughput})
		p99 = append(p99, plot.Point{X: float64(p.FailedLinks), Y: p.P99Latency / pts[0].P99Latency})
	}
	ch.Add("throughput", thr)
	ch.Add("p99 latency", p99)
	writeChart(sc, "degradation", ch)
}

func loadSeries(max float64, points int) []float64 {
	out := make([]float64, points)
	for i := range out {
		out[i] = max * float64(i+1) / float64(points)
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

// writeChart saves a chart into the -svg directory (no-op when unset).
func writeChart(sc scale, name string, c *plot.Chart) {
	if sc.svgDir == "" {
		return
	}
	path := filepath.Join(sc.svgDir, name+".svg")
	if err := os.WriteFile(path, []byte(c.SVG()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("[wrote %s]\n", path)
}

// bounds prints the §III analytic throughput ceilings next to measured
// saturation values.
func bounds(sc scale, _ int) {
	header("§III analytic bounds vs simulation")
	cfg := cfgFor(sc, ofar.MIN)
	sim, err := ofar.NewSimulator(cfg)
	check(err)
	d := sim.Topology()
	fmt.Printf("network: h=%d, %d nodes, %d routers, %d groups\n", sc.h, d.Nodes, d.Routers, d.G)
	fmt.Printf("MIN worst case (group->group): analytic %.4f\n", d.MinGlobalWorstCaseThroughput())
	fmt.Printf("MIN worst case (router->router local): analytic %.4f\n", d.MinLocalWorstCaseThroughput())
	fmt.Printf("VAL global-link bound: %.3f\n", d.ValiantThroughputBound())
	fmt.Printf("VAL ADV+h local l2 cap: analytic %.4f (1/h = %.4f)\n",
		d.AdvValiantLocalCap(sc.h), d.ValiantLocalSaturationBound())

	min, err := ofar.RunSteady(cfgFor(sc, ofar.MIN), ofar.Adv(sc.h), 1.0, sc.warmup, sc.measure)
	check(err)
	val, err := ofar.RunSteady(cfgFor(sc, ofar.VAL), ofar.Adv(sc.h), 1.0, sc.warmup, sc.measure)
	check(err)
	fmt.Printf("measured: MIN ADV+h saturation %.4f, VAL ADV+h saturation %.4f\n",
		min.Throughput, val.Throughput)
}

// fig2b: VAL saturation throughput versus ADV offset.
func fig2b(sc scale, _ int) {
	header("Fig. 2b — VAL throughput vs adversarial offset")
	cfg := cfgFor(sc, ofar.VAL)
	sim, err := ofar.NewSimulator(cfg)
	check(err)
	g := sim.Topology().G
	fmt.Printf("%-8s %-12s %-12s\n", "offset", "throughput", "analytic-cap")
	var meas, caps []plot.Point
	for n := 1; n < g; n++ {
		res, err := ofar.RunSteady(cfg, ofar.Adv(n), 1.0, sc.warmup, sc.measure)
		check(err)
		cap := sim.Topology().AdvValiantLocalCap(n)
		if cap > 0.5 {
			cap = 0.5 // global-link bound dominates
		}
		fmt.Printf("%-8d %-12.4f %-12.4f\n", n, res.Throughput, cap)
		meas = append(meas, plot.Point{X: float64(n), Y: res.Throughput})
		caps = append(caps, plot.Point{X: float64(n), Y: cap})
	}
	ch := &plot.Chart{Title: "Fig. 2b — VAL throughput vs ADV offset", XLabel: "group offset N", YLabel: "saturation throughput"}
	ch.Add("measured", meas)
	ch.Add("analytic cap", caps)
	writeChart(sc, "fig2b", ch)
}

// sweepFigure runs latency+throughput load sweeps for a set of mechanisms.
func sweepFigure(sc scale, id, title string, ps ofar.PatternSpec, maxLoad float64, points int, routings []ofar.Routing) {
	header(title)
	loads := loadSeries(maxLoad, points)
	fmt.Printf("%-8s", "load")
	for _, rt := range routings {
		fmt.Printf("%14s-lat %14s-thr", rt, rt)
	}
	fmt.Println()
	results := make(map[ofar.Routing][]ofar.SteadyResult)
	for _, rt := range routings {
		rs, err := sc.sweep(cfgFor(sc, rt), ps, loads)
		check(err)
		results[rt] = rs
	}
	for i, load := range loads {
		fmt.Printf("%-8.3f", load)
		for _, rt := range routings {
			r := results[rt][i]
			fmt.Printf("%18.1f %18.4f", r.AvgLatency, r.Throughput)
		}
		fmt.Println()
	}
	latChart := &plot.Chart{Title: title + " — latency", XLabel: "offered load (phits/node/cycle)", YLabel: "avg latency (cycles)"}
	thrChart := &plot.Chart{Title: title + " — throughput", XLabel: "offered load (phits/node/cycle)", YLabel: "accepted (phits/node/cycle)"}
	for _, rt := range routings {
		var lat, thr []plot.Point
		for i, load := range loads {
			lat = append(lat, plot.Point{X: load, Y: results[rt][i].AvgLatency})
			thr = append(thr, plot.Point{X: load, Y: results[rt][i].Throughput})
		}
		latChart.Add(string(rt), lat)
		thrChart.Add(string(rt), thr)
	}
	writeChart(sc, id+"_latency", latChart)
	writeChart(sc, id+"_throughput", thrChart)
}

func fig3(sc scale, points int) {
	sweepFigure(sc, "fig3", "Fig. 3 — uniform traffic (UN)", ofar.Uniform(), 1.0, points,
		[]ofar.Routing{ofar.MIN, ofar.PB, ofar.OFAR, ofar.OFARL})
}

func fig4(sc scale, points int) {
	sweepFigure(sc, "fig4", "Fig. 4 — adversarial ADV+2", ofar.Adv(2), 0.6, points,
		[]ofar.Routing{ofar.VAL, ofar.PB, ofar.OFAR, ofar.OFARL})
}

func fig5(sc scale, points int) {
	sweepFigure(sc, "fig5", fmt.Sprintf("Fig. 5 — adversarial ADV+%d (ADV+h)", sc.h), ofar.Adv(sc.h), 0.6, points,
		[]ofar.Routing{ofar.VAL, ofar.PB, ofar.OFAR, ofar.OFARL})
}

// fig6: transient latency series for three pattern switches.
func fig6(sc scale, _ int) {
	header("Fig. 6 — transient adaptation (latency by send cycle)")
	cases := []struct {
		from, to ofar.PatternSpec
		load     float64
	}{
		{ofar.Uniform(), ofar.Adv(2), 0.14},
		{ofar.Adv(2), ofar.Uniform(), 0.14},
		{ofar.Adv(2), ofar.Adv(sc.h), 0.12},
	}
	for ci, c := range cases {
		fmt.Printf("\n-- %s -> %s at load %.2f --\n", c.from.Name(), c.to.Name(), c.load)
		fmt.Printf("%-10s", "cycle")
		rts := []ofar.Routing{ofar.PB, ofar.OFAR, ofar.OFARL}
		series := map[ofar.Routing]map[int64]float64{}
		ch := &plot.Chart{
			Title:  fmt.Sprintf("Fig. 6 — %s → %s (load %.2f)", c.from.Name(), c.to.Name(), c.load),
			XLabel: "send cycle relative to switch", YLabel: "avg latency (cycles)",
		}
		for _, rt := range rts {
			fmt.Printf("%12s", rt)
			res, err := ofar.RunTransient(cfgFor(sc, rt), c.from, c.to, c.load,
				sc.warmup, 3000, 4000, 200)
			check(err)
			m := map[int64]float64{}
			var pts []plot.Point
			for _, p := range res.Points {
				m[p.Cycle] = p.MeanLatency
				pts = append(pts, plot.Point{X: float64(p.Cycle), Y: p.MeanLatency})
			}
			series[rt] = m
			ch.Add(string(rt), pts)
		}
		fmt.Println()
		for cyc := int64(-1000); cyc <= 3000; cyc += 200 {
			fmt.Printf("%-10d", cyc)
			for _, rt := range rts {
				if v, ok := series[rt][cyc]; ok {
					fmt.Printf("%12.1f", v)
				} else {
					fmt.Printf("%12s", "-")
				}
			}
			fmt.Println()
		}
		writeChart(sc, fmt.Sprintf("fig6_case%d", ci+1), ch)
	}
}

// fig7: burst consumption time normalized to PB.
func fig7(sc scale, _ int) {
	header(fmt.Sprintf("Fig. 7 — burst consumption (%d packets/node), normalized to PB", sc.burst))
	patterns := append([]ofar.PatternSpec{ofar.Uniform(), ofar.Adv(2), ofar.Adv(sc.h)},
		ofar.PaperMixes(sc.h)...)
	fmt.Printf("%-8s %12s %12s %12s %10s %10s\n", "pattern", "PB-cycles", "OFAR-cycles", "OFARL-cycles", "OFAR/PB", "OFARL/PB")
	var sumO, sumL float64
	var ptsO, ptsL []plot.Point
	for pi, ps := range patterns {
		pb, err := ofar.RunBurst(cfgFor(sc, ofar.PB), ps, sc.burst, sc.maxCyc)
		check(err)
		of, err := ofar.RunBurst(cfgFor(sc, ofar.OFAR), ps, sc.burst, sc.maxCyc)
		check(err)
		ol, err := ofar.RunBurst(cfgFor(sc, ofar.OFARL), ps, sc.burst, sc.maxCyc)
		check(err)
		ro := float64(of.Cycles) / float64(pb.Cycles)
		rl := float64(ol.Cycles) / float64(pb.Cycles)
		sumO += ro
		sumL += rl
		ptsO = append(ptsO, plot.Point{X: float64(pi), Y: ro})
		ptsL = append(ptsL, plot.Point{X: float64(pi), Y: rl})
		fmt.Printf("%-8s %12d %12d %12d %10.3f %10.3f\n",
			ps.Name(), pb.Cycles, of.Cycles, ol.Cycles, ro, rl)
	}
	n := float64(len(patterns))
	fmt.Printf("%-8s %12s %12s %12s %10.3f %10.3f\n", "average", "", "", "", sumO/n, sumL/n)
	ch := &plot.Chart{Title: "Fig. 7 — burst time normalized to PB (lower is better)",
		XLabel: "pattern index (UN, ADV+2, ADV+h, MIX1..3)", YLabel: "time / PB time"}
	ch.Add("OFAR", ptsO)
	ch.Add("OFAR-L", ptsL)
	writeChart(sc, "fig7", ch)
}

// fig8: physical vs embedded escape ring.
func fig8(sc scale, points int) {
	header("Fig. 8 — physical vs embedded escape ring (OFAR)")
	for _, ps := range []ofar.PatternSpec{ofar.Uniform(), ofar.Adv(2)} {
		fmt.Printf("\n-- pattern %s --\n", ps.Name())
		fmt.Printf("%-8s %14s %14s %14s %14s\n", "load", "phys-lat", "phys-thr", "emb-lat", "emb-thr")
		maxLoad := 1.0
		if ps.Name() != "UN" {
			maxLoad = 0.6
		}
		loads := loadSeries(maxLoad, points)
		cfgP := cfgFor(sc, ofar.OFAR)
		cfgP.Ring = ofar.RingPhysical
		cfgE := cfgFor(sc, ofar.OFAR)
		cfgE.Ring = ofar.RingEmbedded
		rp, err := sc.sweep(cfgP, ps, loads)
		check(err)
		re, err := sc.sweep(cfgE, ps, loads)
		check(err)
		ch := &plot.Chart{Title: "Fig. 8 — " + ps.Name() + " physical vs embedded ring",
			XLabel: "offered load", YLabel: "accepted (phits/node/cycle)"}
		var pPts, ePts []plot.Point
		for i, load := range loads {
			fmt.Printf("%-8.3f %14.1f %14.4f %14.1f %14.4f\n",
				load, rp[i].AvgLatency, rp[i].Throughput, re[i].AvgLatency, re[i].Throughput)
			pPts = append(pPts, plot.Point{X: load, Y: rp[i].Throughput})
			ePts = append(ePts, plot.Point{X: load, Y: re[i].Throughput})
		}
		ch.Add("physical", pPts)
		ch.Add("embedded", ePts)
		writeChart(sc, "fig8_"+strings.ToLower(strings.ReplaceAll(ps.Name(), "+", "")), ch)
	}
}

// fig9: congestion with a reduced number of VCs (2 local, 1 global,
// embedded ring, no congestion management).
func fig9(sc scale, points int) {
	header("Fig. 9 — reduced VCs (2 local / 1 global, embedded ring)")
	for _, ps := range []ofar.PatternSpec{ofar.Uniform(), ofar.Adv(2), ofar.Adv(sc.h)} {
		fmt.Printf("\n-- pattern %s --\n", ps.Name())
		fmt.Printf("%-8s %14s %14s\n", "load", "full-VC-thr", "reduced-VC-thr")
		maxLoad := 1.0
		if ps.Name() != "UN" {
			maxLoad = 0.6
		}
		loads := loadSeries(maxLoad, points)
		full := cfgFor(sc, ofar.OFAR)
		full.Ring = ofar.RingEmbedded
		red := cfgFor(sc, ofar.OFAR)
		red.Ring = ofar.RingEmbedded
		red.LocalVCs, red.GlobalVCs, red.InjVCs = 2, 1, 2
		rf, err := sc.sweep(full, ps, loads)
		check(err)
		rr, err := sc.sweep(red, ps, loads)
		check(err)
		ch := &plot.Chart{Title: "Fig. 9 — " + ps.Name() + " with reduced VCs",
			XLabel: "offered load", YLabel: "accepted (phits/node/cycle)"}
		var fPts, rPts []plot.Point
		for i, load := range loads {
			fmt.Printf("%-8.3f %14.4f %14.4f\n", load, rf[i].Throughput, rr[i].Throughput)
			fPts = append(fPts, plot.Point{X: load, Y: rf[i].Throughput})
			rPts = append(rPts, plot.Point{X: load, Y: rr[i].Throughput})
		}
		ch.Add("3L/2G VCs", fPts)
		ch.Add("2L/1G VCs", rPts)
		writeChart(sc, "fig9_"+strings.ToLower(strings.ReplaceAll(ps.Name(), "+", "")), ch)
	}
}
