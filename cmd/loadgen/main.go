// Command loadgen exercises a running sweepd: it fires n sweep requests with
// bounded concurrency, parses the NDJSON point streams, and reports request
// latencies, point provenance (cache / computed / coalesced) and shed (429)
// counts — the client-side view of the service's cache and admission
// behavior. With -identical every request is the same sweep, so after the
// first completes the rest should be singleflight-coalesced or cache hits.
//
//	sweepd -addr :8080 &
//	loadgen -addr http://localhost:8080 -n 32 -c 8 -h 2 -loads 0.1,0.3 -warmup 1000 -measure 1000
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type request struct {
	H          int       `json:"h,omitempty"`
	Routing    string    `json:"routing,omitempty"`
	Pattern    string    `json:"pattern,omitempty"`
	Seed       *uint64   `json:"seed,omitempty"`
	Loads      []float64 `json:"loads"`
	Warmup     int       `json:"warmup,omitempty"`
	Measure    int       `json:"measure,omitempty"`
	Jobs       string    `json:"jobs,omitempty"`
	JobMap     string    `json:"job_map,omitempty"`
	Background float64   `json:"background,omitempty"`
}

type line struct {
	Type      string  `json:"type"`
	Source    string  `json:"source"`
	Error     string  `json:"error"`
	ElapsedUS int64   `json:"elapsed_us"`
	Load      float64 `json:"load"`
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "sweepd base URL")
		n         = flag.Int("n", 16, "total requests")
		c         = flag.Int("c", 4, "concurrent requests")
		h         = flag.Int("h", 2, "dragonfly parameter h")
		routing   = flag.String("routing", "OFAR", "routing mechanism")
		pattern   = flag.String("pattern", "UN", "traffic pattern")
		loadsStr  = flag.String("loads", "0.1,0.3", "comma-separated offered loads")
		warmup    = flag.Int("warmup", 1000, "warm-up cycles")
		measure   = flag.Int("measure", 1000, "measurement cycles")
		seed      = flag.Uint64("seed", 1, "base seed")
		identical = flag.Bool("identical", true, "send identical requests (false: vary the seed per request)")
		jobs      = flag.String("jobs", "", "job-level workload spec instead of -pattern (loads become scale factors)")
		jobMap    = flag.String("jobmap", "", "job placement: linear or random")
		bg        = flag.Float64("bg", 0, "uniform background load on unplaced nodes")
		retries   = flag.Int("retries", 3, "attempts per request when shed with 429 (Retry-After honored between attempts)")
	)
	flag.Parse()

	// Accept the same bare host:port (or :port) form sweepd's -addr takes.
	if !strings.Contains(*addr, "://") {
		if strings.HasPrefix(*addr, ":") {
			*addr = "localhost" + *addr
		}
		*addr = "http://" + *addr
	}

	var loads []float64
	for _, part := range strings.Split(*loadsStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: bad load %q: %v\n", part, err)
			os.Exit(1)
		}
		loads = append(loads, v)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		sources   = map[string]int{}
		shed      atomic.Int64 // 429 responses seen (each attempt counts)
		gaveUp    atomic.Int64 // requests that exhausted their retry budget on 429s
		failed    atomic.Int64 // transport errors and non-429 HTTP failures
		pointErrs atomic.Int64
	)
	sem := make(chan struct{}, max(*c, 1))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			req := request{H: *h, Routing: *routing, Pattern: *pattern, Loads: loads, Warmup: *warmup, Measure: *measure,
				Jobs: *jobs, JobMap: *jobMap, Background: *bg}
			if *jobs != "" {
				req.Pattern = ""
			}
			s := *seed
			if !*identical {
				s = *seed + uint64(i)
			}
			req.Seed = &s
			body, _ := json.Marshal(req)
			t0 := time.Now()
			// A 429 is the server asking us to come back, not a failure:
			// honor its Retry-After and retry within a bounded budget.
			var resp *http.Response
			var err error
			for attempt := 1; ; attempt++ {
				resp, err = http.Post(*addr+"/sweep", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", i, err)
					return
				}
				if resp.StatusCode != http.StatusTooManyRequests {
					break
				}
				shed.Add(1)
				delay := retryDelay(resp)
				resp.Body.Close()
				if attempt >= max(*retries, 1) {
					gaveUp.Add(1)
					return
				}
				time.Sleep(delay)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
				msg, _ := io.ReadAll(resp.Body)
				fmt.Fprintf(os.Stderr, "loadgen: request %d: HTTP %d: %s\n", i, resp.StatusCode, bytes.TrimSpace(msg))
				return
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
			for sc.Scan() {
				var l line
				if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
					continue
				}
				if l.Type == "point" {
					mu.Lock()
					sources[l.Source]++
					mu.Unlock()
					if l.Error != "" {
						pointErrs.Add(1)
					}
				}
			}
			d := time.Since(t0)
			mu.Lock()
			latencies = append(latencies, d)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	fmt.Printf("loadgen: %d requests (%d ok, %d shed/429 of which %d gave up after %d attempts, %d failed) in %v\n",
		*n, len(latencies), shed.Load(), gaveUp.Load(), max(*retries, 1), failed.Load(), wall.Round(time.Millisecond))
	if len(latencies) > 0 {
		fmt.Printf("  request latency: min %v  p50 %v  p99 %v  max %v\n",
			latencies[0].Round(time.Microsecond), quantile(0.5).Round(time.Microsecond),
			quantile(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	}
	fmt.Printf("  points: cache=%d computed=%d coalesced=%d errors=%d\n",
		sources["cache"], sources["computed"], sources["coalesced"], pointErrs.Load())

	if resp, err := http.Get(*addr + "/metrics"); err == nil {
		defer resp.Body.Close()
		fmt.Println("server /metrics:")
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			fmt.Println("  " + sc.Text())
		}
	}
}

// retryDelay extracts the server's requested backoff from a 429 response:
// the Retry-After header (integer seconds) first, the JSON body's
// retry_after_s as fallback, a small default when neither parses — clamped
// to [0, 5s] so a confused server cannot park the client.
func retryDelay(resp *http.Response) time.Duration {
	const (
		fallback = 100 * time.Millisecond
		maxDelay = 5 * time.Second
	)
	d := time.Duration(-1)
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d < 0 {
		var body struct {
			RetryAfterS float64 `json:"retry_after_s"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.RetryAfterS >= 0 {
			d = time.Duration(body.RetryAfterS * float64(time.Second))
		}
	}
	if d < 0 {
		d = fallback
	}
	if d > maxDelay {
		d = maxDelay
	}
	return d
}
