// Command loadgen exercises a running sweepd: it fires n sweep requests with
// bounded concurrency, parses the NDJSON point streams, and reports request
// latencies, point provenance (cache / computed / coalesced) and shed (429)
// counts — the client-side view of the service's cache and admission
// behavior. With -identical every request is the same sweep, so after the
// first completes the rest should be singleflight-coalesced or cache hits.
//
//	sweepd -addr :8080 &
//	loadgen -addr http://localhost:8080 -n 32 -c 8 -h 2 -loads 0.1,0.3 -warmup 1000 -measure 1000
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type request struct {
	H       int       `json:"h,omitempty"`
	Routing string    `json:"routing,omitempty"`
	Pattern string    `json:"pattern,omitempty"`
	Seed    *uint64   `json:"seed,omitempty"`
	Loads   []float64 `json:"loads"`
	Warmup  int       `json:"warmup,omitempty"`
	Measure int       `json:"measure,omitempty"`
}

type line struct {
	Type      string  `json:"type"`
	Source    string  `json:"source"`
	Error     string  `json:"error"`
	ElapsedUS int64   `json:"elapsed_us"`
	Load      float64 `json:"load"`
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "sweepd base URL")
		n         = flag.Int("n", 16, "total requests")
		c         = flag.Int("c", 4, "concurrent requests")
		h         = flag.Int("h", 2, "dragonfly parameter h")
		routing   = flag.String("routing", "OFAR", "routing mechanism")
		pattern   = flag.String("pattern", "UN", "traffic pattern")
		loadsStr  = flag.String("loads", "0.1,0.3", "comma-separated offered loads")
		warmup    = flag.Int("warmup", 1000, "warm-up cycles")
		measure   = flag.Int("measure", 1000, "measurement cycles")
		seed      = flag.Uint64("seed", 1, "base seed")
		identical = flag.Bool("identical", true, "send identical requests (false: vary the seed per request)")
	)
	flag.Parse()

	// Accept the same bare host:port (or :port) form sweepd's -addr takes.
	if !strings.Contains(*addr, "://") {
		if strings.HasPrefix(*addr, ":") {
			*addr = "localhost" + *addr
		}
		*addr = "http://" + *addr
	}

	var loads []float64
	for _, part := range strings.Split(*loadsStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: bad load %q: %v\n", part, err)
			os.Exit(1)
		}
		loads = append(loads, v)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		sources   = map[string]int{}
		shed      atomic.Int64
		failed    atomic.Int64
		pointErrs atomic.Int64
	)
	sem := make(chan struct{}, max(*c, 1))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			req := request{H: *h, Routing: *routing, Pattern: *pattern, Loads: loads, Warmup: *warmup, Measure: *measure}
			s := *seed
			if !*identical {
				s = *seed + uint64(i)
			}
			req.Seed = &s
			body, _ := json.Marshal(req)
			t0 := time.Now()
			resp, err := http.Post(*addr+"/sweep", "application/json", bytes.NewReader(body))
			if err != nil {
				failed.Add(1)
				fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				shed.Add(1)
				io.Copy(io.Discard, resp.Body)
				return
			}
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
				msg, _ := io.ReadAll(resp.Body)
				fmt.Fprintf(os.Stderr, "loadgen: request %d: HTTP %d: %s\n", i, resp.StatusCode, bytes.TrimSpace(msg))
				return
			}
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
			for sc.Scan() {
				var l line
				if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
					continue
				}
				if l.Type == "point" {
					mu.Lock()
					sources[l.Source]++
					mu.Unlock()
					if l.Error != "" {
						pointErrs.Add(1)
					}
				}
			}
			d := time.Since(t0)
			mu.Lock()
			latencies = append(latencies, d)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	fmt.Printf("loadgen: %d requests (%d ok, %d shed/429, %d failed) in %v\n",
		*n, len(latencies), shed.Load(), failed.Load(), wall.Round(time.Millisecond))
	if len(latencies) > 0 {
		fmt.Printf("  request latency: min %v  p50 %v  p99 %v  max %v\n",
			latencies[0].Round(time.Microsecond), quantile(0.5).Round(time.Microsecond),
			quantile(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	}
	fmt.Printf("  points: cache=%d computed=%d coalesced=%d errors=%d\n",
		sources["cache"], sources["computed"], sources["coalesced"], pointErrs.Load())

	if resp, err := http.Get(*addr + "/metrics"); err == nil {
		defer resp.Body.Close()
		fmt.Println("server /metrics:")
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			fmt.Println("  " + sc.Text())
		}
	}
}
