// Command ofarsim runs a single steady-state dragonfly simulation and
// prints latency, throughput and routing statistics.
//
// Examples:
//
//	ofarsim -h 3 -routing OFAR -pattern ADV+3 -load 0.5
//	ofarsim -h 6 -routing PB -pattern UN -load 0.3 -warmup 5000 -measure 10000
//	ofarsim -h 3 -routing OFAR -ring embedded -rings 2 -pattern ADV+3 -load 1.0
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ofar"
)

func main() {
	var (
		h        = flag.Int("h", 3, "dragonfly parameter h (balanced: p=h, a=2h, max groups)")
		groups   = flag.Int("groups", 0, "group count (0 = maximum size a*h+1)")
		routing  = flag.String("routing", "OFAR", "routing mechanism: MIN, VAL, PB, UGAL-L, OFAR, OFAR-L")
		pattern  = flag.String("pattern", "UN", "traffic pattern: UN, ADV+<n>, MIX1, MIX2, MIX3")
		load     = flag.Float64("load", 0.3, "offered load in phits/(node*cycle)")
		warmup   = flag.Int("warmup", 3000, "warm-up cycles")
		measure  = flag.Int("measure", 5000, "measurement cycles")
		ring     = flag.String("ring", "physical", "escape ring: none, physical, embedded")
		rings    = flag.Int("rings", 1, "number of escape rings")
		seed     = flag.Uint64("seed", 1, "random seed")
		nonMin   = flag.Float64("nonmin-factor", 0.9, "OFAR variable threshold factor")
		static   = flag.Float64("static-th", -1, "OFAR static non-minimal threshold (<0 = variable policy)")
		escapeTO = flag.Int("escape-timeout", 32, "blocked cycles before requesting the escape ring")
		faults   = flag.String("faults", "", "fault schedule: a JSON file of Fault objects, or inline like link@5000:12:7,router@20000:3")
		workers  = flag.Int("workers", 0, "intra-cycle router-stage workers on a persistent pool (0/1 = serial; results are bit-identical)")
		shard    = flag.Bool("shard", false, "shard the cycle by dragonfly group across the workers (needs -workers > 1; results are bit-identical)")
		ckpt     = flag.String("checkpoint", "", "write the post-warmup network snapshot to this file (resume later with -restore)")
		restore  = flag.String("restore", "", "resume from a warm snapshot file instead of simulating warmup (same config and physics required; results are bit-identical)")
		cutover  = flag.Int("cutover", 0, "active-router count below which a parallel step runs serially (0 = auto-calibrate from -workers)")
		jobs     = flag.String("jobs", "", "job-level workload instead of -pattern: kind:size@load[,...] with kinds stencil (size XxYxZ), a2a, ring, ps; -load scales every job")
		jobMap   = flag.String("jobmap", "linear", "job placement: linear (consecutive nodes) or random (seeded permutation)")
		bg       = flag.Float64("bg", 0, "uniform background load on nodes no job occupies")
		traceOut = flag.String("trace-out", "", "record every generated packet to this trace file")
		traceIn  = flag.String("trace-in", "", "replay a trace file instead of generating traffic (overrides -pattern/-jobs/-load)")
		quiet    = flag.Bool("q", false, "print a single CSV row instead of the report")
		confPath = flag.String("config", "", "load the full network config from a JSON file (overrides topology/router flags)")
		dumpConf = flag.Bool("dump-config", false, "print the effective config as JSON and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal("creating CPU profile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal("creating heap profile: %v", err)
			}
			defer f.Close()
			runtime.GC() // collect dead objects so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("writing heap profile: %v", err)
			}
		}()
	}

	cfg := ofar.DefaultConfig(*h)
	cfg.Groups = *groups
	cfg.Seed = *seed
	cfg.Routing = ofar.Routing(strings.ToUpper(*routing))
	if cfg.Routing == ofar.PAR {
		cfg.LocalVCs, cfg.InjVCs = 4, 4
	}
	cfg.OFAR.NonMinFactor = *nonMin
	cfg.OFAR.StaticNonMin = *static
	cfg.OFAR.EscapeTimeout = *escapeTO
	switch strings.ToLower(*ring) {
	case "none":
		cfg.Ring = ofar.RingNone
	case "physical":
		cfg.Ring = ofar.RingPhysical
	case "embedded":
		cfg.Ring = ofar.RingEmbedded
	default:
		fatal("unknown ring mode %q", *ring)
	}
	cfg.NumRings = *rings
	if cfg.Routing == ofar.MIN || cfg.Routing == ofar.VAL ||
		cfg.Routing == ofar.PB || cfg.Routing == ofar.UGAL ||
		cfg.Routing == ofar.PAR {
		cfg.Ring = ofar.RingNone // VC-ordered mechanisms need no escape ring
	}

	cfg.Workers = *workers
	cfg.ShardByGroup = *shard
	cfg.ParallelCutover = *cutover

	if *confPath != "" {
		loaded, err := ofar.LoadConfig(*confPath)
		if err != nil {
			fatal("%v", err)
		}
		cfg = loaded
		// Explicit -workers/-shard/-cutover flags override the file: all
		// three change wall-clock time only, never results.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "workers":
				cfg.Workers = *workers
			case "shard":
				cfg.ShardByGroup = *shard
			case "cutover":
				cfg.ParallelCutover = *cutover
			}
		})
	}
	if *faults != "" {
		fs, err := ofar.LoadFaults(*faults)
		if err != nil {
			fatal("%v", err)
		}
		cfg.Faults = fs
	}
	if *dumpConf {
		data, err := ofar.ConfigToJSON(cfg)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(string(data))
		return
	}

	ps, err := ofar.ParsePattern(*pattern, cfg.H)
	if err != nil {
		fatal("%v", err)
	}

	// Trace replay: re-inject a recorded stream through a fresh network. A
	// trace recorded by this build reproduces its run's grant digest
	// bit-identically, which is what the printed digest line is for.
	if *traceIn != "" {
		if *jobs != "" || *ckpt != "" || *restore != "" {
			fatal("-trace-in composes with none of -jobs, -checkpoint, -restore")
		}
		recs, engine, err := ofar.LoadTrace(*traceIn)
		if err != nil {
			fatal("%v", err)
		}
		if engine != 0 && engine != ofar.EngineDigest() {
			fmt.Fprintf(os.Stderr, "ofarsim: warning: trace written by engine %016x, this build is %016x — replay will not be bit-identical\n",
				engine, ofar.EngineDigest())
		}
		res, digest, err := ofar.ReplayTrace(cfg, recs, *warmup, *measure)
		if err != nil {
			fatal("replay failed: %v", err)
		}
		if *quiet {
			fmt.Printf("%s,%s,%.3f,%.2f,%.4f,%d,%d,%d,%d\n",
				res.Routing, res.Pattern, res.Load, res.AvgLatency, res.Throughput,
				res.GlobalMisroutes, res.LocalMisroutes, res.RingEnters, res.Delivered)
		} else {
			fmt.Printf("replayed      : %d records from %s\n", len(recs), *traceIn)
			fmt.Printf("avg latency   : %.1f cycles\n", res.AvgLatency)
			fmt.Printf("throughput    : %.4f phits/(node*cycle)\n", res.Throughput)
			fmt.Printf("delivered     : %d packets in the measurement window\n", res.Delivered)
		}
		fmt.Printf("grant digest  : %016x\n", digest)
		return
	}

	// Job-level workload: N concurrent jobs with per-job statistics.
	if *jobs != "" {
		if *ckpt != "" || *restore != "" {
			fatal("-jobs does not compose with -checkpoint/-restore yet")
		}
		w, err := ofar.ParseWorkload(*jobs)
		if err != nil {
			fatal("%v", err)
		}
		switch strings.ToLower(*jobMap) {
		case "linear":
		case "random":
			w.RandomMap = true
		default:
			fatal("unknown job mapping %q (linear, random)", *jobMap)
		}
		w.Background = *bg
		// Jobs carry their own loads; -load is a scale factor on all of
		// them, applied only when given explicitly (its 0.3 default is the
		// single-pattern convention, not a sensible implicit job scaling).
		scale := 1.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "load" {
				scale = *load
			}
		})
		var (
			jr     ofar.JobsResult
			digest uint64
		)
		if *traceOut != "" {
			var recs []ofar.TraceRecord
			jr, recs, digest, err = ofar.RunJobsTraced(cfg, w, scale, *warmup, *measure)
			if err == nil {
				err = ofar.SaveTrace(*traceOut, recs)
			}
		} else {
			jr, err = ofar.RunJobs(cfg, w, scale, *warmup, *measure)
		}
		if err != nil {
			fatal("simulation failed: %v", err)
		}
		if *quiet {
			for _, j := range jr.Jobs {
				fmt.Printf("%s,%s,%d,%.2f,%.2f,%.4f,%d,%d\n",
					jr.Agg.Routing, j.Job, j.Nodes, j.AvgLatency, j.P99Latency, j.Throughput, j.Delivered, j.Dropped)
			}
		} else {
			fmt.Printf("workload      : %s (scale %.3f)\n", jr.Workload, jr.Scale)
			fmt.Printf("routing       : %s\n", jr.Agg.Routing)
			fmt.Printf("aggregate     : avg %.1f cycles, p99 %.1f, throughput %.4f\n",
				jr.Agg.AvgLatency, jr.Agg.P99Latency, jr.Agg.Throughput)
			fmt.Printf("%-12s %6s %10s %10s %10s %12s %8s\n", "job", "nodes", "avg", "p99", "thru", "delivered", "dropped")
			for _, j := range jr.Jobs {
				fmt.Printf("%-12s %6d %10.1f %10.1f %10.4f %12d %8d\n",
					j.Job, j.Nodes, j.AvgLatency, j.P99Latency, j.Throughput, j.Delivered, j.Dropped)
			}
		}
		if *traceOut != "" {
			fmt.Printf("grant digest  : %016x\n", digest)
			fmt.Printf("trace written : %s\n", *traceOut)
		}
		return
	}

	var res ofar.SteadyResult
	var traceDigest uint64
	if *traceOut != "" {
		if *ckpt != "" || *restore != "" {
			fatal("-trace-out does not compose with -checkpoint/-restore yet")
		}
		var recs []ofar.TraceRecord
		res, recs, traceDigest, err = ofar.RunSteadyTraced(cfg, ps, *load, *warmup, *measure)
		if err != nil {
			fatal("simulation failed: %v", err)
		}
		if err := ofar.SaveTrace(*traceOut, recs); err != nil {
			fatal("writing trace %s: %v", *traceOut, err)
		}
	} else if *ckpt == "" && *restore == "" {
		var err error
		res, err = ofar.RunSteady(cfg, ps, *load, *warmup, *measure)
		if err != nil {
			fatal("simulation failed: %v", err)
		}
	} else {
		// Checkpoint/restore path: hold the warm state explicitly. A
		// measurement off it is bit-identical to RunSteady above.
		var w *ofar.WarmState
		if *restore != "" {
			f, err := os.Open(*restore)
			if err != nil {
				fatal("%v", err)
			}
			w, err = ofar.WarmFromSnapshot(cfg, ps, *load, f)
			f.Close()
			if err != nil {
				fatal("restoring %s: %v", *restore, err)
			}
		} else {
			var err error
			w, err = ofar.Warm(cfg, ps, *load, *warmup)
			if err != nil {
				fatal("simulation failed: %v", err)
			}
		}
		if *ckpt != "" {
			f, err := os.Create(*ckpt)
			if err != nil {
				w.Close()
				fatal("%v", err)
			}
			err = w.Snapshot(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				w.Close()
				fatal("writing checkpoint %s: %v", *ckpt, err)
			}
		}
		var err error
		res, err = w.Measure(*measure)
		w.Close()
		if err != nil {
			fatal("simulation failed: %v", err)
		}
	}
	if *quiet {
		fmt.Printf("%s,%s,%.3f,%.2f,%.4f,%d,%d,%d,%d\n",
			res.Routing, res.Pattern, res.Load, res.AvgLatency, res.Throughput,
			res.GlobalMisroutes, res.LocalMisroutes, res.RingEnters, res.Delivered)
		if *traceOut != "" {
			fmt.Printf("grant digest  : %016x\n", traceDigest)
		}
		return
	}
	numGroups := cfg.Groups
	if numGroups == 0 {
		numGroups = cfg.A*cfg.H + 1
	}
	fmt.Printf("network       : h=%d (p=%d a=%d groups=%d, %d nodes), %s escape ring x%d\n",
		*h, cfg.P, cfg.A, numGroups, cfg.P*cfg.A*numGroups, strings.ToLower(*ring), *rings)
	fmt.Printf("routing       : %s\n", res.Routing)
	fmt.Printf("traffic       : %s at %.3f phits/(node*cycle)\n", res.Pattern, res.Load)
	fmt.Printf("avg latency   : %.1f cycles (network %.1f, max %d)\n",
		res.AvgLatency, res.AvgNetLatency, res.MaxLatency)
	fmt.Printf("throughput    : %.4f phits/(node*cycle)\n", res.Throughput)
	fmt.Printf("avg hops      : %.2f\n", res.AvgHops)
	fmt.Printf("delivered     : %d packets in the measurement window\n", res.Delivered)
	fmt.Printf("misroutes     : %d global, %d local\n", res.GlobalMisroutes, res.LocalMisroutes)
	fmt.Printf("escape ring   : %d entries (%.3f%% of delivered), %d exits\n",
		res.RingEnters, 100*res.EscapeFraction, res.RingExits)
	if len(cfg.Faults) > 0 {
		fmt.Printf("faults        : %d scheduled, %d packets dropped, %d fault reroutes, %d flows affected\n",
			len(cfg.Faults), res.Dropped, res.FaultReroutes, res.AffectedFlows)
	}
	if *traceOut != "" {
		fmt.Printf("grant digest  : %016x\n", traceDigest)
		fmt.Printf("trace written : %s\n", *traceOut)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ofarsim: "+format+"\n", args...)
	os.Exit(1)
}
