// Command sweep runs a load sweep for one routing mechanism and traffic
// pattern and emits CSV, for plotting latency/throughput curves.
//
// Example:
//
//	sweep -h 3 -routing OFAR -pattern ADV+3 -from 0.05 -to 0.6 -points 12 > ofar_adv3.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ofar"
)

func main() {
	var (
		h       = flag.Int("h", 3, "dragonfly parameter h")
		routing = flag.String("routing", "OFAR", "routing mechanism")
		pattern = flag.String("pattern", "UN", "traffic pattern: UN, ADV+<n>, MIX1..3")
		from    = flag.Float64("from", 0.05, "first load point")
		to      = flag.Float64("to", 1.0, "last load point")
		points  = flag.Int("points", 10, "number of load points")
		warmup  = flag.Int("warmup", 3000, "warm-up cycles")
		measure = flag.Int("measure", 5000, "measurement cycles")
		seed    = flag.Uint64("seed", 1, "random seed")
		seeds   = flag.Int("seeds", 1, "replicate each point across this many seeds (mean±sd output)")
		workers = flag.Int("workers", 0, "router-stage pool workers per network (0/1 = serial; bit-identical results)")
		shard   = flag.Bool("shard", false, "shard each network's cycle by dragonfly group across the workers (needs -workers > 1; bit-identical)")
		cutover = flag.Int("cutover", 0, "active-router count below which a parallel step runs serially (0 = auto)")
		faults  = flag.String("faults", "", "fault schedule: a JSON file of Fault objects, or inline like link@5000:12:7")
		ckpt    = flag.String("checkpoint", "", "directory to write per-point warm snapshots into (reuse with -restore; single-seed sweeps)")
		restore = flag.String("restore", "", "directory of warm snapshots: points found there skip warmup, bit-identically (stale entries re-warm)")
		jobs    = flag.String("jobs", "", "job-level workload instead of -pattern: kind:size@load[,...]; the load axis becomes a scale factor on every job")
		jobMap  = flag.String("jobmap", "linear", "job placement: linear or random")
		bg      = flag.Float64("bg", 0, "uniform background load on nodes no job occupies")
	)
	flag.Parse()

	cfg := ofar.DefaultConfig(*h)
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.ShardByGroup = *shard
	cfg.ParallelCutover = *cutover
	if *faults != "" {
		fs, err := ofar.LoadFaults(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		cfg.Faults = fs
	}
	cfg.Routing = ofar.Routing(strings.ToUpper(*routing))
	if cfg.Routing == ofar.PAR {
		cfg.LocalVCs, cfg.InjVCs = 4, 4
	}
	if cfg.Routing == ofar.MIN || cfg.Routing == ofar.VAL ||
		cfg.Routing == ofar.PB || cfg.Routing == ofar.UGAL ||
		cfg.Routing == ofar.PAR {
		cfg.Ring = ofar.RingNone
	}
	ps, err := ofar.ParsePattern(*pattern, *h)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	loads := make([]float64, *points)
	for i := range loads {
		if *points == 1 {
			loads[i] = *from
		} else {
			loads[i] = *from + (*to-*from)*float64(i)/float64(*points-1)
		}
	}
	// Job-level sweep: the load axis scales every job's load, and the CSV
	// carries one row per (scale, job) so per-job curves plot directly.
	if *jobs != "" {
		w, err := ofar.ParseWorkload(*jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		switch strings.ToLower(*jobMap) {
		case "linear":
		case "random":
			w.RandomMap = true
		default:
			fmt.Fprintf(os.Stderr, "sweep: unknown job mapping %q\n", *jobMap)
			os.Exit(1)
		}
		w.Background = *bg
		if *seeds > 1 || *ckpt != "" || *restore != "" {
			fmt.Fprintln(os.Stderr, "sweep: -seeds/-checkpoint/-restore apply to pattern sweeps; ignoring")
		}
		fmt.Println("routing,job,nodes,scale,avg_latency,p50,p99,throughput,delivered,dropped")
		for _, scale := range loads {
			jr, err := ofar.RunJobs(cfg, w, scale, *warmup, *measure)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
				os.Exit(1)
			}
			for _, j := range jr.Jobs {
				fmt.Printf("%s,%s,%d,%.4f,%.2f,%.1f,%.1f,%.5f,%d,%d\n",
					jr.Agg.Routing, j.Job, j.Nodes, scale, j.AvgLatency,
					j.P50Latency, j.P99Latency, j.Throughput, j.Delivered, j.Dropped)
			}
		}
		return
	}
	if *seeds > 1 {
		if *ckpt != "" || *restore != "" {
			fmt.Fprintln(os.Stderr, "sweep: -checkpoint/-restore apply to single-seed sweeps; ignoring")
		}
		fmt.Println("routing,pattern,load,runs,lat_mean,lat_sd,thr_mean,thr_sd,escape_mean")
		for _, load := range loads {
			rep, err := ofar.RunReplicated(cfg, ps, load, *warmup, *measure, *seeds)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s,%s,%.4f,%d,%.2f,%.2f,%.5f,%.5f,%.5f\n",
				cfg.Routing, ps.Name(), load, rep.Runs,
				rep.AvgLatency.Mean, rep.AvgLatency.StdDev,
				rep.Throughput.Mean, rep.Throughput.StdDev,
				rep.EscapeFraction.Mean)
		}
		return
	}
	opt := ofar.SweepOptions{Parallel: 1, CheckpointDir: *ckpt, RestoreDir: *restore}
	var total ofar.SweepStats
	fmt.Println("routing,pattern,load,avg_latency,net_latency,p50,p99,throughput,avg_hops,global_mis,local_mis,ring_enters,delivered,dropped,fault_reroutes")
	for _, load := range loads {
		// One point per call keeps the CSV streaming while every point
		// still goes through the warm-fork path and the warm cache.
		rs, st, err := ofar.RunLoadSweepOpt(cfg, ps, []float64{load}, *warmup, *measure, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		total.Warmed += st.Warmed
		total.Restored += st.Restored
		total.WarmupCyclesRun += st.WarmupCyclesRun
		total.WarmupCyclesSkipped += st.WarmupCyclesSkipped
		r := rs[0]
		fmt.Printf("%s,%s,%.4f,%.2f,%.2f,%.1f,%.1f,%.5f,%.3f,%d,%d,%d,%d,%d,%d\n",
			r.Routing, r.Pattern, r.Load, r.AvgLatency, r.AvgNetLatency,
			r.P50Latency, r.P99Latency,
			r.Throughput, r.AvgHops, r.GlobalMisroutes, r.LocalMisroutes,
			r.RingEnters, r.Delivered, r.Dropped, r.FaultReroutes)
	}
	if *ckpt != "" || *restore != "" {
		fmt.Fprintf(os.Stderr, "sweep: warm cache: %d point(s) restored (%d warmup cycles skipped), %d warmed (%d cycles)\n",
			total.Restored, total.WarmupCyclesSkipped, total.Warmed, total.WarmupCyclesRun)
	}
}
