// Command sweepd serves steady-state sweep experiments over HTTP with a
// determinism-backed result cache: every simulation here is bit-identical
// given (config, seed), so a cached point is the exact result, keyed on the
// engine's physics digest so a code change can never serve stale physics.
//
//	sweepd -addr :8080 -disk /var/tmp/sweepd
//
//	curl -s localhost:8080/sweep -d '{"h":3,"routing":"OFAR","pattern":"ADV+3",
//	  "loads":[0.1,0.3,0.5],"warmup":3000,"measure":5000}'
//
// The response is NDJSON: one line per point as it completes (source:
// "cache", "computed" or "coalesced"), then a summary line. /metrics exposes
// hit rate, queue depth, in-flight simulations and point-latency quantiles;
// /healthz reports the engine digest. Overload answers 429 + Retry-After
// instead of queueing without bound.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ofar/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheN   = flag.Int("cache", 4096, "in-memory result LRU capacity (points)")
		disk     = flag.String("disk", "", "directory for persistent result + warm-snapshot caches (empty = memory only)")
		sims     = flag.Int("sims", 0, "max concurrently executing simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 256, "max admitted-but-not-running points before requests are shed with 429")
		p99bound = flag.Duration("p99bound", 0, "shed requests whose projected wait exceeds this bound (0 = queue-depth shedding only)")
		maxLoads = flag.Int("maxloads", 64, "max points per request")
	)
	flag.Parse()

	srv, err := service.New(service.Options{
		CacheEntries: *cacheN,
		DiskDir:      *disk,
		Sims:         *sims,
		MaxQueue:     *queue,
		P99Bound:     *p99bound,
		MaxLoads:     *maxLoads,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("sweepd: listening on %s (engine %016x, sims=%d of GOMAXPROCS=%d, queue=%d, cache=%d, disk=%q)",
		*addr, srv.EngineDigest(), max(*sims, 1), runtime.GOMAXPROCS(0), *queue, *cacheN, *disk)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("sweepd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("sweepd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("sweepd: shutdown: %v", err)
	}
	srv.Close()
}
