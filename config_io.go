package ofar

import (
	"encoding/json"
	"fmt"
	"os"
)

// ConfigToJSON serializes a configuration with stable, human-editable
// formatting, so experiment setups can be versioned alongside results.
func ConfigToJSON(cfg Config) ([]byte, error) {
	return json.MarshalIndent(cfg, "", "  ")
}

// ConfigFromJSON parses a configuration and validates it.
func ConfigFromJSON(data []byte) (Config, error) {
	// Start from a neutral zero config: absent fields keep their zero
	// values and Validate reports anything unusable, so a partial file is
	// caught early instead of silently simulating a degenerate network.
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("ofar: parsing config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// SaveConfig writes a configuration file.
func SaveConfig(cfg Config, path string) error {
	data, err := ConfigToJSON(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfig reads and validates a configuration file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return ConfigFromJSON(data)
}
