package ofar

import (
	"encoding/json"
	"fmt"
	"os"
)

// ConfigToJSON serializes a configuration with stable, human-editable
// formatting, so experiment setups can be versioned alongside results.
func ConfigToJSON(cfg Config) ([]byte, error) {
	return json.MarshalIndent(cfg, "", "  ")
}

// ConfigFromJSON parses a configuration and validates it.
func ConfigFromJSON(data []byte) (Config, error) {
	// Start from a neutral zero config: absent fields keep their zero
	// values and Validate reports anything unusable, so a partial file is
	// caught early instead of silently simulating a degenerate network.
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("ofar: parsing config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// SaveConfig writes a configuration file.
func SaveConfig(cfg Config, path string) error {
	data, err := ConfigToJSON(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfig reads and validates a configuration file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return ConfigFromJSON(data)
}

// LoadFaults resolves a -faults argument: a path to a JSON file holding an
// array of Fault objects, or (when no such file exists) an inline schedule
// like "link@5000:12:7,router@20000:3".
func LoadFaults(pathOrSpec string) ([]Fault, error) {
	if data, err := os.ReadFile(pathOrSpec); err == nil {
		var fs []Fault
		if err := json.Unmarshal(data, &fs); err != nil {
			return nil, fmt.Errorf("ofar: parsing fault file %s: %w", pathOrSpec, err)
		}
		return fs, nil
	}
	return ParseFaults(pathOrSpec)
}
