package ofar

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Routing = OFARL
	cfg.Ring = RingEmbedded
	cfg.NumRings = 2
	cfg.OFAR.EscapeTimeout = 64
	cfg.Congestion.Enabled = true
	cfg.Congestion.Threshold = 0.6
	cfg.Faults = []Fault{{Cycle: 100, Kind: FaultLink, Router: 2, Port: 4}}
	data, err := ConfigToJSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ConfigFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cfg) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, cfg)
	}
}

func TestConfigFromJSONValidates(t *testing.T) {
	if _, err := ConfigFromJSON([]byte(`{"P":0}`)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := ConfigFromJSON([]byte(`{not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := DefaultConfig(2)
	if err := SaveConfig(cfg, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cfg) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	// The file is valid JSON a human can edit.
	raw, _ := os.ReadFile(path)
	if len(raw) < 100 || raw[0] != '{' {
		t.Error("config file not human-readable JSON")
	}
}
