package ofar_test

import (
	"fmt"

	"ofar"
)

// The smallest complete experiment: one steady-state point under uniform
// traffic on a small dragonfly.
func ExampleRunSteady() {
	cfg := ofar.DefaultConfig(2) // h=2: 72 nodes, 36 routers, 9 groups
	cfg.Seed = 7
	res, err := ofar.RunSteady(cfg, ofar.Uniform(), 0.25, 1000, 2000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("pattern=%s routing=%s\n", res.Pattern, res.Routing)
	fmt.Printf("offered %.2f accepted %.2f\n", res.Load, res.Throughput)
	// Output:
	// pattern=UN routing=OFAR
	// offered 0.25 accepted 0.25
}

// Adversarial traffic targeting the group h positions away — the paper's
// worst case for local links.
func ExampleAdv() {
	ps := ofar.Adv(6)
	fmt.Println(ps.Name())
	// Output:
	// ADV+6
}

// Mixes combine patterns with weights, like the burst experiment's MIX1
// (80% uniform, 10% ADV+1, 10% ADV+h).
func ExampleMixOf() {
	mix := ofar.MixOf("custom",
		ofar.MixComponent{Spec: ofar.Uniform(), Weight: 0.5},
		ofar.MixComponent{Spec: ofar.Adv(3), Weight: 0.5},
	)
	fmt.Println(mix.Name())
	// Output:
	// custom
}

// ParsePattern accepts the textual names used by the CLI tools.
func ExampleParsePattern() {
	ps, err := ofar.ParsePattern("adv+12", 6)
	fmt.Println(ps.Name(), err)
	// Output:
	// ADV+12 <nil>
}

// Cycle-level control for custom experiments.
func ExampleSimulator() {
	cfg := ofar.DefaultConfig(2)
	sim, err := ofar.NewSimulator(cfg)
	if err != nil {
		panic(err)
	}
	sim.SetTraffic(ofar.Adv(2), 0.2)
	sim.Run(2000)
	fmt.Println(sim.Now() == 2000, sim.Stats().Delivered > 0)
	// Output:
	// true true
}
