// Adversarial: reproduces the paper's core claim (§III + Fig. 5) at laptop
// scale. ADV+h traffic — every group sends to the group h positions away —
// saturates single local links inside intermediate groups. Mechanisms
// without in-transit local misrouting (MIN, VAL, PB, OFAR-L) are pinned at
// or below the 1/h ceiling; OFAR routes around the hotspot and approaches
// the 0.5 global-link bound.
package main

import (
	"fmt"
	"log"

	"ofar"
)

func main() {
	const h = 3
	base := ofar.DefaultConfig(h)

	sim, err := ofar.NewSimulator(base)
	if err != nil {
		log.Fatal(err)
	}
	d := sim.Topology()
	fmt.Printf("ADV+%d on a %d-node dragonfly (h=%d)\n", h, d.Nodes, h)
	fmt.Printf("analytic ceilings: MIN %.4f, VAL local-link cap %.4f, global bound %.2f\n\n",
		d.MinGlobalWorstCaseThroughput(), d.AdvValiantLocalCap(h), d.ValiantThroughputBound())

	fmt.Printf("%-8s %12s %12s %14s %14s\n",
		"routing", "saturation", "latency@0.1", "misroutes/pkt", "ring-use")
	for _, rt := range []ofar.Routing{ofar.MIN, ofar.VAL, ofar.PB, ofar.OFARL, ofar.OFAR} {
		cfg := base
		cfg.Routing = rt
		if rt != ofar.OFAR && rt != ofar.OFARL {
			cfg.Ring = ofar.RingNone // VC-ordered baselines need no escape ring
		}
		sat, err := ofar.RunSteady(cfg, ofar.Adv(h), 1.0, 3000, 5000)
		if err != nil {
			log.Fatal(err)
		}
		low, err := ofar.RunSteady(cfg, ofar.Adv(h), 0.1, 3000, 5000)
		if err != nil {
			log.Fatal(err)
		}
		mis := float64(sat.GlobalMisroutes+sat.LocalMisroutes) / float64(sat.Delivered+1)
		fmt.Printf("%-8s %12.4f %12.1f %14.2f %13.2f%%\n",
			rt, sat.Throughput, low.AvgLatency, mis, 100*sat.EscapeFraction)
	}

	fmt.Println("\nexpected shape: OFAR far above the rest; VAL/PB/OFAR-L near the")
	fmt.Println("local-link cap; MIN collapsed to the single-global-link bound.")
}
