// Burst: reproduces the §VI-C experiment — synchronized post-barrier
// communication bursts. Every node injects a fixed number of packets as
// fast as the network accepts them; the metric is the time until the whole
// burst is consumed, normalized to PB (the paper's Fig. 7; lower is better).
package main

import (
	"fmt"
	"log"

	"ofar"
)

func main() {
	const h = 3
	const perNode = 100 // the paper uses 2000/node on the h=6 network

	patterns := append(
		[]ofar.PatternSpec{ofar.Uniform(), ofar.Adv(2), ofar.Adv(h)},
		ofar.PaperMixes(h)...)

	fmt.Printf("burst of %d packets/node on an h=%d dragonfly\n\n", perNode, h)
	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
		"pattern", "PB", "OFAR", "OFAR-L", "OFAR/PB", "OFARL/PB")

	var sumOFAR, sumOFARL float64
	for _, ps := range patterns {
		cycles := map[ofar.Routing]int64{}
		for _, rt := range []ofar.Routing{ofar.PB, ofar.OFAR, ofar.OFARL} {
			cfg := ofar.DefaultConfig(h)
			cfg.Routing = rt
			if rt == ofar.PB {
				cfg.Ring = ofar.RingNone
			}
			res, err := ofar.RunBurst(cfg, ps, perNode, 50_000_000)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Drained {
				log.Fatalf("%s/%s: burst not consumed", rt, ps.Name())
			}
			cycles[rt] = res.Cycles
		}
		ro := float64(cycles[ofar.OFAR]) / float64(cycles[ofar.PB])
		rl := float64(cycles[ofar.OFARL]) / float64(cycles[ofar.PB])
		sumOFAR += ro
		sumOFARL += rl
		fmt.Printf("%-8s %10d %10d %10d %10.3f %10.3f\n",
			ps.Name(), cycles[ofar.PB], cycles[ofar.OFAR], cycles[ofar.OFARL], ro, rl)
	}
	n := float64(len(patterns))
	fmt.Printf("%-8s %10s %10s %10s %10.3f %10.3f\n", "average", "", "", "",
		sumOFAR/n, sumOFARL/n)
	fmt.Println("\npaper (h=6, 2000 pkts/node): OFAR/PB averages 0.695 — a 43.8% speedup.")
}
