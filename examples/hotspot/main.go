// Hotspot: visualizes the paper's §III motivation. Under ADV+h traffic with
// Valiant routing, all misrouted flow entering a router of an intermediate
// group must leave through the single local link to the next router
// (Fig. 2a): a handful of local links run near 100% utilization while the
// rest idle. OFAR's in-transit local misrouting spreads that load.
package main

import (
	"fmt"
	"log"
	"sort"

	"ofar"
	"ofar/internal/traffic"
)

func main() {
	const h = 3
	for _, rt := range []ofar.Routing{ofar.VAL, ofar.OFAR} {
		cfg := ofar.DefaultConfig(h)
		cfg.Routing = rt
		if rt == ofar.VAL {
			cfg.Ring = ofar.RingNone
		}
		sim, err := ofar.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		n := sim.Network()
		d := n.Topo
		n.Stats.EnableUtilization(d.Routers, d.RouterPorts+2)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(d, h), 1.0, cfg.PacketSize))
		n.Run(8000)
		cycles := float64(n.Now())

		// Collect local-link utilizations of one intermediate group.
		type link struct {
			from, to int
			util     float64
		}
		var links []link
		g := 1 // any group acts as an intermediate under ADV
		for rl := 0; rl < d.A; rl++ {
			r := d.RouterAt(g, rl)
			for port := d.LocalPortBase(); port < d.GlobalPortBase(); port++ {
				_, peer, _ := d.Peer(r, port)
				links = append(links, link{
					from: rl, to: d.LocalIndex(peer),
					util: float64(n.Stats.Utilization(r, port)) / cycles,
				})
			}
		}
		sort.Slice(links, func(i, j int) bool { return links[i].util > links[j].util })

		var sum float64
		for _, l := range links {
			sum += l.util
		}
		fmt.Printf("\n=== %s under ADV+%d at saturation (group %d local links) ===\n", rt, h, g)
		fmt.Printf("throughput: %.3f phits/(node·cycle); mean local utilization %.2f\n",
			float64(n.Stats.Delivered)*float64(cfg.PacketSize)/cycles/float64(d.Nodes),
			sum/float64(len(links)))
		fmt.Println("hottest local links:")
		for _, l := range links[:6] {
			bar := ""
			for i := 0; i < int(l.util*40); i++ {
				bar += "#"
			}
			fmt.Printf("  r%-2d -> r%-2d  %5.1f%%  %s\n", l.from, l.to, 100*l.util, bar)
		}
		fmt.Println("coldest local links:")
		for _, l := range links[len(links)-3:] {
			fmt.Printf("  r%-2d -> r%-2d  %5.1f%%\n", l.from, l.to, 100*l.util)
		}
	}
	fmt.Println("\nVAL shows a few near-saturated links feeding the (k → k+1) funnels;")
	fmt.Println("OFAR levels the distribution and converts the headroom into throughput.")
}
