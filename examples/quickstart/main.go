// Quickstart: build a balanced dragonfly, run OFAR under uniform traffic,
// and print the headline metrics. This is the smallest end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"ofar"
)

func main() {
	// A balanced h=3 dragonfly: p=3 nodes/router, a=6 routers/group,
	// 19 groups, 342 nodes — the paper's §V parameters at laptop scale.
	cfg := ofar.DefaultConfig(3)
	cfg.Routing = ofar.OFAR

	sim, err := ofar.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	d := sim.Topology()
	fmt.Printf("dragonfly: %d nodes, %d routers, %d groups, diameter 3\n",
		d.Nodes, d.Routers, d.G)

	// Steady-state experiment: warm up 2000 cycles, measure 4000.
	res, err := ofar.RunSteady(cfg, ofar.Uniform(), 0.30, 2000, 4000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform traffic at %.2f phits/(node·cycle):\n", res.Load)
	fmt.Printf("  avg latency  %.1f cycles\n", res.AvgLatency)
	fmt.Printf("  throughput   %.3f phits/(node·cycle)\n", res.Throughput)
	fmt.Printf("  avg hops     %.2f\n", res.AvgHops)
	fmt.Printf("  escape ring  %.3f%% of packets\n", 100*res.EscapeFraction)

	// The same network driven manually, cycle by cycle.
	sim.SetTraffic(ofar.Uniform(), 0.30)
	sim.Run(1000)
	fmt.Printf("manual drive: %d packets delivered after %d cycles\n",
		sim.Stats().Delivered, sim.Now())
}
