// Reliability: the §VII discussion — "OFAR could block the system with
// more than a single failure in its Hamiltonian ring"; embedding several
// edge-disjoint rings restores protection. This example breaks an escape
// ring mid-run under worst-case adversarial overload and compares a
// single-ring network against a dual-ring one.
package main

import (
	"fmt"
	"log"

	"ofar"
	"ofar/internal/traffic"
)

func run(rings int) {
	const h = 2
	cfg := ofar.DefaultConfig(h)
	cfg.Routing = ofar.OFARL                    // no local misroute
	cfg.OFAR = ofar.DefaultOFARVariableConfig() // the paper's §V policy
	cfg.Ring = ofar.RingEmbedded
	cfg.NumRings = rings
	cfg.LocalVCs, cfg.GlobalVCs, cfg.InjVCs = 2, 1, 2 // Fig. 9 resources: the ring is load-bearing

	sim, err := ofar.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	n := sim.Network()
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, h), 0.2, cfg.PacketSize))

	fmt.Printf("\n=== %d embedded escape ring(s), OFAR-L, ADV+h at 0.2 load ===\n", rings)
	window := func(label string) {
		before := n.Stats.Delivered
		n.Run(5000)
		rate := float64(n.Stats.Delivered-before) * 8 / 5000 / float64(n.Topo.Nodes)
		fmt.Printf("  %-22s accepted %.3f phits/(node·cycle)\n", label, rate)
	}
	window("healthy:")
	n.FailRingEdge(0, n.Rings[0].Order[3])
	fmt.Println("  -- ring 0 edge broken --")
	window("after failure:")
	window("later:")
}

func main() {
	fmt.Println("escape-subnetwork reliability under worst-case traffic (§VII)")
	run(1)
	run(2)
	fmt.Println(`
with a single ring, the break removes the only deadlock drain: cyclic
buffer waits accumulate until delivery stops completely (rate 0.000).
With two link-disjoint rings the survivor keeps breaking deadlocks and
the network stays live — the §VII multi-Hamiltonian reliability argument.`)
}
