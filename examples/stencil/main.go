// Stencil: the application-level motivation of the paper (§I/§III, citing
// Bhatele et al.): a 3-D halo-exchange code whose tasks are placed
// consecutively ("DEF" mapping) concentrates neighbor traffic on a few
// local links of each group. Bhatele's fix randomizes the task mapping —
// destroying locality; the paper argues the fix belongs in the network.
// This example shows all four corners: {MIN, OFAR} × {linear, random}.
package main

import (
	"fmt"
	"log"

	"ofar"
)

func main() {
	const h = 3 // 342 nodes; the stencil uses 7x7x6 = 294 of them
	fmt.Println("3-D stencil halo exchange on an h=3 dragonfly (7x7x6 tasks)")
	fmt.Printf("%-10s %-18s %12s %12s\n", "routing", "mapping", "latency@0.3", "saturation")

	for _, rt := range []ofar.Routing{ofar.MIN, ofar.OFAR} {
		for _, random := range []bool{false, true} {
			cfg := ofar.DefaultConfig(h)
			cfg.Routing = rt
			if rt == ofar.MIN {
				cfg.Ring = ofar.RingNone
			}
			ps := ofar.Stencil3D(7, 7, 6, random)
			lat, err := ofar.RunSteady(cfg, ps, 0.3, 3000, 4000)
			if err != nil {
				log.Fatal(err)
			}
			sat, err := ofar.RunSteady(cfg, ps, 1.0, 3000, 4000)
			if err != nil {
				log.Fatal(err)
			}
			mapping := "linear (DEF)"
			if random {
				mapping = "random (RDN)"
			}
			fmt.Printf("%-10s %-18s %12.1f %12.3f\n", rt, mapping, lat.AvgLatency, sat.Throughput)
		}
	}

	fmt.Println(`
reading the table:
  - MIN + linear mapping keeps traffic local (lowest latency) but the few
    loaded local links bound the achievable rate;
  - randomizing the mapping spreads load at the price of longer paths
    (higher latency, global links now involved);
  - OFAR with the linear mapping keeps the locality benefit AND routes
    around whatever saturates — the network-level fix the paper argues for.`)
}
