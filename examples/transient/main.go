// Transient: reproduces the §VI-B experiment — how fast each mechanism
// adapts when the traffic pattern changes underneath it. OFAR's in-transit
// decisions adapt almost instantly; PB waits for congestion information to
// build up and broadcast.
package main

import (
	"fmt"
	"log"

	"ofar"
)

func main() {
	const h = 3
	const load = 0.14

	cases := []struct {
		name     string
		from, to ofar.PatternSpec
		load     float64
	}{
		{"UN -> ADV+2", ofar.Uniform(), ofar.Adv(2), load},
		{"ADV+2 -> UN", ofar.Adv(2), ofar.Uniform(), load},
		// The paper lowers the load for ADV+2 -> ADV+h because PB would
		// saturate at 0.14 on ADV+h.
		{"ADV+2 -> ADV+h", ofar.Adv(2), ofar.Adv(h), 0.12},
	}

	for _, c := range cases {
		fmt.Printf("\n=== %s at load %.2f ===\n", c.name, c.load)
		fmt.Printf("%-10s %10s %10s %10s\n", "cycle", "PB", "OFAR", "OFAR-L")
		series := map[ofar.Routing]map[int64]float64{}
		for _, rt := range []ofar.Routing{ofar.PB, ofar.OFAR, ofar.OFARL} {
			cfg := ofar.DefaultConfig(h)
			cfg.Routing = rt
			if rt == ofar.PB {
				cfg.Ring = ofar.RingNone
			}
			res, err := ofar.RunTransient(cfg, c.from, c.to, c.load, 4000, 3000, 4000, 250)
			if err != nil {
				log.Fatal(err)
			}
			m := map[int64]float64{}
			for _, p := range res.Points {
				m[p.Cycle] = p.MeanLatency
			}
			series[rt] = m
		}
		for cyc := int64(-1000); cyc <= 3000; cyc += 250 {
			fmt.Printf("%-10d", cyc)
			for _, rt := range []ofar.Routing{ofar.PB, ofar.OFAR, ofar.OFARL} {
				if v, ok := series[rt][cyc]; ok {
					fmt.Printf("%10.1f", v)
				} else {
					fmt.Printf("%10s", "-")
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("\ncycle 0 is the pattern switch; values are the average latency of")
	fmt.Println("packets *sent* in each 250-cycle bucket (the paper's Fig. 6 metric).")
}
