package ofar

import (
	"math"
	"runtime"
	"sync"

	"ofar/internal/network"
	"ofar/internal/stats"
	"ofar/internal/traffic"
)

// SteadyResult summarizes one steady-state measurement (one point of the
// paper's latency/throughput-vs-load plots, Figs. 3–5 and 8–9).
type SteadyResult struct {
	Routing Routing
	Pattern string
	Load    float64 // offered, phits/(node·cycle)

	AvgLatency    float64 // generation → delivery, cycles
	AvgNetLatency float64 // injection → delivery, cycles
	P50Latency    float64 // median latency (histogram estimate)
	P99Latency    float64 // 99th-percentile latency (histogram estimate)
	MaxLatency    int64
	AvgHops       float64
	Throughput    float64 // accepted, phits/(node·cycle)

	Delivered       int64
	GlobalMisroutes int64
	LocalMisroutes  int64
	RingEnters      int64
	RingExits       int64

	// Fault-injection outcomes (zero without a Config.Faults schedule).
	Dropped       int64
	FaultReroutes int64
	AffectedFlows int

	// EscapeFraction is the share of delivered packets that entered the
	// escape ring — the paper argues it stays tiny (§IV-C, §VII).
	EscapeFraction float64
}

// RunSteady simulates an open-loop Bernoulli workload: warmup cycles to
// reach steady state, then measure cycles of measurement, and returns the
// averages (paper §VI-A methodology).
func RunSteady(cfg Config, ps PatternSpec, load float64, warmup, measure int) (SteadyResult, error) {
	n, err := network.New(cfg)
	if err != nil {
		return SteadyResult{}, err
	}
	defer n.Close()
	pattern := ps.build(n.Topo)
	n.SetGenerator(traffic.NewBernoulli(pattern, load, cfg.PacketSize))
	n.Stats.EnableHistogram()
	n.Run(warmup)
	return measureSteady(n, pattern.Name(), load, measure)
}

// measureSteady runs the measurement window on an already-warm network and
// collects the steady-state result. It is the shared tail of RunSteady and
// WarmState.Measure: the two paths must stay field-for-field identical, which
// is what lets a warm-fork sweep report the same rows as a classic one.
func measureSteady(n *network.Network, pattern string, load float64, measure int) (SteadyResult, error) {
	base := n.Stats
	ringEnters0, gm0, lm0, rx0 := base.RingEnters, base.GlobalMisroutes, base.LocalMisroutes, base.RingExits
	base.StartMeasurement(n.Now())
	n.Run(measure)
	res := SteadyResult{
		Routing:         n.Cfg.Routing,
		Pattern:         pattern,
		Load:            load,
		AvgLatency:      base.AvgLatency(),
		AvgNetLatency:   base.AvgNetworkLatency(),
		P50Latency:      base.LatencyQuantile(0.50),
		P99Latency:      base.LatencyQuantile(0.99),
		MaxLatency:      base.MaxLatency(),
		AvgHops:         base.AvgHops(),
		Throughput:      base.Throughput(n.Now()),
		Delivered:       base.MeasuredPackets(),
		GlobalMisroutes: base.GlobalMisroutes - gm0,
		LocalMisroutes:  base.LocalMisroutes - lm0,
		RingEnters:      base.RingEnters - ringEnters0,
		RingExits:       base.RingExits - rx0,
		Dropped:         base.Dropped,
		FaultReroutes:   base.FaultReroutes,
		AffectedFlows:   base.AffectedFlows(),
	}
	if res.Delivered > 0 {
		res.EscapeFraction = float64(res.RingEnters) / float64(res.Delivered)
	}
	if err := n.CheckConservation(); err != nil {
		return res, err
	}
	return res, nil
}

// RunLoadSweep runs one steady-state point per load, reusing the
// configuration. Each point warms a parent network once and measures on a
// fork of it (see WarmState), which is bit-identical to the classic
// warm-then-measure run and leaves the warm state reusable — pass a warm
// cache via RunLoadSweepOpt to skip warmup entirely on later invocations.
func RunLoadSweep(cfg Config, ps PatternSpec, loads []float64, warmup, measure int) ([]SteadyResult, error) {
	out := make([]SteadyResult, 0, len(loads))
	for _, l := range loads {
		r, _, err := sweepPoint(cfg, ps, l, warmup, measure, SweepOptions{})
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunLoadSweepParallel runs the sweep points concurrently, one network per
// point. Results are identical to RunLoadSweep: every point builds its own
// network whose RNG streams derive only from cfg.Seed, so parallelism does
// not perturb determinism — and neither does cfg.Workers, the intra-network
// parallel router stage, which is bit-identical to the serial engine.
//
// The two levels compose, coarsely: workers bounds the sweep's concurrency
// budget (≤ 0 uses GOMAXPROCS), and each concurrently simulated network
// owns a resident pool of cfg.Workers router-stage workers. With the
// spawn-per-cycle engine it was right to divide the caller's budget by
// cfg.Workers — every in-flight network really ran that many goroutines
// every cycle. With the persistent pool that division over-throttles: pool
// workers are resident but *parked* whenever the parallel cutover keeps a
// step serial, which is the whole low-load half of a typical sweep, so a
// small explicit budget (say 3, as the sweep tests pass) would pin the
// sweep to one network while nearly every pool goroutine slept. The cap is
// therefore recalibrated to the machine: max(1, GOMAXPROCS/cfg.Workers)
// in-flight networks — the honest bound for the steady state where every
// network is saturated and every pool busy — further capped by an explicit
// caller budget only when that budget is smaller.
func RunLoadSweepParallel(cfg Config, ps PatternSpec, loads []float64, warmup, measure, workers int) ([]SteadyResult, error) {
	out, _, err := RunLoadSweepOpt(cfg, ps, loads, warmup, measure, SweepOptions{Parallel: workers})
	return out, err
}

// SweepOptions tunes the load-sweep driver beyond the classic signatures.
type SweepOptions struct {
	// Parallel bounds the number of concurrently simulated points
	// (RunLoadSweepParallel semantics; ≤ 0 derives the bound from
	// GOMAXPROCS and cfg.Workers). RunLoadSweep uses a serial loop.
	Parallel int
	// CheckpointDir, when non-empty, receives one warm-state snapshot per
	// sweep point, keyed by (normalized config, pattern, load, warmup).
	CheckpointDir string
	// RestoreDir, when non-empty, is searched for those snapshots first: a
	// hit skips the point's warmup entirely, a miss (or a stale/corrupt
	// entry — e.g. written by a build with different physics) falls back to
	// warming from cycle 0. Point the two at the same directory to get a
	// persistent warm cache across invocations.
	RestoreDir string
	// PhaseSink, when non-nil, turns on per-phase Step timing for each
	// point's measurement window and receives the window's accumulated
	// breakdown once per point. The sink must be safe for concurrent calls
	// (parallel sweeps measure points concurrently). Timing never affects
	// results — only where the wall-clock went (see network.PhaseNanos).
	PhaseSink func(PhaseNanos)
}

// PhaseNanos re-exports the engine's per-phase Step timing breakdown for
// sweep callers (sweepd's /metrics gauges are the main consumer).
type PhaseNanos = network.PhaseNanos

// SweepStats reports how much warm-up work a sweep actually did — the
// observable benefit of the warm cache.
type SweepStats struct {
	Warmed              int   // points that simulated their warmup phase
	Restored            int   // points resumed from a warm snapshot
	WarmupCyclesRun     int64 // cycles spent warming
	WarmupCyclesSkipped int64 // cycles the cache saved
}

// RunLoadSweepOpt is the load sweep with explicit options: concurrency and an
// optional disk warm cache. Results are bit-identical to RunLoadSweep and to
// the classic per-point RunSteady, whichever path each point takes — restored
// warm state is the same state, byte for byte.
func RunLoadSweepOpt(cfg Config, ps PatternSpec, loads []float64, warmup, measure int, opt SweepOptions) ([]SteadyResult, SweepStats, error) {
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nets := workers
	if cfg.Workers > 1 {
		// Per-network worker width. Under ShardByGroup whole groups are the
		// stealing unit, so a network can keep at most min(Workers, groups)
		// workers busy — budgeting the raw Workers count against GOMAXPROCS
		// would over-throttle the sweep on small-group configs (e.g. h=2 with
		// 8-wide pools would halve the in-flight networks for workers that
		// can never all engage).
		width := cfg.Workers
		if cfg.ShardByGroup {
			groups := cfg.Groups
			if groups == 0 {
				groups = cfg.A*cfg.H + 1
			}
			width = min(width, groups)
		}
		nets = min(workers, max(1, runtime.GOMAXPROCS(0)/width))
	}
	out := make([]SteadyResult, len(loads))
	errs := make([]error, len(loads))
	restored := make([]bool, len(loads))
	sem := make(chan struct{}, nets)
	var wg sync.WaitGroup
	for i, l := range loads {
		wg.Add(1)
		go func(i int, load float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], restored[i], errs[i] = sweepPoint(cfg, ps, load, warmup, measure, opt)
		}(i, l)
	}
	wg.Wait()
	var st SweepStats
	for _, r := range restored {
		if r {
			st.Restored++
			st.WarmupCyclesSkipped += int64(warmup)
		} else {
			st.Warmed++
			st.WarmupCyclesRun += int64(warmup)
		}
	}
	for _, err := range errs {
		if err != nil {
			return out, st, err
		}
	}
	return out, st, nil
}

// RunSweepPoint produces one steady-state sweep point through the warm-fork
// path — exactly the per-point work of RunLoadSweepOpt, exposed for callers
// that schedule points themselves (the sweep service's worker pool). The
// returned flag reports whether the point's warm-up was skipped by a warm
// snapshot from opt.RestoreDir. Results are bit-identical to RunLoadSweep,
// RunLoadSweepOpt and the classic per-point RunSteady.
func RunSweepPoint(cfg Config, ps PatternSpec, load float64, warmup, measure int, opt SweepOptions) (SteadyResult, bool, error) {
	return sweepPoint(cfg, ps, load, warmup, measure, opt)
}

// SaturationLoad estimates the saturation throughput of a configuration
// under a pattern: it offers full load (1.0) and reports the accepted
// throughput, which is the standard way the paper's throughput plateaus
// (Figs. 3b/4b/5b) are read.
func SaturationLoad(cfg Config, ps PatternSpec, warmup, measure int) (float64, error) {
	r, err := RunSteady(cfg, ps, 1.0, warmup, measure)
	if err != nil {
		return 0, err
	}
	return r.Throughput, nil
}

// ReplicatedResult aggregates one metric across seeds.
type ReplicatedResult struct {
	Runs           int
	Throughput     Aggregate
	AvgLatency     Aggregate
	EscapeFraction Aggregate
}

// Aggregate is a mean ± standard deviation across replicated runs.
type Aggregate struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

func aggregate(vals []float64) Aggregate {
	var rep stats.Replication
	a := Aggregate{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vals {
		rep.Add(v)
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Mean, a.StdDev = rep.Mean(), rep.StdDev()
	return a
}

// RunReplicated repeats a steady-state experiment with `runs` different
// seeds (cfg.Seed, cfg.Seed+1, …) and aggregates the results. The paper
// notes that some of its plots (e.g. Fig. 9) average several simulations —
// this is the corresponding driver.
func RunReplicated(cfg Config, ps PatternSpec, load float64, warmup, measure, runs int) (ReplicatedResult, error) {
	if runs < 1 {
		runs = 1
	}
	thr := make([]float64, 0, runs)
	lat := make([]float64, 0, runs)
	esc := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		r, err := RunSteady(c, ps, load, warmup, measure)
		if err != nil {
			return ReplicatedResult{}, err
		}
		thr = append(thr, r.Throughput)
		lat = append(lat, r.AvgLatency)
		esc = append(esc, r.EscapeFraction)
	}
	return ReplicatedResult{
		Runs:           runs,
		Throughput:     aggregate(thr),
		AvgLatency:     aggregate(lat),
		EscapeFraction: aggregate(esc),
	}, nil
}

// TransientPoint is one bucket of the latency-by-send-cycle series.
type TransientPoint struct {
	Cycle       int64 // bucket start, relative to the pattern switch
	MeanLatency float64
	Count       int64
}

// TransientResult is the §VI-B measurement: average latency of the packets
// *sent* in each cycle bucket, before and after a traffic-pattern switch.
type TransientResult struct {
	Routing  Routing
	From, To string
	Load     float64
	SwitchAt int64 // absolute cycle of the switch
	Points   []TransientPoint
}

// RunTransient warms the network with pattern `before` for warmup cycles,
// switches to pattern `after`, and keeps simulating: `after` runs for run
// cycles plus drain cycles with generation continuing, so that late
// deliveries fill the send-cycle series. bucket sets the series resolution.
func RunTransient(cfg Config, before, after PatternSpec, load float64, warmup, run, drain, bucket int) (TransientResult, error) {
	n, err := network.New(cfg)
	if err != nil {
		return TransientResult{}, err
	}
	defer n.Close()
	pb := before.build(n.Topo)
	pa := after.build(n.Topo)
	switchAt := int64(warmup)
	n.SetGenerator(traffic.NewTransient(pb, pa, switchAt, load, cfg.PacketSize))
	n.Stats.EnableSeries(bucket)
	n.Run(warmup + run + drain)
	series := n.Stats.Series()
	res := TransientResult{
		Routing:  cfg.Routing,
		From:     pb.Name(),
		To:       pa.Name(),
		Load:     load,
		SwitchAt: switchAt,
	}
	// Report from shortly before the switch through the run window.
	for i := 0; i < series.Len(); i++ {
		cycle, mean, cnt := series.At(i)
		if cycle < switchAt-int64(run)/2 || cycle > switchAt+int64(run) {
			continue
		}
		if cnt == 0 || math.IsNaN(mean) {
			continue
		}
		res.Points = append(res.Points, TransientPoint{Cycle: cycle - switchAt, MeanLatency: mean, Count: cnt})
	}
	return res, nil
}

// DegradationPoint is one point of the fault-degradation curve: steady-state
// performance with a given number of failed global links.
type DegradationPoint struct {
	FailedLinks int
	Throughput  float64 // accepted, phits/(node·cycle)
	AvgLatency  float64
	P99Latency  float64

	Dropped       int64 // packets lost to the fault transient
	FaultReroutes int64 // adaptive decisions forced by a dead minimal port
	AffectedFlows int   // distinct (src,dst) pairs a fault touched
}

// RunDegradation measures OFAR's graceful degradation: for each count in
// 0..maxFailed, the first `count` global links fail at cycle faultAt (during
// warm-up, so the measurement window sees the degraded network in steady
// state), and throughput plus tail latency are recorded. Conservation is
// checked with the explicit Dropped term, so a silently lost packet fails
// the run rather than flattering the curve.
func RunDegradation(cfg Config, ps PatternSpec, load float64, faultAt int64, maxFailed, warmup, measure int) ([]DegradationPoint, error) {
	points := make([]DegradationPoint, 0, maxFailed+1)
	for count := 0; count <= maxFailed; count++ {
		c := cfg
		if count > 0 {
			faults, err := GlobalLinkFaults(cfg, faultAt, count)
			if err != nil {
				return points, err
			}
			c.Faults = faults
		}
		n, err := network.New(c)
		if err != nil {
			return points, err
		}
		pattern := ps.build(n.Topo)
		n.SetGenerator(traffic.NewBernoulli(pattern, load, c.PacketSize))
		n.Stats.EnableHistogram()
		n.Run(warmup)
		n.Stats.StartMeasurement(n.Now())
		n.Run(measure)
		err = n.CheckConservation()
		points = append(points, DegradationPoint{
			FailedLinks:   count,
			Throughput:    n.Stats.Throughput(n.Now()),
			AvgLatency:    n.Stats.AvgLatency(),
			P99Latency:    n.Stats.LatencyQuantile(0.99),
			Dropped:       n.Stats.Dropped,
			FaultReroutes: n.Stats.FaultReroutes,
			AffectedFlows: n.Stats.AffectedFlows(),
		})
		n.Close()
		if err != nil {
			return points, err
		}
	}
	return points, nil
}

// BurstResult is one §VI-C burst-consumption measurement.
type BurstResult struct {
	Routing   Routing
	Pattern   string
	PerNode   int
	Packets   int64
	Cycles    int64 // time to consume the whole burst
	Drained   bool  // false when maxCycles elapsed first
	RingUse   int64 // escape-ring entries during the burst
	GlobalMis int64
	LocalMis  int64
}

// RunBurst injects perNode packets from every node as fast as the network
// accepts them and measures the time until all are delivered.
func RunBurst(cfg Config, ps PatternSpec, perNode, maxCycles int) (BurstResult, error) {
	n, err := network.New(cfg)
	if err != nil {
		return BurstResult{}, err
	}
	defer n.Close()
	pattern := ps.build(n.Topo)
	n.SetGenerator(traffic.NewBurst(pattern, perNode, n.Topo.Nodes))
	drained := n.RunUntilDrained(maxCycles)
	res := BurstResult{
		Routing:   cfg.Routing,
		Pattern:   pattern.Name(),
		PerNode:   perNode,
		Packets:   n.Stats.Delivered,
		Cycles:    n.Now(),
		Drained:   drained,
		RingUse:   n.Stats.RingEnters,
		GlobalMis: n.Stats.GlobalMisroutes,
		LocalMis:  n.Stats.LocalMisroutes,
	}
	if err := n.CheckConservation(); err != nil {
		return res, err
	}
	return res, nil
}
