package ofar

import (
	"math"
	"testing"
)

// Go-native fuzz targets. In regular `go test` runs they execute the seed
// corpus; `go test -fuzz FuzzParsePattern` explores further.

func FuzzParsePattern(f *testing.F) {
	for _, seed := range []string{"UN", "ADV+3", "MIX1", "BITCOMP", "PERM", "adv+", "ADV+99999", "", "☃"} {
		f.Add(seed, 3)
	}
	f.Fuzz(func(t *testing.T, s string, h int) {
		if h < 1 || h > 8 {
			h = 3
		}
		ps, err := ParsePattern(s, h)
		if err != nil {
			return
		}
		// Every accepted spec must build against a real topology.
		sim, err := NewSimulator(DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		p := ps.build(sim.Topology())
		if p == nil || p.Name() == "" {
			t.Fatalf("accepted pattern %q built %v", s, p)
		}
	})
}

// FuzzParallelConservation drives the two-phase parallel router engine on
// the tiniest dragonfly (h=1: 6 routers, 6 nodes) with fuzzed seed, offered
// load, traffic pattern and worker count, and asserts the one invariant
// every run must keep regardless of inputs: no packet is created or
// destroyed outside the generator/sink (and nothing panics or deadlocks the
// cycle loop).
func FuzzParallelConservation(f *testing.F) {
	f.Add(uint64(1), 0.3, "UN", uint8(4))
	f.Add(uint64(42), 0.95, "ADV+1", uint8(2))
	f.Add(uint64(7), 0.1, "MIX1", uint8(9)) // > router count: clamped
	f.Add(uint64(999), 1.0, "BITCOMP", uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, load float64, pattern string, workers uint8) {
		if math.IsNaN(load) || load < 0 || load > 1 {
			return
		}
		ps, err := ParsePattern(pattern, 1)
		if err != nil {
			return
		}
		cfg := DefaultConfig(1)
		cfg.Seed = seed
		cfg.Workers = 2 + int(workers%8) // always the parallel engine
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatalf("h=1 config failed to build: %v", err)
		}
		defer sim.Close()
		sim.SetTraffic(ps, load)
		sim.Run(200)
		if err := sim.Network().CheckConservation(); err != nil {
			t.Fatalf("seed=%d load=%v pattern=%q workers=%d: %v",
				seed, load, pattern, cfg.Workers, err)
		}
	})
}

// FuzzFaultSchedule fuzzes the inline fault-spec grammar and, for every
// schedule the parser and validator accept on the h=2 network, runs the
// faulted simulation and asserts packet conservation with the explicit
// Dropped term — the one invariant teardown must never break, whatever the
// schedule kills and in whatever order.
func FuzzFaultSchedule(f *testing.F) {
	f.Add("link@100:0:2", uint64(1))
	f.Add("router@50:3", uint64(2))
	f.Add("link@10:0:5,link@10:5:2,router@200:7,router@201:8", uint64(3))
	f.Add("link@0:0:2,router@0:0", uint64(4)) // cycle-0 faults
	f.Add("melt@1:2", uint64(5))
	f.Add("link@-5:0:2", uint64(6))
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		fs, err := ParseFaults(spec)
		if err != nil || len(fs) > 16 {
			return
		}
		for _, fault := range fs {
			if fault.Cycle > 400 {
				return // past the run horizon: proves nothing
			}
		}
		cfg := DefaultConfig(2)
		cfg.Seed = seed
		cfg.Faults = fs
		if err := cfg.Validate(); err != nil {
			return // out-of-range router/port: a clean rejection
		}
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatalf("validated schedule failed to build: %v (%q)", err, spec)
		}
		defer sim.Close()
		ps, _ := ParsePattern("UN", cfg.H)
		sim.SetTraffic(ps, 0.3)
		sim.Run(500)
		if err := sim.Network().CheckConservation(); err != nil {
			t.Fatalf("spec=%q seed=%d: %v", spec, seed, err)
		}
	})
}

// FuzzRouteCache is the fuzz companion of the route-memoization oracle: for
// every accepted load × fault schedule, an h=2 OFAR run with the route cache
// enabled must emit the exact grant digest of the identical run with
// DisableRouteCache, and both must conserve packets. The fault dimension
// matters: link and router kills under fuzzed timing exercise the epoch-bump
// teardown paths (FailOutput, ring splicing, credit refunds on dead ports)
// that a pure traffic fuzz never reaches.
func FuzzRouteCache(f *testing.F) {
	f.Add(uint64(1), 0.3, "")
	f.Add(uint64(9), 0.9, "link@100:0:2")
	f.Add(uint64(5), 0.6, "link@10:0:5,router@50:3")
	f.Add(uint64(12), 1.0, "link@0:0:2,router@0:0")
	f.Add(uint64(77), 0.5, "link@10:0:5,link@10:5:2,router@200:7,router@201:8")
	f.Fuzz(func(t *testing.T, seed uint64, load float64, spec string) {
		if math.IsNaN(load) || load < 0 || load > 1 {
			return
		}
		fs, err := ParseFaults(spec)
		if err != nil || len(fs) > 16 {
			return
		}
		for _, fault := range fs {
			if fault.Cycle > 400 {
				return // past the run horizon: proves nothing
			}
		}
		cfg := DefaultConfig(2)
		cfg.Seed = seed
		cfg.Faults = fs
		if err := cfg.Validate(); err != nil {
			return // out-of-range router/port: a clean rejection
		}
		run := func(noCache bool) (uint64, int64) {
			c := cfg
			c.DisableRouteCache = noCache
			sim, err := NewSimulator(c)
			if err != nil {
				t.Fatalf("validated config failed to build: %v (%q)", err, spec)
			}
			defer sim.Close()
			sim.Network().EnableGrantDigest()
			ps, _ := ParsePattern("UN", c.H)
			sim.SetTraffic(ps, load)
			sim.Run(500)
			if err := sim.Network().CheckConservation(); err != nil {
				t.Fatalf("noCache=%v seed=%d load=%v spec=%q: %v", noCache, seed, load, spec, err)
			}
			d, n := sim.Network().GrantDigest()
			return d, n
		}
		onD, onN := run(false)
		offD, offN := run(true)
		if onD != offD || onN != offN {
			t.Fatalf("seed=%d load=%v spec=%q: cache-on digest %016x (%d events) != cache-off %016x (%d events)",
				seed, load, spec, onD, onN, offD, offN)
		}
	})
}

func FuzzConfigFromJSON(f *testing.F) {
	ok, _ := ConfigToJSON(DefaultConfig(2))
	f.Add(ok)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"P":-1}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ConfigFromJSON(data)
		if err != nil {
			return
		}
		// Keep the build step bounded: the fuzzer may synthesize huge but
		// valid topologies; building them proves nothing new.
		if cfg.P > 4 || cfg.A > 8 || cfg.H > 4 || cfg.NumRings > 4 ||
			cfg.LocalBuf > 1<<16 || cfg.GlobalBuf > 1<<16 || cfg.InjBuf > 1<<16 ||
			cfg.LocalVCs > 8 || cfg.GlobalVCs > 8 || cfg.InjVCs > 8 ||
			cfg.LocalLatency > 1<<12 || cfg.GlobalLatency > 1<<12 {
			return
		}
		// Anything accepted must be buildable (ring construction may still
		// reject degenerate shapes — that is a clean error, not a bug).
		if _, err := NewSimulator(cfg); err != nil {
			if cfg.Ring != RingNone {
				return
			}
			t.Fatalf("validated config failed to build: %v (%+v)", err, cfg)
		}
	})
}
