module ofar

go 1.22
