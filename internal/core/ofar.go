// Package core implements OFAR — On-the-Fly Adaptive Routing — the paper's
// primary contribution (§IV): a flow-control/routing mechanism for dragonfly
// networks that decouples virtual-channel usage from deadlock avoidance.
//
// OFAR misroutes packets in transit, locally (around a saturated local link,
// once per group) or globally (to a random intermediate group, once per
// packet and only from the source group), based purely on the occupancy of
// the current router's output queues compared against two thresholds. A
// Hamiltonian escape ring with bubble (restricted-injection) flow control
// guarantees deadlock freedom, so canonical VCs exist only to reduce
// head-of-line blocking.
package core

import (
	"fmt"
	"math"

	"ofar/internal/packet"
	"ofar/internal/router"
	"ofar/internal/topology"
)

// Config holds OFAR's tunables. The paper's evaluation (§V) uses the
// variable threshold policy Th_min = 0 %, Th_non-min = 0.9 · Q_min.
type Config struct {
	// ThMin is the occupancy fraction the minimal output queue must reach
	// before misrouting is considered (in addition to the minimal port
	// being unavailable). 0 reproduces the paper's variable policy; 1.0
	// with a static non-minimal threshold reproduces the static example
	// (Th_min = 100 %, Th_non-min = 40 %).
	ThMin float64

	// NonMinFactor is the variable threshold factor: a non-minimal output
	// is a misroute candidate when its occupancy ≤ NonMinFactor · Q_min.
	NonMinFactor float64

	// StaticNonMin, when ≥ 0, replaces the variable threshold with a fixed
	// occupancy bound (e.g. 0.40).
	StaticNonMin float64

	// LocalMisroute enables in-transit local misrouting; false yields the
	// OFAR-L model used in the paper to dissect local-misroute benefits.
	LocalMisroute bool

	// EscapeTimeout is how many consecutive blocked cycles a head packet
	// tolerates before requesting the escape ring. 0 requests the ring as
	// soon as neither the minimal port nor any misroute candidate can
	// accept the packet; a negative value disables the escape network
	// (only safe for experiments that cannot deadlock).
	EscapeTimeout int

	// MaxRingExits bounds how many times a packet may leave the escape
	// ring (§IV-C livelock guard). Once exhausted the packet rides the
	// ring to its destination router, which the Hamiltonian ring always
	// reaches.
	MaxRingExits int

	// LeastOccupied selects the least-occupied misroute candidate instead
	// of a random one. The paper argues this is the WRONG choice ("always
	// selecting the least congested output would not be appropriate, since
	// multiple input ports could compete for the same output", §IV-B); the
	// option exists to test that claim (see BenchmarkAblationSelection).
	LeastOccupied bool
}

// DefaultConfig returns the repository's default OFAR tuning: the §IV-B
// static threshold policy (Th_min = 100 %, Th_non-min = 40 %): misroute
// only when the minimal output has no credits left, to outputs with at
// least 60 % of their credit count available.
//
// The paper's own evaluation used the variable policy (Th_min = 0,
// Th_non-min = 0.9·Q_min — set ThMin: 0, NonMinFactor: 0.9,
// StaticNonMin: -1 to select it), chosen "empirically, by simulating the
// network with variable threshold factors, and selecting a reasonable
// trade-off between the performance in adversarial and uniform traffic
// patterns" (§V). Running the same empirical selection against this
// repository's router model picks the static policy: it matches the
// variable policy on adversarial traffic (h=6 ADV+6: 0.391 vs 0.400) and
// is dramatically more robust under saturated uniform traffic (h=6 UN at
// offered 1.0: stable 0.615 vs a misroute-storm collapse), because it only
// misroutes on genuine credit exhaustion rather than on port-busy noise.
func DefaultConfig() Config {
	return Config{
		ThMin:         1.0,
		NonMinFactor:  0.9,
		StaticNonMin:  0.4,
		LocalMisroute: true,
		EscapeTimeout: 32,
		MaxRingExits:  16,
	}
}

// VariablePolicyConfig returns the paper's §V variable-threshold tuning
// (Th_min = 0, Th_non-min = 0.9·Q_min).
func VariablePolicyConfig() Config {
	cfg := DefaultConfig()
	cfg.ThMin = 0
	cfg.StaticNonMin = -1
	return cfg
}

// OFAR is the routing engine. One instance serves a whole network when the
// cycle loop is serial; the parallel engine gives each worker its own clone
// (CloneForWorker) because of the scratch candidate buffer.
type OFAR struct {
	cfg  Config
	d    *topology.Dragonfly
	name string

	cand []int // scratch: misroute candidate ports

	// Dep recording for the router's route cache (router.CacheableEngine):
	// Route accumulates the output ports it reads in depMask and the first
	// cycle its decision could change through time alone in depExpire;
	// depMin is the per-head minimal-port anchor. RouteDeps reports them.
	// Per-call scratch like cand, so per-worker clones keep it race-free.
	depMask   uint64
	depExpire int64
	depMin    int32
}

// dep records that the current Route call read output port `port`.
func (e *OFAR) dep(port int) { e.depMask |= 1 << uint(port) }

// minPort resolves the minimal output port for the head packet, using the
// router's cached per-head hint to skip the topology lookup when possible,
// and records it as the RouteDeps anchor.
func (e *OFAR) minPort(rt *router.Router, in router.InCtx, p *packet.Packet) int {
	if in.MinHint >= 0 {
		e.depMin = in.MinHint
		return int(in.MinHint)
	}
	min := e.d.MinimalPort(rt.ID, p.Dst)
	e.depMin = int32(min)
	return min
}

// RouteDeps implements router.CacheableEngine: it reports the read set the
// immediately preceding Route call recorded. Each worker has its own clone
// (CloneForWorker), so the Route → RouteDeps pairing cannot interleave.
func (e *OFAR) RouteDeps(*router.Router, router.InCtx, *packet.Packet, int64) (uint64, int64, int32) {
	return e.depMask, e.depExpire, e.depMin
}

// New builds an OFAR engine for a topology. With cfg.LocalMisroute == false
// the engine is the OFAR-L model.
func New(d *topology.Dragonfly, cfg Config) *OFAR {
	name := "OFAR"
	if !cfg.LocalMisroute {
		name = "OFAR-L"
	}
	if cfg.NonMinFactor <= 0 && cfg.StaticNonMin < 0 {
		panic(fmt.Sprintf("core: OFAR config has no usable non-minimal threshold: %+v", cfg))
	}
	return &OFAR{cfg: cfg, d: d, name: name, cand: make([]int, 0, d.RouterPorts)}
}

// Name implements router.Engine.
func (e *OFAR) Name() string { return e.name }

// CloneForWorker implements router.ConcurrentCloner: the candidate scratch
// buffer is the engine's only mutable state and it is rebuilt on every Route
// call, so a fresh instance with the same config and topology is
// decision-for-decision identical to the original.
func (e *OFAR) CloneForWorker() router.Engine { return New(e.d, e.cfg) }

// AtInjection implements router.Engine. OFAR takes no decision at injection
// time — that is the point of the mechanism.
func (e *OFAR) AtInjection(*router.Router, *packet.Packet, int64) {}

// chooseVC picks the downstream VC for a canonical hop. OFAR does not need
// VC ordering for deadlock freedom, but it keeps the baselines' hop-class
// assignment (local VC = global hops taken, global VC = global hops taken):
// the paper states the VCs are retained "to reduce HOL blocking" (§V), and
// the hop-class discipline additionally keeps the canonical traffic almost
// acyclic, so cyclic buffer waits — which only the escape ring can resolve —
// stay rare events instead of an absorbing congestion state. Misrouted
// packets reuse the class of their current phase (extra local hops do not
// advance the class), which is where the residual cycles the ring exists
// for can come from.
func chooseVC(rt *router.Router, port int, p *packet.Packet, now int64) (int, bool) {
	op := &rt.Out[port]
	if op.Kind == topology.PortNode {
		return 0, !op.Busy(now)
	}
	if op.Kind == topology.PortNone || op.Busy(now) {
		return -1, false
	}
	vc := p.GlobalHops
	if n := op.NumVCs(); vc >= n {
		vc = n - 1
	}
	if op.EscapeRing(vc) >= 0 || op.Credits(vc) < p.Size {
		return -1, false
	}
	return vc, true
}

// Route implements router.Engine (paper §IV-A/B).
func (e *OFAR) Route(rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	e.depMask, e.depExpire = 0, math.MaxInt64
	if in.Escape {
		return e.routeOnRing(rt, in, p, now)
	}
	size := p.Size
	min := e.minPort(rt, in, p)
	e.dep(min)
	if vc, ok := chooseVC(rt, min, p, now); ok {
		return router.Request{Out: min, VC: vc}, true
	}
	minKind := e.d.PortKindOf(min)
	if minKind == topology.PortNode {
		// Destination router with a busy ejector: the eject port drains at
		// 1 phit/cycle, so just wait.
		return router.Request{}, false
	}
	// The minimal port is unavailable (assigned to another packet or out of
	// credits). Decide whether misrouting is allowed:
	//
	// Static policy (§IV-B example, Th_min = 100%): "misroute only occurs
	// when the minimal path has no credits left" — the packet's class VC on
	// the minimal port is credit-exhausted — "using an output with at least
	// 60% of its credit count available": candidate aggregate occupancy
	// ≤ StaticNonMin.
	//
	// Variable policy (§V default): allowed whenever the minimal port is
	// unavailable and Q_min ≥ Th_min, with candidates strictly below
	// NonMinFactor·Q_min ("less than 0.9 times the occupancy of the
	// minimal one"). The strictness matters: with an empty minimal queue
	// nothing qualifies, so a mere serialization collision does not
	// trigger misrouting — only real backlog does.
	if e.cfg.StaticNonMin >= 0 {
		if !vcFits(rt, min, p) {
			if req, ok := e.misroute(rt, in, p, min, minKind, e.cfg.StaticNonMin, false, now); ok {
				return req, true
			}
		}
	} else if qmin := occFor(rt, min, p); qmin >= e.cfg.ThMin {
		th := e.cfg.NonMinFactor * qmin
		if req, ok := e.misroute(rt, in, p, min, minKind, th, true, now); ok {
			return req, true
		}
	}
	// Last resort: the escape ring, once the packet has been blocked long
	// enough. Ring entry demands a two-packet bubble (§IV-C).
	if e.cfg.EscapeTimeout >= 0 && rt.NumRings() > 0 {
		if now-p.BlockedSince >= int64(e.cfg.EscapeTimeout) {
			if ring, port, vc, ok := e.pickRing(rt, 2*size, now); ok {
				return router.Request{Out: port, VC: vc, Escape: true, EnterRing: true, Ring: int8(ring)}, true
			}
		} else if x := p.BlockedSince + int64(e.cfg.EscapeTimeout); x < e.depExpire {
			// Not blocked long enough yet: the decision flips by time alone
			// when the threshold is crossed, so the cache must expire there.
			e.depExpire = x
		}
	}
	return router.Request{}, false
}

// routeOnRing handles packets stored in escape channels: leave the ring as
// soon as a minimal output is available (within the exit budget), otherwise
// advance along the ring under the one-packet bubble rule.
func (e *OFAR) routeOnRing(rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	min := e.minPort(rt, in, p)
	minKind := e.d.PortKindOf(min)
	// Ejection at the destination router is always permitted regardless of
	// the exit budget; otherwise the packet could never leave the network.
	if p.RingExits < e.cfg.MaxRingExits || minKind == topology.PortNode {
		e.dep(min)
		if vc, ok := chooseVC(rt, min, p, now); ok {
			return router.Request{Out: min, VC: vc, ExitRing: true}, true
		}
	}
	port, vc, credits, ok := rt.RingOut(in.Ring)
	if ok {
		e.dep(port) // a dead ring edge (ok == false) never heals; no dep
		if credits >= p.Size && !rt.OutBusy(port, now) {
			return router.Request{Out: port, VC: vc, Escape: true, Ring: int8(in.Ring)}, true
		}
	}
	return router.Request{}, false
}

// misroute applies the §IV-A policy to choose the set of non-minimal
// candidate ports, then requests a random candidate below the occupancy
// threshold.
//
// Policy summary:
//   - traffic internal to the destination group, or transiting a group that
//     is not its source: only local misroute, and only when the minimal
//     output is a (saturated) local port;
//   - in the source group: packets in injection queues misroute globally,
//     packets in local queues misroute locally first and globally second
//     (the order prevents starvation of the saturated router's own nodes).
func (e *OFAR) misroute(rt *router.Router, in router.InCtx, p *packet.Packet, min int, minKind topology.PortKind, th float64, strict bool, now int64) (router.Request, bool) {
	g := rt.Group
	// Local misrouting requires the minimal local port to be *saturated*
	// (§IV-A: "only local misrouting is allowed when the minimal output is
	// a saturated local port"): the hop-class VC must be out of credits,
	// not merely busy serializing another packet. A collision is resolved
	// by waiting a few cycles; real backlog is what local detours exist
	// for. Global misrouting keeps the weaker busy-or-full trigger — it is
	// the load-balancing decision, and deferring it to credit exhaustion
	// would recreate injection-time routing.
	localSat := minKind == topology.PortLocal && !vcFits(rt, min, p)
	tryLocal, tryGlobal := false, false
	switch {
	case p.DstGroup == g:
		tryLocal = e.cfg.LocalMisroute && !p.LocalMisrouted && localSat
	case p.SrcGroup == g:
		if in.Kind == topology.PortNode {
			tryGlobal = !p.GlobalMisrouted
		} else if e.cfg.LocalMisroute && !p.LocalMisrouted && localSat {
			tryLocal = true
		} else {
			tryGlobal = !p.GlobalMisrouted
		}
	default: // intermediate group
		tryLocal = e.cfg.LocalMisroute && !p.LocalMisrouted && localSat
	}
	if tryLocal {
		if req, ok := e.pickAmong(rt, e.d.LocalPortBase(), e.d.A-1, min, th, strict, p, now); ok {
			req.SetLocalMis = true
			return req, true
		}
	}
	if tryGlobal {
		if req, ok := e.pickAmong(rt, e.d.GlobalPortBase(), e.d.H, min, th, strict, p, now); ok {
			req.SetGlobalMis = true
			return req, true
		}
	}
	return router.Request{}, false
}

// pickAmong selects uniformly at random among the ports in
// [base, base+count) that are not the minimal port, not busy, have credits
// for the packet, and satisfy Q_non-min ≤ th. Random selection (rather than
// least-occupied) avoids synchronized convergence of many inputs on the
// same output (§IV-B).
func (e *OFAR) pickAmong(rt *router.Router, base, count, exclude int, th float64, strict bool, p *packet.Packet, now int64) (router.Request, bool) {
	e.cand = e.cand[:0]
	for port := base; port < base+count; port++ {
		if port == exclude {
			continue
		}
		e.dep(port)
		if rt.OutBusy(port, now) {
			continue
		}
		occ := occFor(rt, port, p)
		if occ > th || (strict && occ >= th) {
			continue
		}
		vc, ok := chooseVC(rt, port, p, now)
		if !ok {
			continue
		}
		// Demand real headroom (two packets) on the candidate: VC FIFOs
		// hold only a handful of packets, so a nearly-full "alternative"
		// is measurement noise, not an escape valve, and chasing it under
		// symmetric saturation wastes bandwidth on longer paths.
		if rt.Out[port].Credits(vc) < 2*p.Size {
			continue
		}
		e.cand = append(e.cand, port)
	}
	if len(e.cand) == 0 {
		return router.Request{}, false
	}
	var port int
	if e.cfg.LeastOccupied {
		port = e.cand[0]
		best := occFor(rt, port, p)
		for _, c := range e.cand[1:] {
			if occ := occFor(rt, c, p); occ < best {
				port, best = c, occ
			}
		}
	} else {
		port = e.cand[rt.RandInt(len(e.cand))]
	}
	vc, _ := chooseVC(rt, port, p, now)
	return router.Request{Out: port, VC: vc}, true
}

// vcFits reports whether the packet's hop-class VC on the given port has
// credits for it. A dead port never fits — this is what turns a failed
// minimal link into a misrouting trigger under the static policy, which only
// consults credits (not Busy) when deciding to divert.
func vcFits(rt *router.Router, port int, p *packet.Packet) bool {
	op := &rt.Out[port]
	if op.Dead() {
		return false
	}
	vc := p.GlobalHops
	if n := op.NumVCs(); vc >= n {
		vc = n - 1
	}
	return op.Credits(vc) >= p.Size
}

// occFor returns the occupancy fraction used in threshold comparisons: the
// aggregate canonical occupancy of the port (§IV-B compares "the percentage
// of buffer occupancy" of whole queues). Aggregating across the port's VCs
// pools 3 VCs (12 packets) of signal, which discriminates a genuinely
// saturated hotspot (ADV+h: the l2 port is full across classes while
// alternatives idle) from symmetric-overload noise (UN: every port's class
// VC oscillates around full while aggregates stay comparable). The
// class-VC-granular checks remain where the physical resource matters: the
// misroute *trigger* (vcFits) and the candidate headroom filter.
func occFor(rt *router.Router, port int, _ *packet.Packet) float64 {
	return rt.OutOcc(port)
}

// pickRing returns the escape ring whose next-hop channel has the most
// credits, provided it meets the needed bubble and its port is free.
func (e *OFAR) pickRing(rt *router.Router, needed int, now int64) (ring, port, vc int, ok bool) {
	bestCr := -1
	for j := 0; j < rt.NumRings(); j++ {
		pj, vj, cr, okj := rt.RingOut(j)
		if !okj {
			continue // a failed ring edge never heals; no dep
		}
		e.dep(pj)
		if cr < needed || rt.OutBusy(pj, now) {
			continue
		}
		if cr > bestCr {
			ring, port, vc, bestCr, ok = j, pj, vj, cr, true
		}
	}
	return
}
