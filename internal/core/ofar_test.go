package core

import (
	"testing"

	"ofar/internal/packet"
	"ofar/internal/router"
	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// buildRouter constructs router `id` of topology d with paper-style
// profiles. withRing appends a physical escape-ring port (ring 0) whose
// successor is irrelevant for engine-level tests.
func buildRouter(t *testing.T, d *topology.Dragonfly, id int, withRing bool) *router.Router {
	t.Helper()
	n := d.RouterPorts
	if withRing {
		n++
	}
	specs := make([]router.PortSpec, n)
	for port := 0; port < d.RouterPorts; port++ {
		kind, peer, peerPort := d.Peer(id, port)
		ps := router.PortSpec{Kind: kind, Peer: peer, PeerPort: peerPort, UpRouter: peer, UpPort: peerPort, Latency: 10}
		switch kind {
		case topology.PortNode:
			ps.Peer, ps.PeerPort, ps.UpRouter, ps.UpPort = -1, -1, -1, -1
			ps.InCaps, ps.InRing = []int{32, 32, 32}, []int{-1, -1, -1}
			ps.OutCaps, ps.OutRing = []int{8}, []int{-1}
		case topology.PortLocal:
			ps.InCaps, ps.InRing = []int{32, 32, 32}, []int{-1, -1, -1}
			ps.OutCaps, ps.OutRing = []int{32, 32, 32}, []int{-1, -1, -1}
		case topology.PortGlobal:
			ps.Latency = 100
			ps.InCaps, ps.InRing = []int{256, 256}, []int{-1, -1}
			ps.OutCaps, ps.OutRing = []int{256, 256}, []int{-1, -1}
		}
		specs[port] = ps
	}
	var ringOuts []int
	if withRing {
		rp := d.RouterPorts
		specs[rp] = router.PortSpec{
			Kind: topology.PortRing, Peer: id, PeerPort: rp, UpRouter: id, UpPort: rp,
			Latency: 10,
			InCaps:  []int{32, 32, 32}, InRing: []int{0, 0, 0},
			OutCaps: []int{32, 32, 32}, OutRing: []int{0, 0, 0},
		}
		ringOuts = []int{rp}
	}
	return router.New(router.Params{
		ID: id, Topo: d, PktSize: 8, AllocIters: 3,
		RNG: simcore.NewRNG(uint64(id) + 3), Ports: specs, RingOuts: ringOuts,
	})
}

func newPkt(d *topology.Dragonfly, src, dst int) *packet.Packet {
	p := &packet.Packet{}
	p.Reset()
	p.Size = 8
	p.Src, p.Dst = src, dst
	p.SrcGroup, p.DstGroup = d.GroupOfNode(src), d.GroupOfNode(dst)
	return p
}

// saturatePort exhausts every canonical VC of an output port.
func saturatePort(rt *router.Router, port int) {
	op := &rt.Out[port]
	for vc := 0; vc < op.NumVCs(); vc++ {
		if op.EscapeRing(vc) < 0 {
			op.Take(vc, op.Credits(vc))
		}
	}
}

func TestOFARMinimalWhenIdle(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	e := New(d, DefaultConfig())
	p := newPkt(d, 0, d.Nodes-1)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 0)
	if !ok {
		t.Fatal("refused on idle router")
	}
	if req.Out != d.MinimalPort(0, p.Dst) {
		t.Errorf("out=%d want minimal %d", req.Out, d.MinimalPort(0, p.Dst))
	}
	if req.SetGlobalMis || req.SetLocalMis || req.Escape {
		t.Error("idle packet flagged")
	}
}

// TestOFARNoMisrouteOnEmptyNetwork: with the variable threshold, a busy
// minimal port with an empty downstream queue must cause a wait, not a
// misroute (the §V strict "< 0.9·Q_min" semantics).
func TestOFARNoMisrouteOnEmptyQueues(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	e := New(d, DefaultConfig())
	p := newPkt(d, 0, d.Nodes-1)
	min := d.MinimalPort(0, p.Dst)
	// Make the minimal port busy without occupying its queue: a zero-size
	// busy window via another grant is hard to fake, so exhaust one VC and
	// keep queue occupancy zero is impossible — instead mark port busy by
	// simulating a serialization in progress.
	p2 := newPkt(d, 0, p.Dst)
	rt.Arrive(0, 0, p2)
	eng := scriptEngine{out: min}
	if g := rt.Cycle(eng, 0); len(g) != 1 {
		t.Fatal("setup grant failed")
	}
	// Now the minimal port is busy but its queue holds only 8 phits (3%).
	// With Q_min ≈ 0.03 the threshold admits only strictly emptier VCs of
	// the same class; the class VC (vc0) of the alternatives is empty (0%),
	// which IS strictly below — so a global misroute from an injection
	// queue is legitimate here. Local misroute must not fire (minimal is
	// not credit-exhausted).
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 1)
	if ok && req.SetLocalMis {
		t.Error("local misroute without credit exhaustion")
	}
}

type scriptEngine struct{ out int }

func (s scriptEngine) Name() string                                      { return "script" }
func (s scriptEngine) AtInjection(*router.Router, *packet.Packet, int64) {}
func (s scriptEngine) Route(rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	return router.Request{Out: s.out, VC: 0}, true
}

// TestOFARGlobalMisrouteFromInjection: with the minimal global channel
// saturated and idle alternatives, an injection-queue packet misroutes
// through another global port of the router and sets the header flag.
func TestOFARGlobalMisrouteFromInjection(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 3, true) // router 3 of group 0 owns links 6,7
	e := New(d, DefaultConfig())
	rl := d.LocalIndex(3)
	dstGroup := (0 + rl*d.H + 0 + 1) % d.G // target of router 3's global port 0
	dst := dstGroup * d.P * d.A
	p := newPkt(d, d.P*3, dst) // src attached to router 3
	min := d.MinimalPort(3, dst)
	if d.PortKindOf(min) != topology.PortGlobal {
		t.Fatalf("setup: minimal port %d is not global", min)
	}
	saturatePort(rt, min)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 0)
	if !ok {
		t.Fatal("blocked packet did not misroute")
	}
	if !req.SetGlobalMis {
		t.Errorf("expected global misroute, got %+v", req)
	}
	if d.PortKindOf(req.Out) != topology.PortGlobal || req.Out == min {
		t.Errorf("misroute port %d invalid", req.Out)
	}
}

// TestOFARInjectionMisroutesGloballyNotLocally: injection-queue packets in
// the source group use global misrouting even when the minimal port is a
// saturated local link (§IV-A: saves the first local hop of Valiant).
func TestOFARInjectionMisroutesGlobally(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	e := New(d, DefaultConfig())
	dst := d.Nodes - 1 // remote group, minimal is l1 from router 0? verify
	min := d.MinimalPort(0, dst)
	if d.PortKindOf(min) != topology.PortLocal {
		// pick another dst whose entry router differs from router 0
		for dst = d.P * d.A; dst < d.Nodes; dst++ {
			if d.GroupOfNode(dst) != 0 {
				min = d.MinimalPort(0, dst)
				if d.PortKindOf(min) == topology.PortLocal {
					break
				}
			}
		}
	}
	p := newPkt(d, 0, dst)
	saturatePort(rt, min)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 0)
	if !ok {
		t.Fatal("no misroute")
	}
	if !req.SetGlobalMis || d.PortKindOf(req.Out) != topology.PortGlobal {
		t.Errorf("injection packet misrouted %+v, want global", req)
	}
}

// TestOFARLocalThenGlobalFromLocalQueue: source-group packets in local
// queues misroute locally first (when the minimal local port is saturated),
// then globally once the local flag is set.
func TestOFARLocalThenGlobal(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	e := New(d, DefaultConfig())
	dst := d.Nodes - 1
	min := d.MinimalPort(0, dst)
	if d.PortKindOf(min) != topology.PortLocal {
		t.Skip("minimal from router 0 not local for this dst")
	}
	p := newPkt(d, 0, dst)
	saturatePort(rt, min)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal, Ring: -1}, p, 0)
	if !ok || !req.SetLocalMis || d.PortKindOf(req.Out) != topology.PortLocal {
		t.Fatalf("first misroute %+v, want local", req)
	}
	// Apply the flag as a commit would, then route again.
	p.LocalMisrouted = true
	p.MisrouteGroup = 0
	req, ok = e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal, Ring: -1}, p, 0)
	if !ok || !req.SetGlobalMis || d.PortKindOf(req.Out) != topology.PortGlobal {
		t.Fatalf("second misroute %+v, want global", req)
	}
	// Both flags set: no further misrouting is allowed.
	p.GlobalMisrouted = true
	if _, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal, Ring: -1}, p, 0); ok {
		t.Error("misrouted with both flags set")
	}
}

// TestOFARIntermediateGroupLocalOnly: outside the source group only local
// misrouting is allowed, and only when the minimal output is a saturated
// local port.
func TestOFARIntermediateGroupPolicy(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true) // router 0 acts as an intermediate hop
	e := New(d, DefaultConfig())
	// Packet from group 3 heading to a node in group 0 whose router is not 0.
	src := 3 * d.P * d.A
	dst := d.NodeAt(2, 0) // router 2, group 0
	p := newPkt(d, src, dst)
	p.GlobalHops = 1 // arrived via a global hop
	min := d.MinimalPort(0, dst)
	if d.PortKindOf(min) != topology.PortLocal {
		t.Fatal("setup: expected local minimal")
	}
	saturatePort(rt, min)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortGlobal, Ring: -1}, p, 0)
	if !ok || !req.SetLocalMis {
		t.Fatalf("expected local misroute in destination group, got %+v ok=%v", req, ok)
	}
	// With the local flag consumed, nothing else is allowed (no global
	// misroute outside the source group) — the packet waits.
	p.LocalMisrouted = true
	p.MisrouteGroup = 0
	if _, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortGlobal, Ring: -1}, p, 0); ok {
		t.Error("misrouted globally outside the source group")
	}
}

// TestOFARLDisablesLocalMisroute: the OFAR-L model never misroutes locally.
func TestOFARLDisablesLocal(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	cfg := DefaultConfig()
	cfg.LocalMisroute = false
	e := New(d, cfg)
	if e.Name() != "OFAR-L" {
		t.Errorf("name=%s", e.Name())
	}
	dst := d.Nodes - 1
	min := d.MinimalPort(0, dst)
	if d.PortKindOf(min) != topology.PortLocal {
		t.Skip("minimal from router 0 not local")
	}
	p := newPkt(d, 0, dst)
	saturatePort(rt, min)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal, Ring: -1}, p, 0)
	if ok && req.SetLocalMis {
		t.Error("OFAR-L misrouted locally")
	}
	if !ok || !req.SetGlobalMis {
		t.Errorf("OFAR-L should misroute globally, got %+v ok=%v", req, ok)
	}
}

// TestOFAREscapeAfterTimeout: a packet blocked past the escape timeout with
// no misroute candidates requests the ring with a two-packet bubble.
func TestOFAREscapeAfterTimeout(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	cfg := DefaultConfig()
	cfg.EscapeTimeout = 10
	e := New(d, cfg)
	dst := d.Nodes - 1
	p := newPkt(d, 0, dst)
	p.GlobalMisrouted = true
	p.LocalMisrouted = true
	p.MisrouteGroup = 0
	saturatePort(rt, d.MinimalPort(0, dst))
	p.BlockedSince = 0
	if _, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal, Ring: -1}, p, 5); ok {
		t.Fatal("escaped before timeout")
	}
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal, Ring: -1}, p, 10)
	if !ok || !req.EnterRing || !req.Escape {
		t.Fatalf("expected ring entry at timeout, got %+v ok=%v", req, ok)
	}
	// Bubble: deplete the escape VCs below 2 packets and retry.
	rp := d.RouterPorts
	for vc := 0; vc < 3; vc++ {
		cr := rt.Out[rp].Credits(vc)
		if cr > 15 {
			rt.Out[rp].Take(vc, cr-15) // leave <2 packets of room
		}
	}
	if _, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal, Ring: -1}, p, 20); ok {
		t.Error("ring entry granted without a two-packet bubble")
	}
}

// TestOFAROnRingBehavior: ring packets exit to an available minimal port,
// continue under a one-packet bubble, and always may eject at destination.
func TestOFAROnRingBehavior(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	cfg := DefaultConfig()
	cfg.MaxRingExits = 1
	e := New(d, cfg)
	dst := d.Nodes - 1
	p := newPkt(d, 0, dst)
	p.OnRing = true
	p.Ring = 0
	in := router.InCtx{MinHint: -1, Kind: topology.PortRing, Escape: true, Ring: 0}

	// Minimal available: exit.
	req, ok := e.Route(rt, in, p, 0)
	if !ok || !req.ExitRing {
		t.Fatalf("expected ring exit, got %+v", req)
	}
	// Minimal saturated: continue on the ring (1-packet bubble).
	saturatePort(rt, d.MinimalPort(0, dst))
	req, ok = e.Route(rt, in, p, 0)
	if !ok || !req.Escape || req.ExitRing {
		t.Fatalf("expected ring continuation, got %+v ok=%v", req, ok)
	}
	// Exit budget exhausted: may not exit mid-route even if minimal frees.
	p.RingExits = 1
	rt.AddCredit(d.MinimalPort(0, dst), 0, 8)
	req, ok = e.Route(rt, in, p, 0)
	if ok && req.ExitRing {
		t.Error("exited the ring beyond the exit budget")
	}
	// ... but ejection at the destination router is always allowed.
	pHome := newPkt(d, d.Nodes-1, d.NodeAt(0, 1))
	pHome.OnRing = true
	pHome.Ring = 0
	pHome.RingExits = 99
	req, ok = e.Route(rt, in, pHome, 0)
	if !ok || !req.ExitRing || d.PortKindOf(req.Out) != topology.PortNode {
		t.Fatalf("destination ejection from ring refused: %+v ok=%v", req, ok)
	}
}

// TestOFARIntraGroupLocalMisrouteOnly: intra-group traffic may only detour
// locally, once.
func TestOFARIntraGroup(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	e := New(d, DefaultConfig())
	dst := d.NodeAt(2, 0) // same group, router 2
	p := newPkt(d, 0, dst)
	min := d.MinimalPort(0, dst)
	saturatePort(rt, min)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 0)
	if !ok || !req.SetLocalMis || d.PortKindOf(req.Out) != topology.PortLocal {
		t.Fatalf("intra-group misroute %+v ok=%v, want local", req, ok)
	}
	if req.SetGlobalMis {
		t.Error("intra-group traffic misrouted globally")
	}
}

// TestOFARHeadroomFilter: a candidate whose class VC lacks two packets of
// room is rejected as noise.
func TestOFARHeadroomFilter(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	e := New(d, DefaultConfig())
	dst := d.NodeAt(2, 0)
	p := newPkt(d, 0, dst)
	min := d.MinimalPort(0, dst)
	saturatePort(rt, min)
	// Leave exactly one packet of room on every alternative local port's
	// class VC: all candidates must be rejected.
	for port := d.LocalPortBase(); port < d.GlobalPortBase(); port++ {
		if port == min {
			continue
		}
		cr := rt.Out[port].Credits(0)
		rt.Out[port].Take(0, cr-8)
	}
	if req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 0); ok {
		t.Errorf("misrouted to a headroom-less candidate: %+v", req)
	}
}

func TestVariablePolicyConfig(t *testing.T) {
	v := VariablePolicyConfig()
	if v.StaticNonMin >= 0 || v.ThMin != 0 || v.NonMinFactor != 0.9 {
		t.Errorf("variable policy config: %+v", v)
	}
	d := DefaultConfig()
	if d.StaticNonMin != 0.4 || d.ThMin != 1.0 {
		t.Errorf("default static config: %+v", d)
	}
}

func TestOFARConfigValidation(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for threshold-less config")
		}
	}()
	New(d, Config{NonMinFactor: 0, StaticNonMin: -1})
}

// TestOFARVariablePolicyStrictness: under the §V variable policy, a busy
// minimal port with an empty downstream queue must NOT trigger misrouting
// (candidates need occupancy strictly below 0.9·Q_min = 0).
func TestOFARVariablePolicyStrictness(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	e := New(d, VariablePolicyConfig())
	e.AtInjection(rt, nil, 0) // no-op, covers the hook
	dst := d.Nodes - 1
	p := newPkt(d, 0, dst)
	min := d.MinimalPort(0, dst)
	// Make the minimal port busy via a scripted grant (queue stays almost
	// empty: only the granted packet's 8 phits are accounted downstream).
	p2 := newPkt(d, 0, dst)
	rt.Arrive(0, 0, p2)
	if g := rt.Cycle(scriptEngine{out: min}, 0); len(g) != 1 {
		t.Fatal("setup grant failed")
	}
	// Refund the grant's credits so the port is busy with a truly empty
	// downstream queue (Q_min = 0): nothing is strictly below 0.9·0.
	rt.AddCredit(min, 0, p2.Size)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 1)
	if ok && (req.SetGlobalMis || req.SetLocalMis) {
		t.Errorf("variable policy misrouted on a serialization collision: %+v", req)
	}
}

// TestOFARVariablePolicyMisroutesOnBacklog: with genuine backlog on the
// minimal queue and an empty alternative, the variable policy misroutes.
func TestOFARVariablePolicyMisroutesOnBacklog(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 3, true)
	e := New(d, VariablePolicyConfig())
	rl := d.LocalIndex(3)
	dstGroup := (rl*d.H + 1) % d.G
	dst := dstGroup * d.P * d.A
	p := newPkt(d, d.P*3, dst)
	min := d.MinimalPort(3, dst)
	if d.PortKindOf(min) != topology.PortGlobal {
		t.Fatal("setup: want global minimal")
	}
	saturatePort(rt, min) // occupancy 100%, credits exhausted
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 0)
	if !ok || !req.SetGlobalMis {
		t.Fatalf("variable policy did not misroute on backlog: %+v ok=%v", req, ok)
	}
}

// TestOFARLeastOccupiedSelection: with the LeastOccupied option the engine
// picks the emptiest eligible candidate deterministically.
func TestOFARLeastOccupiedSelection(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 3, true)
	cfg := DefaultConfig()
	cfg.LeastOccupied = true
	e := New(d, cfg)
	// Destination whose minimal path leaves via a LOCAL port, so both of
	// router 3's global ports are misroute candidates.
	var dst int
	var min int
	for dst = d.P * d.A; dst < d.Nodes; dst++ {
		if d.GroupOfNode(dst) == 0 {
			continue
		}
		min = d.MinimalPort(3, dst)
		if d.PortKindOf(min) == topology.PortLocal {
			break
		}
	}
	p := newPkt(d, d.P*3, dst)
	saturatePort(rt, min)
	g0 := d.GlobalPortBase()
	rt.Out[g0].Take(0, 64) // 12.5% occupancy on the first global port
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode, Ring: -1}, p, 0)
	if !ok || !req.SetGlobalMis {
		t.Fatalf("no misroute: %+v ok=%v", req, ok)
	}
	if req.Out != g0+1 {
		t.Errorf("least-occupied pick %d, want the empty port %d", req.Out, g0+1)
	}
}

// TestVCFitsClamping: hop classes beyond the VC count clamp to the last VC.
func TestVCFitsClamping(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, true)
	p := newPkt(d, 0, d.Nodes-1)
	p.GlobalHops = 9 // clamps to the last VC
	min := d.GlobalPortBase()
	if !vcFits(rt, min, p) {
		t.Error("clamped class should fit on a fresh port")
	}
	last := rt.Out[min].NumVCs() - 1
	rt.Out[min].Take(last, rt.Out[min].Credits(last))
	if vcFits(rt, min, p) {
		t.Error("clamped class reported fit on an exhausted VC")
	}
}
