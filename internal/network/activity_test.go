package network

import (
	"fmt"
	"testing"

	"ofar/internal/traffic"
)

// idleConfig returns a serial test configuration for one routing mechanism,
// covering the VC requirements of every engine (PAR needs the extra
// source-group hop VC).
func idleConfig(rt Routing) Config {
	cfg := testConfig(rt)
	if rt == PAR {
		cfg.Ring = RingNone
		cfg.LocalVCs, cfg.InjVCs = 4, 4
	}
	return cfg
}

// requireIdlePurity calls Cycle directly on every router of a quiescent
// network and requires the call to be side-effect-free: no grants, no RNG
// draws, no arbiter LRS movement, no buffer/credit/occupancy change (all
// folded into Router.StateFingerprint), and untouched run statistics. This
// is the load-bearing contract of the activity scheduler: a skipped router
// must behave exactly as if it had been cycled.
func requireIdlePurity(t *testing.T, n *Network) {
	t.Helper()
	gen, inj, del := n.Stats.Generated, n.Stats.Injected, n.Stats.Delivered
	for _, r := range n.Routers {
		if r.HasRoutableWork() {
			t.Fatalf("router %d reports routable work on a quiescent network (%d ready VCs)",
				r.ID, r.RoutableVCs())
		}
		before := r.StateFingerprint()
		for i := 0; i < 3; i++ {
			if grants := r.Cycle(n.Engine, n.Now()+int64(i)); len(grants) != 0 {
				t.Fatalf("router %d: idle Cycle produced %d grants", r.ID, len(grants))
			}
		}
		if after := r.StateFingerprint(); after != before {
			t.Fatalf("router %d: idle Cycle mutated state (fingerprint %016x -> %016x): "+
				"RNG draw, arbiter movement or occupancy change on an idle router",
				r.ID, before, after)
		}
	}
	if n.Stats.Generated != gen || n.Stats.Injected != inj || n.Stats.Delivered != del {
		t.Fatal("idle cycles changed run statistics")
	}
}

// TestIdleCycleIsPure proves, for every engine, that Cycle on a router with
// no routable buffer head is a no-op — first on a freshly built network,
// then again after real traffic has exercised the arbiters, RNG streams and
// credit loops and fully drained.
func TestIdleCycleIsPure(t *testing.T) {
	for _, rt := range []Routing{MIN, VAL, PB, UGAL, PAR, OFAR, OFARL} {
		t.Run(string(rt), func(t *testing.T) {
			cfg := idleConfig(rt)
			n := mustNet(t, cfg)
			requireIdlePurity(t, n)

			n.SetGenerator(traffic.NewBurst(traffic.NewUniform(n.Topo), 3, n.Topo.Nodes))
			if !n.RunUntilDrained(200000) {
				t.Fatalf("burst not drained: %d/%d", n.Stats.Delivered, n.Stats.Generated)
			}
			// Let straggler credit events land so the network is quiescent.
			n.Run(cfg.GlobalLatency + cfg.PacketSize + 2)
			requireIdlePurity(t, n)
		})
	}
}

// TestActiveSetTracksLoad watches the scheduler's active set directly: a
// quiescent network schedules no routers, traffic wakes them, and draining
// puts every router back to sleep.
func TestActiveSetTracksLoad(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	if got := len(n.compactActive()); got != 0 {
		t.Fatalf("fresh network has %d active routers, want 0", got)
	}
	n.SetGenerator(traffic.NewBurst(traffic.NewUniform(n.Topo), 2, n.Topo.Nodes))
	n.Run(5)
	if got := len(n.compactActive()); got == 0 {
		t.Fatal("no routers awake with a burst in flight")
	}
	if !n.RunUntilDrained(200000) {
		t.Fatalf("burst not drained: %d/%d", n.Stats.Delivered, n.Stats.Generated)
	}
	n.Run(cfg.GlobalLatency + cfg.PacketSize + 2)
	if got := len(n.compactActive()); got != 0 {
		t.Fatalf("%d routers still awake after draining, want 0", got)
	}
	for _, r := range n.Routers {
		if r.RoutableVCs() != 0 {
			t.Fatalf("router %d: %d ready VCs after drain", r.ID, r.RoutableVCs())
		}
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestReadyVCCounterMatchesBuffers cross-checks the incrementally tracked
// routable-head counter against a from-scratch scan of the buffers, in the
// middle of a loaded run — the counter is the scheduler's wake predicate,
// so a drift would mean skipped work.
func TestReadyVCCounterMatchesBuffers(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.6, cfg.PacketSize))
	for c := 0; c < 600; c++ {
		n.Step()
		if c%50 != 0 {
			continue
		}
		for _, r := range n.Routers {
			want := 0
			for i := range r.In {
				var wantMask uint64
				for vc := range r.In[i].VCs {
					buf := &r.In[i].VCs[vc]
					if buf.Len() > 0 && !buf.Draining() {
						want++
						wantMask |= 1 << uint(vc)
					}
				}
				// The per-port ready bitset the allocator iterates must agree
				// bit for bit with the same predicate the counter tracks.
				if got := r.In[i].ReadyMask(); got != wantMask {
					t.Fatalf("cycle %d router %d port %d: ready mask %b, buffers say %b", c, r.ID, i, got, wantMask)
				}
			}
			if got := r.RoutableVCs(); got != want {
				t.Fatalf("cycle %d router %d: tracked %d ready VCs, buffers hold %d", c, r.ID, got, want)
			}
		}
	}
}

// BenchmarkStepByLoad is the per-cycle cost tracker for the activity
// scheduler and the worker pool: h=3 cycle cost across the load range of
// the paper's latency/throughput sweeps (most sweep points sit below
// saturation, where the scheduler skips the bulk of the routers), with the
// scheduler on and off, serial and with 4 and 8 pool workers. The parallel
// rows exercise the cutover exactly as production runs do: low-load steps
// fall back to the serial path, saturated steps dispatch to the pool.
// `make bench-json` records the numbers in BENCH_step.json.
func BenchmarkStepByLoad(b *testing.B) {
	for _, load := range []float64{0.05, 0.2, 0.5, 0.9, 0.99} {
		for _, workers := range []int{0, 4, 8} {
			for _, sched := range []bool{true, false} {
				wname := "serial"
				if workers > 0 {
					wname = fmt.Sprintf("workers%d", workers)
				}
				sname := "sched"
				if !sched {
					sname = "nosched"
				}
				b.Run(fmt.Sprintf("load=%.2f/%s/%s", load, wname, sname), func(b *testing.B) {
					cfg := DefaultConfig(3)
					cfg.Workers = workers
					cfg.DisableActivitySched = !sched
					n, err := New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					defer n.Close()
					n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
					n.Run(2000) // reach steady state before measuring
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						n.Step()
					}
				})
			}
		}
	}

	// Full-scale h=6 rows (876 routers, 5256 nodes): the routine figure
	// regime since the group-sharded Step (see EXPERIMENTS.md). Serial vs
	// ShardByGroup with 4 workers, across the low/mid/saturated loads the
	// paper's sweeps hit; the shard rows go through the production cutover,
	// so on a single-P host they measure the serial fall-back exactly as a
	// production run would. Skipped under -short: each warm-up alone runs
	// 2000 full-size cycles.
	if testing.Short() {
		return
	}
	for _, load := range []float64{0.05, 0.5, 0.9} {
		for _, mode := range []string{"serial", "shard4"} {
			b.Run(fmt.Sprintf("h6/load=%.2f/%s", load, mode), func(b *testing.B) {
				cfg := DefaultConfig(6)
				if mode == "shard4" {
					cfg.Workers = 4
					cfg.ShardByGroup = true
				}
				n, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer n.Close()
				n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
				n.Run(2000) // reach steady state before measuring
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
			})
		}
	}

	// Stretch-regime h=8 rows (a=16, 129 groups, 2064 routers, 16512 nodes):
	// the regime the sharded injection front-end opened. Only the edges of the
	// load range — a serial h=8 warm-up alone costs hundreds of milliseconds,
	// so the mid-load rows would triple the suite's wall clock for numbers the
	// h=6 rows already track. The shorter warm-up (500 cycles) reaches a
	// steady in-flight population at these loads; it is not the paper-grade
	// measurement protocol, just a cost tracker.
	for _, load := range []float64{0.05, 0.9} {
		for _, mode := range []string{"serial", "shard4"} {
			b.Run(fmt.Sprintf("h8/load=%.2f/%s", load, mode), func(b *testing.B) {
				cfg := DefaultConfig(8)
				if mode == "shard4" {
					cfg.Workers = 4
					cfg.ShardByGroup = true
				}
				n, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer n.Close()
				n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
				n.Run(500)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
			})
		}
	}
}

// BenchmarkStepPhases is the per-phase cost breakdown behind `benchjson
// -phases`: the h=6 system with EnablePhaseTimings on, reporting each Step
// phase (fault application, event delivery, generation/injection, PB
// publication, router stage) as a custom <phase>-ns/op metric next to the
// whole-step ns/op. It is a separate benchmark rather than extra rows in
// StepByLoad so the timing branch's clock reads never contaminate the
// long-tracked StepByLoad baselines. The serial-vs-shard4 pair is the
// headline the sharded injection front-end is judged by: the generate-ns
// share must drop under shard4 while ns/op does not regress.
func BenchmarkStepPhases(b *testing.B) {
	if testing.Short() {
		b.Skip("phase breakdown warms up 2000 full-size h=6 cycles per row")
	}
	for _, load := range []float64{0.5, 0.9} {
		for _, mode := range []string{"serial", "shard4"} {
			b.Run(fmt.Sprintf("h6/load=%.2f/%s", load, mode), func(b *testing.B) {
				cfg := DefaultConfig(6)
				if mode == "shard4" {
					cfg.Workers = 4
					cfg.ShardByGroup = true
				}
				n, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer n.Close()
				n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
				n.Run(2000) // reach steady state before measuring
				n.EnablePhaseTimings()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Step()
				}
				b.StopTimer()
				ph := n.PhaseTimings()
				if ph.Cycles > 0 {
					c := float64(ph.Cycles)
					b.ReportMetric(float64(ph.Faults)/c, "faults-ns/op")
					b.ReportMetric(float64(ph.Events)/c, "events-ns/op")
					b.ReportMetric(float64(ph.Generate)/c, "generate-ns/op")
					b.ReportMetric(float64(ph.PB)/c, "pb-ns/op")
					b.ReportMetric(float64(ph.Routers)/c, "routers-ns/op")
				}
			})
		}
	}
}
