// Package network assembles the full simulated system: dragonfly topology,
// routers with their buffers and credits, the escape subnetwork, the routing
// engine, traffic sources and statistics, and drives the single-cycle loop.
package network

import (
	"fmt"
	"strconv"
	"strings"

	"ofar/internal/core"
	"ofar/internal/routing"
)

// RingMode selects how the escape subnetwork is realized (§IV-C, §VII).
type RingMode int

const (
	// RingNone disables the escape network (only safe for mechanisms with
	// VC-ordered deadlock avoidance: MIN, VAL, PB, UGAL).
	RingNone RingMode = iota
	// RingPhysical adds dedicated ring ports and links to every router.
	RingPhysical
	// RingEmbedded adds an escape VC to the canonical links along the ring.
	RingEmbedded
)

func (m RingMode) String() string {
	switch m {
	case RingPhysical:
		return "physical"
	case RingEmbedded:
		return "embedded"
	default:
		return "none"
	}
}

// Routing names a routing mechanism.
type Routing string

// Available routing mechanisms.
const (
	MIN   Routing = "MIN"
	VAL   Routing = "VAL"
	PB    Routing = "PB"
	UGAL  Routing = "UGAL-L"
	PAR   Routing = "PAR"
	OFAR  Routing = "OFAR"
	OFARL Routing = "OFAR-L"
)

// FaultKind names a class of injected failure.
type FaultKind string

// Fault kinds.
const (
	// FaultLink kills one link: the output port of the named router and the
	// reverse direction (ring ports are unidirectional and lose only the
	// named direction).
	FaultLink FaultKind = "link"
	// FaultRouter kills a whole router: every attached link, its buffered
	// packets (except in-flight drains, which complete) and its nodes.
	FaultRouter FaultKind = "router"
)

// Fault is one scheduled failure. Faults apply at the top of the cycle
// `Cycle`, before event delivery and routing, on every execution mode —
// which is what keeps a faulted run bit-identical across worker counts and
// scheduler settings.
type Fault struct {
	Cycle  int64     `json:"cycle"`
	Kind   FaultKind `json:"kind"`
	Router int       `json:"router"`
	// Port is the failing output port of Router (link faults only). Node
	// ports cannot fail individually; physical escape-ring ports are
	// addressed as RouterPorts+ring.
	Port int `json:"port,omitempty"`
}

// ParseFaults parses a comma-separated inline fault schedule:
// "link@CYCLE:ROUTER:PORT" kills one link, "router@CYCLE:ROUTER" a router,
// e.g. "link@5000:12:7,router@20000:3".
func ParseFaults(spec string) ([]Fault, error) {
	var fs []Fault
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("network: fault %q: want KIND@CYCLE:ROUTER[:PORT]", item)
		}
		parts := strings.Split(rest, ":")
		nums := make([]int64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("network: fault %q: %w", item, err)
			}
			nums[i] = v
		}
		switch FaultKind(kind) {
		case FaultLink:
			if len(nums) != 3 {
				return nil, fmt.Errorf("network: fault %q: link wants CYCLE:ROUTER:PORT", item)
			}
			fs = append(fs, Fault{Cycle: nums[0], Kind: FaultLink, Router: int(nums[1]), Port: int(nums[2])})
		case FaultRouter:
			if len(nums) != 2 {
				return nil, fmt.Errorf("network: fault %q: router wants CYCLE:ROUTER", item)
			}
			fs = append(fs, Fault{Cycle: nums[0], Kind: FaultRouter, Router: int(nums[1])})
		default:
			return nil, fmt.Errorf("network: fault %q: unknown kind %q", item, kind)
		}
	}
	return fs, nil
}

// Config describes one simulated network. DefaultConfig returns the paper's
// §V parameters.
type Config struct {
	// Topology: P nodes/router, A routers/group, H global links/router,
	// Groups groups (0 = maximum size a·h+1).
	P, A, H, Groups int

	PacketSize int // phits

	LocalLatency  int // cycles
	GlobalLatency int // cycles

	LocalBuf  int // phits per local-link VC FIFO
	GlobalBuf int // phits per global-link VC FIFO
	InjBuf    int // phits per injection VC FIFO

	LocalVCs  int
	GlobalVCs int
	InjVCs    int

	Ring     RingMode
	NumRings int // embedded rings (≥1; physical mode uses 1 per ring too)
	RingVCs  int // VCs per physical ring port (embedded rings add 1 escape VC per link)
	RingBuf  int // phits per escape VC FIFO

	AllocIters int // separable allocator iterations

	// PendingCap bounds the per-node source queue (packets); open-loop
	// sources drop beyond it (counted as SourceBlocked), closed-loop
	// sources retract and retry.
	PendingCap int

	Routing  Routing
	OFAR     core.Config
	Adaptive routing.AdaptiveConfig

	// Workers sets the intra-cycle parallelism of the router stage: the
	// per-router compute phase (routing decisions + switch allocation) runs
	// on a persistent pool of this many workers (the Step caller plus
	// Workers−1 goroutines parked between cycles), balanced over the awake
	// routers by a work-stealing cursor, while grants are still committed
	// serially in router-index order. Because every stochastic draw comes
	// from a per-router RNG stream and engine clones are behaviorally
	// identical, results are bit-identical to the serial engine for any
	// worker count. 0 or 1 runs the classic serial loop; negative values
	// are rejected. Networks built with Workers > 1 own goroutines: call
	// Network.Close when done with them.
	Workers int

	// ParallelCutover is the active-list length below which a Workers > 1
	// network still runs the cycle serially on the caller's goroutine: with
	// only a few awake routers the pool's wake/join barrier costs more than
	// the sharded compute saves. 0 auto-calibrates from the worker count
	// (see autoCutover); 1 forces every non-empty cycle through the pool
	// (tests use this); values above the router count effectively pin the
	// network serial. Results are bit-identical either way — the cutover
	// moves wall-clock time only. Negative values are rejected.
	ParallelCutover int

	// ShardByGroup shards both per-cycle phases by dragonfly group when
	// Workers > 1: the event phase and the router stage run as parallel
	// per-group shards (whole groups are the stealing unit), with every
	// cross-shard effect — timing-wheel insertions, in-flight deltas,
	// delivery and drop effects — buffered per group during the compute
	// phase and committed at a serial barrier in fixed (group, router, due
	// index) order. Group ownership also matches the struct-of-arrays
	// arena layout (one router.Arena per group), so a shard's working set
	// is contiguous. Results are bit-identical to the serial engine for
	// any worker count, and snapshots round-trip across sharding on/off
	// (the field is normalized out of snapshot identity, like Workers).
	// Ignored when Workers <= 1.
	ShardByGroup bool

	// DisableActivitySched turns off the active-set router scheduler and
	// reverts Step to visiting every router every cycle. The scheduler skips
	// only routers whose Cycle is provably a no-op (no routable buffer
	// head), so results are bit-identical either way; this escape hatch
	// exists for differential testing and benchmarking, not correctness.
	DisableActivitySched bool

	// DisableRouteCache turns off the epoch-invalidated route memoization in
	// every router (see router.CacheableEngine). The cache only replays
	// decisions whose inputs provably did not change, so results are
	// bit-identical either way; like DisableActivitySched, this escape hatch
	// exists for differential testing and benchmarking, not correctness.
	DisableRouteCache bool

	// DisableShardedGenerate keeps the injection front-end on the serial
	// per-group loop even when ShardByGroup would shard it (see
	// Network.generate). The sharded path performs the identical draws from
	// the identical per-group traffic streams with effects committed in the
	// identical (group, node) order, so results are bit-identical either
	// way; like the two flags above, this escape hatch exists for
	// differential testing and benchmarking, not correctness.
	DisableShardedGenerate bool

	// Faults is the deterministic failure schedule: each entry kills a link
	// or a whole router at the top of its cycle. The schedule is applied in
	// (Cycle, Kind, Router, Port) order regardless of the order given here.
	Faults []Fault

	// Congestion is the optional injection-throttling congestion manager
	// (§VII lists congestion management as ongoing work; Fig. 9 shows the
	// collapse it prevents).
	Congestion CongestionConfig

	Seed uint64
}

// CongestionConfig tunes the injection-throttling congestion manager: while
// a router's canonical input buffering is occupied beyond the threshold
// fraction, its nodes stop injecting (packets wait at the sources). This is
// the simplest of the HPC congestion-management family the paper defers to
// and is enough to keep the reduced-VC configuration of Fig. 9 from
// collapsing.
type CongestionConfig struct {
	Enabled   bool
	Threshold float64 // default 0.7 when Enabled and unset
}

// DefaultConfig returns the paper's §V configuration for a balanced
// maximum-size dragonfly with the given h: p = h, a = 2h, 8-phit packets,
// 10/100-cycle local/global latencies, 32/256-phit FIFOs, 3 local and
// injection VCs, 2 global VCs, a physical escape ring with the same VC
// counts, 3 allocator iterations, and OFAR's variable misroute threshold
// Th_min = 0, Th_non-min = 0.9·Q_min.
func DefaultConfig(h int) Config {
	return Config{
		P: h, A: 2 * h, H: h, Groups: 0,
		PacketSize:    8,
		LocalLatency:  10,
		GlobalLatency: 100,
		LocalBuf:      32,
		GlobalBuf:     256,
		InjBuf:        32,
		LocalVCs:      3,
		GlobalVCs:     2,
		InjVCs:        3,
		Ring:          RingPhysical,
		NumRings:      1,
		RingVCs:       3,
		RingBuf:       32,
		AllocIters:    3,
		PendingCap:    16,
		Routing:       OFAR,
		OFAR:          core.DefaultConfig(),
		Adaptive:      routing.DefaultAdaptiveConfig(),
		Seed:          1,
	}
}

// Validate reports the first configuration error.
func (c *Config) Validate() error {
	switch {
	case c.P < 1 || c.A < 1 || c.H < 1:
		return fmt.Errorf("network: p/a/h must be positive")
	case c.Groups < 0 || c.Groups > c.A*c.H+1:
		return fmt.Errorf("network: group count %d outside [0, a·h+1=%d]", c.Groups, c.A*c.H+1)
	case c.PacketSize < 1:
		return fmt.Errorf("network: packet size must be positive")
	case c.LocalLatency < 1 || c.GlobalLatency < 1:
		return fmt.Errorf("network: link latencies must be ≥ 1")
	case c.LocalBuf < c.PacketSize || c.GlobalBuf < c.PacketSize || c.InjBuf < c.PacketSize:
		return fmt.Errorf("network: every VC FIFO must hold at least one packet (VCT)")
	case c.LocalVCs < 1 || c.GlobalVCs < 1 || c.InjVCs < 1:
		return fmt.Errorf("network: VC counts must be ≥ 1")
	case c.AllocIters < 1:
		return fmt.Errorf("network: allocator iterations must be ≥ 1")
	case c.PendingCap < 1:
		return fmt.Errorf("network: pending cap must be ≥ 1")
	case c.Workers < 0:
		return fmt.Errorf("network: worker count must be ≥ 0 (0 = serial)")
	case c.ParallelCutover < 0:
		return fmt.Errorf("network: parallel cutover must be ≥ 0 (0 = auto)")
	}
	// The router's allocator and route cache keep per-port request/match/
	// epoch state in single uint64 bitsets, so both the port count and the
	// per-port VC count are capped at 64. Far beyond the paper's radices
	// (h=6 ⇒ 23 ports), but guard it explicitly.
	{
		nPorts := c.P + c.A - 1 + c.H
		if c.Ring == RingPhysical {
			nPorts += c.NumRings
		}
		if nPorts > 64 {
			return fmt.Errorf("network: router radix %d exceeds 64 ports (allocator bitset limit)", nPorts)
		}
		maxVCs := c.LocalVCs
		if c.GlobalVCs > maxVCs {
			maxVCs = c.GlobalVCs
		}
		if c.InjVCs > maxVCs {
			maxVCs = c.InjVCs
		}
		if c.Ring == RingPhysical && c.RingVCs > maxVCs {
			maxVCs = c.RingVCs
		}
		if c.Ring == RingEmbedded {
			maxVCs += c.NumRings // embedded rings add escape VCs to canonical links
		}
		if maxVCs > 64 {
			return fmt.Errorf("network: %d VCs on one port exceeds 64 (allocator bitset limit)", maxVCs)
		}
	}
	if c.Ring != RingNone {
		if c.NumRings < 1 {
			return fmt.Errorf("network: ring mode %v needs NumRings ≥ 1", c.Ring)
		}
		if c.RingBuf < 2*c.PacketSize {
			return fmt.Errorf("network: escape VC FIFOs must hold ≥ 2 packets for the bubble condition")
		}
		if c.Ring == RingPhysical && c.RingVCs < 1 {
			return fmt.Errorf("network: physical ring needs RingVCs ≥ 1")
		}
	}
	if c.Congestion.Enabled && (c.Congestion.Threshold < 0 || c.Congestion.Threshold > 1) {
		return fmt.Errorf("network: congestion threshold %f outside [0,1]", c.Congestion.Threshold)
	}
	if len(c.Faults) > 0 {
		groups := c.Groups
		if groups == 0 {
			groups = c.A*c.H + 1
		}
		routers := groups * c.A
		nPorts := c.P + c.A - 1 + c.H
		if c.Ring == RingPhysical {
			nPorts += c.NumRings
		}
		for i, f := range c.Faults {
			switch {
			case f.Cycle < 0:
				return fmt.Errorf("network: fault %d: negative cycle %d", i, f.Cycle)
			case f.Kind != FaultLink && f.Kind != FaultRouter:
				return fmt.Errorf("network: fault %d: unknown kind %q", i, f.Kind)
			case f.Router < 0 || f.Router >= routers:
				return fmt.Errorf("network: fault %d: router %d outside [0,%d)", i, f.Router, routers)
			case f.Kind == FaultLink && (f.Port < c.P || f.Port >= nPorts):
				return fmt.Errorf("network: fault %d: port %d outside [%d,%d) (node ports cannot fail individually)",
					i, f.Port, c.P, nPorts)
			}
		}
	}
	switch c.Routing {
	case MIN, VAL, PB, UGAL:
	case PAR:
		if c.LocalVCs < 4 || c.InjVCs < 4 {
			return fmt.Errorf("network: PAR needs 4 local/injection VCs for its extra source-group hop (have %d/%d)", c.LocalVCs, c.InjVCs)
		}
	case OFAR, OFARL:
		if c.Ring == RingNone && c.OFAR.EscapeTimeout >= 0 {
			return fmt.Errorf("network: %s requires an escape ring (or EscapeTimeout < 0 to explicitly run unprotected)", c.Routing)
		}
	default:
		return fmt.Errorf("network: unknown routing %q", c.Routing)
	}
	return nil
}
