package network

import (
	"testing"
	"testing/quick"

	"ofar/internal/topology"
	"ofar/internal/traffic"
)

// Failure-injection and edge-case tests (DESIGN.md §9).

// TestOFARLWithoutRingDeadlocks demonstrates the negative result that
// motivates the escape subnetwork: OFAR-L (free VC usage, no local detours)
// under worst-case adversarial overload with NO escape network eventually
// stops delivering — a genuine deadlock the escape ring exists to break.
func TestOFARLWithoutRingDeadlocks(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = OFARL
	cfg.Ring = RingNone
	cfg.OFAR.EscapeTimeout = -1 // explicitly unprotected
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(12000)
	before := n.Stats.Delivered
	n.Run(4000)
	if n.Stats.Delivered != before {
		t.Skip("no deadlock materialized at this scale/seed; the property is probabilistic")
	}
	// Deadlocked: conservation must still hold (packets stuck, not lost).
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestRingRescuesDeadlock: the identical scenario with the escape ring
// keeps delivering indefinitely.
func TestRingRescuesDeadlock(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = OFARL
	cfg.Ring = RingPhysical
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(12000)
	before := n.Stats.Delivered
	n.Run(4000)
	if n.Stats.Delivered == before {
		t.Fatal("escape ring failed to keep the network alive")
	}
}

// TestIntraGroupTraffic: ADV+0 keeps every packet inside its source group;
// all mechanisms must deliver with ≤ diameter-1 hops.
func TestIntraGroupTraffic(t *testing.T) {
	for _, rt := range []Routing{MIN, VAL, PB, OFAR} {
		t.Run(string(rt), func(t *testing.T) {
			cfg := testConfig(rt)
			n := mustNet(t, cfg)
			n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 0), 0.2, cfg.PacketSize))
			n.Run(3000)
			if n.Stats.Delivered == 0 {
				t.Fatal("no intra-group deliveries")
			}
			if err := n.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSmallestNetwork: h=1 (6 routers, 6 nodes) — the degenerate balanced
// dragonfly still routes correctly under every mechanism.
func TestSmallestNetwork(t *testing.T) {
	for _, rt := range []Routing{MIN, OFAR} {
		cfg := DefaultConfig(1)
		cfg.Routing = rt
		if rt == MIN {
			cfg.Ring = RingNone
		} else {
			// G=3 < h+2 cannot stitch a Hamiltonian ring; run OFAR
			// explicitly unprotected at low load.
			cfg.Ring = RingNone
			cfg.OFAR.EscapeTimeout = -1
		}
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.1, cfg.PacketSize))
		n.Run(5000)
		if n.Stats.Delivered == 0 {
			t.Fatalf("%s: nothing delivered on h=1", rt)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestZeroLoad: no generation, no deliveries, no crashes, clean drain state.
func TestZeroLoad(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0, cfg.PacketSize))
	n.Run(2000)
	if n.Stats.Generated != 0 || n.Stats.Delivered != 0 {
		t.Error("phantom traffic at zero load")
	}
	if n.BufferedPackets() != 0 || n.InFlightPackets() != 0 {
		t.Error("phantom packets in network")
	}
}

// TestSingleCyclePacket: packet size 1 phit with 1-phit-capable buffers.
func TestTinyPackets(t *testing.T) {
	cfg := testConfig(MIN)
	cfg.PacketSize = 1
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.2, cfg.PacketSize))
	n.Run(2000)
	if n.Stats.Delivered == 0 {
		t.Fatal("no single-phit deliveries")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestLargePackets: jumbo packets relative to buffers (one packet per VC).
func TestLargePackets(t *testing.T) {
	cfg := testConfig(MIN)
	cfg.PacketSize = 32 // local VC FIFO holds exactly one packet
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.2, cfg.PacketSize))
	n.Run(6000)
	if n.Stats.Delivered == 0 {
		t.Fatal("no jumbo deliveries")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomConfigsQuick: property test — any valid small configuration
// simulates without violating packet conservation.
func TestRandomConfigsQuick(t *testing.T) {
	routings := []Routing{MIN, VAL, PB, UGAL, OFAR, OFARL}
	f := func(hSel, rtSel, ringSel, loadSel, seed uint8) bool {
		h := 1 + int(hSel)%2 // h in {1,2}
		cfg := DefaultConfig(h)
		cfg.Seed = uint64(seed) + 1
		cfg.Routing = routings[int(rtSel)%len(routings)]
		switch cfg.Routing {
		case OFAR, OFARL:
			if h == 1 {
				cfg.Ring = RingNone
				cfg.OFAR.EscapeTimeout = -1
			} else if ringSel%2 == 0 {
				cfg.Ring = RingPhysical
			} else {
				cfg.Ring = RingEmbedded
			}
		default:
			cfg.Ring = RingNone
		}
		load := 0.05 + float64(loadSel%4)*0.1
		n, err := New(cfg)
		if err != nil {
			return false
		}
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
		n.Run(600)
		return n.CheckConservation() == nil && n.Stats.Delivered > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPBDelaySensitivity: PB still works with an extreme broadcast delay.
func TestPBDelaySensitivity(t *testing.T) {
	cfg := testConfig(PB)
	cfg.Adaptive.PBDelay = 500
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.4, cfg.PacketSize))
	n.Run(5000)
	if n.Stats.Delivered == 0 {
		t.Fatal("PB with slow flags stopped delivering")
	}
}

// TestStaticThresholdPolicy: the §IV-B static policy (Th_min=100%,
// Th_non-min=40%) works and misroutes only under real saturation.
func TestStaticThresholdPolicy(t *testing.T) {
	cfg := testConfig(OFAR)
	cfg.OFAR.ThMin = 1.0
	cfg.OFAR.StaticNonMin = 0.40
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.15, cfg.PacketSize))
	n.Run(4000)
	if n.Stats.Delivered == 0 {
		t.Fatal("static policy delivers nothing")
	}
	// At 15% uniform load nothing saturates: misrouting must be essentially
	// absent under the static 100% trigger.
	if frac := float64(n.Stats.GlobalMisroutes+n.Stats.LocalMisroutes) / float64(n.Stats.Delivered); frac > 0.01 {
		t.Errorf("static policy misrouted %.2f%% of packets at low load", 100*frac)
	}
}

// TestPAREndToEnd: the PAR extension delivers under uniform and adversarial
// traffic with its 4-local-VC requirement.
func TestPAREndToEnd(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = PAR
	cfg.Ring = RingNone
	cfg.LocalVCs, cfg.InjVCs = 4, 4
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.5, cfg.PacketSize))
	n.Run(6000)
	if n.Stats.Delivered == 0 {
		t.Fatal("PAR delivered nothing")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestPARRequiresExtraVC: config validation rejects PAR with 3 local VCs.
func TestPARRequiresExtraVC(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = PAR
	cfg.Ring = RingNone
	if err := cfg.Validate(); err == nil {
		t.Error("PAR accepted with only 3 local VCs")
	}
}

// TestRingFailureSingleRing: breaking the only escape ring under worst-case
// overload degrades OFAR-L back toward its unprotected (deadlock-prone)
// behavior, while packets never disappear.
func TestRingFailureSingleRing(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = OFARL
	cfg.Ring = RingPhysical
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(2000)
	n.FailRingEdge(0, n.Rings[0].Order[3]) // break one edge mid-run
	n.Run(8000)
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestRingFailureMultiRingSurvives: with two embedded rings, one broken
// edge leaves the other ring operational and the network keeps delivering
// under worst-case overload.
func TestRingFailureMultiRingSurvives(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = OFARL // relies entirely on the escape network under ADV+h
	cfg.Ring = RingEmbedded
	cfg.NumRings = 2
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(2000)
	n.FailRingEdge(0, n.Rings[0].Order[5])
	n.Run(6000)
	before := n.Stats.Delivered
	n.Run(3000)
	if n.Stats.Delivered == before {
		t.Fatal("multi-ring network stopped delivering after a single ring failure")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedRingNotEntered: packets stop using a ring whose local edge
// failed; the survivor ring takes the escape traffic.
func TestFailedRingNotEntered(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = OFAR
	cfg.Ring = RingEmbedded
	cfg.NumRings = 2
	n := mustNet(t, cfg)
	for _, r := range n.Routers {
		r.FailRing(0)
	}
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(8000)
	if n.Stats.RingEnters == 0 {
		t.Skip("no escape pressure materialized")
	}
	// All escape traffic must ride ring 1: every escape buffer of ring 0
	// stays empty.
	for _, r := range n.Routers {
		for i := range r.In {
			for vc := range r.In[i].VCs {
				b := &r.In[i].VCs[vc]
				if b.Escape && b.Ring == 0 && b.Len() > 0 {
					t.Fatal("packet found on the failed ring")
				}
			}
		}
	}
}

// TestSingleRingFailureStalls is the deterministic §VII negative result:
// with the paper's variable policy, reduced VCs and a single embedded ring,
// breaking one ring edge halts delivery entirely, while the identical
// network with two rings keeps delivering (TestRingFailureMultiRingSurvives
// covers the positive side at full resources; this covers both sides in the
// ring-dependent regime).
func TestSingleRingFailureStalls(t *testing.T) {
	run := func(rings int) int64 {
		cfg := DefaultConfig(2)
		cfg.Routing = OFARL
		cfg.OFAR.ThMin = 0
		cfg.OFAR.StaticNonMin = -1 // §V variable policy: ring is load-bearing
		cfg.Ring = RingEmbedded
		cfg.NumRings = rings
		cfg.LocalVCs, cfg.GlobalVCs, cfg.InjVCs = 2, 1, 2
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.2, cfg.PacketSize))
		n.Run(3000)
		n.FailRingEdge(0, n.Rings[0].Order[3])
		n.Run(5000) // let the stall develop
		before := n.Stats.Delivered
		n.Run(5000)
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return n.Stats.Delivered - before
	}
	single := run(1)
	dual := run(2)
	t.Logf("post-failure deliveries: single-ring %d, dual-ring %d", single, dual)
	if single != 0 {
		t.Skip("single-ring network did not fully stall at this seed; stall is the common case")
	}
	if dual == 0 {
		t.Error("dual-ring network stalled despite the surviving ring")
	}
}

// TestVariablePolicyEndToEnd: the paper's §V variable-threshold policy
// remains selectable and functional.
func TestVariablePolicyEndToEnd(t *testing.T) {
	cfg := testConfig(OFAR)
	cfg.OFAR.ThMin = 0
	cfg.OFAR.StaticNonMin = -1
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.4, cfg.PacketSize))
	n.Run(5000)
	if n.Stats.Delivered == 0 {
		t.Fatal("variable policy delivered nothing")
	}
	if n.Stats.GlobalMisroutes == 0 {
		t.Error("variable policy never misrouted under adversarial load")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestUtilizationByKindExposesHotspot: the §III signature in API form —
// under ADV+h with VAL, local-link imbalance is far above uniform traffic's.
func TestUtilizationByKindExposesHotspot(t *testing.T) {
	run := func(adv bool) float64 {
		cfg := testConfig(VAL)
		n := mustNet(t, cfg)
		d := n.Topo
		n.Stats.EnableUtilization(d.Routers, d.RouterPorts)
		var p traffic.Pattern = traffic.NewUniform(d)
		if adv {
			p = traffic.NewAdv(d, d.H)
		}
		n.SetGenerator(traffic.NewBernoulli(p, 1.0, cfg.PacketSize))
		n.Run(5000)
		return n.UtilizationByKind(topology.PortLocal).Imbalance
	}
	un := run(false)
	advImb := run(true)
	t.Logf("local-link imbalance: UN %.2f, ADV+h %.2f", un, advImb)
	if advImb < 1.5*un {
		t.Errorf("ADV+h imbalance %.2f not clearly above UN %.2f", advImb, un)
	}
}
