package network

import (
	"fmt"
	"slices"
	"strings"

	"ofar/internal/packet"
	"ofar/internal/topology"
)

// Fault injection. Faults are applied serially at the top of Step, before
// event delivery and before any router runs — the one point in the cycle
// that is identical across worker counts and scheduler settings, which is
// what keeps faulted runs bit-identical in every execution mode.
//
// Teardown contract (see docs/ARCHITECTURE.md):
//
//   - A dead link makes its output port(s) permanently Busy; nothing is ever
//     granted to it again. Packets already streaming across it complete their
//     traversal (their wheel events were scheduled at grant time).
//   - A dead router drops its buffered packets (except heads already
//     draining, whose phits are committed to the crossbar and complete),
//     drops packets that later arrive at it, and takes its nodes down with
//     it. Every drop increments Stats.Dropped, which joins Delivered in the
//     conservation identity.
//   - When a physical escape-ring router dies, the ring is re-formed over
//     the survivors (topology.ReformWithout): the predecessor's ring port is
//     retargeted at the successor with freshly derived credits, and stale
//     credit returns from the dead router are purged from the wheel. The
//     bubble condition is order-independent, so the shorter cycle keeps the
//     escape subnetwork deadlock-free.

// prepareFaults validates the schedule against the wired topology, orders it
// deterministically and allocates the liveness masks. Called from New.
func (n *Network) prepareFaults(faults []Fault) error {
	nPorts := n.Topo.RouterPorts
	if n.Cfg.Ring == RingPhysical {
		nPorts += n.Cfg.NumRings
	}
	for i, f := range faults {
		if f.Kind != FaultLink {
			continue
		}
		if f.Port >= nPorts {
			return fmt.Errorf("network: fault %d: port %d outside [0,%d)", i, f.Port, nPorts)
		}
		if f.Port < n.Topo.RouterPorts {
			kind, _, _ := n.Topo.Peer(f.Router, f.Port)
			if kind == topology.PortNone {
				return fmt.Errorf("network: fault %d: router %d port %d is unwired", i, f.Router, f.Port)
			}
			if kind == topology.PortNode {
				return fmt.Errorf("network: fault %d: node ports cannot fail individually", i)
			}
		}
	}
	n.faults = slices.Clone(faults)
	slices.SortStableFunc(n.faults, func(a, b Fault) int {
		switch {
		case a.Cycle != b.Cycle:
			return int(a.Cycle - b.Cycle)
		case a.Kind != b.Kind:
			return strings.Compare(string(a.Kind), string(b.Kind))
		case a.Router != b.Router:
			return a.Router - b.Router
		default:
			return a.Port - b.Port
		}
	})
	n.deadRouter = make([]bool, n.Topo.Routers)
	n.deadNode = make([]bool, n.Topo.Nodes)
	return nil
}

// applyDueFaults fires every fault whose cycle has come. Called at the top
// of Step.
func (n *Network) applyDueFaults(now int64) {
	for n.faultIdx < len(n.faults) && n.faults[n.faultIdx].Cycle <= now {
		f := n.faults[n.faultIdx]
		n.faultIdx++
		switch f.Kind {
		case FaultLink:
			n.failLink(f.Router, f.Port)
		case FaultRouter:
			n.failRouter(f.Router, now)
		}
	}
}

// failLink kills the link behind one output port. Canonical links are
// bidirectional: both directions die. Ring ports are unidirectional; only
// the named direction dies, and the affected ring is marked broken at that
// router so OFAR stops entering or continuing it there.
func (n *Network) failLink(r, port int) {
	rt := n.Routers[r]
	if rt.OutputDead(port) {
		return
	}
	if port >= n.Topo.RouterPorts {
		// Physical ring port: ring j loses its r→next edge.
		rt.FailOutput(port)
		rt.FailRing(port - n.Topo.RouterPorts)
		return
	}
	rt.FailOutput(port)
	peer, peerPort := rt.Out[port].Peer, rt.Out[port].PeerPort
	n.Routers[peer].FailOutput(peerPort)
	if n.Cfg.Ring == RingEmbedded {
		// An embedded ring riding the dead link is broken in that direction.
		for j, rg := range n.Rings {
			if rg.Pos(r) >= 0 && rg.EmbeddedPort(r) == port && rg.Next(r) == peer {
				n.Routers[r].FailRing(j)
			}
			if rg.Pos(peer) >= 0 && rg.EmbeddedPort(peer) == peerPort && rg.Next(peer) == r {
				n.Routers[peer].FailRing(j)
			}
		}
	}
}

// failRouter kills a whole router: re-forms every physical escape ring
// around it, kills all attached links (both directions), drops its buffered
// packets and pending source traffic, and marks its nodes dead.
func (n *Network) failRouter(w int, now int64) {
	if n.deadRouter[w] {
		return
	}
	n.deadRouter[w] = true

	// Escape-subnetwork surgery first: the splice reads the dying router's
	// ring state and the wheel's in-flight traffic before teardown.
	for j := range n.Rings {
		if n.Cfg.Ring == RingPhysical {
			n.spliceRing(j, w)
		} else if n.Cfg.Ring == RingEmbedded {
			if rg := n.Rings[j]; rg.Pos(w) >= 0 {
				prev := rg.Order[(rg.Pos(w)-1+len(rg.Order))%len(rg.Order)]
				n.Routers[prev].FailRing(j)
			}
		}
	}

	// Kill every attached link. Ring outputs are unidirectional (the input
	// side was handled by the splice); canonical links die in both
	// directions so no neighbor keeps routing into the dead router.
	rt := n.Routers[w]
	for port := n.Topo.LocalPortBase(); port < len(rt.Out); port++ {
		op := &rt.Out[port]
		switch op.Kind {
		case topology.PortLocal, topology.PortGlobal:
			if !op.Dead() {
				rt.FailOutput(port)
				n.Routers[op.Peer].FailOutput(op.PeerPort)
			}
		case topology.PortRing:
			rt.FailOutput(port)
			rt.FailRing(port - n.Topo.RouterPorts)
		}
	}

	// Buffered packets are lost (draining heads complete via their pending
	// wheel events; the dead-router refund suppression in handle keeps their
	// upstream credits frozen rather than stale).
	rt.DropBuffered(func(p *packet.Packet) { n.dropPacket(p, now) })

	// The router's nodes die with it: pending source packets are dropped
	// and the sources stop generating.
	for slot := 0; slot < n.Topo.P; slot++ {
		node := n.Topo.NodeAt(w, slot)
		n.deadNode[node] = true
		pq := &n.pending[node]
		for pq.len() > 0 {
			n.dropPacket(pq.pop(), now)
		}
	}
}

// spliceRing re-forms physical ring j around dead router w: the ring order
// drops w, and w's predecessor's ring port is retargeted at w's successor.
// The retargeted port's credits are re-derived from the successor's actual
// buffer state plus traffic still in flight to it; stale credit returns
// owed to the predecessor by the dead router are purged from the wheel
// (their buffer no longer exists). If the ring is too short to lose a
// router, the edge is simply broken — the ring degrades like a link fault.
func (n *Network) spliceRing(j, w int) {
	rg := n.Rings[j]
	if rg.Pos(w) < 0 {
		return // already spliced out by an earlier fault
	}
	ringPort := n.Topo.RouterPorts + j
	prev := rg.Order[(rg.Pos(w)-1+len(rg.Order))%len(rg.Order)]
	next := rg.Next(w)
	newRg, err := n.Topo.ReformWithout(rg, w)
	if err != nil || n.deadRouter[prev] {
		n.Routers[prev].FailOutput(ringPort)
		n.Routers[prev].FailRing(j)
		return
	}
	n.Rings[j] = newRg

	// Purge credit returns the dead router still owed its predecessor: the
	// buffer space they represent is gone, and the port's counters are about
	// to be re-derived against the successor's buffer.
	n.wheel.Filter(func(ev event) bool {
		return !(ev.kind == evCredit && int(ev.r) == prev && int(ev.port) == ringPort)
	})

	// Packets the dead router already launched at the successor still
	// occupy link bandwidth and will land in its buffer; they count against
	// the re-derived credits. (Only w could have sent on this port.)
	po := &n.Routers[prev].Out[ringPort]
	arriving := make([]int, po.NumVCs())
	n.wheel.ForEach(func(ev event) {
		if ev.kind == evArrive && int(ev.r) == next && int(ev.port) == ringPort {
			arriving[ev.vc] += ev.pkt.Size
		}
	})

	// Retarget prev's ring port at next and rewire next's upstream credit
	// path. Future drains at next refund prev — consistent, because the
	// re-derived credits charge prev for everything in or bound for next's
	// buffer.
	po.Peer, po.PeerPort = next, ringPort
	po.Latency = n.Cfg.LocalLatency
	if newRg.EdgeIsGlobal(prev) {
		po.Latency = n.Cfg.GlobalLatency
	}
	ni := &n.Routers[next].In[ringPort]
	ni.UpRouter, ni.UpPort = prev, ringPort
	for vc := 0; vc < po.NumVCs(); vc++ {
		po.SetCredits(vc, po.VCCap(vc)-ni.VCs[vc].Occupied()-arriving[vc])
	}
	n.Routers[prev].NoteOutMutated(ringPort)
}

// dropPacket accounts one packet lost to a fault: the Dropped counter, the
// affected-flow set, the determinism digest (tag 2, mirroring grants' tag 0
// and deliveries' tag 1) and the trace record all learn about it, and the
// packet returns to the pool.
func (n *Network) dropPacket(p *packet.Packet, now int64) {
	n.Stats.Dropped++
	n.Stats.NoteAffectedFlow(p.Src, p.Dst)
	if p.Job >= 0 {
		n.Stats.JobDropped(int(p.Job))
	}
	if n.digestOn {
		n.fold(2, now, int64(p.Src), int64(p.Dst), p.Born)
	}
	if n.traceEvery > 0 {
		if tr, ok := n.traces[p.ID]; ok {
			tr.Dropped = true
		}
	}
	n.putPacket(p)
}

// GlobalLinkFaults builds a schedule killing the first `count` global links
// (lowest router, then lowest port, each link once) at the given cycle —
// the degradation experiment's workload. The topology is derived from cfg
// without building a network.
func GlobalLinkFaults(cfg Config, cycle int64, count int) ([]Fault, error) {
	topo, err := topology.New(cfg.P, cfg.A, cfg.H, cfg.Groups)
	if err != nil {
		return nil, err
	}
	base := topo.GlobalPortBase()
	faults := make([]Fault, 0, count)
	for r := 0; r < topo.Routers && len(faults) < count; r++ {
		for k := 0; k < topo.H && len(faults) < count; k++ {
			kind, peer, _ := topo.Peer(r, base+k)
			if kind != topology.PortGlobal || peer < r {
				continue // unwired, or the link was already taken from its lower end
			}
			faults = append(faults, Fault{Cycle: cycle, Kind: FaultLink, Router: r, Port: base + k})
		}
	}
	if len(faults) < count {
		return nil, fmt.Errorf("network: only %d global links exist (requested %d)", len(faults), count)
	}
	return faults, nil
}

// DeadRouters returns how many routers the schedule has killed so far.
func (n *Network) DeadRouters() int {
	total := 0
	for _, d := range n.deadRouter {
		if d {
			total++
		}
	}
	return total
}

// FaultsApplied returns how many scheduled faults have fired.
func (n *Network) FaultsApplied() int { return n.faultIdx }
