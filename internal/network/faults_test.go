package network

import (
	"testing"

	"ofar/internal/topology"
	"ofar/internal/traffic"
)

// Fault-injection tests: schedule parsing/validation, degraded-mode routing,
// teardown accounting (conservation with an explicit Dropped term), ring
// re-formation, and bit-identical determinism across execution modes.

func TestParseFaultsSpec(t *testing.T) {
	fs, err := ParseFaults("link@5000:12:7, router@20000:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Cycle: 5000, Kind: FaultLink, Router: 12, Port: 7},
		{Cycle: 20000, Kind: FaultRouter, Router: 3},
	}
	if len(fs) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(fs), len(want))
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("fault %d: got %+v want %+v", i, fs[i], want[i])
		}
	}
	for _, bad := range []string{"link@5000:12", "router@1:2:3", "melt@1:2", "link@x:1:2", "5000:1:2"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestFaultConfigValidation(t *testing.T) {
	bad := []Fault{
		{Cycle: -1, Kind: FaultLink, Router: 0, Port: 2},  // negative cycle
		{Cycle: 10, Kind: "melt", Router: 0},              // unknown kind
		{Cycle: 10, Kind: FaultRouter, Router: 9999},      // router out of range
		{Cycle: 10, Kind: FaultLink, Router: 0, Port: 0},  // node port
		{Cycle: 10, Kind: FaultLink, Router: 0, Port: 99}, // port out of range
		{Cycle: 10, Kind: FaultLink, Router: -1, Port: 2}, // negative router
	}
	for i, f := range bad {
		cfg := DefaultConfig(2)
		cfg.Faults = []Fault{f}
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad fault %d (%+v) accepted", i, f)
		}
	}
	cfg := DefaultConfig(2)
	cfg.Faults = []Fault{
		{Cycle: 100, Kind: FaultLink, Router: 0, Port: cfg.P}, // first local port
		{Cycle: 200, Kind: FaultRouter, Router: 1},
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

// TestGlobalLinkFaultDegradedDelivery: OFAR keeps delivering after a global
// link dies mid-run — misrouting is the degradation path — and the packet
// population stays conserved with the explicit Dropped term.
func TestGlobalLinkFaultDegradedDelivery(t *testing.T) {
	cfg := testConfig(OFAR)
	fs, err := GlobalLinkFaults(cfg, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fs
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.3, cfg.PacketSize))
	n.Run(2000)
	if n.FaultsApplied() != 1 {
		t.Fatalf("applied %d faults, want 1", n.FaultsApplied())
	}
	before := n.Stats.Delivered
	n.Run(6000)
	if n.Stats.Delivered == before {
		t.Fatal("OFAR stopped delivering after a single global-link fault")
	}
	if n.Stats.FaultReroutes == 0 {
		t.Error("no fault reroutes counted although the dead link carried minimal traffic")
	}
	if n.Stats.AffectedFlows() == 0 {
		t.Error("no affected flows recorded")
	}
	// A link fault (unlike a router fault) must not drop anything: in-flight
	// packets complete and everything else routes around.
	if n.Stats.Dropped != 0 {
		t.Errorf("link fault dropped %d packets; teardown should preserve them", n.Stats.Dropped)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// The dead pair never carries traffic again: both directions stay Busy.
	f := fs[0]
	peer, peerPort := n.Routers[f.Router].Out[f.Port].Peer, n.Routers[f.Router].Out[f.Port].PeerPort
	if !n.Routers[f.Router].OutputDead(f.Port) || !n.Routers[peer].OutputDead(peerPort) {
		t.Error("dead link has a live direction")
	}
}

// TestRouterFaultDropsAndConserves: a dying router loses its buffered
// packets and its nodes, every loss is accounted in Dropped, and the rest of
// the network keeps working.
func TestRouterFaultDropsAndConserves(t *testing.T) {
	cfg := testConfig(OFAR)
	cfg.Faults = []Fault{{Cycle: 1500, Kind: FaultRouter, Router: 3}}
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.3, cfg.PacketSize))
	n.Run(2000)
	if n.DeadRouters() != 1 {
		t.Fatalf("DeadRouters=%d, want 1", n.DeadRouters())
	}
	before := n.Stats.Delivered
	n.Run(6000)
	if n.Stats.Delivered == before {
		t.Fatal("network stopped delivering after one router died")
	}
	if n.Stats.Dropped == 0 {
		t.Error("router death dropped nothing (uniform traffic keeps addressing its dead nodes)")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestRingSpliceAfterRouterFault: when a physical-ring router dies the ring
// re-forms over the survivors; the escape network keeps rescuing OFAR-L
// under worst-case overload, which only works if the shorter cycle is still
// deadlock-free and its credits were re-derived correctly.
func TestRingSpliceAfterRouterFault(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = OFARL
	cfg.Ring = RingPhysical
	probe := mustNet(t, cfg)
	w := probe.Rings[0].Order[2]
	prev := probe.Rings[0].Order[1]
	next := probe.Rings[0].Order[3]

	cfg.Faults = []Fault{{Cycle: 2000, Kind: FaultRouter, Router: w}}
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(2500)

	rg := n.Rings[0]
	if rg.Pos(w) >= 0 {
		t.Fatal("dead router still on the ring")
	}
	if got := rg.Next(prev); got != next {
		t.Fatalf("splice: ring successor of %d is %d, want %d", prev, got, next)
	}
	ringPort := n.Topo.RouterPorts
	if po := &n.Routers[prev].Out[ringPort]; po.Peer != next || po.PeerPort != ringPort {
		t.Fatalf("splice: predecessor port targets %d:%d, want %d:%d", po.Peer, po.PeerPort, next, ringPort)
	}

	// The re-formed escape network must keep the saturated network alive.
	before := n.Stats.Delivered
	n.Run(6000)
	if n.Stats.Delivered == before {
		t.Fatal("network stopped delivering after the ring was re-formed")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestCreditConservationAfterLinkFault: drain the network after a link fault
// and require every *live* output port's credits to be fully restored (dead
// ports are frozen by design and skipped by CheckCredits).
func TestCreditConservationAfterLinkFault(t *testing.T) {
	cfg := testConfig(OFAR)
	fs, err := GlobalLinkFaults(cfg, 800, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fs
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.3, cfg.PacketSize))
	n.Run(2000)
	n.SetGenerator(traffic.NewBurst(traffic.NewUniform(n.Topo), 0, n.Topo.Nodes)) // stop generating
	for i := 0; i < 100000 && n.BufferedPackets()+n.InFlightPackets()+n.PendingPackets() > 0; i++ {
		n.Step()
	}
	if left := n.BufferedPackets() + n.InFlightPackets() + n.PendingPackets(); left != 0 {
		t.Fatalf("faulted network did not drain: %d packets left", left)
	}
	n.Run(cfg.GlobalLatency + cfg.PacketSize + 2)
	for _, r := range n.Routers {
		if err := r.CheckCredits(n.Routers, func(int, int, int) int { return 0 }); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultsBitIdentical is the determinism contract under faults: a run
// with a mixed link+router schedule must produce identical per-cycle grant
// digests, drop counts and reroute counts for Workers ∈ {1,4,8} with the
// activity scheduler on or off.
func TestFaultsBitIdentical(t *testing.T) {
	cycles := 2500
	if testing.Short() {
		cycles = 800
	}
	base := DefaultConfig(2)
	base.Routing = OFAR
	base.Ring = RingPhysical
	probe := mustNet(t, base)
	onRing := probe.Rings[0].Order[4]
	// All three faults fire inside the first 500 cycles so the -short run
	// (800 cycles) still exercises every teardown path.
	base.Faults = []Fault{
		{Cycle: 150, Kind: FaultLink, Router: 0, Port: probe.Topo.GlobalPortBase()},
		{Cycle: 300, Kind: FaultLink, Router: 3, Port: probe.Topo.LocalPortBase()},
		{Cycle: 450, Kind: FaultRouter, Router: onRing},
	}

	mk := func(workers int, noSched bool) *Network {
		cfg := base
		cfg.Workers = workers
		cfg.DisableActivitySched = noSched
		n := mustNet(t, cfg)
		n.SetGenerator(genFor(n, "uniform", 0.5))
		n.EnableGrantDigest()
		n.Stats.StartMeasurement(0)
		return n
	}
	ref := mk(0, true)
	variants := map[string]*Network{
		"workers1+sched":   mk(1, false),
		"workers1+nosched": mk(1, true),
		"workers4+sched":   mk(4, false),
		"workers4+nosched": mk(4, true),
		"workers8+sched":   mk(8, false),
		"workers8+nosched": mk(8, true),
	}

	stepCompare(t, ref, variants, cycles)

	if ref.Stats.Dropped == 0 {
		t.Fatal("schedule dropped nothing — the case exercised no teardown accounting")
	}
	if err := ref.CheckConservation(); err != nil {
		t.Fatalf("reference: %v", err)
	}
	for name, v := range variants {
		if v.Stats.Dropped != ref.Stats.Dropped || v.Stats.FaultReroutes != ref.Stats.FaultReroutes ||
			v.Stats.Generated != ref.Stats.Generated || v.Stats.Delivered != ref.Stats.Delivered {
			t.Fatalf("%s diverged: drop/reroute/gen/del %d/%d/%d/%d vs reference %d/%d/%d/%d",
				name, v.Stats.Dropped, v.Stats.FaultReroutes, v.Stats.Generated, v.Stats.Delivered,
				ref.Stats.Dropped, ref.Stats.FaultReroutes, ref.Stats.Generated, ref.Stats.Delivered)
		}
		if err := v.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestBaselineMINStallsOnDeadMinimalPath documents the baselines' contract:
// MIN has no degradation path, so flows whose only minimal route crosses the
// dead link stop arriving — but their packets must back-pressure, not leak.
func TestBaselineMINStallsOnDeadMinimalPath(t *testing.T) {
	cfg := testConfig(MIN)
	fs, err := GlobalLinkFaults(cfg, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fs
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.2, cfg.PacketSize))
	n.Run(5000)
	if n.Stats.Dropped != 0 {
		t.Errorf("MIN dropped %d packets after a link fault; they must stall in place", n.Stats.Dropped)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestGlobalLinkFaultsHelper pins the schedule builder the degradation
// experiment uses: deterministic order, each link once, correct kind/ports.
func TestGlobalLinkFaultsHelper(t *testing.T) {
	cfg := DefaultConfig(2)
	fs, err := GlobalLinkFaults(cfg, 123, 5)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.New(cfg.P, cfg.A, cfg.H, cfg.Groups)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for i, f := range fs {
		if f.Cycle != 123 || f.Kind != FaultLink {
			t.Fatalf("fault %d: %+v", i, f)
		}
		kind, peer, peerPort := topo.Peer(f.Router, f.Port)
		if kind != topology.PortGlobal {
			t.Fatalf("fault %d targets a %v port", i, kind)
		}
		key := [2]int{f.Router*topo.RouterPorts + f.Port, peer*topo.RouterPorts + peerPort}
		rev := [2]int{key[1], key[0]}
		if seen[key] || seen[rev] {
			t.Fatalf("fault %d repeats a link", i)
		}
		seen[key] = true
	}
	if _, err := GlobalLinkFaults(cfg, 0, 1<<20); err == nil {
		t.Error("impossible link count accepted")
	}
}
