package network

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ofar/internal/trace"
	"ofar/internal/traffic"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenDoc is the serialized form of a run's event stream: the first
// goldenHead grant events verbatim, plus the FNV-1a digest and event count
// covering the *entire* stream (every grant and every delivery of the first
// Cycles cycles), so a refactor that changes any event anywhere —
// not just in the head — breaks byte-equality.
type goldenDoc struct {
	Network string       `json:"network"`
	Routing string       `json:"routing"`
	Seed    uint64       `json:"seed"`
	Load    float64      `json:"load"`
	Cycles  int          `json:"cycles"`
	Faults  []Fault      `json:"faults,omitempty"`
	Events  int64        `json:"events"`
	Digest  string       `json:"digest"`
	Head    []GrantEvent `json:"head"`
}

const goldenHead = 256

// goldenSpec pins one golden scenario: the dragonfly size, the traced
// window, the offered load and an optional fault schedule.
type goldenSpec struct {
	h      int
	cycles int
	load   float64
	faults []Fault
}

// goldenRun executes one engine variant of a golden scenario and returns the
// serialized event-stream document. snapAt > 0 additionally round-trips the
// run through Snapshot/Restore at that cycle: the first snapAt cycles run in
// one network, the rest in a freshly built network restored from its
// snapshot — the document must come out identical, which pins the
// checkpoint layer to the same golden contract as the engines.
func goldenRun(t *testing.T, spec goldenSpec, workers int, noSched, noCache, shard, noGenShard bool, snapAt int) []byte {
	t.Helper()
	cfg := DefaultConfig(spec.h)
	cfg.Seed = 12345
	cfg.Workers = workers
	cfg.DisableActivitySched = noSched
	cfg.DisableRouteCache = noCache
	cfg.ShardByGroup = shard
	cfg.DisableShardedGenerate = noGenShard
	if shard {
		// Force the shard dispatch on every non-empty cycle so the golden
		// contract covers the sharded engine even on a single-P host.
		cfg.ParallelCutover = 1
	}
	cfg.Faults = spec.faults
	attach := func(n *Network) {
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), spec.load, cfg.PacketSize))
	}
	n := mustNet(t, cfg)
	t.Cleanup(n.Close)
	attach(n)
	n.EnableGrantLog(goldenHead)
	if snapAt > 0 && snapAt < spec.cycles {
		n.Run(snapAt)
		var buf bytes.Buffer
		if err := n.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		m := mustNet(t, cfg)
		t.Cleanup(m.Close)
		attach(m)
		if err := m.Restore(&buf); err != nil {
			t.Fatal(err)
		}
		n = m
		n.Run(spec.cycles - snapAt)
	} else {
		n.Run(spec.cycles)
	}
	return goldenSerialize(t, n, cfg, spec)
}

// goldenReplayRun runs the serial scenario with a trace recorder attached,
// then re-injects the recorded packets through a fresh network driven by the
// TraceReplay generator. Replay determinism means the replayed event stream
// serializes to the very same golden document as the recording run.
func goldenReplayRun(t *testing.T, spec goldenSpec) []byte {
	t.Helper()
	cfg := DefaultConfig(spec.h)
	cfg.Seed = 12345
	cfg.Faults = spec.faults
	rec := &trace.Recorder{}
	n := mustNet(t, cfg)
	t.Cleanup(n.Close)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), spec.load, cfg.PacketSize))
	n.SetTraceRecorder(rec)
	n.Run(spec.cycles)

	m := mustNet(t, cfg)
	t.Cleanup(m.Close)
	gen, err := traffic.NewTraceReplay(rec.Records(), m.Topo.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	m.SetGenerator(gen)
	m.EnableGrantLog(goldenHead)
	m.Run(spec.cycles)
	return goldenSerialize(t, m, cfg, spec)
}

// goldenSerialize renders a finished run as its golden document.
func goldenSerialize(t *testing.T, n *Network, cfg Config, spec goldenSpec) []byte {
	t.Helper()
	digest, events := n.GrantDigest()
	doc := goldenDoc{
		Network: fmt.Sprintf("h=%d p=%d a=%d groups=%d", cfg.H, cfg.P, cfg.A, n.Topo.G),
		Routing: string(cfg.Routing),
		Seed:    cfg.Seed,
		Load:    spec.load,
		Cycles:  spec.cycles,
		Faults:  spec.faults,
		Events:  events,
		Digest:  fmt.Sprintf("%016x", digest),
		Head:    n.GrantLog(),
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// checkGolden compares every engine variant's serialized run — serial,
// parallel, group-sharded, scheduler off, route cache off, sharded
// generation off, and mid-run
// snapshot/restore round trips (including across sharding) — against the
// golden file, rewriting the file first when
// -update-golden is set (only the serial scheduler-on variant rewrites, so a
// divergence between variants still fails).
func checkGolden(t *testing.T, path string, spec goldenSpec) {
	t.Helper()
	base := goldenRun(t, spec, 0, false, false, false, false, 0)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, base, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(base))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	variants := []struct {
		name       string
		workers    int
		noSched    bool
		noCache    bool
		shard      bool
		noGenShard bool
		snapAt     int
	}{
		{name: "serial"},
		{name: "serial-nosched", noSched: true},
		{name: "serial-nocache", noCache: true},
		{name: "workers4", workers: 4},
		{name: "workers4-nosched", workers: 4, noSched: true},
		{name: "workers4-nocache", workers: 4, noCache: true},
		{name: "shard4", workers: 4, shard: true},
		{name: "shard4-nosched", workers: 4, shard: true, noSched: true},
		{name: "shard8-nocache", workers: 8, shard: true, noCache: true},
		{name: "shard4-nogenshard", workers: 4, shard: true, noGenShard: true},
		{name: "snapshot-restore", snapAt: spec.cycles / 2},
		{name: "snapshot-restore-workers4", workers: 4, snapAt: spec.cycles / 2},
		{name: "snapshot-restore-shard4", workers: 4, shard: true, snapAt: spec.cycles / 2},
	}
	for _, v := range variants {
		got := base
		if v.workers != 0 || v.noSched || v.noCache || v.shard || v.snapAt != 0 {
			got = goldenRun(t, spec, v.workers, v.noSched, v.noCache, v.shard, v.noGenShard, v.snapAt)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverged from %s (len %d vs %d) — a behavioral change; "+
				"if intended, regenerate with -update-golden", v.name, path, len(got), len(want))
		}
	}
	if replay := goldenReplayRun(t, spec); !bytes.Equal(replay, want) {
		t.Errorf("trace-replay diverged from %s (len %d vs %d) — record/replay no longer "+
			"reproduces the event stream bit-identically", path, len(replay), len(want))
	}
}

// TestGoldenTraceH3 is the golden-trace regression gate: the first 2000
// cycles of grant/delivery events of a fixed-seed h=3 OFAR run, serialized
// to testdata/golden_h3.json, must match byte for byte — for the serial
// engine, the parallel engine, both with the activity scheduler or route
// cache disabled, and a run restored mid-window from a snapshot. It guards
// future refactors of the router stage, the allocator, the scheduler's skip
// logic, the RNG derivation order, the timing wheel and the checkpoint
// layer, not just the change that introduced it. Regenerate deliberately
// with `go test ./internal/network -run TestGoldenTrace -update-golden`.
func TestGoldenTraceH3(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace runs 2000 full-size h=3 cycles per engine variant")
	}
	checkGolden(t, filepath.Join("testdata", "golden_h3.json"),
		goldenSpec{h: 3, cycles: 2000, load: 0.2})
}

// TestGoldenTraceH3LowLoad pins the same contract in the regime the
// activity scheduler was built for: at 5% load the overwhelming majority of
// router-cycles are idle, so nearly every Step exercises the skip path, and
// any router skipped when it still had observable work would shift grants
// or deliveries and break byte-equality here.
func TestGoldenTraceH3LowLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace runs 2000 full-size h=3 cycles per engine variant")
	}
	checkGolden(t, filepath.Join("testdata", "golden_h3_low.json"),
		goldenSpec{h: 3, cycles: 2000, load: 0.05})
}

// TestGoldenTraceH3Faults pins the faulted event stream: the same h=3 OFAR
// run with one global link killed at cycle 500. The digest covers every
// grant, delivery and fault-drop (tag 2), so any change to the teardown
// ordering, the liveness masks or the degraded routing path breaks
// byte-equality — across all engine variants, including the snapshot round
// trip (whose restore point lands after the fault fires and must carry the
// post-teardown structure verbatim).
func TestGoldenTraceH3Faults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace runs 2000 full-size h=3 cycles per engine variant")
	}
	faults, err := GlobalLinkFaults(DefaultConfig(3), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_h3_faults.json"),
		goldenSpec{h: 3, cycles: 2000, load: 0.2, faults: faults})
}

// TestGoldenTraceH6 pins a short window of the paper's full-size h=6 system
// (876 routers, 5256 nodes): radix-dependent code paths — port bitsets near
// their 23-port width, deeper VC fan-in, longer rings — are exercised at a
// scale the h=3 traces cannot reach. The window is short because each of the
// engine variants replays it.
func TestGoldenTraceH6(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace runs 250 full-size h=6 cycles per engine variant")
	}
	checkGolden(t, filepath.Join("testdata", "golden_h6.json"),
		goldenSpec{h: 6, cycles: 250, load: 0.2})
}
