package network

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ofar/internal/traffic"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenDoc is the serialized form of a run's event stream: the first
// goldenHead grant events verbatim, plus the FNV-1a digest and event count
// covering the *entire* stream (every grant and every delivery of the first
// goldenCycles cycles), so a refactor that changes any event anywhere —
// not just in the head — breaks byte-equality.
type goldenDoc struct {
	Network string       `json:"network"`
	Routing string       `json:"routing"`
	Seed    uint64       `json:"seed"`
	Load    float64      `json:"load"`
	Cycles  int          `json:"cycles"`
	Events  int64        `json:"events"`
	Digest  string       `json:"digest"`
	Head    []GrantEvent `json:"head"`
}

const (
	goldenCycles = 2000
	goldenHead   = 256
)

func goldenRun(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := DefaultConfig(3)
	cfg.Seed = 12345
	cfg.Workers = workers
	n := mustNet(t, cfg)
	load := 0.2
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
	n.EnableGrantLog(goldenHead)
	n.Run(goldenCycles)
	digest, events := n.GrantDigest()
	doc := goldenDoc{
		Network: fmt.Sprintf("h=%d p=%d a=%d groups=%d", cfg.H, cfg.P, cfg.A, n.Topo.G),
		Routing: string(cfg.Routing),
		Seed:    cfg.Seed,
		Load:    load,
		Cycles:  goldenCycles,
		Events:  events,
		Digest:  fmt.Sprintf("%016x", digest),
		Head:    n.GrantLog(),
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestGoldenTraceH3 is the golden-trace regression gate: the first 2000
// cycles of grant/delivery events of a fixed-seed h=3 OFAR run, serialized
// to testdata/golden_h3.json, must match byte for byte — for the serial
// engine AND the parallel engine. It guards future refactors of the router
// stage, the allocator, the RNG derivation order and the timing wheel, not
// just the change that introduced it. Regenerate deliberately with
// `go test ./internal/network -run TestGoldenTraceH3 -update-golden`.
func TestGoldenTraceH3(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace runs 2000 full-size h=3 cycles twice")
	}
	path := filepath.Join("testdata", "golden_h3.json")
	serial := goldenRun(t, 0)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(serial))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("serial engine diverged from %s (len %d vs %d) — a behavioral change; "+
			"if intended, regenerate with -update-golden", path, len(serial), len(want))
	}
	parallel := goldenRun(t, 4)
	if !bytes.Equal(parallel, want) {
		t.Errorf("parallel engine diverged from %s (len %d vs %d)", path, len(parallel), len(want))
	}
}
