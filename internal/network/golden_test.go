package network

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ofar/internal/traffic"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenDoc is the serialized form of a run's event stream: the first
// goldenHead grant events verbatim, plus the FNV-1a digest and event count
// covering the *entire* stream (every grant and every delivery of the first
// goldenCycles cycles), so a refactor that changes any event anywhere —
// not just in the head — breaks byte-equality.
type goldenDoc struct {
	Network string       `json:"network"`
	Routing string       `json:"routing"`
	Seed    uint64       `json:"seed"`
	Load    float64      `json:"load"`
	Cycles  int          `json:"cycles"`
	Faults  []Fault      `json:"faults,omitempty"`
	Events  int64        `json:"events"`
	Digest  string       `json:"digest"`
	Head    []GrantEvent `json:"head"`
}

const (
	goldenCycles = 2000
	goldenHead   = 256
)

func goldenRun(t *testing.T, load float64, workers int, noSched, noCache bool, faults []Fault) []byte {
	t.Helper()
	cfg := DefaultConfig(3)
	cfg.Seed = 12345
	cfg.Workers = workers
	cfg.DisableActivitySched = noSched
	cfg.DisableRouteCache = noCache
	cfg.Faults = faults
	n := mustNet(t, cfg)
	defer n.Close()
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
	n.EnableGrantLog(goldenHead)
	n.Run(goldenCycles)
	digest, events := n.GrantDigest()
	doc := goldenDoc{
		Network: fmt.Sprintf("h=%d p=%d a=%d groups=%d", cfg.H, cfg.P, cfg.A, n.Topo.G),
		Routing: string(cfg.Routing),
		Seed:    cfg.Seed,
		Load:    load,
		Cycles:  goldenCycles,
		Faults:  faults,
		Events:  events,
		Digest:  fmt.Sprintf("%016x", digest),
		Head:    n.GrantLog(),
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// checkGolden compares one engine variant's serialized run against the
// golden file, rewriting the file first when -update-golden is set (only the
// serial scheduler-on variant rewrites, so a divergence between variants
// still fails).
func checkGolden(t *testing.T, path string, load float64, faults []Fault) {
	t.Helper()
	base := goldenRun(t, load, 0, false, false, faults)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, base, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(base))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	variants := []struct {
		name    string
		workers int
		noSched bool
		noCache bool
	}{
		{"serial", 0, false, false},
		{"serial-nosched", 0, true, false},
		{"serial-nocache", 0, false, true},
		{"workers4", 4, false, false},
		{"workers4-nosched", 4, true, false},
		{"workers4-nocache", 4, false, true},
	}
	for _, v := range variants {
		got := base
		if v.workers != 0 || v.noSched || v.noCache {
			got = goldenRun(t, load, v.workers, v.noSched, v.noCache, faults)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverged from %s (len %d vs %d) — a behavioral change; "+
				"if intended, regenerate with -update-golden", v.name, path, len(got), len(want))
		}
	}
}

// TestGoldenTraceH3 is the golden-trace regression gate: the first 2000
// cycles of grant/delivery events of a fixed-seed h=3 OFAR run, serialized
// to testdata/golden_h3.json, must match byte for byte — for the serial
// engine, the parallel engine, and both with the activity scheduler
// disabled. It guards future refactors of the router stage, the allocator,
// the scheduler's skip logic, the RNG derivation order and the timing
// wheel, not just the change that introduced it. Regenerate deliberately
// with `go test ./internal/network -run TestGoldenTrace -update-golden`.
func TestGoldenTraceH3(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace runs 2000 full-size h=3 cycles per engine variant")
	}
	checkGolden(t, filepath.Join("testdata", "golden_h3.json"), 0.2, nil)
}

// TestGoldenTraceH3LowLoad pins the same contract in the regime the
// activity scheduler was built for: at 5% load the overwhelming majority of
// router-cycles are idle, so nearly every Step exercises the skip path, and
// any router skipped when it still had observable work would shift grants
// or deliveries and break byte-equality here.
func TestGoldenTraceH3LowLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace runs 2000 full-size h=3 cycles per engine variant")
	}
	checkGolden(t, filepath.Join("testdata", "golden_h3_low.json"), 0.05, nil)
}

// TestGoldenTraceH3Faults pins the faulted event stream: the same h=3 OFAR
// run with one global link killed at cycle 500. The digest covers every
// grant, delivery and fault-drop (tag 2), so any change to the teardown
// ordering, the liveness masks or the degraded routing path breaks
// byte-equality — across all four engine variants.
func TestGoldenTraceH3Faults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden trace runs 2000 full-size h=3 cycles per engine variant")
	}
	faults, err := GlobalLinkFaults(DefaultConfig(3), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_h3_faults.json"), 0.2, faults)
}
