package network

import (
	"testing"

	"ofar/internal/traffic"
)

// TestH6ShardedSmoke is the CI gate for the full-scale regime: 200 cycles of
// the paper's h=6 system (876 routers, 5256 nodes), serial versus sharded
// (ShardByGroup, 4 workers, cutover forced to 1 so the shard path genuinely
// dispatches on any host), compared digest-for-digest after every cycle. It
// runs even under -short — this is the check the CI smoke step builds on —
// and is deliberately per-cycle: an ordering bug in the cross-shard commit
// would be caught at the first divergent cycle, not smeared into an
// end-of-run aggregate.
func TestH6ShardedSmoke(t *testing.T) {
	const cycles = 200
	mk := func(shard bool) *Network {
		cfg := DefaultConfig(6)
		if shard {
			cfg.Workers = 4
			cfg.ShardByGroup = true
			cfg.ParallelCutover = 1
		}
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.5, cfg.PacketSize))
		n.EnableGrantDigest()
		return n
	}
	ref := mk(false)
	shard := mk(true)
	stepCompare(t, ref, map[string]*Network{"shard4": shard}, cycles)
	if ref.Stats.Delivered == 0 {
		t.Fatal("nothing delivered in the smoke window")
	}
	if err := shard.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
