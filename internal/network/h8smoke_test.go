package network

import (
	"testing"

	"ofar/internal/traffic"
)

// TestH8ShardedSmoke opens the stretch regime: 120 cycles of the h=8 system
// (a=16, 129 groups, 2064 routers, 16512 nodes — ~3× the paper's full-scale
// h=6 build), serial versus sharded (ShardByGroup, 4 workers, cutover forced
// to 1), compared digest-for-digest after every cycle. Both the sharded
// router stage and the sharded injection front-end are live here: Bernoulli
// traffic is group-local, so the generate phase runs through runShards and
// its barrier commit — at a group count (129) no other test reaches. The
// window is shorter than the h=6 smoke because each serial h=8 cycle costs
// roughly three h=6 cycles.
func TestH8ShardedSmoke(t *testing.T) {
	const cycles = 120
	mk := func(shard bool) *Network {
		cfg := DefaultConfig(8)
		if shard {
			cfg.Workers = 4
			cfg.ShardByGroup = true
			cfg.ParallelCutover = 1
		}
		n := mustNet(t, cfg)
		t.Cleanup(n.Close)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.5, cfg.PacketSize))
		n.EnableGrantDigest()
		return n
	}
	ref := mk(false)
	shard := mk(true)
	stepCompare(t, ref, map[string]*Network{"shard4": shard}, cycles)
	if ref.Stats.Delivered == 0 {
		t.Fatal("nothing delivered in the smoke window")
	}
	if err := shard.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
