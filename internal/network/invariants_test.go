package network

import (
	"testing"

	"ofar/internal/traffic"
)

// Path-length invariants: every mechanism has a provable bound on the
// number of canonical (non-escape) hops a packet may take. Violations would
// indicate broken routing or flag lifecycles.

func maxHopsRun(t *testing.T, cfg Config, load float64) (maxTotal, maxCanonical int, ringEnters int64) {
	t.Helper()
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
	n.Stats.StartMeasurement(0)
	n.Run(6000)
	if n.Stats.MeasuredPackets() == 0 {
		t.Fatal("no deliveries to measure")
	}
	return n.Stats.MaxHops(), n.Stats.MaxCanonicalHops(), n.Stats.RingEnters
}

func TestHopBoundMIN(t *testing.T) {
	maxT, _, _ := maxHopsRun(t, testConfig(MIN), 0.3)
	if maxT > 3 {
		t.Errorf("MIN packet took %d hops, diameter is 3", maxT)
	}
}

func TestHopBoundVAL(t *testing.T) {
	maxT, _, _ := maxHopsRun(t, testConfig(VAL), 0.3)
	if maxT > 5 {
		t.Errorf("VAL packet took %d hops, bound is 5", maxT)
	}
}

func TestHopBoundPBUGAL(t *testing.T) {
	for _, rt := range []Routing{PB, UGAL} {
		maxT, _, _ := maxHopsRun(t, testConfig(rt), 0.3)
		if maxT > 5 {
			t.Errorf("%s packet took %d hops, bound is 5", rt, maxT)
		}
	}
}

func TestHopBoundPAR(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = PAR
	cfg.Ring = RingNone
	cfg.LocalVCs, cfg.InjVCs = 4, 4
	maxT, _, _ := maxHopsRun(t, cfg, 0.3)
	// PAR path: l - l - g - l - g - l = 6 hops max.
	if maxT > 6 {
		t.Errorf("PAR packet took %d hops, bound is 6", maxT)
	}
}

// TestHopBoundOFAR: between ring visits OFAR paths are bounded by 8
// canonical hops (2 global + 6 local, §IV-A); each ring exit restarts a
// minimal (≤3 hops, possibly +1 local detour per group) segment. With no
// ring usage the 8-hop bound must hold outright.
func TestHopBoundOFAR(t *testing.T) {
	cfg := testConfig(OFAR)
	maxT, maxCan, ringEnters := maxHopsRun(t, cfg, 0.25)
	if ringEnters == 0 && maxT > 8 {
		t.Errorf("OFAR packet took %d hops without ring usage, bound is 8", maxT)
	}
	bound := 8 + 4*cfg.OFAR.MaxRingExits
	if maxCan > bound {
		t.Errorf("OFAR packet took %d canonical hops, bound is %d", maxCan, bound)
	}
}

// TestHopBoundOFARUnderStress: the canonical-hop bound holds under
// adversarial overload too (where the ring is exercised).
func TestHopBoundOFARUnderStress(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 0.8, cfg.PacketSize))
	n.Stats.StartMeasurement(0)
	n.Run(8000)
	bound := 8 + 4*cfg.OFAR.MaxRingExits
	if got := n.Stats.MaxCanonicalHops(); got > bound {
		t.Errorf("OFAR canonical hops %d exceed bound %d", got, bound)
	}
}

// TestMisrouteFlagLifecycle: OFAR's misroute counters can never exceed one
// global misroute per packet — the global counter is bounded by deliveries
// plus in-flight packets.
func TestMisrouteFlagLifecycle(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.6, cfg.PacketSize))
	n.Run(6000)
	if n.Stats.GlobalMisroutes > n.Stats.Generated {
		t.Errorf("global misroutes %d exceed generated packets %d (flag lifecycle broken)",
			n.Stats.GlobalMisroutes, n.Stats.Generated)
	}
	// Local misroutes are bounded by one per group visit: ≤ 3 group visits
	// per canonical path (+ ring exits), so ≤ ~4x generated is a loose but
	// sound sanity bound.
	if n.Stats.LocalMisroutes > 4*n.Stats.Generated {
		t.Errorf("local misroutes %d exceed 4x generated %d",
			n.Stats.LocalMisroutes, n.Stats.Generated)
	}
}

// TestConservationUnderRandomFaults: whatever valid schedule is thrown at
// the network — links and routers, early and late, clustered or spread —
// Generated == Delivered + Dropped + in-network holds at every scale tried.
func TestConservationUnderRandomFaults(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := testConfig(OFAR)
		cfg.Seed = seed
		// Derive a small deterministic schedule from the seed: two link
		// faults and one router fault at staggered cycles.
		topoPorts := cfg.P + cfg.A - 1 + cfg.H
		routers := (cfg.A*cfg.H + 1) * cfg.A
		linkPorts := topoPorts - cfg.P // local+global ports per router
		x := seed * 2654435761
		pick := func(k uint64, mod int) int { return int((x >> (8 * k)) % uint64(mod)) }
		cfg.Faults = []Fault{
			{Cycle: 200 + int64(pick(0, 800)), Kind: FaultLink,
				Router: pick(1, routers), Port: cfg.P + pick(2, linkPorts)},
			{Cycle: 200 + int64(pick(3, 800)), Kind: FaultLink,
				Router: pick(4, routers), Port: cfg.P + pick(5, linkPorts)},
			{Cycle: 1000 + int64(pick(6, 500)), Kind: FaultRouter, Router: pick(7, routers)},
		}
		n, err := New(cfg)
		if err != nil {
			// A schedule may name an unwired global port; that is a clean
			// validation error, not a conservation case.
			continue
		}
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.3, cfg.PacketSize))
		n.Run(4000)
		if err := n.CheckConservation(); err != nil {
			t.Errorf("seed %d (faults %+v): %v", seed, cfg.Faults, err)
		}
		if n.Stats.Delivered == 0 {
			t.Errorf("seed %d: nothing delivered", seed)
		}
		n.Close()
	}
}

// TestRingEnterExitBalance: packets on the ring either exit or get
// delivered from it; the enter/exit difference is bounded by the packets
// currently riding.
func TestRingEnterExitBalance(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(8000)
	onRing := int64(0)
	for _, r := range n.Routers {
		for i := range r.In {
			for vc := range r.In[i].VCs {
				if r.In[i].VCs[vc].Escape {
					onRing += int64(r.In[i].VCs[vc].Len())
				}
			}
		}
	}
	diff := n.Stats.RingEnters - n.Stats.RingExits
	// Exits lag enters by the riders (plus packets delivered directly from
	// the ring, which count as exits in our accounting via ExitRing on the
	// eject request — so diff should equal riders, modulo in-flight).
	if diff < 0 {
		t.Errorf("more ring exits (%d) than enters (%d)", n.Stats.RingExits, n.Stats.RingEnters)
	}
	if diff > onRing+int64(n.InFlightPackets()) {
		t.Errorf("ring accounting: enters-exits=%d but only %d riders + %d in flight",
			diff, onRing, n.InFlightPackets())
	}
}
