package network

import (
	"fmt"
	"math"
	"runtime"
	"slices"

	"ofar/internal/core"
	"ofar/internal/packet"
	"ofar/internal/router"
	"ofar/internal/routing"
	"ofar/internal/simcore"
	"ofar/internal/stats"
	"ofar/internal/topology"
	"ofar/internal/trace"
	"ofar/internal/traffic"
)

type evKind uint8

const (
	evArrive evKind = iota
	evDrain
	evDrainDeliver
	evCredit
)

type event struct {
	pkt   *packet.Packet
	r     int32
	port  int16
	vc    int16
	phits int32
	kind  evKind
}

// schedEv is one deferred wheel insertion: a shard-phase worker appends
// these to its group's outbox instead of touching the shared timing wheel,
// and the serial barrier merges the outboxes in ascending group order —
// which, for commit-phase insertions, reproduces the serial engine's
// ascending-router insertion order exactly (routers are numbered
// group-major), and for handle-phase insertions produces only credit events,
// whose in-slot order is unobservable (credits commute and fold nothing).
type schedEv struct {
	ev    event
	delay int32
}

// Deferred handle effects, recorded per due-event index and applied at the
// end of the event phase in ascending index order — the exact order the
// pre-sharding engine folded them in, regardless of which group (or which
// shard worker) processed the event. fxNone slots are skipped.
const (
	fxNone uint8 = iota
	fxDeliver
	fxDrop
)

// genRec is one deferred generation event from the sharded injection
// front-end: a packet created during the parallel generate phase (pkt != nil,
// ID not yet assigned) or a dead-destination drop that consumed a destination
// draw without allocating (pkt == nil). The commit barrier replays these in
// ascending (group, node) order to stamp IDs and fold the observable effects
// exactly as the serial per-node loop interleaves them.
type genRec struct {
	pkt  *packet.Packet
	node int32
	dst  int32
}

// groupScratch is one group's cross-shard channel: the wheel-insertion
// outbox, the generate-phase outbox and the counter deltas its shares
// accumulate while the shared counters are off limits. Padded to cache-line
// multiples so adjacent groups written by different workers never
// false-share.
type groupScratch struct {
	sched    []schedEv
	gen      []genRec
	inFlight int
	// Generate-phase counter deltas, merged into the run counters at the
	// barrier (their serial interleaving per node is unobservable — only the
	// running Generated count is, and genRec replay reproduces it exactly).
	blocked    int64
	injected   int64
	congStalls int64
	_          [128 - 8*10]byte
}

// Network is one fully assembled simulated system.
type Network struct {
	Cfg     Config
	Topo    *topology.Dragonfly
	Routers []*router.Router
	Engine  router.Engine
	Rings   []*topology.Ring
	Stats   *stats.Run

	wheel *simcore.Wheel[event]

	// Packet allocation is split between a run-wide ID authority and
	// per-group memory shards: pool owns the ID sequence (and the
	// Outstanding counter snapshots carry), while poolG[g] owns the free
	// list and carve blocks that group g's sources allocate from and its
	// terminal packets recycle into — so concurrent group shards never touch
	// a shared allocator, and block-carve locality follows the group.
	pool  packet.Pool
	poolG []packet.Pool

	// trafficRNG[g] is group g's traffic stream, derived deterministically
	// from the run seed (one stream per dragonfly group). Nodes of group g
	// draw from stream g in ascending node order — the same sequence whether
	// the per-group loop runs serially or on a shard worker.
	trafficRNG []*simcore.RNG
	pending    []pqueue
	gen        traffic.Generator
	genLocal   bool // generator implements traffic.GroupLocalGenerator
	genShard   bool // sharded generate allowed (shardOn, not disabled, past cutover)
	groupNodes int  // nodes per group (Topo.P * Topo.A)
	now        int64
	usePB      bool
	inFlight   int

	congestionOn bool
	congestionTh float64

	// Fault injection (Config.Faults): the schedule sorted by firing order,
	// the cursor of the next unapplied fault, and the liveness masks the
	// event loop consults. The masks are nil when no faults are configured,
	// keeping the fault-free hot path untouched.
	faults     []Fault
	faultIdx   int
	deadRouter []bool
	deadNode   []bool

	// Parallel router stage (Config.Workers > 1): a persistent worker pool
	// (see pool.go), per-worker engines (clones when the engine carries
	// scratch state), the per-router grant buffers the compute phase fills
	// for the serial commit phase, and the cutover below which a cycle runs
	// serially on the caller's goroutine.
	workers    int
	workerEng  []router.Engine
	grantBuf   [][]router.Grant
	workerPool *stepPool
	cutover    int

	// Active-set scheduler (on unless Config.DisableActivitySched): only
	// routers that can possibly produce a grant or observable side effect
	// run Cycle. A router is awake while it holds a routable buffer head;
	// handle (arrivals, drain completions) and generate (injections) wake
	// routers, and compactActive drops the ones whose work has drained.
	// The active set is kept per dragonfly group (routers are numbered
	// group-major, so per-group sorted lists concatenate into the globally
	// sorted order the serial loop needs); a shard worker compacts and
	// iterates only its own groups' lists.
	schedOn    bool
	awake      []bool    // router is on its group's active list
	activeG    [][]int32 // per-group awake router ids (sorted by compactGroup)
	activeFlat []int32   // concatenation scratch returned by compactActive
	allIdx     []int32   // 0..Routers-1, the legacy full iteration order

	// Group partition of the event phase, used when the sharded dispatch
	// runs (the serial path processes the due list directly in ascending
	// order). dueG holds per-group indices into the cycle's due list;
	// fxKind/fxPkt are the per-index deferred effects applied in due order
	// at the barrier; gs carries each group's outbox.
	nGroups   int
	groupSize int     // routers per group (Topo.A)
	groupIDs  []int32 // 0..nGroups-1: the shard dispatch iteration list
	dueG      [][]int32
	curDue    []event // the due list being processed (pool workers read it)
	fxKind    []uint8
	fxPkt     []*packet.Packet
	shardOn   bool  // Config.ShardByGroup && workers > 1
	evSink    int64 // write-only prefetch sink of the serial event loop
	gs        []groupScratch

	// Grant digest (tests): FNV-1a fold of every committed grant and every
	// delivery, for cheap bit-equivalence checks between engines.
	digestOn    bool
	digest      uint64
	digestCount int64

	// Grant log (tests): explicit record of committed grants, capped at
	// logCap events.
	grantLog []GrantEvent
	logCap   int

	// Path tracing (diagnostics/tests): when sampling is enabled, every
	// N-th generated packet records its full hop sequence.
	traceEvery int
	traces     map[packet.ID]*Trace

	// Job-aware accounting (SetGenerator with a traffic.JobAware source):
	// node → job slot, consulted once per generated packet to tag it. Nil
	// under plain generators, keeping their hot path untouched.
	jobOf []int32

	// Packet-trace recorder (SetTraceRecorder): every generated packet —
	// including dead-destination drops, which consume a destination draw —
	// appends one (cycle, src, dst, size) record. Retracted generation
	// attempts are not recorded; they inject nothing.
	rec *trace.Recorder

	// CongestionStalls counts node-cycles in which the congestion manager
	// blocked an injection.
	CongestionStalls int64

	// Per-phase Step timing (EnablePhaseTimings): wall-clock nanoseconds
	// accumulated per Step phase. Off by default — the flag costs one branch
	// per Step; when on, each Step pays a handful of clock reads.
	timingOn bool
	phaseNs  PhaseNanos
}

type pqueue struct {
	q    []*packet.Packet
	head int
}

func (p *pqueue) len() int { return len(p.q) - p.head }
func (p *pqueue) push(x *packet.Packet) {
	p.q = append(p.q, x)
}
func (p *pqueue) peek() *packet.Packet {
	if p.len() == 0 {
		return nil
	}
	return p.q[p.head]
}
func (p *pqueue) pop() *packet.Packet {
	x := p.q[p.head]
	p.q[p.head] = nil
	p.head++
	if p.head == len(p.q) {
		p.q, p.head = p.q[:0], 0
	} else if p.head > 64 && p.head*2 >= len(p.q) {
		n := copy(p.q, p.q[p.head:])
		for i := n; i < len(p.q); i++ {
			p.q[i] = nil
		}
		p.q, p.head = p.q[:n], 0
	}
	return x
}

// New assembles a network from a configuration. A traffic generator must be
// attached with SetGenerator before stepping.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := topology.New(cfg.P, cfg.A, cfg.H, cfg.Groups)
	if err != nil {
		return nil, err
	}
	n := &Network{Cfg: cfg, Topo: topo}

	if cfg.Ring != RingNone {
		rings, err := topo.HamiltonianRings(cfg.NumRings)
		if err != nil {
			return nil, fmt.Errorf("network: escape ring construction: %w", err)
		}
		n.Rings = rings
	}

	switch cfg.Routing {
	case MIN:
		n.Engine = routing.NewMinimal(topo)
	case VAL:
		n.Engine = routing.NewValiant(topo)
	case UGAL:
		n.Engine = routing.NewUGAL(topo, cfg.Adaptive)
	case PAR:
		n.Engine = routing.NewPAR(topo, cfg.Adaptive)
	case PB:
		n.Engine = routing.NewPB(topo, cfg.Adaptive)
		n.usePB = true
	case OFAR, OFARL:
		oc := cfg.OFAR
		oc.LocalMisroute = cfg.Routing == OFAR
		n.Engine = core.New(topo, oc)
	}

	// Input-buffer VC profiles per (router, input port); escape VCs of
	// embedded rings are appended to the canonical profile of the links
	// the ring traverses.
	nPorts := topo.RouterPorts
	if cfg.Ring == RingPhysical {
		nPorts += cfg.NumRings
	}
	type prof struct {
		caps []int
		ring []int
	}
	profs := make([][]prof, topo.Routers)
	mkProf := func(vcs, buf int, ring int) prof {
		p := prof{caps: make([]int, vcs), ring: make([]int, vcs)}
		for i := 0; i < vcs; i++ {
			p.caps[i] = buf
			p.ring[i] = ring
		}
		return p
	}
	for r := 0; r < topo.Routers; r++ {
		profs[r] = make([]prof, nPorts)
		for port := 0; port < topo.RouterPorts; port++ {
			kind, _, _ := topo.Peer(r, port)
			switch kind {
			case topology.PortNode:
				profs[r][port] = mkProf(cfg.InjVCs, cfg.InjBuf, -1)
			case topology.PortLocal:
				profs[r][port] = mkProf(cfg.LocalVCs, cfg.LocalBuf, -1)
			case topology.PortGlobal:
				profs[r][port] = mkProf(cfg.GlobalVCs, cfg.GlobalBuf, -1)
			case topology.PortNone:
				profs[r][port] = prof{}
			}
		}
	}
	if cfg.Ring == RingEmbedded {
		for j, rg := range n.Rings {
			for r := 0; r < topo.Routers; r++ {
				out := rg.EmbeddedPort(r)
				_, peer, peerPort := topo.Peer(r, out)
				pp := &profs[peer][peerPort]
				pp.caps = append(pp.caps, cfg.RingBuf)
				pp.ring = append(pp.ring, j)
			}
		}
	}
	if cfg.Ring == RingPhysical {
		for j := range n.Rings {
			for r := 0; r < topo.Routers; r++ {
				profs[r][topo.RouterPorts+j] = mkProf(cfg.RingVCs, cfg.RingBuf, j)
			}
		}
	}

	// Flag boards for PB (one per group).
	var boards []*router.FlagBoard
	if n.usePB {
		boards = make([]*router.FlagBoard, topo.G)
		for g := range boards {
			boards[g] = router.NewFlagBoard(topo.A*topo.H, cfg.Adaptive.PBDelay)
		}
	}

	// One traffic stream per dragonfly group, derived before the router
	// streams so the whole derivation order is a pure function of the seed
	// and the group count. (This replaced a single shared stream; the switch
	// is a physics change — same distributions, different draws — visible in
	// EngineDigest(), which is the point: caches key on it.)
	rootRNG := simcore.NewRNG(cfg.Seed)
	n.trafficRNG = make([]*simcore.RNG, topo.G)
	for g := range n.trafficRNG {
		n.trafficRNG[g] = rootRNG.Derive(0x7aff1c ^ uint64(g))
	}

	// Routers are constructed group by group into contiguous []Router slabs,
	// each group's slices carved from a private arena: one dragonfly group —
	// the shard unit of ShardByGroup and the iteration unit of the
	// group-partitioned event loop — then occupies a contiguous, cache-dense
	// region instead of ~a·(2+ports·(4+vcs)) scattered heap objects.
	n.Routers = make([]*router.Router, topo.Routers)
	routerSlab := make([]router.Router, topo.Routers)
	groupArena := make([]*router.Arena, topo.G)
	for g := range groupArena {
		groupArena[g] = router.NewArena()
	}
	for r := 0; r < topo.Routers; r++ {
		ports := make([]router.PortSpec, nPorts)
		for port := 0; port < topo.RouterPorts; port++ {
			kind, peer, peerPort := topo.Peer(r, port)
			ps := router.PortSpec{Kind: kind, Latency: 1}
			switch kind {
			case topology.PortNode:
				ps.Peer, ps.PeerPort = -1, -1
				ps.UpRouter, ps.UpPort = -1, -1
				ps.InCaps, ps.InRing = profs[r][port].caps, profs[r][port].ring
				ps.OutCaps, ps.OutRing = []int{cfg.PacketSize}, []int{-1}
			case topology.PortNone:
				ps.Peer, ps.PeerPort = -1, -1
				ps.UpRouter, ps.UpPort = -1, -1
			default:
				ps.Peer, ps.PeerPort = peer, peerPort
				ps.UpRouter, ps.UpPort = peer, peerPort
				ps.Latency = cfg.LocalLatency
				if kind == topology.PortGlobal {
					ps.Latency = cfg.GlobalLatency
				}
				ps.InCaps, ps.InRing = profs[r][port].caps, profs[r][port].ring
				ps.OutCaps, ps.OutRing = profs[peer][peerPort].caps, profs[peer][peerPort].ring
			}
			ports[port] = ps
		}
		var ringOuts []int
		if cfg.Ring == RingPhysical {
			for j, rg := range n.Rings {
				port := topo.RouterPorts + j
				lat := cfg.LocalLatency
				if rg.EdgeIsGlobal(r) {
					lat = cfg.GlobalLatency
				}
				prev := rg.Order[(rg.Pos(r)-1+len(rg.Order))%len(rg.Order)]
				ports[port] = router.PortSpec{
					Kind:     topology.PortRing,
					Peer:     rg.Next(r),
					PeerPort: port, // ring port index is uniform across routers
					UpRouter: prev,
					UpPort:   port,
					Latency:  lat,
					InCaps:   profs[r][port].caps, InRing: profs[r][port].ring,
					OutCaps: profs[rg.Next(r)][port].caps, OutRing: profs[rg.Next(r)][port].ring,
				}
				ringOuts = append(ringOuts, port)
			}
		} else if cfg.Ring == RingEmbedded {
			for _, rg := range n.Rings {
				ringOuts = append(ringOuts, rg.EmbeddedPort(r))
			}
		}
		var pb *router.FlagBoard
		if n.usePB {
			pb = boards[topo.GroupOf(r)]
		}
		n.Routers[r] = &routerSlab[r]
		router.NewInto(n.Routers[r], router.Params{
			ID:          r,
			Topo:        topo,
			PktSize:     cfg.PacketSize,
			AllocIters:  cfg.AllocIters,
			RNG:         rootRNG.Derive(uint64(r) + 1),
			Ports:       ports,
			RingOuts:    ringOuts,
			PB:          pb,
			PBThreshold: cfg.Adaptive.PBThreshold,
			Arena:       groupArena[topo.GroupOf(r)],
		})
	}
	if !cfg.DisableRouteCache {
		if _, ok := n.Engine.(router.CacheableEngine); ok {
			// The engine can report its Route read sets, so the routers can
			// memoize decisions (Validate guarantees ≤ 64 ports). PAR mutates
			// packet headers mid-Route and stays uncached.
			for _, rt := range n.Routers {
				rt.EnableRouteCache()
			}
		}
	}

	horizon := cfg.GlobalLatency
	if cfg.LocalLatency > horizon {
		horizon = cfg.LocalLatency
	}
	if cfg.PacketSize > horizon {
		horizon = cfg.PacketSize
	}
	n.wheel = simcore.NewWheel[event](horizon + 2)
	n.pending = make([]pqueue, topo.Nodes)
	n.Stats = stats.NewRun(topo.Nodes, cfg.PacketSize)
	if cfg.Congestion.Enabled {
		n.congestionOn = true
		n.congestionTh = cfg.Congestion.Threshold
		if n.congestionTh == 0 {
			n.congestionTh = 0.7
		}
	}
	n.schedOn = !cfg.DisableActivitySched
	n.awake = make([]bool, topo.Routers)
	n.allIdx = make([]int32, topo.Routers)
	for r := range n.allIdx {
		n.allIdx[r] = int32(r)
	}
	n.nGroups = topo.G
	n.groupSize = topo.A
	n.groupNodes = topo.P * topo.A
	n.poolG = make([]packet.Pool, topo.G)
	n.groupIDs = make([]int32, topo.G)
	n.activeG = make([][]int32, topo.G)
	n.dueG = make([][]int32, topo.G)
	n.gs = make([]groupScratch, topo.G)
	for g := range n.groupIDs {
		n.groupIDs[g] = int32(g)
	}
	if len(cfg.Faults) > 0 {
		if err := n.prepareFaults(cfg.Faults); err != nil {
			return nil, err
		}
	}
	n.workers = cfg.Workers
	if n.workers > topo.Routers {
		n.workers = topo.Routers
	}
	n.shardOn = cfg.ShardByGroup && n.workers > 1
	if n.workers > 1 {
		n.grantBuf = make([][]router.Grant, topo.Routers)
		n.workerEng = make([]router.Engine, n.workers)
		n.workerEng[0] = n.Engine
		for w := 1; w < n.workers; w++ {
			if c, ok := n.Engine.(router.ConcurrentCloner); ok {
				n.workerEng[w] = c.CloneForWorker()
			} else {
				// Stateless engines (all baselines) are shared.
				n.workerEng[w] = n.Engine
			}
		}
		n.cutover = cfg.ParallelCutover
		if n.cutover == 0 {
			n.cutover = autoCutover(n.workers)
		}
		// The generate phase has no per-cycle activity count to compare
		// against the cutover (every node is probed every cycle), so the
		// decision is static: shard it whenever the router stage could ever
		// shard — i.e. the cutover does not pin the network serial. The
		// documented ParallelCutover semantics carry over: values above the
		// router count keep generation serial too, and single-P hosts stay
		// serial via autoCutover.
		n.genShard = n.shardOn && !cfg.DisableShardedGenerate && n.cutover <= len(n.Routers)
		n.startPool(n.workers)
	}
	return n, nil
}

// autoCutover picks the active-list size below which a parallel network runs
// the cycle serially on the caller's goroutine, calibrated from the machine
// and the worker count rather than measured at runtime (a measurement would
// make wall-clock behavior depend on warm-up noise; the formula keeps it
// reproducible). Two regimes:
//
//   - GOMAXPROCS == 1: a pool dispatch can never win — the caller computes
//     the whole list itself and then pays goroutine switches just to join
//     the parked workers — so the cutover is pinned above any possible
//     active list and every cycle stays serial. (Tests that need the pool
//     exercised regardless set ParallelCutover = 1 explicitly.)
//
//   - multicore: a pool dispatch (wake + steal + join) costs a handful of
//     microseconds; one awake router's compute phase costs ~1–2 µs
//     (saturated h=3: ~170 µs over 114 routers). Splitting across w workers
//     saves (1−1/w) of the compute, so the break-even list length is
//     barrier / (cost·(1−1/w)) ≈ a few routers per worker; below it the
//     barrier is pure loss. 6·workers keeps a comfortable margin above
//     break-even without delaying the crossover past the loads where
//     parallelism starts paying (the BENCH_step.json sweep is the
//     calibration record).
//
// The cutover moves wall-clock time only; results are bit-identical on
// every machine either way.
func autoCutover(workers int) int {
	if runtime.GOMAXPROCS(0) < 2 {
		return math.MaxInt32
	}
	return 6 * workers
}

// SetGenerator attaches the traffic source. A job-aware source additionally
// sizes the per-job statistics and installs the node→job table used to tag
// every generated packet; attaching a plain generator clears both.
func (n *Network) SetGenerator(g traffic.Generator) {
	n.gen = g
	_, n.genLocal = g.(traffic.GroupLocalGenerator)
	n.jobOf = nil
	if ja, ok := g.(traffic.JobAware); ok {
		n.jobOf = make([]int32, n.Topo.Nodes)
		for node := range n.jobOf {
			n.jobOf[node] = int32(ja.JobOf(node))
		}
		names := make([]string, ja.NumJobs())
		nodes := make([]int, ja.NumJobs())
		for j := range names {
			names[j] = ja.JobName(j)
			nodes[j] = ja.JobNodes(j)
		}
		n.Stats.EnableJobs(names, nodes)
	}
}

// SetTraceRecorder attaches a packet-trace recorder (nil detaches). Every
// packet generated from here on appends one record; replaying the records
// with traffic.TraceReplay reproduces the run bit-identically.
func (n *Network) SetTraceRecorder(r *trace.Recorder) { n.rec = r }

// Generator returns the attached traffic source.
func (n *Network) Generator() traffic.Generator { return n.gen }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Step advances the simulation one cycle: deliver due events, generate and
// inject traffic, publish PB flags, then run routing and switch allocation
// on the routers that can do work this cycle (all of them when the activity
// scheduler is disabled). With Config.Workers > 1 and an active list at
// least ParallelCutover long, the router stage runs as two phases — a
// parallel compute phase on the persistent worker pool and a serial commit
// phase — with bit-identical results (see cycleRouters); shorter lists run
// serially on the caller's goroutine, where the pool barrier could never
// pay for itself.
func (n *Network) Step() {
	if n.timingOn {
		n.stepTimed()
		return
	}
	now := n.now
	if n.faultIdx < len(n.faults) {
		n.applyDueFaults(now)
	}
	if due := n.wheel.Advance(); len(due) > 0 {
		n.processDue(due, now)
	}
	if n.gen != nil {
		n.generate(now)
	}
	if n.usePB {
		n.publishPB(now)
	}
	n.routerStage(now)
	n.now++
}

// routerStage runs the routing/allocation phase of one cycle. The sharded
// path decides on the pre-compaction active count (a superset of the
// post-compaction list, so the decision is conservative) because compaction
// itself runs inside the shard phase; the legacy paths keep their exact
// pre-sharding control flow.
func (n *Network) routerStage(now int64) {
	act := len(n.allIdx)
	if n.schedOn {
		act = 0
		for g := range n.activeG {
			act += len(n.activeG[g])
		}
	}
	if act == 0 {
		return
	}
	if n.shardOn && act >= n.cutover {
		n.cycleShard(now)
		return
	}
	list := n.allIdx
	if n.schedOn {
		list = n.compactActive()
	}
	if !n.shardOn && n.workers > 1 && len(list) >= n.cutover {
		n.cycleRouters(list, now)
		return
	}
	for _, i := range list {
		r := n.Routers[i]
		grants := r.Cycle(n.Engine, now)
		for j := range grants {
			n.commit(r, &grants[j], now)
		}
	}
}

// processDue runs the event phase over one cycle's due list, partitioned by
// target group. Group order is the processing order in both the serial loop
// and the sharded dispatch, so the two are trivially identical; equivalence
// with the pre-partition engine (ascending due order) rests on three facts,
// each pinned by the golden tests:
//
//   - Router mutations commute across groups: an event targets exactly one
//     router (arrivals and drains touch input buffers, credits touch output
//     ports), and same-router events touch disjoint (port, VC) state.
//   - Observable effects (delivery folds and stats, fault drops) are not
//     applied in processing order: they are recorded per due index and
//     applied in ascending index order afterwards — the exact fold order of
//     the pre-partition engine, because arrive/drain events enter a wheel
//     slot only during the commit phase (ascending router order) and their
//     relative in-slot order is therefore identical under both engines.
//   - Handle-phase wheel insertions are credit events only; their in-slot
//     order differs from the pre-partition engine's, but credits fold
//     nothing and AddCredit is commutative (a sum plus idempotent dirty
//     bits), so no digest, stat or future decision can observe the shuffle.
func (n *Network) processDue(due []event, now int64) {
	if !n.shardOn || len(due) < n.cutover {
		// Serial fast path: the pre-partition engine verbatim — ascending
		// due order, effects applied inline. No group partition, no effect
		// deferral; the sharded path below reproduces exactly this order.
		//
		// The lookahead touch warms the port state of an event a few slots
		// ahead: due-order jumps between routers, so each event's first
		// dereference is otherwise a serial cache miss. Reads of exported
		// quiescent fields only — nothing observable moves.
		const look = 8
		sink := int64(0)
		for i := range due {
			if i+look < len(due) {
				nx := &due[i+look]
				r := n.Routers[nx.r]
				inp := &r.In[nx.port]
				sink += int64(inp.UpPort) + int64(r.Out[nx.port].Latency)
				if int(nx.vc) < len(inp.VCs) {
					sink += int64(inp.VCs[nx.vc].Ring)
				}
			}
			n.handleSerial(due[i], now)
		}
		n.evSink = sink
		return
	}
	for g := range n.dueG {
		n.dueG[g] = n.dueG[g][:0]
	}
	gsz := int32(n.groupSize)
	for i := range due {
		g := due[i].r / gsz
		n.dueG[g] = append(n.dueG[g], int32(i))
	}
	if cap(n.fxKind) < len(due) {
		n.fxKind = make([]uint8, len(due))
		n.fxPkt = make([]*packet.Packet, len(due))
	} else {
		n.fxKind = n.fxKind[:len(due)]
		clear(n.fxKind)
		n.fxPkt = n.fxPkt[:len(due)]
	}
	n.curDue = due
	n.runShards(phaseHandle, now)
	n.curDue = nil
	// Commit the cross-shard channels in ascending group order: wheel
	// outboxes (credit refunds) and in-flight deltas.
	for g := range n.gs {
		sh := &n.gs[g]
		for _, se := range sh.sched {
			n.wheel.Schedule(int(se.delay), se.ev)
		}
		sh.sched = sh.sched[:0]
		n.inFlight += sh.inFlight
		sh.inFlight = 0
	}
	// Apply deferred effects in original due order (see above).
	for i, k := range n.fxKind {
		switch k {
		case fxDeliver:
			p := n.fxPkt[i]
			n.fxPkt[i] = nil
			if n.digestOn {
				// Folding (identity, latency) pins per-packet delivery
				// times, not just the grant sequence.
				n.fold(1, now, int64(p.Src), int64(p.Dst), p.Born, p.Injected)
			}
			n.Stats.OnDeliver(p.Born, p.Injected, now, p.TotalHops, p.RingHops)
			if p.Job >= 0 {
				n.Stats.JobDelivered(int(p.Job), now-p.Born)
			}
			n.putPacket(p)
		case fxDrop:
			p := n.fxPkt[i]
			n.fxPkt[i] = nil
			n.dropPacket(p, now)
		}
	}
}

// sched inserts a wheel event directly (sh == nil: serial event phase) or
// into the group's outbox (sharded event phase, where the shared wheel is
// off limits until the barrier).
func (n *Network) sched(sh *groupScratch, delay int, ev event) {
	if sh == nil {
		n.wheel.Schedule(delay, ev)
	} else {
		sh.sched = append(sh.sched, schedEv{ev: ev, delay: int32(delay)})
	}
}

// wake puts a router on the active list (idempotent). Callers are the three
// places that can create routable work: handle (arrivals and drain
// completions) and generate (injections). Waking conservatively is always
// safe — an awake router with no routable head runs a no-op Cycle and is
// dropped by the next compactActive — whereas a missed wake would silently
// freeze the router's traffic, so every candidate event wakes its router.
func (n *Network) wake(r int32) {
	if !n.awake[r] {
		n.awake[r] = true
		g := r / int32(n.groupSize)
		n.activeG[g] = append(n.activeG[g], r)
	}
}

// ActiveRouters reports how many routers are currently on the activity
// scheduler's active list (every router when the scheduler is disabled).
// This is the quantity the parallel cutover compares against
// Config.ParallelCutover; exposed for diagnostics and calibration.
func (n *Network) ActiveRouters() int {
	if n.schedOn {
		total := 0
		for g := range n.activeG {
			total += len(n.activeG[g])
		}
		return total
	}
	return len(n.Routers)
}

// compactActive compacts every group's active list and returns their
// concatenation: per-group sorted lists of a group-major router numbering
// concatenate into the globally ascending order the legacy full loop visits
// routers in, which keeps grant commit order, timing-wheel insertion order
// and therefore every digest bit-identical. Skipped routers contribute no
// grants, so removing them from the iteration changes nothing else.
func (n *Network) compactActive() []int32 {
	flat := n.activeFlat[:0]
	for g := range n.activeG {
		if len(n.activeG[g]) > 0 {
			flat = append(flat, n.compactGroup(g)...)
		}
	}
	n.activeFlat = flat
	return flat
}

// compactGroup drops routers with no routable buffer head from one group's
// active list and sorts the survivors by router index. Touches only
// group-owned state (the group's list and its routers' awake flags), so
// shard workers compact their claimed groups concurrently.
func (n *Network) compactGroup(g int) []int32 {
	keep := n.activeG[g][:0]
	for _, id := range n.activeG[g] {
		if n.Routers[id].HasRoutableWork() {
			keep = append(keep, id)
		} else {
			n.awake[id] = false
		}
	}
	slices.Sort(keep)
	n.activeG[g] = keep
	return keep
}

// publishPB refreshes the group flag boards. The boards store transitions,
// so only routers whose global-port occupancy moved since their last publish
// (PBDirty) need to recompute; the full sweep remains available for the
// scheduler-disabled path and produces identical reader-visible flags.
//
// With group sharding past the cutover, the O(routers) dirty scan runs on
// the pool instead: each worker publishes its claimed groups' boards. A
// group's board is written only by that group's routers (UpdatePBFlags sets
// the router's own link flags), each router writes disjoint flag indices,
// and nothing reads any board during this phase — so the sweep parallelizes
// with no outbox and no barrier merge, bit-identically.
func (n *Network) publishPB(now int64) {
	if n.shardOn && n.cutover <= len(n.Routers) {
		n.runShards(phasePB, now)
		return
	}
	for g := 0; g < n.nGroups; g++ {
		n.publishPBGroup(g, now)
	}
}

// publishPBGroup republishes one group's flag board (serial loop or shard
// worker; see publishPB).
func (n *Network) publishPBGroup(g int, now int64) {
	lo := g * n.groupSize
	hi := lo + n.groupSize
	if n.schedOn {
		for r := lo; r < hi; r++ {
			if rt := n.Routers[r]; rt.PBDirty() {
				rt.UpdatePBFlags(now)
			}
		}
		return
	}
	for r := lo; r < hi; r++ {
		n.Routers[r].UpdatePBFlags(now)
	}
}

// Run advances the simulation by the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Step()
	}
}

// Drained reports whether the generator is exhausted and every generated
// packet was delivered or explicitly dropped by a fault.
func (n *Network) Drained() bool {
	return n.gen.Done() && n.Stats.Generated == n.Stats.Delivered+n.Stats.Dropped
}

// RunUntilDrained steps until the generator is exhausted and every packet
// has been delivered, or maxCycles elapse. It returns true when drained.
func (n *Network) RunUntilDrained(maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		if n.Drained() {
			return true
		}
		n.Step()
	}
	return n.Drained()
}

// Trace is the recorded journey of one packet.
type Trace struct {
	Src, Dst int
	Hops     []TraceHop
	Done     bool
	Dropped  bool // lost to an injected fault
}

// TraceHop is one crossbar transfer: the router, the output port taken and
// whether it was an escape-channel move.
type TraceHop struct {
	Router int
	Port   int
	VC     int
	Escape bool
	Cycle  int64
}

// EnableTracing records the full path of every N-th generated packet
// (N ≤ 1 traces everything). Intended for tests and debugging; tracing
// allocates per packet.
func (n *Network) EnableTracing(every int) {
	if every < 1 {
		every = 1
	}
	n.traceEvery = every
	n.traces = make(map[packet.ID]*Trace)
}

// Traces returns the recorded packet journeys (nil unless enabled).
func (n *Network) Traces() map[packet.ID]*Trace { return n.traces }

// GrantEvent is one committed crossbar transfer as recorded by the grant
// log: the granting router, the input buffer, the output assignment and the
// packet identity (source, destination, generation cycle — stable across
// engines, unlike pool-recycled pointers).
type GrantEvent struct {
	Cycle  int64 `json:"t"`
	Router int   `json:"r"`
	InPort int   `json:"ip"`
	InVC   int   `json:"iv"`
	Out    int   `json:"o"`
	VC     int   `json:"v"`
	Src    int   `json:"s"`
	Dst    int   `json:"d"`
	Born   int64 `json:"b"`
	Eject  bool  `json:"e,omitempty"`
}

// EnableGrantDigest folds every committed grant and every delivery into a
// running FNV-1a digest. Comparing digests after each cycle proves two runs
// produce identical grant sequences and packet latencies without storing
// the streams (the equivalence and golden-trace tests rely on this).
func (n *Network) EnableGrantDigest() {
	n.digestOn = true
	n.digest = fnvOffset
}

// GrantDigest returns the running digest and the number of events folded
// into it (grants + deliveries).
func (n *Network) GrantDigest() (uint64, int64) { return n.digest, n.digestCount }

// EnableGrantLog records up to max committed grants verbatim (the digest
// keeps covering everything beyond the cap). Intended for golden-trace
// tests; logging allocates.
func (n *Network) EnableGrantLog(max int) {
	n.logCap = max
	n.grantLog = make([]GrantEvent, 0, max)
	if !n.digestOn {
		n.EnableGrantDigest()
	}
}

// GrantLog returns the recorded grant events.
func (n *Network) GrantLog() []GrantEvent { return n.grantLog }

// FNV-1a, 64 bit.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func (n *Network) fold(vs ...int64) {
	h := n.digest
	for _, v := range vs {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h = (h ^ (x & 0xff)) * fnvPrime
			x >>= 8
		}
	}
	n.digest = h
	n.digestCount++
}

// handleSerial processes one due event with inline effects — the serial
// event phase, byte-for-byte the pre-partition engine. The sharded path
// (handleGroup + deferred effects) reproduces exactly this processing order;
// see processDue.
func (n *Network) handleSerial(ev event, now int64) {
	switch ev.kind {
	case evArrive:
		n.inFlight--
		if n.deadRouter != nil && n.deadRouter[ev.r] {
			// The packet was launched before the router died; the link
			// delivered it into a void. No credit refund: the upstream port
			// is dead and its counters are frozen.
			n.dropPacket(ev.pkt, now)
			return
		}
		if n.deadNode != nil && n.deadNode[ev.pkt.Dst] {
			// The destination died while the packet was en route. Drop it
			// here rather than let it chase an unreachable ejection port —
			// with a synthesized refund, since the buffer space it reserved
			// on this live router is never consumed.
			up := &n.Routers[ev.r].In[ev.port]
			if up.UpRouter >= 0 {
				n.wheel.Schedule(0, event{kind: evCredit, r: int32(up.UpRouter), port: int16(up.UpPort), vc: ev.vc, phits: int32(ev.pkt.Size)})
			}
			n.dropPacket(ev.pkt, now)
			return
		}
		n.Routers[ev.r].Arrive(int(ev.port), int(ev.vc), ev.pkt)
		if n.schedOn {
			n.wake(ev.r)
		}
	case evDrain, evDrainDeliver:
		r := n.Routers[ev.r]
		p, upR, upP := r.FinishDrain(int(ev.port), int(ev.vc))
		if n.schedOn {
			// The drain's end frees the input port and promotes any packet
			// queued behind the drained head; credits (evCredit) need no
			// wake because they cannot create a routable head on a router
			// that has none.
			n.wake(ev.r)
		}
		if ev.kind == evDrain {
			// The packet has fully left this buffer and is now only on the
			// link (its arrival event is pending); with link latencies ≥
			// packetSize-1 — true for all shipped configurations — this
			// keeps the conservation accounting exact.
			n.inFlight++
		}
		if upR >= 0 && (n.deadRouter == nil || !n.deadRouter[ev.r]) {
			// Dead routers return no credits: their upstream ports are dead
			// with frozen counters — except a re-formed ring predecessor,
			// whose counters were re-derived against the new downstream
			// buffer and must not absorb refunds for the old one.
			lat := n.Routers[upR].Out[upP].Latency
			n.wheel.Schedule(lat-1, event{kind: evCredit, r: int32(upR), port: int16(upP), vc: ev.vc, phits: int32(p.Size)})
		}
		if ev.kind == evDrainDeliver {
			p.Done = now
			if n.digestOn {
				// Folding (identity, latency) pins per-packet delivery
				// times, not just the grant sequence.
				n.fold(1, now, int64(p.Src), int64(p.Dst), p.Born, p.Injected)
			}
			n.Stats.OnDeliver(p.Born, p.Injected, now, p.TotalHops, p.RingHops)
			if p.Job >= 0 {
				n.Stats.JobDelivered(int(p.Job), now-p.Born)
			}
			n.putPacket(p)
		}
	case evCredit:
		n.Routers[ev.r].AddCredit(int(ev.port), int(ev.vc), int(ev.phits))
	}
}

// handleGroup processes one group's share of the due list inside a shard
// worker: wheel insertions and the in-flight counter go through the group's
// scratch, and everything else the switch mutates is owned by the group —
// routers of this group (every event targets its own router), the
// awake/activeG entries of this group, and the fx slots of this group's due
// indices. Observable effects (deliveries, drops) are only *recorded* here;
// processDue applies them in original due order.
func (n *Network) handleGroup(g int, due []event, now int64, sh *groupScratch) {
	for _, idx := range n.dueG[g] {
		ev := due[idx]
		switch ev.kind {
		case evArrive:
			sh.inFlight--
			if n.deadRouter != nil && n.deadRouter[ev.r] {
				// The packet was launched before the router died; the link
				// delivered it into a void. No credit refund: the upstream
				// port is dead and its counters are frozen.
				n.fxKind[idx] = fxDrop
				n.fxPkt[idx] = ev.pkt
				continue
			}
			if n.deadNode != nil && n.deadNode[ev.pkt.Dst] {
				// The destination died while the packet was en route. Drop it
				// here rather than let it chase an unreachable ejection port —
				// with a synthesized refund, since the buffer space it
				// reserved on this live router is never consumed.
				up := &n.Routers[ev.r].In[ev.port]
				if up.UpRouter >= 0 {
					n.sched(sh, 0, event{kind: evCredit, r: int32(up.UpRouter), port: int16(up.UpPort), vc: ev.vc, phits: int32(ev.pkt.Size)})
				}
				n.fxKind[idx] = fxDrop
				n.fxPkt[idx] = ev.pkt
				continue
			}
			n.Routers[ev.r].Arrive(int(ev.port), int(ev.vc), ev.pkt)
			if n.schedOn {
				n.wake(ev.r)
			}
		case evDrain, evDrainDeliver:
			r := n.Routers[ev.r]
			p, upR, upP := r.FinishDrain(int(ev.port), int(ev.vc))
			if n.schedOn {
				// The drain's end frees the input port and promotes any packet
				// queued behind the drained head; credits (evCredit) need no
				// wake because they cannot create a routable head on a router
				// that has none.
				n.wake(ev.r)
			}
			if ev.kind == evDrain {
				// The packet has fully left this buffer and is now only on the
				// link (its arrival event is pending); with link latencies ≥
				// packetSize-1 — true for all shipped configurations — this
				// keeps the conservation accounting exact.
				sh.inFlight++
			}
			if upR >= 0 && (n.deadRouter == nil || !n.deadRouter[ev.r]) {
				// Dead routers return no credits: their upstream ports are
				// dead with frozen counters — except a re-formed ring
				// predecessor, whose counters were re-derived against the new
				// downstream buffer and must not absorb refunds for the old
				// one.
				lat := n.Routers[upR].Out[upP].Latency
				n.sched(sh, lat-1, event{kind: evCredit, r: int32(upR), port: int16(upP), vc: ev.vc, phits: int32(p.Size)})
			}
			if ev.kind == evDrainDeliver {
				p.Done = now
				n.fxKind[idx] = fxDeliver
				n.fxPkt[idx] = p
			}
		case evCredit:
			n.Routers[ev.r].AddCredit(int(ev.port), int(ev.vc), int(ev.phits))
		}
	}
}

// generate runs the injection front-end for one cycle. Both paths walk the
// same (group, node) order and draw from the same per-group traffic streams;
// equivalence of the sharded path rests on three facts, mirrored from the
// processDue argument and pinned by the golden/invariance matrices:
//
//   - Per-node work is group-local: Next/Retract draw from the group's own
//     stream (and, for GroupLocalGenerator sources, touch only per-node or
//     commutative-atomic generator state), the pending queue and the
//     injection router belong to the node's own group, and packets come from
//     the group's own pool shard. Nothing one group does can change what
//     another group generates or injects this cycle.
//   - Observable effects are not applied in processing order: packet IDs,
//     Stats counters, digest folds, trace-recorder appends and job
//     accounting are recorded per group (genRec) and replayed at the barrier
//     in ascending (group, node) order — the exact interleaving of the
//     serial loop, including the running Generated count the path-trace
//     sampler reads.
//   - Counter deltas that the serial loop interleaves with generation
//     (SourceBlocked, Injected, CongestionStalls) are plain sums with no
//     intermediate observer, so per-group accumulation plus an ordered merge
//     is invisible.
//
// Generators without the GroupLocalGenerator marker (Burst, JobSet — shared
// plain-int progress counters) always take the serial path, which performs
// identical draws from the identical streams, so the results cannot depend
// on which path executed.
func (n *Network) generate(now int64) {
	if n.genShard && n.genLocal {
		n.runShards(phaseGenerate, now)
		n.commitGenerate(now)
		return
	}
	for g := 0; g < n.nGroups; g++ {
		n.generateSerial(g, now)
	}
}

// generateSerial generates and injects for every node of one group with all
// effects applied inline — the serial injection front-end, processing nodes
// in the exact order the pre-sharding single-stream loop did (ascending node
// == ascending (group, node), since node numbering is group-major).
func (n *Network) generateSerial(g int, now int64) {
	topo := n.Topo
	rng := n.trafficRNG[g]
	lo := g * n.groupNodes
	hi := lo + n.groupNodes
	for node := lo; node < hi; node++ {
		if n.deadNode != nil && n.deadNode[node] {
			continue // dead sources neither draw traffic nor inject
		}
		pq := &n.pending[node]
		if dst, ok := n.gen.Next(rng, node, now); ok {
			if n.deadNode != nil && n.deadNode[dst] {
				// The destination is down; the source learns immediately
				// (its NIC would). Generated and Dropped move together so
				// conservation holds without allocating a packet.
				n.Stats.Generated++
				n.Stats.Dropped++
				n.Stats.NoteAffectedFlow(node, dst)
				if n.jobOf != nil {
					j := int(n.jobOf[node])
					n.Stats.JobGenerated(j)
					n.Stats.JobDropped(j)
				}
				if n.rec != nil {
					n.rec.Add(now, node, dst, n.Cfg.PacketSize)
				}
				if n.digestOn {
					n.fold(2, now, int64(node), int64(dst), now)
				}
			} else if pq.len() >= n.Cfg.PendingCap {
				n.gen.Retract(node)
				n.Stats.SourceBlocked++
			} else {
				p := n.poolG[g].GetBlank()
				p.ID = n.pool.NextID()
				p.Size = n.Cfg.PacketSize
				p.Src, p.Dst = node, dst
				p.SrcGroup = g
				p.DstGroup = topo.GroupOfNode(dst)
				p.Born = now
				if n.jobOf != nil {
					p.Job = n.jobOf[node]
					n.Stats.JobGenerated(int(p.Job))
				}
				if n.rec != nil {
					n.rec.Add(now, node, dst, n.Cfg.PacketSize)
				}
				pq.push(p)
				if n.traceEvery > 0 && n.Stats.Generated%int64(n.traceEvery) == 0 {
					n.traces[p.ID] = &Trace{Src: node, Dst: dst}
				}
				n.Stats.Generated++
			}
		}
		if p := pq.peek(); p != nil {
			r := n.Routers[topo.RouterOf(node)]
			if n.congestionOn && r.CanonicalOccupancy() >= n.congestionTh {
				n.CongestionStalls++
				continue
			}
			port := topo.NodePort(topo.NodeSlot(node))
			if vc, ok := r.InjectionSpace(port, p.Size); ok {
				pq.pop()
				r.Inject(port, vc, p, now)
				if n.schedOn {
					n.wake(int32(r.ID))
				}
				n.Engine.AtInjection(r, p, now)
				n.Stats.Injected++
			}
		}
	}
}

// generateGroup is generateSerial's shard-phase twin, run by a pool worker
// that has claimed group g: the same per-node sequence, but every observable
// effect is buffered — packets leave the group's pool shard without an ID
// (the barrier stamps IDs in global order), stats/digest/trace/job effects
// become genRec entries, and counter deltas accumulate in the group scratch.
// Injection side effects (router state, wake, AtInjection with the worker's
// engine) are group-owned and applied immediately, exactly as the serial
// loop would at this node's turn.
func (n *Network) generateGroup(g int, eng router.Engine, now int64) {
	topo := n.Topo
	rng := n.trafficRNG[g]
	sh := &n.gs[g]
	lo := g * n.groupNodes
	hi := lo + n.groupNodes
	for node := lo; node < hi; node++ {
		if n.deadNode != nil && n.deadNode[node] {
			continue // dead sources neither draw traffic nor inject
		}
		pq := &n.pending[node]
		if dst, ok := n.gen.Next(rng, node, now); ok {
			if n.deadNode != nil && n.deadNode[dst] {
				sh.gen = append(sh.gen, genRec{node: int32(node), dst: int32(dst)})
			} else if pq.len() >= n.Cfg.PendingCap {
				n.gen.Retract(node)
				sh.blocked++
			} else {
				p := n.poolG[g].GetBlank()
				p.Size = n.Cfg.PacketSize
				p.Src, p.Dst = node, dst
				p.SrcGroup = g
				p.DstGroup = topo.GroupOfNode(dst)
				p.Born = now
				if n.jobOf != nil {
					p.Job = n.jobOf[node]
				}
				pq.push(p)
				sh.gen = append(sh.gen, genRec{pkt: p, node: int32(node), dst: int32(dst)})
			}
		}
		if p := pq.peek(); p != nil {
			r := n.Routers[topo.RouterOf(node)]
			if n.congestionOn && r.CanonicalOccupancy() >= n.congestionTh {
				sh.congStalls++
				continue
			}
			port := topo.NodePort(topo.NodeSlot(node))
			if vc, ok := r.InjectionSpace(port, p.Size); ok {
				pq.pop()
				r.Inject(port, vc, p, now)
				if n.schedOn {
					n.wake(int32(r.ID))
				}
				eng.AtInjection(r, p, now)
				sh.injected++
			}
		}
	}
}

// commitGenerate is the serial barrier of the sharded generate phase: walk
// groups in ascending order replaying each group's genRec entries in node
// order — stamping packet IDs from the run-wide sequence and folding the
// observable effects exactly as generateSerial interleaves them — then merge
// the counter deltas.
func (n *Network) commitGenerate(now int64) {
	for g := 0; g < n.nGroups; g++ {
		sh := &n.gs[g]
		for i := range sh.gen {
			rec := &sh.gen[i]
			if rec.pkt == nil {
				// Dead-destination drop (see generateSerial).
				n.Stats.Generated++
				n.Stats.Dropped++
				n.Stats.NoteAffectedFlow(int(rec.node), int(rec.dst))
				if n.jobOf != nil {
					j := int(n.jobOf[rec.node])
					n.Stats.JobGenerated(j)
					n.Stats.JobDropped(j)
				}
				if n.rec != nil {
					n.rec.Add(now, int(rec.node), int(rec.dst), n.Cfg.PacketSize)
				}
				if n.digestOn {
					n.fold(2, now, int64(rec.node), int64(rec.dst), now)
				}
				continue
			}
			p := rec.pkt
			p.ID = n.pool.NextID()
			rec.pkt = nil
			if n.jobOf != nil {
				n.Stats.JobGenerated(int(p.Job))
			}
			if n.rec != nil {
				n.rec.Add(now, int(rec.node), int(rec.dst), n.Cfg.PacketSize)
			}
			if n.traceEvery > 0 && n.Stats.Generated%int64(n.traceEvery) == 0 {
				n.traces[p.ID] = &Trace{Src: int(rec.node), Dst: int(rec.dst)}
			}
			n.Stats.Generated++
		}
		sh.gen = sh.gen[:0]
		n.Stats.SourceBlocked += sh.blocked
		n.Stats.Injected += sh.injected
		n.CongestionStalls += sh.congStalls
		sh.blocked, sh.injected, sh.congStalls = 0, 0, 0
	}
}

// putPacket recycles a terminal packet into its source group's pool shard,
// keeping the free list (and the block-carve locality it preserves) with the
// group that allocated the packet. Only ever called from serial contexts
// (delivery folds, fault drops).
func (n *Network) putPacket(p *packet.Packet) {
	n.poolG[p.SrcGroup].Put(p)
}

func (n *Network) commit(r *router.Router, g *router.Grant, now int64) {
	p := g.Pkt
	if n.digestOn {
		n.fold(0, now, int64(r.ID), int64(g.InPort), int64(g.InVC),
			int64(g.Req.Out), int64(g.Req.VC), int64(p.Src), int64(p.Dst), p.Born)
		if len(n.grantLog) < n.logCap {
			n.grantLog = append(n.grantLog, GrantEvent{
				Cycle: now, Router: r.ID, InPort: g.InPort, InVC: g.InVC,
				Out: g.Req.Out, VC: g.Req.VC,
				Src: p.Src, Dst: p.Dst, Born: p.Born, Eject: g.Eject,
			})
		}
	}
	if n.traceEvery > 0 {
		if tr, ok := n.traces[p.ID]; ok {
			tr.Hops = append(tr.Hops, TraceHop{
				Router: r.ID, Port: g.Req.Out, VC: g.Req.VC,
				Escape: g.Req.Escape, Cycle: now,
			})
			if g.Eject {
				tr.Done = true
			}
		}
	}
	if g.Eject {
		n.wheel.Schedule(p.Size-1, event{kind: evDrainDeliver, r: int32(r.ID), port: int16(g.InPort), vc: int16(g.InVC)})
	} else {
		out := &r.Out[g.Req.Out]
		n.wheel.Schedule(out.Latency, event{kind: evArrive, pkt: p, r: int32(out.Peer), port: int16(out.PeerPort), vc: int16(g.Req.VC)})
		n.wheel.Schedule(p.Size-1, event{kind: evDrain, r: int32(r.ID), port: int16(g.InPort), vc: int16(g.InVC)})
	}
	n.Stats.AddUtilization(r.ID, g.Req.Out, p.Size)
	if g.Req.SetGlobalMis {
		n.Stats.GlobalMisroutes++
	}
	if g.Req.SetLocalMis {
		n.Stats.LocalMisroutes++
	}
	if g.Req.EnterRing {
		n.Stats.RingEnters++
	}
	if g.Req.ExitRing {
		n.Stats.RingExits++
	}
	if g.Req.Escape && !g.Req.EnterRing {
		n.Stats.RingHops++
	}
	if n.faultIdx > 0 && (g.Req.SetGlobalMis || g.Req.SetLocalMis || g.Req.EnterRing) &&
		r.OutputDead(n.Topo.MinimalPort(r.ID, p.Dst)) {
		// The packet left its minimal path while the minimal output here is
		// dead: the fault, not ordinary congestion, forced the detour.
		n.Stats.FaultReroutes++
		n.Stats.NoteAffectedFlow(p.Src, p.Dst)
	}
}

// commitSched is the wheel-insertion half of commit, runnable inside a shard
// worker: the grant's future events go to the group outbox (sh != nil) or
// the wheel directly. Splitting commit lets the sharded router stage emit
// each group's insertions during the parallel phase and reduce the serial
// barrier to outbox merging plus commitStats.
func (n *Network) commitSched(r *router.Router, g *router.Grant, now int64, sh *groupScratch) {
	p := g.Pkt
	if g.Eject {
		n.sched(sh, p.Size-1, event{kind: evDrainDeliver, r: int32(r.ID), port: int16(g.InPort), vc: int16(g.InVC)})
	} else {
		out := &r.Out[g.Req.Out]
		n.sched(sh, out.Latency, event{kind: evArrive, pkt: p, r: int32(out.Peer), port: int16(out.PeerPort), vc: int16(g.Req.VC)})
		n.sched(sh, p.Size-1, event{kind: evDrain, r: int32(r.ID), port: int16(g.InPort), vc: int16(g.InVC)})
	}
}

// commitStats is the observable half of commit — digest, grant log, traces,
// statistics, fault-reroute attribution — applied serially in ascending
// router order at the shard barrier, exactly as the serial engine interleaves
// them.
func (n *Network) commitStats(r *router.Router, g *router.Grant, now int64) {
	p := g.Pkt
	if n.digestOn {
		n.fold(0, now, int64(r.ID), int64(g.InPort), int64(g.InVC),
			int64(g.Req.Out), int64(g.Req.VC), int64(p.Src), int64(p.Dst), p.Born)
		if len(n.grantLog) < n.logCap {
			n.grantLog = append(n.grantLog, GrantEvent{
				Cycle: now, Router: r.ID, InPort: g.InPort, InVC: g.InVC,
				Out: g.Req.Out, VC: g.Req.VC,
				Src: p.Src, Dst: p.Dst, Born: p.Born, Eject: g.Eject,
			})
		}
	}
	if n.traceEvery > 0 {
		if tr, ok := n.traces[p.ID]; ok {
			tr.Hops = append(tr.Hops, TraceHop{
				Router: r.ID, Port: g.Req.Out, VC: g.Req.VC,
				Escape: g.Req.Escape, Cycle: now,
			})
			if g.Eject {
				tr.Done = true
			}
		}
	}
	n.Stats.AddUtilization(r.ID, g.Req.Out, p.Size)
	if g.Req.SetGlobalMis {
		n.Stats.GlobalMisroutes++
	}
	if g.Req.SetLocalMis {
		n.Stats.LocalMisroutes++
	}
	if g.Req.EnterRing {
		n.Stats.RingEnters++
	}
	if g.Req.ExitRing {
		n.Stats.RingExits++
	}
	if g.Req.Escape && !g.Req.EnterRing {
		n.Stats.RingHops++
	}
	if n.faultIdx > 0 && (g.Req.SetGlobalMis || g.Req.SetLocalMis || g.Req.EnterRing) &&
		r.OutputDead(n.Topo.MinimalPort(r.ID, p.Dst)) {
		// The packet left its minimal path while the minimal output here is
		// dead: the fault, not ordinary congestion, forced the detour.
		n.Stats.FaultReroutes++
		n.Stats.NoteAffectedFlow(p.Src, p.Dst)
	}
}

// groupList returns the iteration list of one group: its compacted active
// list under the scheduler, or the group's full router range without it.
func (n *Network) groupList(g int) []int32 {
	if n.schedOn {
		return n.activeG[g]
	}
	lo := g * n.groupSize
	hi := lo + n.groupSize
	if hi > len(n.allIdx) {
		hi = len(n.allIdx)
	}
	return n.allIdx[lo:hi]
}

// cycleGroup runs one group's router stage inside a shard worker: compact
// the group's active list, Cycle each router with the worker's engine, and
// emit the grants' wheel insertions into the group outbox. Everything
// written — the group's active list, its routers, their grantBuf rows, the
// outbox — is owned by this group's claim.
func (n *Network) cycleGroup(g int, eng router.Engine, now int64) {
	if n.schedOn {
		if len(n.activeG[g]) == 0 {
			return
		}
		n.compactGroup(g)
	}
	sh := &n.gs[g]
	for _, i := range n.groupList(g) {
		r := n.Routers[i]
		grants := r.Cycle(eng, now)
		n.grantBuf[i] = grants
		for j := range grants {
			n.commitSched(r, &grants[j], now, sh)
		}
	}
}

// cycleShard is the ShardByGroup router stage: the pool claims whole groups
// (compute + per-group commitSched in parallel), then the barrier walks
// groups in ascending order committing stats in router order and merging
// each group's outbox — reproducing the serial engine's ascending-router
// wheel-insertion and fold order exactly, for any worker count.
func (n *Network) cycleShard(now int64) {
	n.runShards(phaseCycle, now)
	for g := 0; g < n.nGroups; g++ {
		for _, i := range n.groupList(g) {
			r := n.Routers[i]
			grants := n.grantBuf[i]
			for j := range grants {
				n.commitStats(r, &grants[j], now)
			}
		}
		sh := &n.gs[g]
		for _, se := range sh.sched {
			n.wheel.Schedule(int(se.delay), se.ev)
		}
		sh.sched = sh.sched[:0]
	}
}

// FailRingEdge breaks escape ring `ring` at the outgoing edge of `router`
// (§VII: "OFAR could block the system with more than a single failure in
// its Hamiltonian ring" — multiple embedded rings restore protection).
func (n *Network) FailRingEdge(ring, router int) {
	n.Routers[router].FailRing(ring)
}

// UtilizationByKind summarizes link utilization for one port class
// (requires Stats.EnableUtilization before the run). Unwired ports are
// excluded; physical escape-ring ports are reported under PortRing.
func (n *Network) UtilizationByKind(kind topology.PortKind) stats.UtilizationSummary {
	var counters []int64
	for _, r := range n.Routers {
		for port := range r.Out {
			if r.Out[port].Kind != kind {
				continue
			}
			counters = append(counters, n.Stats.Utilization(r.ID, port))
		}
	}
	return stats.SummarizeUtilization(counters, n.now)
}

// BufferedPackets counts packets stored in router buffers (a packet counts
// once per buffer it currently occupies; with link latencies ≥ packet size,
// as in every shipped configuration, that is exactly once).
func (n *Network) BufferedPackets() int {
	total := 0
	for _, r := range n.Routers {
		for i := range r.In {
			for vc := range r.In[i].VCs {
				total += r.In[i].VCs[vc].Len()
			}
		}
	}
	return total
}

// PendingPackets counts packets waiting in source queues.
func (n *Network) PendingPackets() int {
	total := 0
	for i := range n.pending {
		total += n.pending[i].len()
	}
	return total
}

// InFlightPackets counts packets currently traversing links.
func (n *Network) InFlightPackets() int { return n.inFlight }

// CheckConservation verifies that every generated packet is accounted for:
// delivered, explicitly dropped by a fault, waiting at a source, buffered in
// a router, or on a link.
func (n *Network) CheckConservation() error {
	inNet := int64(n.BufferedPackets() + n.InFlightPackets() + n.PendingPackets())
	if n.Stats.Generated != n.Stats.Delivered+n.Stats.Dropped+inNet {
		return fmt.Errorf("network: conservation violated: generated=%d delivered=%d dropped=%d in-system=%d",
			n.Stats.Generated, n.Stats.Delivered, n.Stats.Dropped, inNet)
	}
	if n.jobOf != nil {
		// Under a job-aware source every packet is tagged, so the per-job
		// terminal counters must partition the aggregates exactly.
		if err := n.Stats.CheckJobConservation(); err != nil {
			return err
		}
	}
	return nil
}
