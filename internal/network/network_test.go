package network

import (
	"testing"

	"ofar/internal/topology"
	"ofar/internal/traffic"
)

// testConfig returns a small h=2 network with paper-style parameters scaled
// for test speed.
func testConfig(rt Routing) Config {
	cfg := DefaultConfig(2)
	cfg.Routing = rt
	if rt == MIN || rt == VAL || rt == PB || rt == UGAL {
		cfg.Ring = RingNone
	}
	return cfg
}

func mustNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.PacketSize = 0 },
		func(c *Config) { c.LocalLatency = 0 },
		func(c *Config) { c.LocalBuf = 4 }, // smaller than a packet
		func(c *Config) { c.LocalVCs = 0 },
		func(c *Config) { c.AllocIters = 0 },
		func(c *Config) { c.PendingCap = 0 },
		func(c *Config) { c.Routing = "bogus" },
		func(c *Config) { c.Ring = RingPhysical; c.NumRings = 0 },
		func(c *Config) { c.Ring = RingPhysical; c.RingBuf = 8 }, // < 2 packets
		func(c *Config) { c.Routing = OFAR; c.Ring = RingNone },
	}
	for i, mut := range bad {
		cfg := DefaultConfig(2)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	good := DefaultConfig(2)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	// OFAR without a ring is allowed when the escape is explicitly disabled.
	cfg := DefaultConfig(2)
	cfg.Ring = RingNone
	cfg.OFAR.EscapeTimeout = -1
	if err := cfg.Validate(); err != nil {
		t.Errorf("explicitly unprotected OFAR rejected: %v", err)
	}
}

// TestAllEnginesDeliver runs every mechanism at moderate uniform load and
// checks packets arrive at the right nodes with conserved counts.
func TestAllEnginesDeliver(t *testing.T) {
	for _, rt := range []Routing{MIN, VAL, PB, UGAL, OFAR, OFARL} {
		t.Run(string(rt), func(t *testing.T) {
			n := mustNet(t, testConfig(rt))
			n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.2, n.Cfg.PacketSize))
			n.Run(4000)
			if n.Stats.Delivered == 0 {
				t.Fatal("nothing delivered")
			}
			if err := n.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			// At 0.2 load everything injected early must be delivered.
			if float64(n.Stats.Delivered) < 0.8*float64(n.Stats.Generated) {
				t.Errorf("delivered %d of %d generated", n.Stats.Delivered, n.Stats.Generated)
			}
		})
	}
}

// TestDeliveryToCorrectNode uses a custom check: run with a pattern and
// verify by construction (ADV pattern => all deliveries must come from the
// offset group). The check is indirect — the simulator ejects a packet only
// at Dst's router/port, so a misdelivery would manifest as a stuck packet
// and a conservation failure after draining.
func TestDeliveryToCorrectNode(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBurst(traffic.NewAdv(n.Topo, 1), 5, n.Topo.Nodes))
	if !n.RunUntilDrained(200000) {
		t.Fatalf("burst not drained: %d/%d", n.Stats.Delivered, n.Stats.Generated)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Delivered != int64(5*n.Topo.Nodes) {
		t.Errorf("delivered %d, want %d", n.Stats.Delivered, 5*n.Topo.Nodes)
	}
}

// TestDeterminism: identical seeds give identical results; different seeds
// differ.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) (int64, float64) {
		cfg := testConfig(OFAR)
		cfg.Seed = seed
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.3, cfg.PacketSize))
		n.Stats.StartMeasurement(0)
		n.Run(3000)
		return n.Stats.Delivered, n.Stats.AvgLatency()
	}
	d1, l1 := run(42)
	d2, l2 := run(42)
	if d1 != d2 || l1 != l2 {
		t.Errorf("same seed diverged: %d/%f vs %d/%f", d1, l1, d2, l2)
	}
	d3, _ := run(43)
	if d1 == d3 {
		t.Log("warning: different seeds produced identical delivery counts (possible but unlikely)")
	}
}

// TestCreditConservation verifies, mid-simulation, that missing credits on
// every output equal downstream occupancy plus in-flight phits.
func TestCreditConservation(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.4, cfg.PacketSize))
	// Track in-flight phits per (router,port,vc) by draining the network
	// and checking at quiescence instead: after the generator stops and the
	// network drains, every credit must be restored.
	n.Run(2000)
	n.SetGenerator(traffic.NewBurst(traffic.NewUniform(n.Topo), 0, n.Topo.Nodes)) // stop generating
	for i := 0; i < 100000 && n.BufferedPackets()+n.InFlightPackets()+n.PendingPackets() > 0; i++ {
		n.Step()
	}
	if left := n.BufferedPackets() + n.InFlightPackets() + n.PendingPackets(); left != 0 {
		t.Fatalf("network did not drain: %d packets left", left)
	}
	// Wait for straggler credit events to land.
	n.Run(cfg.GlobalLatency + cfg.PacketSize + 2)
	for _, r := range n.Routers {
		if err := r.CheckCredits(n.Routers, func(int, int, int) int { return 0 }); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestBaselinesDeadlockFree: the VC-ordered mechanisms sustain adversarial
// overload without the escape network and keep delivering.
func TestBaselinesDeadlockFree(t *testing.T) {
	for _, rt := range []Routing{MIN, VAL, PB, UGAL} {
		t.Run(string(rt), func(t *testing.T) {
			cfg := testConfig(rt)
			n := mustNet(t, cfg)
			n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
			n.Run(3000)
			before := n.Stats.Delivered
			n.Run(2000)
			if n.Stats.Delivered == before {
				t.Fatalf("%s stopped delivering under overload (deadlock?)", rt)
			}
			if err := n.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOFARSurvivesOverloadWithRing: OFAR keeps delivering under worst-case
// adversarial overload thanks to the escape subnetwork.
func TestOFARSurvivesOverload(t *testing.T) {
	for _, mode := range []RingMode{RingPhysical, RingEmbedded} {
		cfg := testConfig(OFAR)
		cfg.Ring = mode
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
		n.Run(4000)
		before := n.Stats.Delivered
		n.Run(2000)
		if n.Stats.Delivered == before {
			t.Fatalf("OFAR (%v ring) stopped delivering", mode)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEmbeddedRingTopology: embedded mode must not add ports, physical mode
// adds one port pair per ring.
func TestRingRealizationPorts(t *testing.T) {
	cfgP := testConfig(OFAR)
	cfgP.Ring = RingPhysical
	nP := mustNet(t, cfgP)
	cfgE := testConfig(OFAR)
	cfgE.Ring = RingEmbedded
	nE := mustNet(t, cfgE)
	d := nP.Topo
	if got := len(nP.Routers[0].In); got != d.RouterPorts+1 {
		t.Errorf("physical ring ports: %d want %d", got, d.RouterPorts+1)
	}
	if got := len(nE.Routers[0].In); got != d.RouterPorts {
		t.Errorf("embedded ring ports: %d want %d", got, d.RouterPorts)
	}
	// Embedded: exactly one extra escape VC along each ring edge.
	rg := nE.Rings[0]
	for _, r := range rg.Order {
		port := rg.EmbeddedPort(r)
		op := &nE.Routers[r].Out[port]
		esc := 0
		for vc := 0; vc < op.NumVCs(); vc++ {
			if op.EscapeRing(vc) == 0 {
				esc++
			}
		}
		if esc != 1 {
			t.Fatalf("router %d ring port %d has %d escape VCs", r, port, esc)
		}
	}
}

// TestMultiRingNetwork: two embedded rings work and both get used under
// pressure.
func TestMultiRingNetwork(t *testing.T) {
	cfg := testConfig(OFAR)
	cfg.Ring = RingEmbedded
	cfg.NumRings = 2
	n := mustNet(t, cfg)
	if n.Routers[0].NumRings() != 2 {
		t.Fatal("routers not configured with 2 rings")
	}
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(6000)
	if n.Stats.RingEnters == 0 {
		t.Error("escape rings never used under worst-case overload")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestEscapeRingRarelyUsedAtLowLoad: §IV-C/§VII claim — under benign load
// the ring is essentially unused.
func TestEscapeRingRareAtLowLoad(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.2, cfg.PacketSize))
	n.Run(5000)
	frac := float64(n.Stats.RingEnters) / float64(n.Stats.Delivered+1)
	if frac > 0.01 {
		t.Errorf("escape ring used by %.2f%% of packets at low load", 100*frac)
	}
}

// TestPBFlagsInfluenceRouting: under ADV traffic PB must divert a large
// share of packets (its global channel flags fire).
func TestPBFlagsInfluenceRouting(t *testing.T) {
	cfg := testConfig(PB)
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.5, cfg.PacketSize))
	n.Run(4000)
	// Count delivered packets that took 2 global hops (valiant paths).
	// Proxy: average hops must exceed the pure-minimal expectation.
	n.Stats.StartMeasurement(n.Now())
	n.Run(2000)
	if n.Stats.AvgHops() < 2.5 {
		t.Errorf("PB avg hops %.2f suggests no misrouting under ADV", n.Stats.AvgHops())
	}
}

// TestSourceQueueBackpressure: overload fills source queues up to the cap
// and counts blocked draws without losing accounting.
func TestSourceQueueBackpressure(t *testing.T) {
	cfg := testConfig(MIN)
	cfg.PendingCap = 4
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(4000)
	if n.Stats.SourceBlocked == 0 {
		t.Error("no source backpressure under extreme overload")
	}
	if n.PendingPackets() > 4*n.Topo.Nodes {
		t.Error("pending queues exceeded the cap")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestUndersizedNetwork: a non-maximum group count simulates correctly.
func TestUndersizedNetwork(t *testing.T) {
	cfg := testConfig(MIN)
	cfg.Groups = 5
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.2, cfg.PacketSize))
	n.Run(3000)
	if n.Stats.Delivered == 0 {
		t.Fatal("nothing delivered on undersized network")
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestReducedVCCongestion reproduces the qualitative Fig. 9 effect: with
// 2 local VCs, 1 global VC, an embedded ring and no congestion management,
// adversarial overload can collapse the canonical network (throughput well
// below the full-VC configuration).
func TestReducedVCCongestion(t *testing.T) {
	run := func(localVCs, globalVCs int) float64 {
		cfg := testConfig(OFAR)
		cfg.Ring = RingEmbedded
		cfg.LocalVCs, cfg.GlobalVCs, cfg.InjVCs = localVCs, globalVCs, localVCs
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
		n.Run(3000)
		n.Stats.StartMeasurement(n.Now())
		n.Run(3000)
		return n.Stats.Throughput(n.Now())
	}
	full := run(3, 2)
	reduced := run(2, 1)
	t.Logf("full VCs: %.3f, reduced VCs: %.3f", full, reduced)
	if reduced > full {
		t.Errorf("reduced VCs outperformed full VCs: %.3f > %.3f", reduced, full)
	}
}

// TestTopologyAccessors sanity-checks the assembled wiring against the
// topology package (spot check, full check in topology tests).
func TestAssembledWiring(t *testing.T) {
	n := mustNet(t, testConfig(MIN))
	d := n.Topo
	for r := 0; r < d.Routers; r += 7 {
		for port := 0; port < d.RouterPorts; port++ {
			kind, peer, peerPort := d.Peer(r, port)
			op := &n.Routers[r].Out[port]
			switch kind {
			case topology.PortNode:
				if op.Peer != -1 {
					t.Fatalf("router %d node port %d wired to %d", r, port, op.Peer)
				}
			case topology.PortLocal, topology.PortGlobal:
				if op.Peer != peer || op.PeerPort != peerPort {
					t.Fatalf("router %d port %d wired to %d:%d, want %d:%d",
						r, port, op.Peer, op.PeerPort, peer, peerPort)
				}
			}
		}
	}
}

// TestPhysicalRingWiring: ring ports form the Hamiltonian cycle.
func TestPhysicalRingWiring(t *testing.T) {
	cfg := testConfig(OFAR)
	cfg.Ring = RingPhysical
	n := mustNet(t, cfg)
	rg := n.Rings[0]
	rp := n.Topo.RouterPorts
	for _, r := range rg.Order {
		op := &n.Routers[r].Out[rp]
		if op.Peer != rg.Next(r) {
			t.Fatalf("router %d ring out wired to %d, want %d", r, op.Peer, rg.Next(r))
		}
		in := &n.Routers[rg.Next(r)].In[rp]
		if in.UpRouter != r {
			t.Fatalf("router %d ring in upstream %d, want %d", rg.Next(r), in.UpRouter, r)
		}
	}
}

func TestValidateGroupsRange(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Groups = 10 // max is a*h+1 = 9
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range group count accepted")
	}
	cfg.Groups = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative group count accepted")
	}
}
