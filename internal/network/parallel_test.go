package network

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"ofar/internal/traffic"
)

// genFor builds the per-case traffic generator; a fresh one per network so
// serial and parallel runs never share generator state.
func genFor(n *Network, kind string, load float64) traffic.Generator {
	switch kind {
	case "uniform":
		return traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, n.Cfg.PacketSize)
	case "adversarial":
		return traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Cfg.H), load, n.Cfg.PacketSize)
	case "burst":
		return traffic.NewBurst(traffic.NewAdv(n.Topo, 2), 40, n.Topo.Nodes)
	default:
		panic("unknown traffic kind " + kind)
	}
}

// stepCompare advances the reference network and every variant cycle by
// cycle and requires all grant digests to agree after every cycle — i.e.
// the engines commit identical grant sequences and identical deliveries at
// all times, not just in aggregate.
func stepCompare(t *testing.T, ref *Network, variants map[string]*Network, cycles int) {
	t.Helper()
	for c := 0; c < cycles; c++ {
		ref.Step()
		rd, rc := ref.GrantDigest()
		for name, v := range variants {
			v.Step()
			vd, vc := v.GrantDigest()
			if vd != rd || vc != rc {
				t.Fatalf("cycle %d: digests diverge: reference %016x (%d events), %s %016x (%d events)",
					c, rd, rc, name, vd, vc)
			}
		}
	}
}

// TestParallelEngineMatchesSerial is the equivalence contract of the
// two-phase router stage and the activity scheduler: for every traffic
// pattern and mechanism tried, a Workers=4 run — with the active-set
// scheduler on or off — must be bit-identical to the serial
// scheduler-disabled run: same per-cycle grant sequences, same per-packet
// latencies (both folded into the digest), same statistics, and a conserved
// packet population on every side.
func TestParallelEngineMatchesSerial(t *testing.T) {
	cycles := 2500
	if testing.Short() {
		cycles = 600
	}
	cases := []struct {
		routing Routing
		traffic string
		load    float64
	}{
		{OFAR, "uniform", 0.8},     // saturating: misroutes, ring entries, RNG draws
		{OFAR, "adversarial", 0.5}, // ADV+h: global misroutes and escape pressure
		{OFAR, "burst", 0},         // closed-loop drain: active set shrinks to zero
		{PB, "adversarial", 0.4},   // flag boards published before the compute phase
		{VAL, "uniform", 0.6},      // injection-time RNG draws
	}
	for _, tc := range cases {
		name := string(tc.routing) + "/" + tc.traffic
		t.Run(name, func(t *testing.T) {
			base := DefaultConfig(3)
			base.Routing = tc.routing
			if tc.routing != OFAR && tc.routing != OFARL {
				base.Ring = RingNone
			}
			mk := func(workers int, noSched bool) *Network {
				cfg := base
				cfg.Workers = workers
				cfg.DisableActivitySched = noSched
				n := mustNet(t, cfg)
				n.SetGenerator(genFor(n, tc.traffic, tc.load))
				n.EnableGrantDigest()
				n.Stats.StartMeasurement(0)
				return n
			}
			ref := mk(0, true) // serial, every router every cycle: the legacy engine
			variants := map[string]*Network{
				"serial+sched":     mk(0, false),
				"workers4+nosched": mk(4, true),
				"workers4+sched":   mk(4, false),
			}

			stepCompare(t, ref, variants, cycles)

			ss := ref.Stats
			if ss.Delivered == 0 {
				t.Fatal("nothing delivered — the case exercised no traffic")
			}
			if err := ref.CheckConservation(); err != nil {
				t.Fatalf("reference: %v", err)
			}
			for name, v := range variants {
				ps := v.Stats
				if ss.Generated != ps.Generated || ss.Injected != ps.Injected || ss.Delivered != ps.Delivered {
					t.Fatalf("%s populations diverge: reference gen/inj/del %d/%d/%d, got %d/%d/%d",
						name, ss.Generated, ss.Injected, ss.Delivered, ps.Generated, ps.Injected, ps.Delivered)
				}
				if math.Float64bits(ss.AvgLatency()) != math.Float64bits(ps.AvgLatency()) ||
					ss.MaxLatency() != ps.MaxLatency() {
					t.Fatalf("%s latencies diverge: reference avg %v max %d, got avg %v max %d",
						name, ss.AvgLatency(), ss.MaxLatency(), ps.AvgLatency(), ps.MaxLatency())
				}
				if ss.GlobalMisroutes != ps.GlobalMisroutes || ss.LocalMisroutes != ps.LocalMisroutes ||
					ss.RingEnters != ps.RingEnters || ss.RingExits != ps.RingExits {
					t.Fatalf("%s routing decisions diverge: reference %d/%d/%d/%d, got %d/%d/%d/%d",
						name, ss.GlobalMisroutes, ss.LocalMisroutes, ss.RingEnters, ss.RingExits,
						ps.GlobalMisroutes, ps.LocalMisroutes, ps.RingEnters, ps.RingExits)
				}
				if err := v.CheckConservation(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

// TestWorkerCountInvariance: the digest must not depend on *how many*
// workers split the routers, nor on whether the activity scheduler prunes
// the iteration to the awake set, nor on whether routers memoize routing
// decisions, nor on whether the cycle is sharded by group, nor on whether
// the injection front-end runs sharded or serial (the full workers ×
// scheduler × route-cache × ShardByGroup × DisableShardedGenerate matrix).
// Parallel rows force ParallelCutover=1 so the pool — flat or sharded —
// genuinely dispatches on every non-empty cycle even on a single-P host.
func TestWorkerCountInvariance(t *testing.T) {
	cycles := 800
	if testing.Short() {
		cycles = 300
	}
	run := func(workers int, noSched, noCache, shard, noGen bool) (uint64, int64) {
		cfg := DefaultConfig(2)
		cfg.Workers = workers
		cfg.DisableActivitySched = noSched
		cfg.DisableRouteCache = noCache
		cfg.ShardByGroup = shard
		cfg.DisableShardedGenerate = noGen
		if workers > 1 {
			cfg.ParallelCutover = 1
		}
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.6, cfg.PacketSize))
		n.EnableGrantDigest()
		n.Run(cycles)
		d, c := n.GrantDigest()
		return d, c
	}
	wantD, wantC := run(0, true, false, false, false)
	for _, shard := range []bool{false, true} {
		for _, noGen := range []bool{false, true} {
			if noGen && !shard {
				continue // the flag only gates behavior under group sharding
			}
			for _, noCache := range []bool{false, true} {
				for _, noSched := range []bool{false, true} {
					for _, w := range []int{0, 1, 4, 8, 64} { // 64 > router count: clamped
						d, c := run(w, noSched, noCache, shard, noGen)
						if d != wantD || c != wantC {
							t.Fatalf("workers=%d noSched=%v noCache=%v shard=%v noGen=%v: digest %016x (%d) != reference %016x (%d)",
								w, noSched, noCache, shard, noGen, d, c, wantD, wantC)
						}
					}
				}
			}
		}
	}
}

// TestRouterRNGStreamIndependence pins the invariant the parallel engine
// relies on: every router owns a private RNG stream fixed at construction,
// so the draws one router sees cannot depend on how many draws any other
// router has consumed (i.e. there is no hidden shared stream that a
// different router-visit order could perturb).
func TestRouterRNGStreamIndependence(t *testing.T) {
	const probe = 5 // router whose stream we observe
	cfg := DefaultConfig(2)
	a := mustNet(t, cfg)
	b := mustNet(t, cfg)

	// Network b: exhaust thousands of draws from every *other* router first.
	for r := range b.Routers {
		if r == probe {
			continue
		}
		for i := 0; i < 1000; i++ {
			b.Routers[r].RandInt(1 << 30)
		}
	}
	// The probe router's stream must be untouched: identical to a fresh
	// network's probe stream, draw for draw.
	for i := 0; i < 64; i++ {
		want := a.Routers[probe].RandInt(1 << 30)
		got := b.Routers[probe].RandInt(1 << 30)
		if want != got {
			t.Fatalf("draw %d: probe router stream diverged (%d vs %d) after other routers consumed draws", i, want, got)
		}
	}
}

// BenchmarkNetworkStep measures whole-network cycle throughput on the
// saturated h=3 system for the serial engine and several pool sizes — the
// headline number of the parallel router stage. On a ≥4-core machine the
// workers=4 case beats the serial cycle rate (the compute phase is ~90% of
// a saturated cycle and the persistent pool's dispatch is microseconds); on
// a single-P host the auto cutover pins every cycle serial, so the parallel
// rows measure the cutover's overhead (one comparison) rather than a
// barrier penalty — which is why the speedup check is a benchmark
// comparison rather than a wall-clock test assertion.
func BenchmarkNetworkStep(b *testing.B) {
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	for _, workers := range []int{0, 2, 4} {
		name := "serial"
		if workers > 0 {
			name = fmt.Sprintf("workers%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(3)
			cfg.Workers = workers
			n, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer n.Close()
			n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 1.0, cfg.PacketSize))
			n.Run(2000) // drive to saturation before measuring
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}
