package network

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"ofar/internal/router"
)

// stepPool is the persistent worker pool behind the parallel router stage.
// It replaces the spawn-per-Step goroutines of the first two-phase engine,
// whose per-cycle cost (goroutine launch, closure allocation, channel
// fan-in) exceeded the sharded compute at every load below saturation.
//
// Lifecycle: Network.New starts Workers−1 goroutines parked on the dispatch
// barrier; the caller of Step acts as the pool's remaining worker, so the
// pool always has exactly Config.Workers computing participants and the
// caller never idles while work remains. Network.Close retires the
// goroutines; an un-Closed parallel Network pins them (parked, but alive)
// for the life of the process.
//
// One compute epoch:
//
//  1. dispatch — the caller publishes the cycle's work (active list + now),
//     resets the work-stealing cursor and the pending count, bumps the
//     epoch under the dispatch mutex and broadcasts. Everything is reused:
//     steady-state dispatch performs zero allocations.
//  2. steal    — every participant (parked workers and the caller alike)
//     claims chunks of the list via an atomic cursor and runs router.Cycle
//     with its own engine, writing each router's grants into grantBuf.
//     Stealing over the *active* list balances load over awake routers;
//     which worker computes which router is unobservable because routing
//     state lives in the router (buffers, arbiters, private RNG stream) and
//     engine clones are behaviorally identical (router.ConcurrentCloner).
//  3. join     — each parked worker decrements pending when the cursor runs
//     dry; the last one records the epoch in doneEpoch and signals. The
//     caller spins briefly (a compute phase is short), yields, then parks
//     on the completion cond. Grants are then committed serially in list
//     order, exactly as the serial loop would, so runs stay bit-identical
//     for any worker count.
type stepPool struct {
	// Hot shared state, reset at each dispatch.
	cursor  atomic.Int64 // next unclaimed index into list
	pending atomic.Int32 // parked workers still computing this epoch
	chunk   int64        // list indices claimed per cursor grab

	// Dispatch barrier: workers park on cond until epoch advances.
	// list/now/phase/cursor/pending/chunk are written by the caller before
	// the epoch bump, so the mutex hand-off publishes them to the workers.
	mu     sync.Mutex
	cond   sync.Cond
	epoch  uint64 // guarded by mu
	closed bool   // guarded by mu

	list  []int32
	now   int64
	phase int // phaseRouters / phaseHandle / phaseCycle

	// Completion barrier: the last finisher of an epoch publishes it here.
	// Epoch-tagged (not a boolean) so a straggler signalling an old epoch
	// late can never satisfy a newer wait.
	doneMu    sync.Mutex
	doneCond  sync.Cond
	doneEpoch uint64 // guarded by doneMu

	workers sync.WaitGroup // worker goroutine lifetimes, for Close

	// Prebuilt pprof label contexts for the caller's per-cycle phases, so
	// -cpuprofile output attributes samples to dispatch/compute/commit.
	// Built once at startPool: pprof.SetGoroutineLabels with a prebuilt
	// context is allocation-free, which keeps the steady state at 0 allocs.
	baseCtx     context.Context
	dispatchCtx context.Context
	computeCtx  context.Context
	commitCtx   context.Context
}

// chunkFor sizes cursor grabs: large enough that cursor contention is noise,
// small enough that the tail imbalance stays below one chunk per worker.
func chunkFor(n, workers int) int64 {
	c := n / (workers * 4)
	if c < 4 {
		c = 4
	}
	if c > 64 {
		c = 64
	}
	return int64(c)
}

// startPool creates the pool and parks workers−1 goroutines on it. Worker 0
// is the Step caller (it uses the primary engine, n.Engine == workerEng[0]);
// goroutines w = 1..workers−1 use their per-worker engine clones.
func (n *Network) startPool(workers int) {
	p := &stepPool{}
	p.cond.L = &p.mu
	p.doneCond.L = &p.doneMu
	p.baseCtx = context.Background()
	p.dispatchCtx = pprof.WithLabels(p.baseCtx, pprof.Labels("phase", "dispatch"))
	p.computeCtx = pprof.WithLabels(p.baseCtx, pprof.Labels("phase", "compute"))
	p.commitCtx = pprof.WithLabels(p.baseCtx, pprof.Labels("phase", "commit"))
	n.workerPool = p
	for w := 1; w < workers; w++ {
		p.workers.Add(1)
		go n.poolWorker(w)
	}
}

// poolWorker is one parked pool goroutine: wait for a new epoch, steal and
// compute until the cursor runs dry, then report in.
func (n *Network) poolWorker(w int) {
	p := n.workerPool
	defer p.workers.Done()
	// Label the goroutine once at birth (the labels stick for its lifetime):
	// profile samples of parked and computing pool workers show up under
	// pool_worker=<w>, phase=compute.
	pprof.Do(p.baseCtx, pprof.Labels("pool_worker", strconv.Itoa(w), "phase", "compute"), func(context.Context) {
		eng := n.workerEng[w]
		var seen uint64
		for {
			p.mu.Lock()
			for p.epoch == seen && !p.closed {
				p.cond.Wait()
			}
			if p.closed {
				p.mu.Unlock()
				return
			}
			seen = p.epoch
			list, now, phase := p.list, p.now, p.phase
			p.mu.Unlock()

			if phase == phaseRouters {
				n.computeShare(eng, list, now)
			} else {
				n.groupShare(eng, phase, now)
			}

			if p.pending.Add(-1) == 0 {
				p.doneMu.Lock()
				p.doneEpoch = seen
				p.doneMu.Unlock()
				p.doneCond.Signal()
			}
		}
	})
}

// computeShare claims chunks of the iteration list until it is exhausted and
// runs the router compute phase for each claimed router. Safe concurrently:
// Cycle reads and writes only router-local state (input buffers, credit
// mirrors of its own output ports, arbiter memories, its private RNG stream)
// plus the PB flag boards, which were fully published earlier in the cycle
// and are read-only here; distinct routers write distinct grantBuf entries.
func (n *Network) computeShare(eng router.Engine, list []int32, now int64) {
	p := n.workerPool
	chunk := p.chunk
	for {
		end := p.cursor.Add(chunk)
		k := end - chunk
		if k >= int64(len(list)) {
			return
		}
		if end > int64(len(list)) {
			end = int64(len(list))
		}
		for _, i := range list[k:end] {
			n.grantBuf[i] = n.Routers[i].Cycle(eng, now)
		}
	}
}

// Pool phases. phaseRouters is the legacy flat router stage (steal chunks of
// a router list, compute only). The shard phases steal whole dragonfly groups:
// phaseHandle runs handleGroup over the due list's group partition, phaseCycle
// runs cycleGroup (compact + compute + commitSched into the group outbox),
// phaseGenerate runs generateGroup (the sharded injection front-end, effects
// buffered as genRec for commitGenerate), and phasePB runs publishPBGroup
// (each group's routers republish their own flag board — no cross-group
// state, no observable effects, so no barrier work at all).
const (
	phaseRouters = iota
	phaseHandle
	phaseCycle
	phaseGenerate
	phasePB
)

// groupShare claims group IDs one at a time until the cursor runs dry and
// runs the current shard phase on each. Chunk size is fixed at 1: there are
// only G claims per cycle, so cursor contention is negligible, and groups are
// the unit of ownership — nothing finer is safe, nothing coarser balances.
func (n *Network) groupShare(eng router.Engine, phase int, now int64) {
	p := n.workerPool
	for {
		k := p.cursor.Add(1) - 1
		if k >= int64(n.nGroups) {
			return
		}
		g := int(k)
		switch phase {
		case phaseHandle:
			if len(n.dueG[g]) > 0 {
				n.handleGroup(g, n.curDue, now, &n.gs[g])
			}
		case phaseCycle:
			n.cycleGroup(g, eng, now)
		case phaseGenerate:
			n.generateGroup(g, eng, now)
		case phasePB:
			n.publishPBGroup(g, now)
		}
	}
}

// runShards dispatches one shard phase to the pool — every participant,
// caller included, steals whole groups — and joins. The caller resumes only
// after every group's share is done, with all cross-shard effects parked in
// the per-group outboxes for the serial barrier to merge.
func (n *Network) runShards(phase int, now int64) {
	p := n.workerPool
	p.list, p.now, p.phase = nil, now, phase
	p.cursor.Store(0)
	p.pending.Store(int32(n.workers - 1))
	p.mu.Lock()
	p.epoch++
	epoch := p.epoch
	p.mu.Unlock()
	p.cond.Broadcast()

	n.groupShare(n.Engine, phase, now)
	p.join(epoch)
}

// join waits for the epoch's parked workers to report in: spin first (a
// compute phase is tens of microseconds), then yield the P so parked-but-
// runnable workers get it (this is what keeps GOMAXPROCS=1 runs — e.g. under
// testing.AllocsPerRun — live), and only then park on the completion cond.
func (p *stepPool) join(epoch uint64) {
	for spin := 0; p.pending.Load() != 0; spin++ {
		if spin < 64 {
			continue
		}
		if spin < 256 {
			runtime.Gosched()
			continue
		}
		p.doneMu.Lock()
		for p.doneEpoch != epoch {
			p.doneCond.Wait()
		}
		p.doneMu.Unlock()
		break
	}
}

// cycleRouters runs one parallel router stage over the given iteration list
// (the sorted active set, or all routers with the scheduler disabled):
// dispatch an epoch to the pool, compute the caller's share, join, then
// commit every grant serially in list order — ascending router index,
// exactly the order the serial loop uses — so timing-wheel insertion order,
// statistics and traces are bit-identical to a serial run.
//
// grantBuf entries alias the per-router grant slices that Cycle itself
// reuses across cycles; they are never cleared here, because the commit loop
// reads only the entries of routers on this cycle's list, each freshly
// written by the compute phase.
func (n *Network) cycleRouters(list []int32, now int64) {
	p := n.workerPool
	pprof.SetGoroutineLabels(p.dispatchCtx)
	p.list, p.now, p.phase = list, now, phaseRouters
	p.chunk = chunkFor(len(list), n.workers)
	p.cursor.Store(0)
	p.pending.Store(int32(n.workers - 1))
	p.mu.Lock()
	p.epoch++
	epoch := p.epoch
	p.mu.Unlock()
	p.cond.Broadcast()

	pprof.SetGoroutineLabels(p.computeCtx)
	n.computeShare(n.Engine, list, now)
	p.join(epoch)

	pprof.SetGoroutineLabels(p.commitCtx)
	for _, i := range list {
		r := n.Routers[i]
		grants := n.grantBuf[i]
		for j := range grants {
			n.commit(r, &grants[j], now)
		}
	}
	pprof.SetGoroutineLabels(p.baseCtx)
}

// Close retires the worker pool's goroutines and waits for them to exit.
// Idempotent and safe on serial networks (no-op). Must not be called
// concurrently with Step, and a closed parallel network must not be stepped
// again (there is no one left to answer a dispatch).
func (n *Network) Close() {
	p := n.workerPool
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.workers.Wait()
}
