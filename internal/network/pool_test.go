package network

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ofar/internal/traffic"
)

// TestStepZeroAllocSteadyState pins the perf contract of the cycle loop: a
// warmed-up Step performs no allocations — serial or pooled, scheduler on or
// off. The parallel cases force ParallelCutover=1 so every non-empty cycle
// dispatches to the pool (AllocsPerRun runs under GOMAXPROCS=1, where the
// auto cutover would otherwise route low-load steps around it). Amortized
// growth of long-lived slices (source queues, the timing wheel) is allowed
// for by a fractional tolerance, matching the "0 allocs/op" the committed
// bench baseline reports.
func TestStepZeroAllocSteadyState(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		noSched bool
	}{
		{"serial/sched", 0, false},
		{"serial/nosched", 0, true},
		{"workers4/sched", 4, false},
		{"workers4/nosched", 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(2)
			cfg.Workers = tc.workers
			cfg.DisableActivitySched = tc.noSched
			if tc.workers > 1 {
				cfg.ParallelCutover = 1
			}
			n := mustNet(t, cfg)
			n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.4, cfg.PacketSize))
			n.Run(3000) // steady state: pools, queues and the wheel at capacity
			allocs := testing.AllocsPerRun(300, n.Step)
			if allocs > 0.02 {
				t.Fatalf("steady-state Step allocates: %.3f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestPoolCloseIdempotent: Close must be callable any number of times, on
// parallel and serial networks alike, including before any Step.
func TestPoolCloseIdempotent(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Workers = 4
	n := mustNet(t, cfg)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.5, cfg.PacketSize))
	n.Run(50)
	n.Close()
	n.Close()
	n.Close()

	serial := mustNet(t, testConfig(OFAR))
	serial.Close() // no pool: must be a no-op
	serial.Close()

	fresh := mustNet(t, cfg)
	fresh.Close() // never stepped: workers parked since construction
}

// TestPoolGoroutineLeak: constructing a parallel network starts Workers−1
// goroutines; Close must retire all of them (it waits for their exit). The
// final NumGoroutine comparison polls briefly because a goroutine may be
// counted for an instant after its WaitGroup.Done.
func TestPoolGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := DefaultConfig(2)
	cfg.Workers = 8
	cfg.ParallelCutover = 1
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.5, cfg.PacketSize))
	n.Run(100) // exercise the pool, not just park/unpark
	if got := runtime.NumGoroutine(); got < before+7 {
		t.Fatalf("expected ≥ %d goroutines while the pool is live, have %d", before+7, got)
	}
	n.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := runtime.NumGoroutine(); got <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelCutoverInvariance: the cutover decides only *where* a cycle's
// compute runs, never what it computes — digests must match between a run
// that always dispatches to the pool (cutover 1), one that never does
// (cutover above the router count), and the auto-calibrated default.
func TestParallelCutoverInvariance(t *testing.T) {
	run := func(cutover int) (uint64, int64) {
		cfg := DefaultConfig(2)
		cfg.Workers = 4
		cfg.ParallelCutover = cutover
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, 2), 0.6, cfg.PacketSize))
		n.EnableGrantDigest()
		n.Run(600)
		d, c := n.GrantDigest()
		return d, c
	}
	wantD, wantC := run(0)
	for _, cut := range []int{1, 10000} {
		if d, c := run(cut); d != wantD || c != wantC {
			t.Fatalf("cutover=%d: digest %016x (%d) != auto %016x (%d)", cut, d, c, wantD, wantC)
		}
	}
}

// TestCutoverRoutesShortLists instruments the dispatch decision itself: with
// a cutover above the router count every Step must stay serial (the pool's
// epoch never advances), and with cutover 1 a loaded network must dispatch.
func TestCutoverRoutesShortLists(t *testing.T) {
	epoch := func(cutover int) uint64 {
		cfg := DefaultConfig(2)
		cfg.Workers = 4
		cfg.ParallelCutover = cutover
		n := mustNet(t, cfg)
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.5, cfg.PacketSize))
		n.Run(200)
		n.workerPool.mu.Lock()
		defer n.workerPool.mu.Unlock()
		return n.workerPool.epoch
	}
	if got := epoch(10000); got != 0 {
		t.Fatalf("cutover above router count still dispatched %d epochs to the pool", got)
	}
	if got := epoch(1); got == 0 {
		t.Fatal("cutover=1 never dispatched a loaded network's cycle to the pool")
	}
}

// BenchmarkPoolDispatch isolates the barrier itself: a quiescent parallel
// network with ParallelCutover=1 and a single awake router pays one full
// dispatch+join round trip per Step with almost no compute to amortize it —
// the number the cutover calibration is built on (compare against the
// serial row).
func BenchmarkPoolDispatch(b *testing.B) {
	for _, workers := range []int{0, 4, 8} {
		name := "serial"
		if workers > 0 {
			name = fmt.Sprintf("workers%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig(3)
			cfg.Workers = workers
			cfg.ParallelCutover = 1
			n, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer n.Close()
			n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.02, cfg.PacketSize))
			n.Run(2000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}
