package network

import (
	"fmt"
	"math"
	"testing"

	"ofar/internal/traffic"
)

// TestRouteCacheDifferential is the memoization-correctness oracle: an h=3
// OFAR run with the route cache enabled must be indistinguishable from the
// same run with DisableRouteCache — identical grant digests, identical
// per-router state fingerprints after every cycle, and identical end-of-run
// statistics — at a low, a mid, and a saturating load. Any cache entry
// replayed when its read set had changed would commit a different grant or
// leave different buffer/credit state and fail here within a cycle of the
// divergence.
func TestRouteCacheDifferential(t *testing.T) {
	cycles := 800
	if testing.Short() {
		cycles = 250
	}
	for _, load := range []float64{0.2, 0.6, 0.9} {
		t.Run(fmt.Sprintf("load=%.1f", load), func(t *testing.T) {
			mk := func(noCache bool) *Network {
				cfg := DefaultConfig(3)
				cfg.Seed = 99
				cfg.DisableRouteCache = noCache
				n := mustNet(t, cfg)
				n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
				n.EnableGrantDigest()
				n.Stats.StartMeasurement(0)
				return n
			}
			on, off := mk(false), mk(true)
			for c := 0; c < cycles; c++ {
				on.Step()
				off.Step()
				d1, n1 := on.GrantDigest()
				d2, n2 := off.GrantDigest()
				if d1 != d2 || n1 != n2 {
					t.Fatalf("cycle %d: grant digests diverge: cache-on %016x (%d events), cache-off %016x (%d events)",
						c, d1, n1, d2, n2)
				}
				for i := range on.Routers {
					if f1, f2 := on.Routers[i].StateFingerprint(), off.Routers[i].StateFingerprint(); f1 != f2 {
						t.Fatalf("cycle %d: router %d state fingerprints diverge: cache-on %016x, cache-off %016x",
							c, i, f1, f2)
					}
				}
			}
			ss, ps := on.Stats, off.Stats
			if ss.Delivered == 0 {
				t.Fatal("nothing delivered — the load exercised no traffic")
			}
			if ss.Generated != ps.Generated || ss.Injected != ps.Injected || ss.Delivered != ps.Delivered {
				t.Fatalf("populations diverge: cache-on gen/inj/del %d/%d/%d, cache-off %d/%d/%d",
					ss.Generated, ss.Injected, ss.Delivered, ps.Generated, ps.Injected, ps.Delivered)
			}
			if math.Float64bits(ss.AvgLatency()) != math.Float64bits(ps.AvgLatency()) ||
				ss.MaxLatency() != ps.MaxLatency() {
				t.Fatalf("latencies diverge: cache-on avg %v max %d, cache-off avg %v max %d",
					ss.AvgLatency(), ss.MaxLatency(), ps.AvgLatency(), ps.MaxLatency())
			}
			if ss.GlobalMisroutes != ps.GlobalMisroutes || ss.LocalMisroutes != ps.LocalMisroutes ||
				ss.RingEnters != ps.RingEnters || ss.RingExits != ps.RingExits {
				t.Fatalf("routing decisions diverge: cache-on %d/%d/%d/%d, cache-off %d/%d/%d/%d",
					ss.GlobalMisroutes, ss.LocalMisroutes, ss.RingEnters, ss.RingExits,
					ps.GlobalMisroutes, ps.LocalMisroutes, ps.RingEnters, ps.RingExits)
			}
			if err := on.CheckConservation(); err != nil {
				t.Fatalf("cache-on: %v", err)
			}
			if err := off.CheckConservation(); err != nil {
				t.Fatalf("cache-off: %v", err)
			}
		})
	}
}
