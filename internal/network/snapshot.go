package network

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"ofar/internal/packet"
	"ofar/internal/router"
	"ofar/internal/simcore"
	"ofar/internal/topology"
	"ofar/internal/traffic"
)

// Warm-state checkpointing. Snapshot serializes the entire simulation —
// RNG streams, per-VC buffers and credits, the event wheel, arbiter LRS
// memories, escape-ring wiring (including post-splice surgery), fault
// cursor and liveness masks, grant digest/log, generator progress and all
// statistics — into a versioned binary image. Restore rebuilds exactly that
// state inside a network constructed from the same configuration, and a
// restored run is bit-identical to one that was never interrupted (see
// TestSnapshotDifferential). Fork round-trips through an in-memory snapshot
// to clone warm state into a fully independent network.
//
// What is deliberately NOT serialized:
//
//   - The route cache: pure memoization, recomputable from serialized state.
//     Restore brings every router up cache-cold; cache-on and cache-off
//     trajectories are bit-identical, so resuming cold from a warm snapshot
//     continues the exact same run.
//   - Path tracing: a diagnostics sink with per-packet allocation; Restore
//     resets it to disabled.
//   - The worker pool, activity scheduler and parallel cutover: wall-clock
//     machinery, rebuilt from the restoring network's own configuration. The
//     snapshot config is compared after normalizing these fields away, so a
//     snapshot taken at Workers=4 restores into a Workers=1 network (and any
//     other combination) with identical results.
//
// The header carries the engine's golden-trace digest (EngineDigest): a
// snapshot written by a build with different simulation physics fails fast
// at Restore instead of silently resuming a divergent run.

const (
	snapMagic = "OFARSNAP"

	// SnapshotVersion identifies the payload layout. Any change to the
	// encode/decode pairs below must bump it; Restore rejects other versions.
	// Version 2 added the packet Job tag and the per-job statistics section.
	// Version 3 replaced the single traffic RNG state with one state per
	// dragonfly group (the sharded injection front-end's per-group streams).
	SnapshotVersion = 3

	maxSnapCfgJSON = 1 << 20
	maxSnapPackets = 1 << 26
	maxSnapEvents  = 1 << 26
	maxSnapLog     = 1 << 24
	maxSnapGenName = 1 << 12
	maxSnapQueue   = 1 << 24
	maxSnapRings   = 1 << 16
)

var (
	engineDigestOnce sync.Once
	engineDigestVal  uint64
)

// EngineDigest returns the grant digest of one small canonical run — a fixed
// h=2 dragonfly under uniform Bernoulli traffic with one scheduled router
// fault — computed once per process. It acts as a physics fingerprint: any
// change to routing, allocation, timing or fault semantics moves it, which is
// what lets Restore refuse snapshots written by a behaviorally different
// build. It is NOT a build or version string; two builds that simulate
// identically interchange snapshots freely.
func EngineDigest() uint64 {
	engineDigestOnce.Do(func() {
		cfg := DefaultConfig(2)
		cfg.Seed = 12345
		cfg.Faults = []Fault{{Cycle: 200, Kind: FaultRouter, Router: 3}}
		net, err := New(cfg)
		if err != nil {
			panic(fmt.Sprintf("network: engine digest config invalid: %v", err))
		}
		net.EnableGrantDigest()
		net.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(net.Topo), 0.5, cfg.PacketSize))
		net.Run(400)
		engineDigestVal, _ = net.GrantDigest()
	})
	return engineDigestVal
}

// normalizeConfig zeroes the fields that change wall-clock execution but not
// simulated physics, so snapshots restore across worker counts, scheduler
// and route-cache settings (all proven bit-identical elsewhere). Everything
// else — topology, buffering, routing, faults, seed — must match exactly.
func normalizeConfig(c Config) Config {
	c.Workers = 0
	c.ParallelCutover = 0
	c.ShardByGroup = false
	c.DisableActivitySched = false
	c.DisableRouteCache = false
	c.DisableShardedGenerate = false
	return c
}

// SnapshotConfigJSON returns the canonical JSON identity of a configuration
// as embedded in snapshot headers: wall-clock-only execution fields are
// normalized away, so two configs that restore each other's snapshots hash
// identically. Warm-state caches key their entries on this.
func SnapshotConfigJSON(c Config) ([]byte, error) {
	return json.Marshal(normalizeConfig(c))
}

// Snapshot writes the network's full simulation state to w. The image is
// deterministic: the same state always produces the same bytes.
func (n *Network) Snapshot(w io.Writer) error {
	cfgJSON, err := json.Marshal(normalizeConfig(n.Cfg))
	if err != nil {
		return fmt.Errorf("network: snapshot config: %w", err)
	}
	var payload simcore.Enc
	n.encodePayload(&payload)
	data := payload.Data()

	var out simcore.Enc
	out.Raw([]byte(snapMagic))
	out.U64(SnapshotVersion)
	out.U64(EngineDigest())
	out.Bytes(cfgJSON)
	out.U64(simcore.Checksum64(data))
	out.Bytes(data)
	if _, err := w.Write(out.Data()); err != nil {
		return fmt.Errorf("network: snapshot write: %w", err)
	}
	return nil
}

// Restore overwrites this network's simulation state from a snapshot written
// by Snapshot. The network must have been built from the same configuration
// (modulo the normalized wall-clock fields) by the same simulation physics
// (EngineDigest), and the same traffic source must be attached when the
// snapshot carries generator state. Corrupt or truncated input is detected
// (checksum before any mutation, bounds checks after) and returns an error —
// never a panic. If Restore returns an error after the checksum passed, the
// network's state is unspecified: discard it.
func (n *Network) Restore(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("network: restore read: %w", err)
	}
	d := simcore.NewDec(raw)
	magic := d.Raw(len(snapMagic))
	if d.Err() == nil && string(magic) != snapMagic {
		return fmt.Errorf("network: not a snapshot (bad magic)")
	}
	if v := d.U64(); d.Err() == nil && v != SnapshotVersion {
		return fmt.Errorf("network: snapshot format version %d, this build reads %d", v, SnapshotVersion)
	}
	if dg := d.U64(); d.Err() == nil && dg != EngineDigest() {
		return fmt.Errorf("network: snapshot engine digest %016x != this build's %016x — the simulator's physics changed; re-run instead of restoring", dg, EngineDigest())
	}
	cfgJSON := d.Bytes(maxSnapCfgJSON)
	if d.Err() == nil {
		want, err := json.Marshal(normalizeConfig(n.Cfg))
		if err != nil {
			return fmt.Errorf("network: restore config: %w", err)
		}
		if !bytes.Equal(cfgJSON, want) {
			return fmt.Errorf("network: snapshot was taken with a different configuration")
		}
	}
	sum := d.U64()
	payload := d.Bytes(len(raw))
	if err := d.Err(); err != nil {
		return fmt.Errorf("network: restore: %w", err)
	}
	if simcore.Checksum64(payload) != sum {
		return fmt.Errorf("network: snapshot payload checksum mismatch (corrupt or truncated)")
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("network: %d trailing bytes after snapshot", d.Remaining())
	}
	if err := n.decodePayload(simcore.NewDec(payload)); err != nil {
		return fmt.Errorf("network: restore: %w", err)
	}
	return nil
}

// Fork clones the warm simulation state into a fresh, fully independent
// network: its own routers, buffers, event wheel, RNG streams positioned
// identically, and (when configured) its own worker pool. The clone and the
// original can be stepped independently without sharing any mutable state.
// Stateless traffic sources are shared (their Next reads only immutable
// pattern state); stateful ones must implement traffic.CloneableGenerator.
// Networks with Workers > 1 own goroutines: Close the fork when done.
func (n *Network) Fork() (*Network, error) {
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		return nil, fmt.Errorf("network: fork: %w", err)
	}
	m, err := New(n.Cfg)
	if err != nil {
		return nil, fmt.Errorf("network: fork rebuild: %w", err)
	}
	switch g := n.gen.(type) {
	case traffic.CloneableGenerator:
		m.SetGenerator(g.CloneGenerator())
	case traffic.StatefulGenerator:
		m.Close()
		return nil, fmt.Errorf("network: fork: generator %q is stateful but not cloneable", g.Name())
	case nil:
	default:
		m.SetGenerator(n.gen)
	}
	if err := m.Restore(&buf); err != nil {
		m.Close()
		return nil, fmt.Errorf("network: fork: %w", err)
	}
	return m, nil
}

// groupBoards returns the PB flag board of every group, in group order (nil
// when the mechanism does not piggyback). Boards are shared per group, so the
// snapshot serializes each exactly once.
func (n *Network) groupBoards() []*router.FlagBoard {
	if !n.usePB {
		return nil
	}
	boards := make([]*router.FlagBoard, n.Topo.G)
	for _, r := range n.Routers {
		if g := n.Topo.GroupOf(r.ID); boards[g] == nil {
			boards[g] = r.Board()
		}
	}
	return boards
}

func (n *Network) encodePayload(e *simcore.Enc) {
	e.I64(n.now)
	e.Int(n.inFlight)
	e.I64(n.CongestionStalls)
	e.Int(n.faultIdx)
	e.Bool(n.deadRouter != nil)
	if n.deadRouter != nil {
		for _, b := range n.deadRouter {
			e.Bool(b)
		}
		for _, b := range n.deadNode {
			e.Bool(b)
		}
	}
	for _, rng := range n.trafficRNG {
		for _, s := range rng.State() {
			e.U64(s)
		}
	}
	e.U64(n.pool.Outstanding())

	e.Bool(n.digestOn)
	e.U64(n.digest)
	e.I64(n.digestCount)
	e.Int(n.logCap)
	e.Int(len(n.grantLog))
	for i := range n.grantLog {
		g := &n.grantLog[i]
		e.I64(g.Cycle)
		e.Int(g.Router)
		e.Int(g.InPort)
		e.Int(g.InVC)
		e.Int(g.Out)
		e.Int(g.VC)
		e.Int(g.Src)
		e.Int(g.Dst)
		e.I64(g.Born)
		e.Bool(g.Eject)
	}

	e.Bool(n.gen != nil)
	if n.gen != nil {
		e.Bytes([]byte(n.gen.Name()))
		sg, stateful := n.gen.(traffic.StatefulGenerator)
		e.Bool(stateful)
		if stateful {
			sg.EncodeState(e)
		}
	}

	n.Stats.EncodeState(e)

	// Deduplicated packet table, sorted by ID for deterministic bytes. A
	// committed packet can be referenced twice — by the draining buffer that
	// still holds it and by its in-flight arrival event — and must decode to
	// one object, which is why buffers and events store IDs into this table.
	table := make(map[packet.ID]*packet.Packet)
	for _, r := range n.Routers {
		r.ForEachPacket(func(p *packet.Packet) { table[p.ID] = p })
	}
	for i := range n.pending {
		pq := &n.pending[i]
		for j := pq.head; j < len(pq.q); j++ {
			table[pq.q[j].ID] = pq.q[j]
		}
	}
	n.wheel.ForEach(func(ev event) {
		if ev.kind == evArrive {
			table[ev.pkt.ID] = ev.pkt
		}
	})
	ids := make([]packet.ID, 0, len(table))
	for id := range table {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Int(len(ids))
	for _, id := range ids {
		encodePacket(e, table[id])
	}

	e.Int(len(n.pending))
	for i := range n.pending {
		pq := &n.pending[i]
		e.Int(pq.len())
		for j := pq.head; j < len(pq.q); j++ {
			e.U64(uint64(pq.q[j].ID))
		}
	}

	e.Int(len(n.Rings))
	for _, rg := range n.Rings {
		rg.EncodeState(e)
	}

	for _, r := range n.Routers {
		r.EncodeState(e)
	}

	for _, b := range n.groupBoards() {
		b.EncodeState(e)
	}

	e.Int(n.wheel.Pending())
	n.wheel.ForEachDelay(func(delay int, ev event) {
		e.Int(delay)
		e.U8(uint8(ev.kind))
		e.I64(int64(ev.r))
		e.I64(int64(ev.port))
		e.I64(int64(ev.vc))
		e.I64(int64(ev.phits))
		if ev.kind == evArrive {
			e.U64(uint64(ev.pkt.ID))
		}
	})
}

func (n *Network) decodePayload(d *simcore.Dec) error {
	now := d.I64()
	if d.Err() == nil && now < 0 {
		d.Fail("negative cycle %d", now)
	}
	inFlight := d.Int()
	congestionStalls := d.I64()
	faultIdx := d.Int()
	if d.Err() == nil && (faultIdx < 0 || faultIdx > len(n.faults)) {
		d.Fail("fault cursor %d outside [0,%d]", faultIdx, len(n.faults))
	}
	hasMasks := d.Bool()
	if d.Err() == nil && hasMasks != (n.deadRouter != nil) {
		d.Fail("fault liveness masks present=%v, network configured=%v", hasMasks, n.deadRouter != nil)
	}
	if d.Err() != nil {
		return d.Err()
	}
	if hasMasks {
		for i := range n.deadRouter {
			n.deadRouter[i] = d.Bool()
		}
		for i := range n.deadNode {
			n.deadNode[i] = d.Bool()
		}
	}
	for g := range n.trafficRNG {
		var st [4]uint64
		for i := range st {
			st[i] = d.U64()
		}
		if d.Err() == nil {
			if err := n.trafficRNG[g].SetState(st); err != nil {
				d.Fail("traffic rng group %d: %v", g, err)
			}
		}
	}
	outstanding := d.U64()

	digestOn := d.Bool()
	digest := d.U64()
	digestCount := d.I64()
	logCap := d.Len(maxSnapLog)
	nLog := d.Len(maxSnapLog)
	if d.Err() == nil && nLog > logCap {
		d.Fail("grant log holds %d events beyond its cap %d", nLog, logCap)
	}
	if d.Err() != nil {
		return d.Err()
	}
	var grantLog []GrantEvent
	if logCap > 0 {
		grantLog = make([]GrantEvent, 0, min(nLog, 1024))
	}
	for i := 0; i < nLog; i++ {
		var g GrantEvent
		g.Cycle = d.I64()
		g.Router = d.Int()
		g.InPort = d.Int()
		g.InVC = d.Int()
		g.Out = d.Int()
		g.VC = d.Int()
		g.Src = d.Int()
		g.Dst = d.Int()
		g.Born = d.I64()
		g.Eject = d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		grantLog = append(grantLog, g)
	}

	if hasGen := d.Bool(); hasGen {
		name := string(d.Bytes(maxSnapGenName))
		stateful := d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if stateful {
			sg, ok := n.gen.(traffic.StatefulGenerator)
			if !ok || n.gen.Name() != name {
				d.Fail("snapshot carries state for generator %q; attach the same generator before Restore", name)
				return d.Err()
			}
			if err := sg.DecodeState(d); err != nil {
				return err
			}
		}
		// Stateless source: nothing to restore. The caller is responsible for
		// attaching an equivalent generator (its draws come from trafficRNG,
		// which is serialized, so an identical source reproduces the run).
	}

	if err := n.Stats.DecodeState(d); err != nil {
		return err
	}

	nPkts := d.Len(maxSnapPackets)
	if d.Err() != nil {
		return d.Err()
	}
	table := make(map[uint64]*packet.Packet, min(nPkts, 4096))
	var prevID uint64
	for i := 0; i < nPkts; i++ {
		p := new(packet.Packet)
		id := n.decodePacket(d, p)
		if d.Err() != nil {
			return d.Err()
		}
		if id <= prevID {
			d.Fail("packet IDs not strictly increasing at %d", id)
			return d.Err()
		}
		if id > outstanding {
			d.Fail("packet ID %d beyond the pool's %d handed-out IDs", id, outstanding)
			return d.Err()
		}
		prevID = id
		table[id] = p
	}
	lookup := func(id uint64) (*packet.Packet, error) {
		if p, ok := table[id]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("unknown packet ID %d", id)
	}

	if np := d.Len(maxSnapPackets); d.Err() == nil && np != len(n.pending) {
		d.Fail("pending queues for %d nodes, network has %d", np, len(n.pending))
	}
	if d.Err() != nil {
		return d.Err()
	}
	for node := range n.pending {
		pq := &n.pending[node]
		pq.q = pq.q[:0]
		pq.head = 0
		cnt := d.Len(maxSnapQueue)
		for j := 0; j < cnt && d.Err() == nil; j++ {
			p, err := lookup(d.U64())
			if d.Err() == nil && err != nil {
				d.Fail("pending[%d]: %v", node, err)
			}
			if d.Err() == nil {
				pq.q = append(pq.q, p)
			}
		}
		if d.Err() != nil {
			return d.Err()
		}
	}

	if nr := d.Len(maxSnapRings); d.Err() == nil && nr != len(n.Rings) {
		d.Fail("snapshot has %d rings, network has %d", nr, len(n.Rings))
	}
	if d.Err() != nil {
		return d.Err()
	}
	for j := range n.Rings {
		rg, err := topology.DecodeRing(d, n.Topo.Routers)
		if err != nil {
			return err
		}
		n.Rings[j] = rg
	}

	for _, r := range n.Routers {
		if err := r.DecodeState(d, lookup, now); err != nil {
			return err
		}
	}

	for _, b := range n.groupBoards() {
		if err := b.DecodeState(d); err != nil {
			return err
		}
	}

	wheel := simcore.NewWheel[event](n.wheel.Horizon())
	nEv := d.Len(maxSnapEvents)
	if d.Err() != nil {
		return d.Err()
	}
	for i := 0; i < nEv; i++ {
		delay := d.Int()
		kind := evKind(d.U8())
		rr := d.I64()
		port := d.I64()
		vc := d.I64()
		phits := d.I64()
		if d.Err() != nil {
			return d.Err()
		}
		if delay < 0 || delay > wheel.Horizon() {
			d.Fail("event delay %d outside wheel horizon %d", delay, wheel.Horizon())
			return d.Err()
		}
		if kind > evCredit {
			d.Fail("unknown event kind %d", kind)
			return d.Err()
		}
		if rr < 0 || rr >= int64(len(n.Routers)) {
			d.Fail("event router %d out of range", rr)
			return d.Err()
		}
		rt := n.Routers[rr]
		if port < 0 || port >= int64(len(rt.In)) {
			d.Fail("event port %d out of range on router %d", port, rr)
			return d.Err()
		}
		maxVC := len(rt.In[port].VCs)
		if kind == evCredit {
			maxVC = rt.Out[port].NumVCs()
		}
		if vc < 0 || vc >= int64(maxVC) {
			d.Fail("event vc %d out of range on router %d port %d", vc, rr, port)
			return d.Err()
		}
		if phits < 0 || phits > int64(n.Cfg.PacketSize) {
			d.Fail("event phits %d out of range", phits)
			return d.Err()
		}
		ev := event{kind: kind, r: int32(rr), port: int16(port), vc: int16(vc), phits: int32(phits)}
		if kind == evArrive {
			p, err := lookup(d.U64())
			if d.Err() != nil {
				return d.Err()
			}
			if err != nil {
				d.Fail("event: %v", err)
				return d.Err()
			}
			ev.pkt = p
		}
		wheel.Schedule(delay, ev)
	}
	if d.Remaining() != 0 {
		d.Fail("%d trailing payload bytes", d.Remaining())
		return d.Err()
	}

	// Everything decoded and validated; commit the staged scalars.
	n.now = now
	n.inFlight = inFlight
	n.CongestionStalls = congestionStalls
	n.faultIdx = faultIdx
	n.pool.SetOutstanding(outstanding)
	n.digestOn, n.digest, n.digestCount = digestOn, digest, digestCount
	n.logCap, n.grantLog = logCap, grantLog
	n.wheel = wheel
	n.traceEvery, n.traces = 0, nil

	// Rebuild the active set: wake exactly the routers holding routable work.
	// This is a subset of the original run's awake set containing every
	// behaviorally relevant router — extra awake routers run no-op Cycles and
	// are dropped by compactActive, so the wake set never affects results
	// (the conservative-wake contract).
	for i := range n.awake {
		n.awake[i] = false
	}
	for g := range n.activeG {
		n.activeG[g] = n.activeG[g][:0]
	}
	n.activeFlat = n.activeFlat[:0]
	if n.schedOn {
		for _, r := range n.Routers {
			if r.HasRoutableWork() {
				n.wake(int32(r.ID))
			}
		}
	}
	return nil
}

func encodePacket(e *simcore.Enc, p *packet.Packet) {
	e.U64(uint64(p.ID))
	e.Int(p.Size)
	e.Int(p.Dst)
	e.Int(p.SrcGroup)
	e.Int(p.DstGroup)
	e.Int(p.ValiantGroup)
	e.I64(p.BlockedSince)
	e.Bool(p.GlobalMisrouted)
	e.Bool(p.LocalMisrouted)
	e.Bool(p.OnRing)
	e.I64(int64(p.Ring))
	e.Int(p.LocalHops)
	e.Int(p.GlobalHops)
	e.Int(p.Src)
	e.Int(p.MisrouteGroup)
	e.Int(p.TotalHops)
	e.Int(p.RingExits)
	e.Int(p.RingHops)
	e.I64(int64(p.Job))
	e.I64(p.Born)
	e.I64(p.Injected)
	e.I64(p.Done)
}

// decodePacket fills p from d and returns the packet's ID (0 on decode
// error). Field ranges are validated against this network's topology.
func (n *Network) decodePacket(d *simcore.Dec, p *packet.Packet) uint64 {
	id := d.U64()
	p.ID = packet.ID(id)
	p.Size = d.Int()
	p.Dst = d.Int()
	p.SrcGroup = d.Int()
	p.DstGroup = d.Int()
	p.ValiantGroup = d.Int()
	p.BlockedSince = d.I64()
	p.GlobalMisrouted = d.Bool()
	p.LocalMisrouted = d.Bool()
	p.OnRing = d.Bool()
	ring := d.I64()
	p.LocalHops = d.Int()
	p.GlobalHops = d.Int()
	p.Src = d.Int()
	p.MisrouteGroup = d.Int()
	p.TotalHops = d.Int()
	p.RingExits = d.Int()
	p.RingHops = d.Int()
	job := d.I64()
	p.Born = d.I64()
	p.Injected = d.I64()
	p.Done = d.I64()
	if d.Err() != nil {
		return 0
	}
	switch {
	case id == 0:
		d.Fail("packet ID 0 (IDs start at 1)")
	case p.Size != n.Cfg.PacketSize:
		d.Fail("packet %d size %d != configured %d", id, p.Size, n.Cfg.PacketSize)
	case p.Src < 0 || p.Src >= n.Topo.Nodes || p.Dst < 0 || p.Dst >= n.Topo.Nodes:
		d.Fail("packet %d endpoints %d→%d outside [0,%d)", id, p.Src, p.Dst, n.Topo.Nodes)
	case p.SrcGroup < 0 || p.SrcGroup >= n.Topo.G || p.DstGroup < 0 || p.DstGroup >= n.Topo.G:
		d.Fail("packet %d group fields out of range", id)
	case p.ValiantGroup < -1 || p.ValiantGroup >= n.Topo.G || p.MisrouteGroup < -1 || p.MisrouteGroup >= n.Topo.G:
		d.Fail("packet %d intermediate-group fields out of range", id)
	case ring < -1 || ring > 127:
		d.Fail("packet %d ring %d outside int8", id, ring)
	case job < -1 || job >= int64(n.Stats.Jobs()):
		// -1 (untagged) is always valid; a tagged packet needs its slot to
		// exist in the attached generator's job table.
		d.Fail("packet %d job slot %d outside the %d enabled slots", id, job, n.Stats.Jobs())
	}
	p.Ring = int8(ring)
	p.Job = int32(job)
	return id
}
