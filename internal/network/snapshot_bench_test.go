package network

import (
	"bytes"
	"testing"

	"ofar/internal/traffic"
)

// benchWarmNet builds an h=3 OFAR network and warms it to a representative
// mid-load steady state — the state a sweep would checkpoint.
func benchWarmNet(b *testing.B) *Network {
	b.Helper()
	cfg := DefaultConfig(3)
	cfg.Seed = 7
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.3, cfg.PacketSize))
	n.Run(500)
	return n
}

// BenchmarkSnapshotEncode measures serializing a warm h=3 network. Reported
// MB/s is image bytes per wall second; compare against the warmup cycles the
// image replaces to judge the warm cache's break-even point.
func BenchmarkSnapshotEncode(b *testing.B) {
	n := benchWarmNet(b)
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := n.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures decoding a warm image into an existing
// network — the per-point cost of a warm-cache hit, excluding New().
func BenchmarkSnapshotRestore(b *testing.B) {
	n := benchWarmNet(b)
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	snap := buf.Bytes()
	m, err := New(n.Cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(m.Topo), 0.3, n.Cfg.PacketSize))
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Restore(bytes.NewReader(snap)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotFork measures the full fork cycle — snapshot, rebuild,
// restore, close — the fixed cost each warm-fork measurement point pays.
func BenchmarkSnapshotFork(b *testing.B) {
	n := benchWarmNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := n.Fork()
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}
