package network

import (
	"bytes"
	"testing"

	"ofar/internal/traffic"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes to Restore. The contract under
// fuzz: corrupt input must return an error — never panic, never leave a
// silently-wrong simulator behind an accepted restore. When Restore accepts
// the input, the state must be genuinely valid: re-snapshotting must
// reproduce a restorable image with identical router fingerprints, and
// stepping the restored network must preserve packet conservation.
//
// The seed corpus holds real snapshots — cold, warm, and warm-with-faults —
// so mutations explore the format's interior, not just the magic check.
func FuzzSnapshotRoundTrip(f *testing.F) {
	cfg := DefaultConfig(2)
	cfg.Seed = 5

	seed := func(cycles int, withFault bool) []byte {
		c := cfg
		if withFault {
			c.Faults = []Fault{{Cycle: 60, Kind: FaultRouter, Router: 3}}
		}
		n, err := New(c)
		if err != nil {
			f.Fatal(err)
		}
		n.EnableGrantDigest()
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.6, c.PacketSize))
		n.Run(cycles)
		var buf bytes.Buffer
		if err := n.Snapshot(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(0, false))
	f.Add(seed(150, false))
	f.Add(seed(150, true)) // config mismatch vs the target: exercises rejection
	f.Add([]byte("OFARSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), 0.6, cfg.PacketSize))
		if err := n.Restore(bytes.NewReader(data)); err != nil {
			return // rejected cleanly — the only acceptable failure mode
		}

		// Accepted: the image must round-trip to an identical simulator...
		var buf bytes.Buffer
		if err := n.Snapshot(&buf); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(m.Topo), 0.6, cfg.PacketSize))
		if err := m.Restore(&buf); err != nil {
			t.Fatalf("re-encoded snapshot does not restore: %v", err)
		}
		for i := range n.Routers {
			if a, b := n.Routers[i].StateFingerprint(), m.Routers[i].StateFingerprint(); a != b {
				t.Fatalf("router %d fingerprint diverged after round trip: %016x != %016x", i, a, b)
			}
		}

		// ...and stepping it must keep the conservation identity.
		n.Run(50)
		if err := n.CheckConservation(); err != nil {
			t.Fatalf("restored simulator violates conservation: %v", err)
		}
	})
}
