package network

import (
	"bytes"
	"fmt"
	"testing"

	"ofar/internal/traffic"
)

// snapCfg is the small h=2 system the snapshot tests run on: 36 routers,
// 72 nodes, OFAR with a physical escape ring — every subsystem the snapshot
// must carry (rings, escape VCs, PB boards are exercised separately).
func snapCfg(workers int, noSched bool) Config {
	cfg := DefaultConfig(2)
	cfg.Seed = 7
	cfg.Workers = workers
	cfg.ParallelCutover = 1 // force the pool on every non-empty cycle
	cfg.DisableActivitySched = noSched
	return cfg
}

func snapNet(t *testing.T, cfg Config, load float64) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers > 1 {
		t.Cleanup(n.Close)
	}
	n.EnableGrantDigest()
	n.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(n.Topo), load, cfg.PacketSize))
	return n
}

func snapshotBytes(t *testing.T, n *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// expectSameState asserts bit-for-bit equality of two networks: per-router
// state fingerprints, the grant digest, and the full canonical snapshot
// image (which covers stats, buffers, events, rings and generator state).
func expectSameState(t *testing.T, label string, a, b *Network) {
	t.Helper()
	for i := range a.Routers {
		if fa, fb := a.Routers[i].StateFingerprint(), b.Routers[i].StateFingerprint(); fa != fb {
			t.Fatalf("%s: router %d fingerprint %016x != %016x", label, i, fa, fb)
		}
	}
	da, ca := a.GrantDigest()
	db, cb := b.GrantDigest()
	if da != db || ca != cb {
		t.Fatalf("%s: grant digest %016x/%d != %016x/%d", label, da, ca, db, cb)
	}
	sa, sb := snapshotBytes(t, a), snapshotBytes(t, b)
	if !bytes.Equal(sa, sb) {
		t.Fatalf("%s: canonical snapshot images differ (%d vs %d bytes)", label, len(sa), len(sb))
	}
}

// TestSnapshotDifferential is the restore-equality matrix: for each load ×
// worker count × scheduler setting, running K cycles, snapshotting and
// running M more must be bit-identical to restoring that snapshot into a
// fresh network and running the same M cycles — per-router fingerprints,
// grant digests and statistics all included.
func TestSnapshotDifferential(t *testing.T) {
	const warm, measure = 300, 300
	loads := []float64{0.05, 0.6, 0.9}
	workerCounts := []int{1, 4}
	if testing.Short() {
		loads = []float64{0.6}
	}
	for _, load := range loads {
		for _, workers := range workerCounts {
			for _, noSched := range []bool{false, true} {
				cfg := snapCfg(workers, noSched)
				sched := "sched"
				if noSched {
					sched = "nosched"
				}
				name := fmt.Sprintf("load%.2f_w%d_%s", load, workers, sched)
				t.Run(name, func(t *testing.T) {
					orig := snapNet(t, cfg, load)
					orig.Run(warm)
					snap := snapshotBytes(t, orig)
					orig.Run(measure)

					restored := snapNet(t, cfg, load)
					if err := restored.Restore(bytes.NewReader(snap)); err != nil {
						t.Fatal(err)
					}
					restored.Run(measure)
					expectSameState(t, name, orig, restored)
				})
			}
		}
	}
}

// TestSnapshotIsPure proves taking a snapshot perturbs nothing: a run that
// snapshots mid-flight ends bit-identical to one that never did.
func TestSnapshotIsPure(t *testing.T) {
	cfg := snapCfg(1, false)
	a := snapNet(t, cfg, 0.6)
	a.Run(200)
	_ = snapshotBytes(t, a) // side-effect-free by contract
	a.Run(200)

	b := snapNet(t, cfg, 0.6)
	b.Run(400)
	expectSameState(t, "pure", a, b)
}

// TestSnapshotCrossSetting restores a snapshot taken under one execution
// configuration (parallel, scheduler on, cache on) into networks built with
// different wall-clock settings: results must stay bit-identical, because
// those settings are normalized out of the snapshot's config identity.
func TestSnapshotCrossSetting(t *testing.T) {
	const warm, measure = 300, 300
	src := snapCfg(4, false)
	orig := snapNet(t, src, 0.6)
	orig.Run(warm)
	snap := snapshotBytes(t, orig)
	orig.Run(measure)

	variants := []Config{
		snapCfg(1, true), // serial, scheduler off
		func() Config {
			c := snapCfg(1, false)
			c.DisableRouteCache = true
			return c
		}(),
	}
	for i, cfg := range variants {
		restored := snapNet(t, cfg, 0.6)
		if err := restored.Restore(bytes.NewReader(snap)); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		restored.Run(measure)
		expectSameState(t, "cross-setting", orig, restored)
	}
}

// TestSnapshotAcrossSharding: ShardByGroup is a wall-clock setting like
// Workers — normalized out of the snapshot's config identity — so a snapshot
// taken under the sharded engine restores into a serial network (and vice
// versa) bit-identically, snapshot image included. ParallelCutover=1 (from
// snapCfg) forces the shard dispatch on every non-empty cycle, so the shard
// side genuinely runs sharded even on a single-P host.
func TestSnapshotAcrossSharding(t *testing.T) {
	const warm, measure = 300, 300
	shardCfg := snapCfg(4, false)
	shardCfg.ShardByGroup = true
	serialCfg := snapCfg(1, false)

	for _, dir := range []struct {
		name     string
		src, dst Config
	}{
		{"shard_to_serial", shardCfg, serialCfg},
		{"serial_to_shard", serialCfg, shardCfg},
	} {
		t.Run(dir.name, func(t *testing.T) {
			orig := snapNet(t, dir.src, 0.6)
			orig.Run(warm)
			snap := snapshotBytes(t, orig)
			orig.Run(measure)

			restored := snapNet(t, dir.dst, 0.6)
			if err := restored.Restore(bytes.NewReader(snap)); err != nil {
				t.Fatal(err)
			}
			restored.Run(measure)
			expectSameState(t, dir.name, orig, restored)
		})
	}
}

// TestSnapshotWithFaults covers the hardest restore surface: a router fault
// before the snapshot point (ring splice surgery, dead masks, dropped
// packets) and another fault after it (the restored fault cursor must fire
// it on time).
func TestSnapshotWithFaults(t *testing.T) {
	cfg := snapCfg(1, false)
	cfg.Faults = []Fault{
		{Cycle: 100, Kind: FaultRouter, Router: 5},
		{Cycle: 450, Kind: FaultLink, Router: 11, Port: cfg.P},
	}
	orig := snapNet(t, cfg, 0.6)
	orig.Run(300)
	snap := snapshotBytes(t, orig)
	orig.Run(300)

	restored := snapNet(t, cfg, 0.6)
	if err := restored.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	restored.Run(300)
	expectSameState(t, "faults", orig, restored)
	if got := restored.DeadRouters(); got != 1 {
		t.Fatalf("restored network reports %d dead routers, want 1", got)
	}
	if orig.FaultsApplied() != restored.FaultsApplied() {
		t.Fatalf("fault cursors diverged: %d vs %d", orig.FaultsApplied(), restored.FaultsApplied())
	}
}

// TestSnapshotBurstGenerator proves stateful generator progress restores:
// a burst source's per-node budgets continue exactly where they stopped.
func TestSnapshotBurstGenerator(t *testing.T) {
	cfg := snapCfg(1, false)
	mkGen := func(n *Network) *traffic.Burst {
		return traffic.NewBurst(traffic.NewUniform(n.Topo), 4, n.Topo.Nodes)
	}
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig.EnableGrantDigest()
	orig.SetGenerator(mkGen(orig))
	orig.Run(200)
	snap := snapshotBytes(t, orig)
	orig.Run(400)

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	restored.EnableGrantDigest()
	restored.SetGenerator(mkGen(restored))
	if err := restored.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	restored.Run(400)
	expectSameState(t, "burst", orig, restored)
}

// TestSnapshotGrantLogRestores proves the grant log and its cap carry over,
// enabling golden-trace comparisons across a snapshot boundary.
func TestSnapshotGrantLogRestores(t *testing.T) {
	cfg := snapCfg(1, false)
	orig := snapNet(t, cfg, 0.6)
	orig.EnableGrantLog(64)
	orig.Run(150)
	snap := snapshotBytes(t, orig)
	orig.Run(150)

	restored := snapNet(t, cfg, 0.6)
	if err := restored.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	restored.Run(150)
	a, b := orig.GrantLog(), restored.GrantLog()
	if len(a) != len(b) {
		t.Fatalf("grant log lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant log entry %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestForkIndependence forks one warm network twice, drives the forks with
// different loads, and proves (a) the parent is untouched, (b) each fork is
// bit-identical to a solo run restored from the same snapshot — i.e. the
// forks share no mutable state with the parent or each other. Runs under
// -race in CI with Workers > 1, which would catch any shared-slice aliasing
// as a data race too.
func TestForkIndependence(t *testing.T) {
	cfg := snapCfg(4, false)
	parent := snapNet(t, cfg, 0.6)
	parent.Run(300)
	parentBefore := snapshotBytes(t, parent)

	fork1, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fork1.Close)
	fork2, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fork2.Close)

	// Drive the forks with different loads.
	fork1.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(fork1.Topo), 0.1, cfg.PacketSize))
	fork2.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(fork2.Topo), 0.9, cfg.PacketSize))
	fork1.Run(300)
	fork2.Run(300)

	if !bytes.Equal(parentBefore, snapshotBytes(t, parent)) {
		t.Fatal("stepping forks mutated the parent network")
	}

	for i, tc := range []struct {
		fork *Network
		load float64
	}{{fork1, 0.1}, {fork2, 0.9}} {
		solo := snapNet(t, cfg, tc.load)
		if err := solo.Restore(bytes.NewReader(parentBefore)); err != nil {
			t.Fatal(err)
		}
		solo.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(solo.Topo), tc.load, cfg.PacketSize))
		solo.Run(300)
		expectSameState(t, fmt.Sprintf("fork%d", i+1), tc.fork, solo)
	}
}

// TestRestoreRejects exercises the refusal paths: wrong magic, wrong
// version, flipped payload bits, truncation, config mismatch and trailing
// garbage must all error out without panicking.
func TestRestoreRejects(t *testing.T) {
	cfg := snapCfg(1, false)
	orig := snapNet(t, cfg, 0.6)
	orig.Run(120)
	snap := snapshotBytes(t, orig)

	fresh := func() *Network { return snapNet(t, cfg, 0.6) }
	expectErr := func(label string, data []byte) {
		t.Helper()
		if err := fresh().Restore(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: restore accepted corrupt input", label)
		}
	}

	bad := append([]byte(nil), snap...)
	bad[0] ^= 0xff
	expectErr("magic", bad)

	bad = append([]byte(nil), snap...)
	bad[8] ^= 0x01 // version word
	expectErr("version", bad)

	bad = append([]byte(nil), snap...)
	bad[len(bad)-1] ^= 0x40 // payload tail
	expectErr("payload bitflip", bad)

	expectErr("truncated", snap[:len(snap)/2])
	expectErr("empty", nil)
	expectErr("trailing garbage", append(append([]byte(nil), snap...), 0xEE))

	other := snapCfg(1, false)
	other.Seed = 99
	mis, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	mis.SetGenerator(traffic.NewBernoulli(traffic.NewUniform(mis.Topo), 0.6, other.PacketSize))
	if err := mis.Restore(bytes.NewReader(snap)); err == nil {
		t.Fatal("restore accepted a snapshot from a different configuration")
	}
}
