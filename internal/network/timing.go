package network

import "time"

// PhaseNanos is the per-phase wall-clock breakdown of Step, accumulated when
// EnablePhaseTimings is on: fault application, event delivery (wheel advance
// + processDue), traffic generation/injection, PB flag publication, and the
// router stage. The sum of the fields is the full Step time minus the
// (sub-microsecond) inter-phase bookkeeping.
type PhaseNanos struct {
	Faults   int64 `json:"faults_ns"`
	Events   int64 `json:"events_ns"`
	Generate int64 `json:"generate_ns"`
	PB       int64 `json:"pb_ns"`
	Routers  int64 `json:"routers_ns"`
	Cycles   int64 `json:"cycles"` // Steps accumulated into the fields above
}

// Add accumulates another breakdown into this one (benchmark folding, the
// sweep service's cross-run gauges).
func (p *PhaseNanos) Add(o PhaseNanos) {
	p.Faults += o.Faults
	p.Events += o.Events
	p.Generate += o.Generate
	p.PB += o.PB
	p.Routers += o.Routers
	p.Cycles += o.Cycles
}

// EnablePhaseTimings turns on per-phase Step timing. Off by default: the
// check costs one branch per Step, while the timed path pays a handful of
// monotonic clock reads per cycle (~100 ns total — noise at h≥3 scale, but
// measurable against a 5 µs low-load h=3 step, which is why it is opt-in
// rather than always-on). Timing never affects simulation results.
func (n *Network) EnablePhaseTimings() { n.timingOn = true }

// PhaseTimings returns the accumulated per-phase breakdown (zero unless
// EnablePhaseTimings was called).
func (n *Network) PhaseTimings() PhaseNanos { return n.phaseNs }

// stepTimed is Step with per-phase clock reads — same phases, same order,
// same results (the phase functions are shared; only the laps differ).
func (n *Network) stepTimed() {
	now := n.now
	t := time.Now()
	if n.faultIdx < len(n.faults) {
		n.applyDueFaults(now)
	}
	t = n.lap(&n.phaseNs.Faults, t)
	if due := n.wheel.Advance(); len(due) > 0 {
		n.processDue(due, now)
	}
	t = n.lap(&n.phaseNs.Events, t)
	if n.gen != nil {
		n.generate(now)
	}
	t = n.lap(&n.phaseNs.Generate, t)
	if n.usePB {
		n.publishPB(now)
	}
	t = n.lap(&n.phaseNs.PB, t)
	n.routerStage(now)
	n.lap(&n.phaseNs.Routers, t)
	n.phaseNs.Cycles++
	n.now++
}

// lap accumulates the time since t into *dst and returns the new lap start.
func (n *Network) lap(dst *int64, t time.Time) time.Time {
	u := time.Now()
	*dst += u.Sub(t).Nanoseconds()
	return u
}
