package network

import (
	"testing"

	"ofar/internal/topology"
	"ofar/internal/traffic"
)

// validateTrace walks a recorded packet journey edge by edge against the
// topology: every hop must use a real link of the claimed router, the
// sequence must be physically connected, and the final hop must eject at
// the destination router.
func validateTrace(t *testing.T, n *Network, tr *Trace) {
	t.Helper()
	d := n.Topo
	if len(tr.Hops) == 0 {
		t.Fatal("empty trace")
	}
	cur := d.RouterOf(tr.Src)
	for i, hop := range tr.Hops {
		if hop.Router != cur {
			t.Fatalf("hop %d at router %d, expected %d (trace %d->%d: %+v)",
				i, hop.Router, cur, tr.Src, tr.Dst, tr.Hops)
		}
		if hop.Port < d.RouterPorts {
			kind, peer, _ := d.Peer(hop.Router, hop.Port)
			switch kind {
			case topology.PortNode:
				if i != len(tr.Hops)-1 {
					t.Fatalf("ejected mid-route at hop %d", i)
				}
				if peer != tr.Dst {
					t.Fatalf("ejected to node %d, want %d", peer, tr.Dst)
				}
				return
			case topology.PortNone:
				t.Fatalf("hop %d used an unwired port", i)
			default:
				cur = peer
			}
		} else {
			// Physical ring port: the next router is the ring successor.
			ring := hop.Port - d.RouterPorts
			cur = n.Rings[ring].Next(hop.Router)
		}
	}
	if tr.Done {
		t.Fatalf("trace marked done but never ejected at %d", tr.Dst)
	}
}

// TestTracedPathsAreValid drives every mechanism under mixed traffic and
// validates every completed packet journey edge by edge.
func TestTracedPathsAreValid(t *testing.T) {
	for _, rt := range []Routing{MIN, VAL, PB, OFAR, OFARL} {
		t.Run(string(rt), func(t *testing.T) {
			cfg := testConfig(rt)
			n := mustNet(t, cfg)
			n.EnableTracing(7)
			n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 0.5, cfg.PacketSize))
			n.Run(5000)
			validated := 0
			for _, tr := range n.Traces() {
				if !tr.Done {
					continue // still in flight
				}
				validateTrace(t, n, tr)
				validated++
			}
			if validated < 10 {
				t.Fatalf("only %d completed traces", validated)
			}
		})
	}
}

// TestTraceEscapeHopsMarked: under overload OFAR traces include escape-ring
// hops, and they are flagged as such.
func TestTraceEscapeHopsMarked(t *testing.T) {
	cfg := testConfig(OFAR)
	n := mustNet(t, cfg)
	n.EnableTracing(1)
	n.SetGenerator(traffic.NewBernoulli(traffic.NewAdv(n.Topo, n.Topo.H), 1.0, cfg.PacketSize))
	n.Run(6000)
	escapeHops := 0
	for _, tr := range n.Traces() {
		for _, hop := range tr.Hops {
			if hop.Escape {
				escapeHops++
				if hop.Port < n.Topo.RouterPorts {
					t.Fatal("physical-ring configuration recorded an escape hop on a canonical port")
				}
			}
		}
	}
	if n.Stats.RingEnters > 0 && escapeHops == 0 {
		t.Error("ring used but no escape hops traced")
	}
}
