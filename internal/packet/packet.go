// Package packet defines the unit of information exchanged through the
// simulated network: fixed-size virtual cut-through packets, their routing
// header state, and a free-list pool that keeps allocation pressure off the
// simulation hot loop.
//
// The simulator works at packet granularity for buffering decisions and at
// phit granularity for bandwidth accounting: a packet of Size phits needs
// Size cycles to cross a link or a crossbar port.
package packet

// ID uniquely identifies a packet within one simulation run.
type ID uint64

// Packet is a network packet. All fields are managed by the simulator; user
// code observes packets only through statistics.
//
// Field order is deliberate: the leading fields are exactly the routing
// engine's per-cycle read set (consulted for every blocked buffer head at
// saturation), packed so they share the packet's first cache lines. The
// trailing fields are written once per hop or once per lifetime. Reordering
// is semantics-neutral — nothing reflects over or serializes this struct.
type Packet struct {
	ID   ID
	Size int // size in phits

	Dst int // destination node index

	SrcGroup int // group of the source node (cached)
	DstGroup int // group of the destination node (cached)

	// ValiantGroup is the intermediate group chosen at injection time by
	// source-adaptive mechanisms (VAL, PB, UGAL). It is < 0 when no
	// intermediate group has been assigned, and it is cleared (set to -1)
	// once the packet reaches the intermediate group, at which point the
	// packet proceeds minimally.
	ValiantGroup int

	// BlockedSince is the cycle at which the packet most recently became
	// head of an input buffer without being able to advance; < 0 when the
	// packet is not blocked. Drives the escape-ring timeout.
	BlockedSince int64

	// Misroute header flags used by OFAR (paper §IV-A).
	GlobalMisrouted bool // at most one global non-minimal hop per packet
	LocalMisrouted  bool // at most one local non-minimal hop per group

	// Escape subnetwork state (hot part: read by every OFAR Route call).
	OnRing bool // currently stored in an escape-ring buffer
	Ring   int8 // index of the escape ring the packet rides (-1 off-ring)

	// Hop class counters used for deadlock-free VC selection by the
	// baseline mechanisms (ascending VC order).
	LocalHops  int // local hops taken so far
	GlobalHops int // global hops taken so far

	// --- cold fields: written per hop or per lifetime, never read by Route ---

	Src int // source node index

	// MisrouteGroup remembers the group in which LocalMisrouted was set so
	// the flag can be reset when the packet changes group.
	MisrouteGroup int

	TotalHops int

	RingExits int // times the packet has left the escape ring
	RingHops  int // hops taken on the escape ring

	// Job is the source job slot under a job-aware workload, -1 otherwise.
	// Read only at the packet's terminal event (delivery or drop) to credit
	// the right per-job statistics bucket.
	Job int32

	// Timestamps (in cycles).
	Born     int64 // generation time at the source node
	Injected int64 // time the packet entered the injection buffer
	Done     int64 // delivery completion time
}

// Reset clears a packet for reuse from the pool.
func (p *Packet) Reset() {
	*p = Packet{ValiantGroup: -1, MisrouteGroup: -1, BlockedSince: -1, Ring: -1, Job: -1}
}

// EnterGroup updates per-group header state when the packet arrives at a
// router of group g: the local-misroute flag is per group, and a packet that
// reaches its Valiant intermediate group reverts to minimal routing.
func (p *Packet) EnterGroup(g int) {
	if p.LocalMisrouted && p.MisrouteGroup != g {
		p.LocalMisrouted = false
		p.MisrouteGroup = -1
	}
	if p.ValiantGroup == g {
		p.ValiantGroup = -1
	}
}

// Pool is a free list of packets. It is not safe for concurrent use; the
// simulator is single-threaded by design (single-cycle simulation), and
// parallel experiments each own a private pool.
//
// Fresh packets are carved from block allocations rather than individual
// `new(Packet)` calls: packets born together tend to travel together (a
// saturation wave admits thousands of packets in a few cycles), so block
// carving keeps the packets a router dereferences in one cycle on far fewer
// cache lines and TLB pages than the allocator's default scattering, and it
// cuts allocator metadata per packet to zero. Recycled packets keep their
// original block homes — the free list preserves locality instead of
// fighting it.
type Pool struct {
	free  []*Packet
	block []Packet // current carve block; grows in poolBlock-sized steps
	next  ID
}

// poolBlock is the carve-block size in packets (~64 KiB of packet structs):
// large enough that a saturation wave spans a handful of mappings, small
// enough that a low-load run wastes at most one block's tail.
const poolBlock = 512

// Get returns a zeroed packet with a fresh ID.
func (pl *Pool) Get() *Packet {
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free = pl.free[:n-1]
	} else {
		if len(pl.block) == 0 {
			pl.block = make([]Packet, poolBlock)
		}
		p = &pl.block[0]
		pl.block = pl.block[1:]
	}
	p.Reset()
	pl.next++
	p.ID = pl.next
	return p
}

// GetBlank returns a zeroed packet WITHOUT assigning an ID (p.ID stays 0).
// The sharded injection front-end uses per-group pools for memory locality
// but a single run-wide ID sequence for determinism: group shards call
// GetBlank concurrently on their own pools, and the commit barrier stamps IDs
// in (group, node) order via NextID on the shared pool. Callers must stamp an
// ID before the packet becomes observable (traces, snapshots, stats).
func (pl *Pool) GetBlank() *Packet {
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free = pl.free[:n-1]
	} else {
		if len(pl.block) == 0 {
			pl.block = make([]Packet, poolBlock)
		}
		p = &pl.block[0]
		pl.block = pl.block[1:]
	}
	p.Reset()
	return p
}

// NextID advances the run-wide ID sequence and returns the fresh ID. Pairs
// with GetBlank; Get is equivalent to GetBlank + NextID on one pool.
func (pl *Pool) NextID() ID {
	pl.next++
	return pl.next
}

// Put returns a packet to the pool. The caller must not retain references.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	pl.free = append(pl.free, p)
}

// Outstanding reports how many IDs have been handed out in total. Useful in
// conservation tests.
func (pl *Pool) Outstanding() uint64 { return uint64(pl.next) }

// SetOutstanding restores the ID counter after a snapshot restore, so packets
// generated from here on continue the original ID sequence (IDs are unique
// for the lifetime of a run; traces and snapshot dedup rely on that).
func (pl *Pool) SetOutstanding(n uint64) { pl.next = ID(n) }
