package packet

import (
	"testing"
	"testing/quick"
)

func TestPoolReusesAndResets(t *testing.T) {
	var pool Pool
	p := pool.Get()
	id1 := p.ID
	p.Src, p.Dst = 5, 9
	p.GlobalMisrouted = true
	p.OnRing = true
	p.Ring = 2
	pool.Put(p)
	q := pool.Get()
	if q != p {
		t.Error("pool did not reuse the freed packet")
	}
	if q.ID == id1 {
		t.Error("reused packet kept its old ID")
	}
	if q.GlobalMisrouted || q.OnRing || q.Ring != -1 || q.Src != 0 {
		t.Error("reused packet not reset")
	}
	if q.ValiantGroup != -1 || q.MisrouteGroup != -1 || q.BlockedSince != -1 {
		t.Error("sentinel fields not initialized")
	}
}

func TestPoolPutNil(t *testing.T) {
	var pool Pool
	pool.Put(nil) // must not panic
	if pool.Outstanding() != 0 {
		t.Error("outstanding count moved")
	}
}

func TestPoolUniqueIDs(t *testing.T) {
	var pool Pool
	seen := map[ID]bool{}
	var live []*Packet
	for i := 0; i < 1000; i++ {
		p := pool.Get()
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
		live = append(live, p)
		if i%3 == 0 {
			pool.Put(live[0])
			live = live[1:]
		}
	}
	if pool.Outstanding() != 1000 {
		t.Errorf("outstanding=%d", pool.Outstanding())
	}
}

func TestEnterGroupClearsLocalMisroute(t *testing.T) {
	var p Packet
	p.Reset()
	p.LocalMisrouted = true
	p.MisrouteGroup = 3
	p.EnterGroup(3) // same group: flag persists
	if !p.LocalMisrouted {
		t.Error("flag cleared within the misroute group")
	}
	p.EnterGroup(4) // group change: flag resets
	if p.LocalMisrouted || p.MisrouteGroup != -1 {
		t.Error("flag not cleared on group change")
	}
}

func TestEnterGroupCompletesValiant(t *testing.T) {
	var p Packet
	p.Reset()
	p.ValiantGroup = 7
	p.EnterGroup(6)
	if p.ValiantGroup != 7 {
		t.Error("valiant group cleared early")
	}
	p.EnterGroup(7)
	if p.ValiantGroup != -1 {
		t.Error("valiant group not cleared on arrival")
	}
}

func TestEnterGroupQuick(t *testing.T) {
	f := func(groups []uint8, misG uint8) bool {
		var p Packet
		p.Reset()
		p.LocalMisrouted = true
		p.MisrouteGroup = int(misG)
		for _, g := range groups {
			p.EnterGroup(int(g))
			// Invariant: the flag may only be set while in its group.
			if p.LocalMisrouted && p.MisrouteGroup != int(misG) {
				return false
			}
			if p.LocalMisrouted && int(g) != int(misG) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
