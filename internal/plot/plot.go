// Package plot renders simple line charts as standalone SVG documents
// using only the standard library. The experiment harness uses it to emit
// figure files next to the textual tables, so the paper's plots can be
// compared visually without external tooling.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct{ X, Y float64 }

// Series is one named polyline.
type Series struct {
	Name   string
	Points []Point
}

// Chart is a 2-D line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series

	// YMax forces the y-axis upper bound (0 = auto).
	YMax float64

	Width, Height int // pixels; defaults 640×420
}

// A small colorblind-safe palette (Okabe–Ito).
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7",
	"#e69f00", "#56b4e9", "#f0e442", "#000000",
}

// Add appends a series.
func (c *Chart) Add(name string, pts []Point) {
	c.Series = append(c.Series, Series{Name: name, Points: pts})
}

// bounds computes the data extents.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Y)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if math.IsInf(xmin, 1) { // no data
		return 0, 1, 0, 1
	}
	if ymin > 0 {
		ymin = 0 // latency/throughput charts read better anchored at zero
	}
	if c.YMax > 0 {
		ymax = c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return
}

// niceTicks returns ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n)*2 {
		step *= 2
		if span/step <= float64(n)*2 {
			break
		}
		step *= 2.5
	}
	var ticks []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// SVG renders the chart.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 420
	}
	const (
		mLeft, mRight, mTop, mBottom = 70, 150, 40, 50
	)
	pw, ph := w-mLeft-mRight, h-mTop-mBottom
	xmin, xmax, ymin, ymax := c.bounds()
	px := func(x float64) float64 { return float64(mLeft) + (x-xmin)/(xmax-xmin)*float64(pw) }
	py := func(y float64) float64 { return float64(mTop) + (1-(y-ymin)/(ymax-ymin))*float64(ph) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		mLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", mLeft, mTop, mLeft, mTop+ph)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", mLeft, mTop+ph, mLeft+pw, mTop+ph)

	for _, t := range niceTicks(xmin, xmax, 6) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ccc"/>`+"\n", x, mTop, x, mTop+ph)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, mTop+ph+16, fmtTick(t))
	}
	for _, t := range niceTicks(ymin, ymax, 6) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n", mLeft, y, mLeft+pw, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			mLeft-6, y+4, fmtTick(t))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		mLeft+pw/2, h-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		mTop+ph/2, mTop+ph/2, escape(c.YLabel))

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(a, b int) bool { return pts[a].X < pts[b].X })
		var path strings.Builder
		for j, p := range pts {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(p.X), py(p.Y))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(p.X), py(p.Y), color)
		}
		// Legend.
		ly := mTop + 10 + i*20
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			mLeft+pw+12, ly, mLeft+pw+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			mLeft+pw+40, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
