package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func sample() *Chart {
	c := &Chart{Title: "Latency vs load", XLabel: "load", YLabel: "cycles"}
	c.Add("MIN", []Point{{0.1, 120}, {0.3, 140}, {0.5, 220}})
	c.Add("OFAR", []Point{{0.1, 130}, {0.3, 150}, {0.5, 180}})
	return c
}

func TestSVGWellFormed(t *testing.T) {
	svg := sample().SVG()
	// Must parse as XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "Latency vs load", "MIN", "OFAR", "<path", "<circle"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := &Chart{Title: `a<b&"c"`}
	c.Add("s<1>", []Point{{0, 0}, {1, 1}})
	svg := c.SVG()
	if strings.Contains(svg, "a<b&") {
		t.Error("unescaped title")
	}
	if !strings.Contains(svg, "a&lt;b&amp;") {
		t.Error("escaped title missing")
	}
}

func TestSVGEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	svg := c.SVG() // must not panic or divide by zero
	if !strings.Contains(svg, "<svg") {
		t.Error("no svg output")
	}
}

func TestSVGSinglePoint(t *testing.T) {
	c := &Chart{}
	c.Add("one", []Point{{2, 5}})
	if svg := c.SVG(); !strings.Contains(svg, "<circle") {
		t.Error("missing point marker")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 1, 6)
	if len(ticks) < 3 || len(ticks) > 15 {
		t.Errorf("tick count %d for [0,1]", len(ticks))
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks not increasing")
		}
	}
	ticks = niceTicks(0, 1200, 6)
	if ticks[0] < 0 || ticks[len(ticks)-1] > 1201 {
		t.Errorf("ticks out of range: %v", ticks)
	}
}

func TestYMaxOverride(t *testing.T) {
	c := sample()
	c.YMax = 1000
	svg := c.SVG()
	if !strings.Contains(svg, "1000") {
		t.Error("forced y max not reflected in ticks")
	}
}

func TestFmtTick(t *testing.T) {
	if fmtTick(5) != "5" {
		t.Errorf("fmtTick(5)=%q", fmtTick(5))
	}
	if fmtTick(0.25) != "0.25" {
		t.Errorf("fmtTick(0.25)=%q", fmtTick(0.25))
	}
	if fmtTick(0.3) != "0.3" {
		t.Errorf("fmtTick(0.3)=%q", fmtTick(0.3))
	}
}
