package router

import (
	"fmt"
	"testing"

	"ofar/internal/packet"
	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// propRouter builds a standalone router with the given geometry for
// allocator property tests: every port doubles as input and output, local
// kind, and effectively unbounded buffers/credits so that fairness runs can
// grant thousands of packets without refund bookkeeping.
func propRouter(t testing.TB, ports, vcs, iters int) *Router {
	t.Helper()
	d, err := topology.New(1, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int, vcs)
	rings := make([]int, vcs)
	for i := range caps {
		caps[i] = 1 << 20
		rings[i] = -1
	}
	specs := make([]PortSpec, ports)
	for i := range specs {
		specs[i] = PortSpec{
			Kind: topology.PortLocal, Peer: 1, PeerPort: 0, UpRouter: 1, UpPort: 0,
			Latency: 10, InCaps: caps, InRing: rings, OutCaps: caps, OutRing: rings,
		}
	}
	return New(Params{
		ID: 0, Topo: d, PktSize: 8, AllocIters: iters,
		RNG:   simcore.NewRNG(99),
		Ports: specs,
	})
}

// drainDue emulates the network's drain completion: once a granted packet
// has streamed out (the input port is no longer busy next cycle), free its
// buffer slot.
func drainDue(r *Router, now int64) {
	for ip := range r.In {
		for vc := range r.In[ip].VCs {
			b := &r.In[ip].VCs[vc]
			if b.Draining() && !r.In[ip].Busy(now+1) {
				r.FinishDrain(ip, vc)
			}
		}
	}
}

// TestAllocatorLRSFairnessProperty: with every VC of every input port
// persistently requesting the same output, LRS arbitration must serve each
// requester within `requesters` consecutive service rounds (a round = one
// packet time of the contended output). That strict round-robin gap implies
// the documented guarantee that no persistent requester waits longer than
// numVCs × AllocIters rounds on any geometry where requesters ≤
// numVCs × AllocIters, and — more importantly — rules out starvation for
// any requester count.
func TestAllocatorLRSFairnessProperty(t *testing.T) {
	cases := []struct {
		ports, vcs, iters int
	}{
		{1, 1, 1},
		{1, 3, 1},
		{1, 3, 3},
		{1, 8, 3},
		{2, 3, 3},
		{4, 2, 3},
		{4, 4, 1},
		{3, 5, 5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("p%d_v%d_i%d", tc.ports, tc.vcs, tc.iters), func(t *testing.T) {
			// One extra port is the contended output; tc.ports are inputs.
			r := propRouter(t, tc.ports+1, tc.vcs, tc.iters)
			out := tc.ports // all requests target the last port
			eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
				if in.Port == out {
					return Request{}, false
				}
				return Request{Out: out, VC: 0}, true
			}}
			var pool packet.Pool
			requesters := tc.ports * tc.vcs
			rounds := 6 * requesters // enough for several full LRS sweeps
			// Keep every VC persistently backlogged.
			refill := func() {
				for ip := 0; ip < tc.ports; ip++ {
					for vc := 0; vc < tc.vcs; vc++ {
						for r.In[ip].VCs[vc].Len() < 2 {
							push(r, ip, vc, &pool)
						}
					}
				}
			}
			lastServed := make(map[[2]int]int) // (port,vc) -> round index
			round := 0
			for now := int64(0); round < rounds; now++ {
				refill()
				grants := r.Cycle(eng, now)
				if len(grants) > 1 {
					t.Fatalf("round %d: %d grants for one output", round, len(grants))
				}
				for _, g := range grants {
					key := [2]int{g.InPort, g.InVC}
					if last, seen := lastServed[key]; seen {
						if gap := round - last; gap > requesters {
							t.Fatalf("requester %v re-served after %d rounds; LRS bound is %d (requesters), documented bound numVCs*iters=%d",
								key, gap, requesters, tc.vcs*tc.iters)
						}
					} else if round >= requesters {
						t.Fatalf("requester %v first served only in round %d of %d requesters", key, round, requesters)
					}
					lastServed[key] = round
				}
				drainDue(r, now)
				if len(grants) > 0 {
					round++
					// Skip to the end of the packet service time: the output
					// is busy anyway, so these cycles cannot grant.
					now += int64(r.PktSize) - 1
				}
			}
			if len(lastServed) != requesters {
				t.Fatalf("only %d of %d requesters ever served: %v", len(lastServed), requesters, lastServed)
			}
		})
	}
}

// reqTable maps (input port, vc) to a requested output port.
type reqTable map[[2]int]int

func tableEngine(tab reqTable) scriptEngine {
	return scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		out, ok := tab[[2]int{in.Port, in.VC}]
		return Request{Out: out, VC: 0}, ok
	}}
}

// checkMatching verifies the structural allocator invariants for a single
// Cycle's grants against the request table: at most one grant per input
// port and per output port, every grant matches a submitted request, and
// the matching is maximal — no requesting input and requested output are
// both left unmatched.
func checkMatching(t *testing.T, tab reqTable, grants []Grant) {
	t.Helper()
	inUsed := map[int]bool{}
	outUsed := map[int]bool{}
	for _, g := range grants {
		if want, ok := tab[[2]int{g.InPort, g.InVC}]; !ok || want != g.Req.Out {
			t.Fatalf("grant %+v does not correspond to a submitted request", g)
		}
		if inUsed[g.InPort] {
			t.Fatalf("input port %d granted twice", g.InPort)
		}
		if outUsed[g.Req.Out] {
			t.Fatalf("output port %d granted twice", g.Req.Out)
		}
		inUsed[g.InPort] = true
		outUsed[g.Req.Out] = true
	}
	for key, out := range tab {
		if !inUsed[key[0]] && !outUsed[out] {
			t.Fatalf("matching not maximal: request %v -> %d has both endpoints free (grants %+v)",
				key, out, grants)
		}
	}
}

// TestAllocatorMatchingProperties is the table-driven pin of the separable
// allocator's matching behavior: grant counts for known geometries —
// including the documented maximal-not-maximum case, where a maximum
// matching of size 2 exists but the iSLIP-like allocator correctly settles
// for 1 — plus the structural invariants for each.
func TestAllocatorMatchingProperties(t *testing.T) {
	cases := []struct {
		name       string
		ports, vcs int
		iters      int
		tab        reqTable
		wantGrants int
	}{
		{
			// Input 0 wins out2 (tie-break on lower index); its VC1
			// alternative out1 cannot also be served because input 0 is
			// already matched. Maximum matching: {0->1, 1->2} = 2.
			name: "maximal_not_maximum", ports: 3, vcs: 2, iters: 3,
			tab:        reqTable{{0, 0}: 2, {0, 1}: 1, {1, 0}: 2},
			wantGrants: 1,
		},
		{
			// The same shape with the VC preference inverted is recovered by
			// iteration 2: input 1 takes out2 after input 0 settles on out1.
			name: "iterative_recovery", ports: 3, vcs: 2, iters: 3,
			tab:        reqTable{{0, 0}: 1, {1, 0}: 1, {1, 1}: 2},
			wantGrants: 2,
		},
		{
			name: "single_iteration_misses_recovery", ports: 3, vcs: 2, iters: 1,
			tab:        reqTable{{0, 0}: 1, {1, 0}: 1, {1, 1}: 2},
			wantGrants: 1,
		},
		{
			name: "disjoint_outputs_all_granted", ports: 4, vcs: 1, iters: 1,
			tab:        reqTable{{0, 0}: 1, {1, 0}: 2, {2, 0}: 3, {3, 0}: 0},
			wantGrants: 4,
		},
		{
			name: "full_contention_single_grant", ports: 4, vcs: 2, iters: 3,
			tab: reqTable{
				{0, 0}: 3, {0, 1}: 3, {1, 0}: 3, {1, 1}: 3,
				{2, 0}: 3, {2, 1}: 3, {3, 0}: 3, {3, 1}: 3,
			},
			wantGrants: 1,
		},
		{
			// Chain shape: the allocator settles on {0->1, 2->2}, leaving
			// input 1 with both its outputs taken — maximal (size 2) though
			// the maximum {0->1, 1->2, 2->3} has size 3, and no amount of
			// iterations revisits a settled grant.
			name: "chain_maximal_not_maximum", ports: 4, vcs: 2, iters: 4,
			tab:        reqTable{{0, 0}: 1, {1, 0}: 1, {1, 1}: 2, {2, 0}: 2, {2, 1}: 3},
			wantGrants: 2,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := propRouter(t, tc.ports, tc.vcs, tc.iters)
			var pool packet.Pool
			for key := range tc.tab {
				push(r, key[0], key[1], &pool)
			}
			grants := r.Cycle(tableEngine(tc.tab), 0)
			if len(grants) != tc.wantGrants {
				t.Fatalf("got %d grants, want %d: %+v", len(grants), tc.wantGrants, grants)
			}
			if tc.iters >= tc.ports {
				// With ≥ports iterations the allocator is maximal: every
				// iteration with an eligible request grants at least once.
				checkMatching(t, tc.tab, grants)
			}
		})
	}
}

// TestAllocatorRandomizedMatching throws deterministic pseudo-random
// request tables at the allocator and asserts the structural invariants on
// every one of them. AllocIters = ports guarantees maximality (each
// iteration either grants or proves no eligible pair remains), so the
// maximality clause of checkMatching applies to all trials.
func TestAllocatorRandomizedMatching(t *testing.T) {
	const ports, vcs, trials = 5, 3, 300
	rng := simcore.NewRNG(0xA110C)
	for trial := 0; trial < trials; trial++ {
		r := propRouter(t, ports, vcs, ports)
		var pool packet.Pool
		tab := reqTable{}
		for ip := 0; ip < ports; ip++ {
			for vc := 0; vc < vcs; vc++ {
				if rng.Bernoulli(0.6) {
					tab[[2]int{ip, vc}] = rng.Intn(ports)
					push(r, ip, vc, &pool)
				}
			}
		}
		grants := r.Cycle(tableEngine(tab), 0)
		checkMatching(t, tab, grants)
	}
}
