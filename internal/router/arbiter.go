package router

// LRS is a least-recently-served arbiter over a fixed set of requesters
// (paper §V: "Each arbiter employs a least-recently served (LRS) policy").
// Grant picks the requester that was served longest ago; ties break on the
// lower index, which keeps runs deterministic.
type LRS struct {
	lastServed []int64
}

// InitLRS sizes the arbiter for n requesters.
func (a *LRS) InitLRS(n int) { a.initLRS(nil, n) }

// initLRS sizes the arbiter with its timestamp row carved from ar (nil falls
// back to make): a router's arbiter state then lives in one group slab
// instead of 2·ports tiny heap slices.
func (a *LRS) initLRS(ar *Arena, n int) {
	a.lastServed = ar.Int64s(n)
	for i := range a.lastServed {
		a.lastServed[i] = -1
	}
}

// Pick returns the least recently served requester among those for which
// eligible reports true, or -1 when none is eligible. It does not commit
// the grant; call Grant once the allocation iteration accepts it.
func (a *LRS) Pick(eligible func(i int) bool) int {
	best := -1
	var bestT int64
	for i := range a.lastServed {
		if !eligible(i) {
			continue
		}
		if best == -1 || a.lastServed[i] < bestT {
			best = i
			bestT = a.lastServed[i]
		}
	}
	return best
}

// Grant commits a grant to requester i at the given cycle.
func (a *LRS) Grant(i int, now int64) { a.lastServed[i] = now }
