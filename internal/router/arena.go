package router

import "ofar/internal/packet"

// Arena is a typed bump allocator for router hot state. The network builds
// one arena per dragonfly group and constructs the group's routers into it,
// so every slice the per-cycle loops touch — VC buffer entries (including
// their route-cache fields), credit counters, arbiter timestamps, request
// slots, ready/dirty masks, queue backing arrays — lands in a handful of
// large contiguous slabs owned by that group instead of hundreds of
// individually heap-allocated slices scattered by the allocator.
//
// The layout is struct-of-arrays at the group level: all VCBuffer entries of
// a group share one slab (allocated router-major, port-major, so the
// iteration order of Cycle and handle is a forward walk), all credit arrays
// share another, and so on per type. A group's working set is therefore
// cache- and TLB-dense, which is what makes the group the natural shard unit
// for the sharded Step (see network.Config.ShardByGroup) and measurably
// faster even for the serial engine at h=6 scale.
//
// Allocation is append-only: routers never free, and fault surgery only
// rewrites in place. A nil *Arena is valid everywhere and falls back to
// plain make, so tests constructing bare routers need no arena.
type Arena struct {
	ints slab[int]
	i8   slab[int8]
	i32  slab[int32]
	i64  slab[int64]
	u64  slab[uint64]
	vcs  slab[VCBuffer]
	reqs slab[Request]
	lrs  slab[LRS]
	inP  slab[InPort]
	outP slab[OutPort]
	pkts slab[*packet.Packet]
}

// NewArena returns an empty arena; slabs are carved lazily per type.
func NewArena() *Arena { return &Arena{} }

// slab is one type's bump region. alloc carves a capacity-capped slice of n
// elements (so a stray append can never clobber a neighbor: growth beyond
// the cap reallocates onto the heap, which is correct, just off-arena).
type slab[T any] struct{ buf []T }

func (s *slab[T]) alloc(n, chunk int) []T {
	if n <= 0 {
		return nil
	}
	if len(s.buf) < n {
		if chunk < n {
			chunk = n
		}
		s.buf = make([]T, chunk)
	}
	out := s.buf[:n:n]
	s.buf = s.buf[n:]
	return out
}

// Per-type chunk sizes: large enough that one group of the big regimes —
// h=6 (12 routers × 25 ports) and the h=8 stretch build (16 routers × 32
// ports, 512 ports per group) — fits each type in one or two chunks, small
// enough that tiny test topologies waste little (waste is bounded by one
// chunk tail per type per group).
const (
	chunkScalar = 8192
	chunkStruct = 2048
	chunkPkts   = 16384
)

func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.alloc(n, chunkScalar)
}

func (a *Arena) Int8s(n int) []int8 {
	if a == nil {
		return make([]int8, n)
	}
	return a.i8.alloc(n, chunkScalar)
}

func (a *Arena) Int32s(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.i32.alloc(n, chunkScalar)
}

func (a *Arena) Int64s(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	return a.i64.alloc(n, chunkScalar)
}

func (a *Arena) Uint64s(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.u64.alloc(n, chunkScalar)
}

func (a *Arena) VCBuffers(n int) []VCBuffer {
	if a == nil {
		return make([]VCBuffer, n)
	}
	return a.vcs.alloc(n, chunkStruct)
}

func (a *Arena) Requests(n int) []Request {
	if a == nil {
		return make([]Request, n)
	}
	return a.reqs.alloc(n, chunkStruct)
}

func (a *Arena) LRSs(n int) []LRS {
	if a == nil {
		return make([]LRS, n)
	}
	return a.lrs.alloc(n, chunkStruct)
}

func (a *Arena) InPorts(n int) []InPort {
	if a == nil {
		return make([]InPort, n)
	}
	return a.inP.alloc(n, chunkStruct)
}

func (a *Arena) OutPorts(n int) []OutPort {
	if a == nil {
		return make([]OutPort, n)
	}
	return a.outP.alloc(n, chunkStruct)
}

// PacketSlots carves a zero-length, capacity-n queue backing array.
func (a *Arena) PacketSlots(n int) []*packet.Packet {
	if a == nil {
		return make([]*packet.Packet, 0, n)
	}
	return a.pkts.alloc(n, chunkPkts)[:0]
}
