// Package router implements the microarchitecture of the simulated
// input-buffered virtual cut-through router used throughout the paper's
// evaluation (§V): per-VC input FIFOs with phit-granularity occupancy,
// credit-based flow control, an iterative separable batch allocator with
// least-recently-served arbiters, and the escape-channel bookkeeping needed
// by OFAR's deadlock-free subnetwork.
//
// The package also defines the Engine interface that routing mechanisms
// (MIN, VAL, PB, UGAL, OFAR) implement; engines receive the concrete
// *Router so the per-cycle hot path stays monomorphic.
package router

import (
	"ofar/internal/packet"
)

// VCBuffer is one virtual-channel FIFO of an input port. Occupancy is
// tracked in phits; the packet at the head may additionally be "draining"
// (it won switch allocation and its phits are streaming out), during which
// it is not eligible for routing.
type VCBuffer struct {
	// Escape marks the buffer as part of the escape subnetwork (a ring
	// port's VC or an embedded escape VC); Ring identifies which ring
	// (-1 for canonical buffers).
	Escape bool
	Ring   int8

	Capacity int // phits

	q        []*packet.Packet
	head     int // index of the logical head within q
	occupied int // phits
	draining bool

	// Route-cache entry for the current head packet (see Router.Cycle).
	// Valid while cValid is set AND now < cExpire AND cMask (the decision's
	// output-port read set) is disjoint from the dirty window the router
	// presents at validation time. The cached Request itself lives in the
	// router's reqs slot for this buffer (only a re-evaluation of this
	// buffer overwrites it). cMin caches the engine's per-head anchor port
	// (InCtx.MinHint) and survives dirty invalidation: it depends only on
	// the head's identity, so only head replacement resets it.
	cMask   uint64
	cExpire int64
	cMin    int32
	cOK     bool // the cached outcome: Route returned (request, true)
	cValid  bool
}

// invalidateCache forgets the route-cache entry and the per-head anchor
// hint. Called whenever the head packet changes identity.
func (b *VCBuffer) invalidateCache() {
	b.cValid = false
	b.cMin = -1
}

// Init sets the buffer capacity (phits). ring < 0 marks a canonical buffer.
func (b *VCBuffer) Init(capacity int, ring int) {
	b.Capacity = capacity
	b.Escape = ring >= 0
	b.Ring = int8(ring)
	b.q = b.q[:0]
	b.head = 0
	b.occupied = 0
	b.draining = false
	b.invalidateCache()
}

// Len returns the number of queued packets.
func (b *VCBuffer) Len() int { return len(b.q) - b.head }

// Occupied returns the occupied phits.
func (b *VCBuffer) Occupied() int { return b.occupied }

// Free returns the free phits.
func (b *VCBuffer) Free() int { return b.Capacity - b.occupied }

// Head returns the head packet, or nil. The head is not routable while the
// buffer is draining a previous grant.
func (b *VCBuffer) Head() *packet.Packet {
	if b.Len() == 0 {
		return nil
	}
	return b.q[b.head]
}

// Draining reports whether the head packet is currently streaming out.
func (b *VCBuffer) Draining() bool { return b.draining }

// Push appends a packet. The caller must have verified space; credit-based
// flow control guarantees it for network traffic, and sources check Free
// before injecting. Push panics on overflow because an overflow means a
// credit-accounting bug, not a runtime condition.
func (b *VCBuffer) Push(p *packet.Packet) {
	if p.Size > b.Free() {
		panic("router: VC buffer overflow (credit accounting bug)")
	}
	if b.Len() == 0 {
		b.invalidateCache() // the pushed packet becomes the head
	}
	b.q = append(b.q, p)
	b.occupied += p.Size
}

// DropQueued removes every queued packet except a draining head (whose
// phits are already committed to the crossbar and must finish via
// FinishDrain), calling visit for each removed packet. Used when a router
// fails: its buffered traffic is lost and must be accounted explicitly.
func (b *VCBuffer) DropQueued(visit func(*packet.Packet)) {
	if b.Len() == 0 {
		return
	}
	b.invalidateCache()
	start := b.head
	if b.draining {
		start++ // the in-flight head survives until its FinishDrain
	}
	for i := start; i < len(b.q); i++ {
		p := b.q[i]
		b.occupied -= p.Size
		b.q[i] = nil
		visit(p)
	}
	b.q = b.q[:start]
	if start == b.head && b.head > 0 {
		b.q = b.q[:0]
		b.head = 0
	}
}

// BeginDrain marks the head as granted; it stays at the head (consuming
// space) until FinishDrain.
func (b *VCBuffer) BeginDrain() {
	if b.Len() == 0 || b.draining {
		panic("router: BeginDrain on empty or draining buffer")
	}
	b.draining = true
}

// FinishDrain removes the head packet and frees its space.
func (b *VCBuffer) FinishDrain() *packet.Packet {
	if !b.draining {
		panic("router: FinishDrain without BeginDrain")
	}
	p := b.q[b.head]
	b.q[b.head] = nil
	b.head++
	if b.head == len(b.q) { // reset slice to reuse storage
		b.q = b.q[:0]
		b.head = 0
	} else if b.head > 32 && b.head*2 >= len(b.q) {
		n := copy(b.q, b.q[b.head:])
		for i := n; i < len(b.q); i++ {
			b.q[i] = nil
		}
		b.q = b.q[:n]
		b.head = 0
	}
	b.occupied -= p.Size
	b.draining = false
	b.invalidateCache() // whatever queued behind p is the new head
	return p
}
