package router

import (
	"testing"
	"testing/quick"

	"ofar/internal/packet"
)

func mkPkt(pool *packet.Pool, size int) *packet.Packet {
	p := pool.Get()
	p.Size = size
	return p
}

func TestVCBufferBasics(t *testing.T) {
	var pool packet.Pool
	var b VCBuffer
	b.Init(32, -1)
	if b.Escape || b.Ring != -1 {
		t.Error("canonical buffer flagged as escape")
	}
	if b.Len() != 0 || b.Occupied() != 0 || b.Free() != 32 || b.Head() != nil {
		t.Error("fresh buffer not empty")
	}
	p1 := mkPkt(&pool, 8)
	p2 := mkPkt(&pool, 8)
	b.Push(p1)
	b.Push(p2)
	if b.Len() != 2 || b.Occupied() != 16 || b.Free() != 16 {
		t.Errorf("len=%d occ=%d free=%d", b.Len(), b.Occupied(), b.Free())
	}
	if b.Head() != p1 {
		t.Error("head is not FIFO order")
	}
	b.BeginDrain()
	if !b.Draining() {
		t.Error("not draining")
	}
	if got := b.FinishDrain(); got != p1 {
		t.Error("drained wrong packet")
	}
	if b.Draining() || b.Len() != 1 || b.Occupied() != 8 {
		t.Error("drain bookkeeping wrong")
	}
	if b.Head() != p2 {
		t.Error("head after drain")
	}
}

func TestVCBufferEscapeTag(t *testing.T) {
	var b VCBuffer
	b.Init(32, 2)
	if !b.Escape || b.Ring != 2 {
		t.Errorf("escape=%v ring=%d", b.Escape, b.Ring)
	}
}

func TestVCBufferOverflowPanics(t *testing.T) {
	var pool packet.Pool
	var b VCBuffer
	b.Init(8, -1)
	b.Push(mkPkt(&pool, 8))
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	b.Push(mkPkt(&pool, 8))
}

func TestVCBufferDrainPanics(t *testing.T) {
	var b VCBuffer
	b.Init(8, -1)
	if didPanic(func() { b.BeginDrain() }) == false {
		t.Error("BeginDrain on empty buffer must panic")
	}
	if didPanic(func() { b.FinishDrain() }) == false {
		t.Error("FinishDrain without BeginDrain must panic")
	}
}

func didPanic(f func()) (p bool) {
	defer func() { p = recover() != nil }()
	f()
	return
}

// TestVCBufferFIFOQuick pushes/drains randomly and checks FIFO order and
// occupancy accounting.
func TestVCBufferFIFOQuick(t *testing.T) {
	f := func(ops []bool) bool {
		var pool packet.Pool
		var b VCBuffer
		b.Init(1<<20, -1)
		var expect []*packet.Packet
		for _, push := range ops {
			if push {
				p := mkPkt(&pool, 4)
				b.Push(p)
				expect = append(expect, p)
			} else if len(expect) > 0 {
				b.BeginDrain()
				got := b.FinishDrain()
				if got != expect[0] {
					return false
				}
				expect = expect[1:]
			}
			if b.Len() != len(expect) || b.Occupied() != 4*len(expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVCBufferCompaction(t *testing.T) {
	var pool packet.Pool
	var b VCBuffer
	b.Init(1<<20, -1)
	// Interleave enough pushes and drains to force the head-compaction path.
	var live []*packet.Packet
	for i := 0; i < 500; i++ {
		p := mkPkt(&pool, 2)
		b.Push(p)
		live = append(live, p)
		if i%3 != 0 {
			b.BeginDrain()
			if got := b.FinishDrain(); got != live[0] {
				t.Fatalf("iteration %d: wrong packet", i)
			}
			live = live[1:]
		}
	}
	for len(live) > 0 {
		b.BeginDrain()
		if got := b.FinishDrain(); got != live[0] {
			t.Fatal("tail drain order broken")
		}
		live = live[1:]
	}
	if b.Len() != 0 || b.Occupied() != 0 {
		t.Error("buffer not empty after full drain")
	}
}

func TestLRSFairness(t *testing.T) {
	var a LRS
	a.InitLRS(3)
	all := func(int) bool { return true }
	order := []int{}
	now := int64(0)
	for i := 0; i < 6; i++ {
		pick := a.Pick(all)
		a.Grant(pick, now)
		now++
		order = append(order, pick)
	}
	// Round-robin-like rotation: each requester served twice in 6 grants.
	counts := map[int]int{}
	for _, x := range order {
		counts[x]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] != 2 {
			t.Fatalf("requester %d served %d times in %v", i, counts[i], order)
		}
	}
}

func TestLRSEligibility(t *testing.T) {
	var a LRS
	a.InitLRS(4)
	if got := a.Pick(func(i int) bool { return i == 2 }); got != 2 {
		t.Errorf("pick=%d", got)
	}
	if got := a.Pick(func(int) bool { return false }); got != -1 {
		t.Errorf("pick on empty=%d", got)
	}
	// After serving 0 and 1, the least recently served eligible of {0,1} is 0.
	a.Grant(0, 10)
	a.Grant(1, 11)
	if got := a.Pick(func(i int) bool { return i < 2 }); got != 0 {
		t.Errorf("LRS pick=%d want 0", got)
	}
}

func TestFlagBoardDelay(t *testing.T) {
	fb := NewFlagBoard(4, 3)
	fb.Set(0, 1, true)
	for now := int64(0); now < 3; now++ {
		if fb.Get(now, 1) {
			t.Fatalf("flag visible at %d before delay", now)
		}
		// Owners republish every cycle.
		fb.Set(now+1, 1, true)
	}
	if !fb.Get(3, 1) {
		t.Error("flag not visible after delay")
	}
	if fb.Get(3, 0) {
		t.Error("unset flag visible")
	}
}

func TestFlagBoardZeroDelay(t *testing.T) {
	fb := NewFlagBoard(2, 0)
	fb.Set(5, 0, true)
	if !fb.Get(5, 0) {
		t.Error("zero-delay flag not immediately visible")
	}
}

func TestOutPortCredits(t *testing.T) {
	var op OutPort
	op.initOut(nil, []int{16, 16, 8}, []int8{-1, -1, 0})
	if op.NumVCs() != 3 {
		t.Fatal("vc count")
	}
	if op.Occupancy() != 0 {
		t.Error("fresh occupancy nonzero")
	}
	op.Take(0, 8)
	// Canonical capacity is 32 (escape VC excluded): 8/32 occupied.
	if got := op.Occupancy(); got != 0.25 {
		t.Errorf("occupancy=%f", got)
	}
	op.Take(2, 8) // escape VC does not affect canonical occupancy
	if got := op.Occupancy(); got != 0.25 {
		t.Errorf("occupancy after escape take=%f", got)
	}
	op.Refund(0, 8)
	op.Refund(2, 8)
	if op.Occupancy() != 0 || op.Credits(0) != 16 || op.Credits(2) != 8 {
		t.Error("refund bookkeeping")
	}
	if !didPanic(func() { op.Take(0, 17) }) {
		t.Error("credit underflow must panic")
	}
	if !didPanic(func() { op.Refund(1, 1) }) {
		t.Error("credit overflow must panic")
	}
}

func TestBestVCSelection(t *testing.T) {
	var op OutPort
	op.initOut(nil, []int{16, 16, 8}, []int8{-1, -1, 1})
	op.Take(0, 12)
	vc, ok := op.bestCanonicalVC(8)
	if !ok || vc != 1 {
		t.Errorf("bestCanonicalVC=%d,%v", vc, ok)
	}
	evc, ok := op.bestEscapeVC(1)
	if !ok || evc != 2 {
		t.Errorf("bestEscapeVC=%d,%v", evc, ok)
	}
	if _, ok := op.bestEscapeVC(0); ok {
		t.Error("found escape VC for wrong ring")
	}
	op.Take(1, 16)
	op.Take(0, 4) // vc0 empty of credits now (16-12-4)
	if _, ok := op.bestCanonicalVC(8); ok {
		t.Error("bestCanonicalVC with no credits")
	}
}
