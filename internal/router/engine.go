package router

import (
	"ofar/internal/packet"
	"ofar/internal/topology"
)

// Request is a routing engine's desired crossbar transfer for the packet at
// the head of one input VC: the output port, the downstream VC, and the
// header side effects to apply if (and only if) the request wins switch
// allocation.
type Request struct {
	Out int // output port
	VC  int // downstream VC index on that port

	Escape    bool // target VC belongs to the escape subnetwork
	EnterRing bool // canonical → ring transition (2-packet bubble was checked)
	ExitRing  bool // ring → canonical transition (counts against the exit budget)
	Ring      int8 // escape ring being entered/ridden (valid when Escape)

	SetGlobalMis bool // mark the packet's one-global-misroute flag
	SetLocalMis  bool // mark the packet's per-group local-misroute flag
}

// InCtx describes the input buffer holding the packet a routing decision is
// being made for. The paper's OFAR policy distinguishes injection queues,
// local queues and escape channels (§IV-A).
type InCtx struct {
	Port, VC int
	Kind     topology.PortKind
	Escape   bool // the buffer is an escape-ring channel
	Ring     int  // escape ring index (-1 for canonical buffers)
}

// Engine is a routing mechanism. Route is invoked every cycle for every
// routable head-of-buffer packet ("the routing decision is revisited every
// cycle as long as the packet remains in the queue head", §V); it returns
// false when the packet must wait.
type Engine interface {
	Name() string

	// AtInjection runs once when a packet is accepted into an injection
	// buffer; source-adaptive mechanisms decide minimal-vs-Valiant here.
	AtInjection(rt *Router, p *packet.Packet, now int64)

	// Route proposes an output for the head packet of the given input VC.
	Route(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool)
}

// ConcurrentCloner is implemented by engines that keep per-call scratch
// state (candidate buffers and the like) and therefore cannot be shared
// between worker goroutines of the parallel network engine. CloneForWorker
// returns an engine that behaves identically to the receiver — routing
// decisions must not depend on which clone computes them, or parallel runs
// would diverge from serial ones. Engines without mutable state need not
// implement the interface; they are shared across workers as-is.
type ConcurrentCloner interface {
	CloneForWorker() Engine
}

// Grant reports one committed crossbar transfer of a cycle.
type Grant struct {
	InPort, InVC int
	Req          Request
	Pkt          *packet.Packet
	Eject        bool
}
