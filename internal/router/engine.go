package router

import (
	"ofar/internal/packet"
	"ofar/internal/topology"
)

// Request is a routing engine's desired crossbar transfer for the packet at
// the head of one input VC: the output port, the downstream VC, and the
// header side effects to apply if (and only if) the request wins switch
// allocation.
type Request struct {
	Out int // output port
	VC  int // downstream VC index on that port

	Escape    bool // target VC belongs to the escape subnetwork
	EnterRing bool // canonical → ring transition (2-packet bubble was checked)
	ExitRing  bool // ring → canonical transition (counts against the exit budget)
	Ring      int8 // escape ring being entered/ridden (valid when Escape)

	SetGlobalMis bool // mark the packet's one-global-misroute flag
	SetLocalMis  bool // mark the packet's per-group local-misroute flag
}

// InCtx describes the input buffer holding the packet a routing decision is
// being made for. The paper's OFAR policy distinguishes injection queues,
// local queues and escape channels (§IV-A).
type InCtx struct {
	Port, VC int
	Kind     topology.PortKind
	Escape   bool // the buffer is an escape-ring channel
	Ring     int  // escape ring index (-1 for canonical buffers)

	// MinHint, when ≥ 0, is the engine's own per-head anchor port (the
	// minPort value a previous RouteDeps reported for this exact head
	// packet), cached by the router so the engine can skip recomputing the
	// topology lookup. -1 when unknown. Purely an accelerator: the hinted
	// value equals what the engine would compute, so decisions are
	// identical with or without it.
	//
	// Beware the zero value: 0 is a real port, not "no hint". Code that
	// constructs an InCtx by hand (tests calling Route directly) must set
	// MinHint to -1 explicitly or the engine will treat port 0 as the
	// minimal route.
	MinHint int32
}

// Engine is a routing mechanism. Route is invoked every cycle for every
// routable head-of-buffer packet ("the routing decision is revisited every
// cycle as long as the packet remains in the queue head", §V); it returns
// false when the packet must wait.
type Engine interface {
	Name() string

	// AtInjection runs once when a packet is accepted into an injection
	// buffer; source-adaptive mechanisms decide minimal-vs-Valiant here.
	AtInjection(rt *Router, p *packet.Packet, now int64)

	// Route proposes an output for the head packet of the given input VC.
	Route(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool)
}

// CacheableEngine is implemented by engines whose Route is a pure function
// of (a) the head packet's header, (b) the current cycle, and (c) the state
// of this router's output ports — credits, busy/dead status and escape-ring
// reachability — and that can report exactly which ports a Route call read.
// Such engines are eligible for the router's epoch-invalidated route cache:
// the router memoizes the decision per buffer head and revalidates it with
// per-port epoch counters instead of re-running Route every cycle.
//
// RouteDeps must be called immediately after Route with the same arguments
// and reports that call's read set:
//
//   - mask: bit i set iff Route read any state of output port i. The router
//     guarantees ≤ 64 output ports when it enables caching.
//   - expire: the first cycle at which the decision could change through
//     the passage of time alone (e.g. a blocked-cycles threshold being
//     crossed); math.MaxInt64 when the decision is time-independent. Port
//     busy deadlines need NOT be folded in — the router tracks busy→free
//     transitions itself.
//   - minPort: a per-head stable value (OFAR's minimal port, the baselines'
//     committed next output) the router may hand back as InCtx.MinHint for
//     later calls on the same head.
//
// Decisions that consumed randomness are never cached (the router watches
// its RNG draw counter), so RouteDeps need not describe them precisely —
// only the read set leading to the draw.
type CacheableEngine interface {
	Engine
	RouteDeps(rt *Router, in InCtx, p *packet.Packet, now int64) (mask uint64, expire int64, minPort int32)
}

// ConcurrentCloner is implemented by engines that keep per-call scratch
// state (candidate buffers and the like) and therefore cannot be shared
// between worker goroutines of the parallel network engine. CloneForWorker
// returns an engine that behaves identically to the receiver — routing
// decisions must not depend on which clone computes them, or parallel runs
// would diverge from serial ones. Engines without mutable state need not
// implement the interface; they are shared across workers as-is.
type ConcurrentCloner interface {
	CloneForWorker() Engine
}

// Grant reports one committed crossbar transfer of a cycle.
type Grant struct {
	InPort, InVC int
	Req          Request
	Pkt          *packet.Packet
	Eject        bool
}
