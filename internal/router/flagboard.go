package router

// FlagBoard carries the piggybacked global-link congestion flags that the
// PB mechanism broadcasts inside each group (Jiang et al., ISCA 2009; paper
// §II/§V). Each router continuously publishes one boolean per global link
// it owns; every router of the group reads the flags with a fixed broadcast
// delay, modeling the local-link propagation of the piggybacked state.
//
// The board keeps delay+1 time slots so readers at cycle t see the values
// written at cycle t-delay.
type FlagBoard struct {
	delay int
	links int
	hist  [][]bool
}

// NewFlagBoard creates a board for `links` global links with the given
// broadcast delay in cycles.
func NewFlagBoard(links, delay int) *FlagBoard {
	if delay < 0 {
		delay = 0
	}
	fb := &FlagBoard{delay: delay, links: links, hist: make([][]bool, delay+1)}
	for i := range fb.hist {
		fb.hist[i] = make([]bool, links)
	}
	return fb
}

// Set publishes the flag of one link at cycle now. Owners must publish every
// cycle; stale slots are recycled.
func (fb *FlagBoard) Set(now int64, link int, v bool) {
	fb.hist[now%int64(len(fb.hist))][link] = v
}

// Get returns the delayed view of one link's flag at cycle now.
func (fb *FlagBoard) Get(now int64, link int) bool {
	t := now - int64(fb.delay)
	if t < 0 {
		return false
	}
	return fb.hist[t%int64(len(fb.hist))][link]
}
