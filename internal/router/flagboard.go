package router

// FlagBoard carries the piggybacked global-link congestion flags that the
// PB mechanism broadcasts inside each group (Jiang et al., ISCA 2009; paper
// §II/§V). Each router publishes one boolean per global link it owns; every
// router of the group reads the flags with a fixed broadcast delay, modeling
// the local-link propagation of the piggybacked state.
//
// The board stores per-link transitions rather than per-cycle snapshots:
// owners only need to publish when a flag's value actually changed (the
// network's incremental PB maintenance relies on this), and a reader at
// cycle t sees the value that was current at cycle t-delay. A short ring of
// per-cycle history rows backs reads that fall before the latest transition;
// it is filled lazily on each transition, so an unchanged flag costs nothing
// per cycle no matter how many cycles pass.
type FlagBoard struct {
	delay int
	links int

	cur   []bool  // latest published value per link
	curAt []int64 // cycle at which cur took effect
	// hist[t % (delay+1)][link] holds the link's value at cycle t for the
	// cycles in [curAt-delay, curAt-1], maintained by the lazy fill in Set.
	hist [][]bool
}

// NewFlagBoard creates a board for `links` global links with the given
// broadcast delay in cycles.
func NewFlagBoard(links, delay int) *FlagBoard {
	if delay < 0 {
		delay = 0
	}
	fb := &FlagBoard{
		delay: delay,
		links: links,
		cur:   make([]bool, links),
		curAt: make([]int64, links),
		hist:  make([][]bool, delay+1),
	}
	for i := range fb.hist {
		fb.hist[i] = make([]bool, links)
	}
	return fb
}

// Set publishes the flag of one link as computed at cycle now. The value is
// assumed constant since the previous Set of the same link, so owners may
// (and, with the activity scheduler, do) skip publishing while the flag is
// unchanged. Publishes must be monotone in now. Setting the current value
// again is a no-op.
func (fb *FlagBoard) Set(now int64, link int, v bool) {
	if v == fb.cur[link] {
		return
	}
	// The value held fb.cur[link] from curAt up to now-1; back-fill the
	// history rows still inside the delay window before recording the
	// transition.
	from := fb.curAt[link]
	if low := now - int64(fb.delay); from < low {
		from = low
	}
	h := int64(len(fb.hist))
	for t := from; t < now; t++ {
		if t >= 0 {
			fb.hist[t%h][link] = fb.cur[link]
		}
	}
	fb.cur[link] = v
	fb.curAt[link] = now
}

// Get returns the delayed view of one link's flag at cycle now: the value
// that was current at cycle now-delay.
func (fb *FlagBoard) Get(now int64, link int) bool {
	t := now - int64(fb.delay)
	if t < 0 {
		return false
	}
	if t >= fb.curAt[link] {
		return fb.cur[link]
	}
	return fb.hist[t%int64(len(fb.hist))][link]
}
