package router

import (
	"ofar/internal/topology"
)

// InPort is one input port of the router with its virtual-channel buffers.
type InPort struct {
	Kind topology.PortKind
	VCs  []VCBuffer

	// UpRouter/UpPort identify the upstream output port feeding this input,
	// used to return credits; both are -1 for injection ports.
	UpRouter int
	UpPort   int

	// busyUntil gates the port's 1 phit/cycle crossbar bandwidth: while a
	// packet drains, no other VC of the port can be granted.
	busyUntil int64

	// ready is the bitset form of the routable-head predicate: bit vc is set
	// iff VCs[vc] is non-empty and not draining. It is maintained at exactly
	// the sites that maintain Router.readyVCs, so popcount(ready) summed over
	// ports always equals readyVCs. Cycle iterates set bits instead of
	// scanning every VC.
	ready uint64
}

// Busy reports whether the port is still streaming a previous grant.
func (ip *InPort) Busy(now int64) bool { return ip.busyUntil > now }

// ReadyMask returns the routable-head bitset (bit vc set iff VCs[vc] holds a
// routable head). Test and diagnostics hook.
func (ip *InPort) ReadyMask() uint64 { return ip.ready }

// OutPort is one output port with per-VC credit counters mirroring the free
// space of the downstream input buffer.
type OutPort struct {
	Kind topology.PortKind

	// Peer/PeerPort identify the downstream router input; both are -1 for
	// ejection (node) ports.
	Peer     int
	PeerPort int

	// Latency is the link traversal latency in cycles.
	Latency int

	credits []int
	vcCap   []int
	// escRing maps each VC to the escape ring it belongs to, or -1 for
	// canonical VCs.
	escRing []int8

	busyUntil int64

	// dead marks a failed link: a dead port is permanently Busy, so no
	// allocator or engine ever grants it again. Credits are frozen as-is.
	dead bool

	// canonical aggregates for the occupancy percentage used by adaptive
	// routing thresholds (escape VCs excluded).
	canCap     int
	canCredits int
}

// initOut sets up the credit state. caps lists per-VC capacities; escRing
// tags escape VCs (-1 = canonical). The persistent per-VC arrays are carved
// from ar (nil = heap).
func (op *OutPort) initOut(ar *Arena, caps []int, escRing []int8) {
	op.credits = ar.Ints(len(caps))
	copy(op.credits, caps)
	op.vcCap = ar.Ints(len(caps))
	copy(op.vcCap, caps)
	op.escRing = ar.Int8s(len(escRing))
	copy(op.escRing, escRing)
	op.canCap, op.canCredits = 0, 0
	for vc, c := range caps {
		if escRing[vc] < 0 {
			op.canCap += c
			op.canCredits += c
		}
	}
}

// Busy reports whether the port is still serializing a previous grant.
// Dead ports are permanently busy: every grant path — engine VC selection,
// allocator arbitration, escape-ring advance — already consults Busy, so
// folding liveness in here is what keeps dead links unreachable everywhere.
func (op *OutPort) Busy(now int64) bool { return op.dead || op.busyUntil > now }

// Dead reports whether the link behind this port has failed.
func (op *OutPort) Dead() bool { return op.dead }

// Fail marks the link behind this port as failed.
func (op *OutPort) Fail() { op.dead = true }

// SetCredits overwrites one VC's credit counter during structural surgery
// (escape-ring re-formation retargets a port to a new downstream buffer and
// must re-derive its free space). Maintains the canonical aggregate.
func (op *OutPort) SetCredits(vc, credits int) {
	if credits < 0 || credits > op.vcCap[vc] {
		panic("router: SetCredits outside [0, cap]")
	}
	if op.escRing[vc] < 0 {
		op.canCredits += credits - op.credits[vc]
	}
	op.credits[vc] = credits
}

// NumVCs returns the number of downstream VCs.
func (op *OutPort) NumVCs() int { return len(op.credits) }

// Credits returns the credit count of one VC.
func (op *OutPort) Credits(vc int) int { return op.credits[vc] }

// VCCap returns the capacity of one downstream VC.
func (op *OutPort) VCCap(vc int) int { return op.vcCap[vc] }

// EscapeRing returns the escape-ring index of a VC, or -1 for canonical VCs.
func (op *OutPort) EscapeRing(vc int) int { return int(op.escRing[vc]) }

// Occupancy returns the canonical downstream occupancy as a fraction in
// [0,1], the quantity compared against misrouting thresholds (paper §IV-B
// uses percentages because local and global buffers differ in size).
func (op *OutPort) Occupancy() float64 {
	if op.canCap == 0 {
		return 0
	}
	return 1 - float64(op.canCredits)/float64(op.canCap)
}

// Take consumes credits for a departing packet.
func (op *OutPort) Take(vc, size int) {
	if op.credits[vc] < size {
		panic("router: credit underflow")
	}
	op.credits[vc] -= size
	if op.escRing[vc] < 0 {
		op.canCredits -= size
	}
}

// Refund returns credits after the downstream buffer frees the space.
func (op *OutPort) Refund(vc, size int) {
	op.credits[vc] += size
	if op.escRing[vc] < 0 {
		op.canCredits += size
	}
	if op.credits[vc] > op.vcCap[vc] {
		panic("router: credit overflow")
	}
}

// bestCanonicalVC returns the canonical VC with the most credits that fits
// size phits.
func (op *OutPort) bestCanonicalVC(size int) (int, bool) {
	best, bestCr := -1, -1
	for vc := range op.credits {
		if op.escRing[vc] >= 0 {
			continue
		}
		if cr := op.credits[vc]; cr >= size && cr > bestCr {
			best, bestCr = vc, cr
		}
	}
	return best, best >= 0
}

// bestEscapeVC returns the VC of the given escape ring with the most
// credits (no size requirement; bubble checks are the caller's business).
func (op *OutPort) bestEscapeVC(ring int) (int, bool) {
	best, bestCr := -1, -1
	for vc := range op.credits {
		if int(op.escRing[vc]) != ring {
			continue
		}
		if cr := op.credits[vc]; cr > bestCr {
			best, bestCr = vc, cr
		}
	}
	return best, best >= 0
}
