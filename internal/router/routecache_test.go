package router

import (
	"math"
	"testing"

	"ofar/internal/packet"
)

// cacheScriptEngine is a scriptable CacheableEngine that counts Route calls
// and records the MinHint each call received, so tests can pin exactly when
// the route cache recomputes versus replays.
type cacheScriptEngine struct {
	calls int
	hints []int32
	route func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool)
	deps  func(rt *Router, in InCtx, p *packet.Packet, now int64) (uint64, int64, int32)
}

func (e *cacheScriptEngine) Name() string                               { return "cache-script" }
func (e *cacheScriptEngine) AtInjection(*Router, *packet.Packet, int64) {}
func (e *cacheScriptEngine) Route(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
	e.calls++
	e.hints = append(e.hints, in.MinHint)
	return e.route(rt, in, p, now)
}
func (e *cacheScriptEngine) RouteDeps(rt *Router, in InCtx, p *packet.Packet, now int64) (uint64, int64, int32) {
	return e.deps(rt, in, p, now)
}

// port2Deps reports a read set of output port 2 only, no time dependence,
// with port 2 as the per-head anchor.
func port2Deps(*Router, InCtx, *packet.Packet, int64) (uint64, int64, int32) {
	return 1 << 2, math.MaxInt64, 2
}

// TestRouteCacheStableBlockedHead: a blocked head whose read set does not
// change is evaluated exactly once, however many cycles pass; a credit refund
// on a read port forces one re-evaluation, which then sees the cached
// MinHint anchor instead of -1.
func TestRouteCacheStableBlockedHead(t *testing.T) {
	r := testRouter(t, 1)
	r.EnableRouteCache()
	var pool packet.Pool
	eng := &cacheScriptEngine{
		route: func(*Router, InCtx, *packet.Packet, int64) (Request, bool) { return Request{}, false },
		deps:  port2Deps,
	}
	r.Out[2].Take(0, 8) // headroom so the refund below is legal
	push(r, 0, 0, &pool)
	for now := int64(0); now < 5; now++ {
		r.Cycle(eng, now)
	}
	if eng.calls != 1 {
		t.Fatalf("blocked head with stable deps evaluated %d times, want 1", eng.calls)
	}
	if eng.hints[0] != -1 {
		t.Fatalf("first evaluation saw MinHint %d, want -1", eng.hints[0])
	}
	r.AddCredit(2, 0, 8) // epoch bump on the read port
	for now := int64(5); now < 8; now++ {
		r.Cycle(eng, now)
	}
	if eng.calls != 2 {
		t.Fatalf("credit refund triggered %d re-evaluations, want exactly 1 (calls=2)", eng.calls)
	}
	if eng.hints[1] != 2 {
		t.Fatalf("re-evaluation saw MinHint %d, want the cached anchor 2", eng.hints[1])
	}
}

// TestRouteCacheBusyTransitions: the allocation loser is re-evaluated once
// after the winner's commit (the commit bumps the output's epoch), caches its
// blocked result while the port serializes, and is re-evaluated again when
// the busy deadline expires (the nextFree scan bumps the epoch).
func TestRouteCacheBusyTransitions(t *testing.T) {
	r := testRouter(t, 1)
	r.EnableRouteCache()
	var pool packet.Pool
	eng := &cacheScriptEngine{
		route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
			if rt.OutBusy(2, now) {
				return Request{}, false
			}
			return Request{Out: 2, VC: 0}, true
		},
		deps: port2Deps,
	}
	push(r, 0, 0, &pool)
	push(r, 1, 0, &pool)
	if grants := r.Cycle(eng, 0); len(grants) != 1 || eng.calls != 2 {
		t.Fatalf("cycle 0: %d grants, %d calls; want 1 grant from 2 evaluations", len(grants), eng.calls)
	}
	// Cycles 1..7: output 2 is serializing the winner (8 phits). The loser
	// re-evaluates once at cycle 1 (the commit moved the epoch), sees the
	// busy port, and the blocked result is then replayed.
	for now := int64(1); now < 8; now++ {
		if g := r.Cycle(eng, now); len(g) != 0 {
			t.Fatalf("cycle %d: unexpected grant while output busy", now)
		}
	}
	if eng.calls != 3 {
		t.Fatalf("busy window re-evaluated %d times, want exactly 1 (calls=3)", eng.calls)
	}
	// Cycle 8: the busy deadline expires; the scan bumps the epoch and the
	// loser is re-evaluated and granted.
	if grants := r.Cycle(eng, 8); len(grants) != 1 || eng.calls != 4 {
		t.Fatalf("cycle 8: %d grants, %d calls; want the freed port re-evaluated and granted", len(grants), eng.calls)
	}
}

// TestRouteCacheHeadReplacement: draining the head invalidates both the
// cached decision and the MinHint anchor, so the next head is evaluated
// fresh with MinHint -1.
func TestRouteCacheHeadReplacement(t *testing.T) {
	r := testRouter(t, 1)
	r.EnableRouteCache()
	var pool packet.Pool
	eng := &cacheScriptEngine{
		route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
			if rt.OutBusy(2, now) {
				return Request{}, false
			}
			return Request{Out: 2, VC: 0}, true
		},
		deps: port2Deps,
	}
	push(r, 0, 0, &pool)
	push(r, 0, 0, &pool) // queued behind the head
	if grants := r.Cycle(eng, 0); len(grants) != 1 || eng.calls != 1 {
		t.Fatalf("cycle 0: %d grants, %d calls", len(grants), eng.calls)
	}
	if p, _, _ := r.FinishDrain(0, 0); p == nil {
		t.Fatal("FinishDrain returned nil")
	}
	if grants := r.Cycle(eng, 8); len(grants) != 1 || eng.calls != 2 {
		t.Fatalf("new head: %d grants, %d calls; want fresh evaluation and grant", len(grants), eng.calls)
	}
	if eng.hints[1] != -1 {
		t.Fatalf("new head saw MinHint %d, want -1 (anchor reset on head replacement)", eng.hints[1])
	}
}

// TestRouteCacheNeverCachesRNGDraws: a decision that consumed randomness is
// recomputed every cycle — replaying it would skip the draws and
// desynchronize the router's RNG stream.
func TestRouteCacheNeverCachesRNGDraws(t *testing.T) {
	r := testRouter(t, 1)
	r.EnableRouteCache()
	var pool packet.Pool
	eng := &cacheScriptEngine{
		route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
			rt.RandInt(2)
			return Request{}, false
		},
		deps: port2Deps,
	}
	push(r, 0, 0, &pool)
	for now := int64(0); now < 4; now++ {
		r.Cycle(eng, now)
	}
	if eng.calls != 4 {
		t.Fatalf("RNG-drawing decision evaluated %d times over 4 cycles, want 4", eng.calls)
	}
}

// TestRouteCacheExpiry: a decision that reports a time expiry is replayed
// until that cycle and recomputed exactly then (OFAR's escape-timeout
// threshold is the production case).
func TestRouteCacheExpiry(t *testing.T) {
	r := testRouter(t, 1)
	r.EnableRouteCache()
	var pool packet.Pool
	eng := &cacheScriptEngine{
		route: func(*Router, InCtx, *packet.Packet, int64) (Request, bool) { return Request{}, false },
		deps: func(_ *Router, _ InCtx, _ *packet.Packet, now int64) (uint64, int64, int32) {
			return 1 << 2, now + 3, 2
		},
	}
	push(r, 0, 0, &pool)
	for now := int64(0); now < 9; now++ {
		r.Cycle(eng, now)
	}
	if eng.calls != 3 {
		t.Fatalf("expiring decision evaluated %d times over 9 cycles, want 3 (cycles 0, 3, 6)", eng.calls)
	}
}

// TestRouteCacheFailOutputInvalidates: killing a link the decision read
// forces a re-evaluation.
func TestRouteCacheFailOutputInvalidates(t *testing.T) {
	r := testRouter(t, 1)
	r.EnableRouteCache()
	var pool packet.Pool
	eng := &cacheScriptEngine{
		route: func(*Router, InCtx, *packet.Packet, int64) (Request, bool) { return Request{}, false },
		deps:  port2Deps,
	}
	push(r, 0, 0, &pool)
	r.Cycle(eng, 0)
	r.Cycle(eng, 1)
	if eng.calls != 1 {
		t.Fatalf("calls=%d before fault, want 1", eng.calls)
	}
	r.FailOutput(2)
	r.Cycle(eng, 2)
	if eng.calls != 2 {
		t.Fatalf("FailOutput on a read port triggered %d evaluations, want a re-evaluation (calls=2)", eng.calls)
	}
}
