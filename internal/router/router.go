package router

import (
	"fmt"

	"ofar/internal/packet"
	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// PortSpec describes one bidirectional port pair of a router: the input
// buffer profile (what this router stores) and the output credit profile
// (mirroring the downstream input buffer at the other end of the link).
type PortSpec struct {
	Kind     topology.PortKind
	Peer     int // downstream router fed by this port's output; -1 when unwired
	PeerPort int // downstream router's input-port index
	// UpRouter/UpPort identify the upstream output feeding this port's
	// input buffer. For canonical bidirectional links these equal
	// Peer/PeerPort; unidirectional escape-ring ports differ (the input
	// comes from the ring predecessor while the output feeds the
	// successor).
	UpRouter int
	UpPort   int
	Latency  int // link latency in cycles

	InCaps  []int // per-VC capacities of this router's input buffer (phits)
	InRing  []int // escape-ring tag per input VC (-1 canonical)
	OutCaps []int // per-VC capacities of the downstream buffer (credits)
	OutRing []int // escape-ring tag per downstream VC
}

// Params configures one router instance.
type Params struct {
	ID         int
	Topo       *topology.Dragonfly
	PktSize    int
	AllocIters int // separable-allocator iterations (paper: 3)
	RNG        *simcore.RNG
	Ports      []PortSpec

	// Escape subnetwork: output port realizing each ring's next hop
	// (empty when no escape network is configured).
	RingOuts []int

	// PB piggybacking board shared by the router's group (nil when the
	// routing mechanism does not use it).
	PB          *FlagBoard
	PBThreshold float64
}

// Router is one input-buffered VCT router.
type Router struct {
	ID    int
	Group int
	Topo  *topology.Dragonfly

	In  []InPort
	Out []OutPort

	PktSize    int
	AllocIters int

	rng         *simcore.RNG
	pb          *FlagBoard
	pbThreshold float64

	ringOuts []int32

	// canonical input-buffer occupancy, tracked incrementally for the
	// congestion-management injection throttle.
	occPhits int
	capPhits int

	// readyVCs counts input VCs holding a routable head: non-empty and not
	// draining. It is maintained incrementally by Arrive/Inject/commit/
	// FinishDrain and is the network activity scheduler's wake predicate —
	// when it is zero, Cycle provably has no side effects (no engine.Route
	// call, no RNG draw, no arbiter movement, no header writes), so the
	// router may be skipped without perturbing the simulation.
	readyVCs int

	// pbDirty is set whenever the canonical occupancy of a global output
	// port may have changed (credits taken or refunded), i.e. whenever the
	// PB flags this router publishes could differ from their last published
	// values. The network republishes only dirty routers.
	pbDirty bool

	// allocator scratch state (reused every cycle)
	inArb      []LRS
	outArb     []LRS
	reqs       []reqSlot
	vcBase     []int32
	candVC     []int32
	outCand    [][]int32 // per output port: candidate input ports
	touchedOut []int32
	matchedIn  []bool
	matchedOut []bool
	grants     []Grant
}

type reqSlot struct {
	valid bool
	r     Request
}

// New builds a router from its parameter block.
func New(p Params) *Router {
	r := &Router{
		ID:          p.ID,
		Group:       p.Topo.GroupOf(p.ID),
		Topo:        p.Topo,
		PktSize:     p.PktSize,
		AllocIters:  p.AllocIters,
		rng:         p.RNG,
		pb:          p.PB,
		pbThreshold: p.PBThreshold,
	}
	if r.AllocIters < 1 {
		r.AllocIters = 1
	}
	n := len(p.Ports)
	r.In = make([]InPort, n)
	r.Out = make([]OutPort, n)
	r.inArb = make([]LRS, n)
	r.outArb = make([]LRS, n)
	r.vcBase = make([]int32, n+1)
	r.candVC = make([]int32, n)
	r.outCand = make([][]int32, n)
	r.matchedIn = make([]bool, n)
	r.matchedOut = make([]bool, n)
	total := 0
	for i, ps := range p.Ports {
		r.vcBase[i] = int32(total)
		in := &r.In[i]
		in.Kind = ps.Kind
		in.UpRouter, in.UpPort = ps.UpRouter, ps.UpPort
		if ps.Kind == topology.PortNode {
			in.UpRouter, in.UpPort = -1, -1
		}
		in.VCs = make([]VCBuffer, len(ps.InCaps))
		for vc := range in.VCs {
			ring := -1
			if ps.InRing != nil {
				ring = ps.InRing[vc]
			}
			in.VCs[vc].Init(ps.InCaps[vc], ring)
			if ring < 0 {
				r.capPhits += ps.InCaps[vc]
			}
		}
		out := &r.Out[i]
		out.Kind = ps.Kind
		out.Peer, out.PeerPort = ps.Peer, ps.PeerPort
		if ps.Kind == topology.PortNode {
			out.Peer, out.PeerPort = -1, -1
		}
		out.Latency = ps.Latency
		ringTags := make([]int8, len(ps.OutCaps))
		for vc := range ringTags {
			ringTags[vc] = -1
			if ps.OutRing != nil {
				ringTags[vc] = int8(ps.OutRing[vc])
			}
		}
		out.initOut(ps.OutCaps, ringTags)
		r.inArb[i].InitLRS(len(ps.InCaps))
		r.outArb[i].InitLRS(n)
		total += len(ps.InCaps)
	}
	r.vcBase[n] = int32(total)
	r.reqs = make([]reqSlot, total)
	r.ringOuts = make([]int32, len(p.RingOuts))
	for i, po := range p.RingOuts {
		r.ringOuts[i] = int32(po)
	}
	return r
}

// --- engine-facing helpers ---------------------------------------------------

// RandInt returns a uniform integer in [0,n) from the router's private RNG.
func (r *Router) RandInt(n int) int { return r.rng.Intn(n) }

// OutBusy reports whether an output port is serializing a previous packet.
func (r *Router) OutBusy(port int, now int64) bool { return r.Out[port].Busy(now) }

// OutOcc returns the canonical occupancy fraction of the downstream buffer.
func (r *Router) OutOcc(port int) float64 { return r.Out[port].Occupancy() }

// OutOccVC returns the occupancy fraction of one downstream VC.
func (r *Router) OutOccVC(port, vc int) float64 {
	op := &r.Out[port]
	if cap := op.VCCap(vc); cap > 0 {
		return 1 - float64(op.Credits(vc))/float64(cap)
	}
	return 0
}

// Avail reports whether output `port` can accept a packet of `size` phits
// right now, returning the canonical VC to use (the one with most credits).
func (r *Router) Avail(port, size int, now int64) (int, bool) {
	op := &r.Out[port]
	if op.Kind == topology.PortNone || op.Busy(now) {
		return -1, false
	}
	if op.Kind == topology.PortNode {
		return 0, true // ejection has no credit constraint
	}
	return op.bestCanonicalVC(size)
}

// VCFits reports whether a specific downstream VC has credits for size phits
// (ejection ports always fit). Dead ports never fit: frozen credits would
// otherwise keep looking available forever.
func (r *Router) VCFits(port, vc, size int) bool {
	op := &r.Out[port]
	if op.dead {
		return false
	}
	if op.Kind == topology.PortNode {
		return true
	}
	return op.Credits(vc) >= size
}

// FailOutput marks one output port's link as failed: the port becomes
// permanently busy and is never granted again. PB flags of a dead global
// link must republish as congested, so the router is marked dirty.
func (r *Router) FailOutput(port int) {
	r.Out[port].Fail()
	if r.pb != nil && r.Out[port].Kind == topology.PortGlobal {
		r.pbDirty = true
	}
}

// OutputDead reports whether an output port's link has failed.
func (r *Router) OutputDead(port int) bool {
	return port >= 0 && port < len(r.Out) && r.Out[port].dead
}

// DropBuffered discards every packet buffered in this router's input VCs,
// except heads that already won allocation and are draining (their phits are
// on the crossbar; the pending FinishDrain completes them). Routable heads
// that are dropped decrement the activity counter. Used when the whole
// router fails.
func (r *Router) DropBuffered(visit func(*packet.Packet)) {
	for i := range r.In {
		for vc := range r.In[i].VCs {
			buf := &r.In[i].VCs[vc]
			if buf.Len() > 0 && !buf.Draining() {
				r.readyVCs-- // the routable head is among the dropped
			}
			before := buf.Occupied()
			buf.DropQueued(visit)
			if !buf.Escape {
				r.occPhits -= before - buf.Occupied()
			}
		}
	}
}

// NumRings returns the number of escape rings configured on this router.
func (r *Router) NumRings() int { return len(r.ringOuts) }

// RingOut returns the output port and escape VC continuing ring `ring` from
// this router, along with that VC's current credits. A failed ring edge
// (FailRing) reports ok == false.
func (r *Router) RingOut(ring int) (port, vc, credits int, ok bool) {
	if ring < 0 || ring >= len(r.ringOuts) {
		return -1, -1, 0, false
	}
	port = int(r.ringOuts[ring])
	if port < 0 {
		return -1, -1, 0, false
	}
	op := &r.Out[port]
	vc, ok = op.bestEscapeVC(ring)
	if !ok {
		return -1, -1, 0, false
	}
	return port, vc, op.Credits(vc), true
}

// FailRing marks this router's outgoing edge of the given escape ring as
// failed (§VII reliability discussion): the ring can no longer be entered
// or continued from here. Packets already queued on the ring upstream exit
// through canonical outputs as usual.
func (r *Router) FailRing(ring int) {
	if ring >= 0 && ring < len(r.ringOuts) {
		r.ringOuts[ring] = -1
	}
}

// PBFlag returns the delayed piggybacked congestion flag of group-link
// `link` (0..a·h-1) as seen at cycle now.
func (r *Router) PBFlag(link int, now int64) bool {
	if r.pb == nil {
		return false
	}
	return r.pb.Get(now, link)
}

// UpdatePBFlags publishes the congestion state of this router's own global
// links to the group's flag board. The board stores transitions, so calling
// this only after a credit movement on a global port (see PBDirty) yields
// exactly the same reader-visible flag sequence as calling it every cycle.
func (r *Router) UpdatePBFlags(now int64) {
	if r.pb == nil {
		return
	}
	base := r.Topo.GlobalPortBase()
	rl := r.Topo.LocalIndex(r.ID)
	for k := 0; k < r.Topo.H; k++ {
		op := &r.Out[base+k]
		if op.Kind == topology.PortNone {
			continue
		}
		r.pb.Set(now, rl*r.Topo.H+k, op.dead || op.Occupancy() >= r.pbThreshold)
	}
	r.pbDirty = false
}

// PBDirty reports whether a global output port's occupancy may have changed
// since the last UpdatePBFlags, i.e. whether the router's published PB flags
// could be stale.
func (r *Router) PBDirty() bool { return r.pbDirty }

// --- event-side interface (driven by the network) ---------------------------

// Arrive stores a packet arriving on (port, vc) and updates its header: hop
// counters, per-group flag lifetimes and Valiant-group completion.
func (r *Router) Arrive(port, vc int, p *packet.Packet) {
	inp := &r.In[port]
	buf := &inp.VCs[vc]
	if buf.Len() == 0 && !buf.Draining() {
		r.readyVCs++ // empty → head becomes routable
	}
	buf.Push(p)
	if !buf.Escape {
		r.occPhits += p.Size
	}
	p.TotalHops++
	if buf.Escape {
		p.RingHops++
	} else {
		switch inp.Kind {
		case topology.PortLocal:
			p.LocalHops++
		case topology.PortGlobal:
			p.GlobalHops++
		}
	}
	p.EnterGroup(r.Group)
	p.BlockedSince = -1
}

// FinishDrain completes the transfer of the head packet of (port, vc),
// freeing its buffer space. It returns the packet and the upstream output
// coordinates that must be refunded (upRouter == -1 for injection buffers).
func (r *Router) FinishDrain(port, vc int) (p *packet.Packet, upRouter, upPort int) {
	inp := &r.In[port]
	buf := &inp.VCs[vc]
	p = buf.FinishDrain()
	if buf.Len() > 0 {
		r.readyVCs++ // the queued packet behind the drained head is now routable
	}
	if !buf.Escape {
		r.occPhits -= p.Size
	}
	return p, inp.UpRouter, inp.UpPort
}

// AddCredit refunds credits on an output port (a downstream buffer freed
// space).
func (r *Router) AddCredit(port, vc, phits int) {
	r.Out[port].Refund(vc, phits)
	if r.pb != nil && r.Out[port].Kind == topology.PortGlobal {
		r.pbDirty = true
	}
}

// InjectionSpace returns the injection VC of node-slot port `port` with the
// most free space, if any fits a packet of `size` phits.
func (r *Router) InjectionSpace(port, size int) (vc int, ok bool) {
	inp := &r.In[port]
	best, bestFree := -1, -1
	for i := range inp.VCs {
		if f := inp.VCs[i].Free(); f >= size && f > bestFree {
			best, bestFree = i, f
		}
	}
	return best, best >= 0
}

// Inject places a freshly generated packet into injection buffer (port, vc).
func (r *Router) Inject(port, vc int, p *packet.Packet, now int64) {
	p.Injected = now
	buf := &r.In[port].VCs[vc]
	if buf.Len() == 0 && !buf.Draining() {
		r.readyVCs++
	}
	buf.Push(p)
	r.occPhits += p.Size
}

// HasRoutableWork reports whether any input VC holds a routable head (non-
// empty, not draining). When false, Cycle is a guaranteed no-op — it calls
// no engine, draws no randomness and moves no arbiter state — which is the
// contract that lets the network's activity scheduler skip this router
// without changing results (see TestIdleCycleIsPure).
func (r *Router) HasRoutableWork() bool { return r.readyVCs > 0 }

// RoutableVCs returns the number of input VCs with a routable head (test
// and diagnostics hook for the activity-tracking counter).
func (r *Router) RoutableVCs() int { return r.readyVCs }

// CanonicalOccupancy returns the fraction of this router's canonical input
// buffering that is currently occupied — the congestion signal used by the
// injection throttle.
func (r *Router) CanonicalOccupancy() float64 {
	if r.capPhits == 0 {
		return 0
	}
	return float64(r.occPhits) / float64(r.capPhits)
}

// QueuedPhits returns the total phits stored in this router's input buffers
// (used by drain checks and conservation tests).
func (r *Router) QueuedPhits() int {
	total := 0
	for i := range r.In {
		for vc := range r.In[i].VCs {
			total += r.In[i].VCs[vc].Occupied()
		}
	}
	return total
}

// CheckCredits verifies that every output port's missing credits equal the
// downstream buffer occupancy plus in-flight phits accounted by the caller.
// It is used by integration tests; inFlight maps (router,port,vc) → phits.
func (r *Router) CheckCredits(routers []*Router, inFlight func(router, port, vc int) int) error {
	for po := range r.Out {
		op := &r.Out[po]
		if op.Kind == topology.PortNode || op.Kind == topology.PortNone {
			continue
		}
		if op.dead {
			continue // frozen by a fault; never consulted again
		}
		peer := routers[op.Peer]
		for vc := range op.credits {
			missing := op.vcCap[vc] - op.credits[vc]
			down := peer.In[op.PeerPort].VCs[vc].Occupied()
			fl := inFlight(r.ID, po, vc)
			if missing != down+fl {
				return fmt.Errorf("router %d port %d vc %d: missing=%d downstream=%d inflight=%d",
					r.ID, po, vc, missing, down, fl)
			}
		}
	}
	return nil
}

// StateFingerprint folds every piece of router state that a Cycle call may
// mutate — the private RNG stream, the arbiter LRS memories, buffer contents
// and drain state, port serialization deadlines and the occupancy counters —
// into one FNV-1a hash. Tests compare fingerprints across a Cycle call on an
// idle router to prove the call had no side effects (the contract the
// network's activity scheduler relies on). The request scratch slots and the
// grants slice are deliberately excluded: both are reset at the top of every
// Cycle before being read, so stale contents are unobservable.
func (r *Router) StateFingerprint() uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	mixb := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	for _, s := range r.rng.State() {
		mix(s)
	}
	for i := range r.inArb {
		for _, t := range r.inArb[i].lastServed {
			mix(uint64(t))
		}
		for _, t := range r.outArb[i].lastServed {
			mix(uint64(t))
		}
	}
	mix(uint64(r.occPhits))
	mix(uint64(r.readyVCs))
	mixb(r.pbDirty)
	for i := range r.In {
		inp := &r.In[i]
		mix(uint64(inp.busyUntil))
		for vc := range inp.VCs {
			buf := &inp.VCs[vc]
			mix(uint64(buf.Len()))
			mix(uint64(buf.Occupied()))
			mixb(buf.Draining())
		}
		op := &r.Out[i]
		mix(uint64(op.busyUntil))
		mixb(op.dead)
		for vc := range op.credits {
			mix(uint64(op.credits[vc]))
		}
	}
	return h
}

// --- per-cycle routing + switch allocation -----------------------------------

// Cycle runs routing decisions for all routable buffer heads and performs
// the iterative separable switch allocation, committing the winners. It
// returns the cycle's grants; the returned slice is reused next cycle.
func (r *Router) Cycle(engine Engine, now int64) []Grant {
	// Clear the match state left by the previous cycle. Each grant set
	// exactly one matchedIn and one matchedOut entry, so last cycle's grant
	// list enumerates every set bit — no full-slice wipe needed.
	for i := range r.grants {
		g := &r.grants[i]
		r.matchedIn[g.InPort] = false
		r.matchedOut[g.Req.Out] = false
	}
	r.grants = r.grants[:0]
	anyReq := false
	for ip := range r.In {
		inp := &r.In[ip]
		base := int(r.vcBase[ip])
		busy := inp.Busy(now)
		for vc := range inp.VCs {
			slot := &r.reqs[base+vc]
			slot.valid = false
			if busy {
				continue
			}
			buf := &inp.VCs[vc]
			if buf.Draining() || buf.Len() == 0 {
				continue
			}
			p := buf.Head()
			if p.BlockedSince < 0 {
				p.BlockedSince = now
			}
			req, ok := engine.Route(r, InCtx{
				Port: ip, VC: vc, Kind: inp.Kind,
				Escape: buf.Escape, Ring: int(buf.Ring),
			}, p, now)
			if !ok {
				continue
			}
			slot.valid = true
			slot.r = req
			anyReq = true
		}
	}
	if !anyReq {
		return r.grants
	}

	for iter := 0; iter < r.AllocIters; iter++ {
		// Input arbitration: each unmatched input port nominates its
		// least-recently-served VC whose requested output is still free.
		r.touchedOut = r.touchedOut[:0]
		progress := false
		for ip := range r.In {
			if r.matchedIn[ip] || r.In[ip].Busy(now) {
				continue
			}
			base := int(r.vcBase[ip])
			n := len(r.In[ip].VCs)
			arb := r.inArb[ip].lastServed
			best := -1
			var bestT int64
			for vc := 0; vc < n; vc++ {
				s := &r.reqs[base+vc]
				if !s.valid {
					continue
				}
				if r.matchedOut[s.r.Out] || r.Out[s.r.Out].Busy(now) {
					continue
				}
				if best == -1 || arb[vc] < bestT {
					best, bestT = vc, arb[vc]
				}
			}
			if best < 0 {
				continue
			}
			out := r.reqs[base+best].r.Out
			r.candVC[ip] = int32(best)
			if len(r.outCand[out]) == 0 {
				r.touchedOut = append(r.touchedOut, int32(out))
			}
			r.outCand[out] = append(r.outCand[out], int32(ip))
			progress = true
		}
		if !progress {
			break
		}
		// Output arbitration: each free output grants its least-recently-
		// served requesting input.
		granted := false
		for _, out32 := range r.touchedOut {
			op := int(out32)
			list := r.outCand[op]
			r.outCand[op] = list[:0]
			if r.matchedOut[op] {
				continue
			}
			arb := r.outArb[op].lastServed
			best := -1
			var bestT int64
			for _, ip32 := range list {
				ip := int(ip32)
				if arb[ip] < bestT || best == -1 {
					best, bestT = ip, arb[ip]
				}
			}
			if best < 0 {
				continue
			}
			vc := int(r.candVC[best])
			r.matchedIn[best] = true
			r.matchedOut[op] = true
			r.inArb[best].Grant(vc, now)
			r.outArb[op].Grant(best, now)
			r.commit(best, vc, r.reqs[int(r.vcBase[best])+vc].r, now)
			granted = true
		}
		if !granted {
			break
		}
	}
	return r.grants
}

// commit applies one allocation winner: the buffer starts draining, ports
// serialize for the packet duration, credits are consumed, and the request's
// header side effects are applied.
func (r *Router) commit(ip, vc int, req Request, now int64) {
	inp := &r.In[ip]
	buf := &inp.VCs[vc]
	p := buf.Head()
	buf.BeginDrain()
	r.readyVCs-- // the head drains; anything queued behind it must wait
	size := int64(p.Size)
	inp.busyUntil = now + size
	out := &r.Out[req.Out]
	out.busyUntil = now + size
	eject := out.Kind == topology.PortNode
	if !eject {
		out.Take(req.VC, p.Size)
		if r.pb != nil && out.Kind == topology.PortGlobal {
			r.pbDirty = true
		}
	}
	if req.SetGlobalMis {
		p.GlobalMisrouted = true
	}
	if req.SetLocalMis {
		p.LocalMisrouted = true
		p.MisrouteGroup = r.Group
	}
	if req.EnterRing {
		p.OnRing = true
		p.Ring = req.Ring
	}
	if req.ExitRing {
		p.OnRing = false
		p.Ring = -1
		p.RingExits++
	}
	p.BlockedSince = -1
	r.grants = append(r.grants, Grant{InPort: ip, InVC: vc, Req: req, Pkt: p, Eject: eject})
}
