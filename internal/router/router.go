package router

import (
	"fmt"
	"math"
	"math/bits"

	"ofar/internal/packet"
	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// PortSpec describes one bidirectional port pair of a router: the input
// buffer profile (what this router stores) and the output credit profile
// (mirroring the downstream input buffer at the other end of the link).
type PortSpec struct {
	Kind     topology.PortKind
	Peer     int // downstream router fed by this port's output; -1 when unwired
	PeerPort int // downstream router's input-port index
	// UpRouter/UpPort identify the upstream output feeding this port's
	// input buffer. For canonical bidirectional links these equal
	// Peer/PeerPort; unidirectional escape-ring ports differ (the input
	// comes from the ring predecessor while the output feeds the
	// successor).
	UpRouter int
	UpPort   int
	Latency  int // link latency in cycles

	InCaps  []int // per-VC capacities of this router's input buffer (phits)
	InRing  []int // escape-ring tag per input VC (-1 canonical)
	OutCaps []int // per-VC capacities of the downstream buffer (credits)
	OutRing []int // escape-ring tag per downstream VC
}

// Params configures one router instance.
type Params struct {
	ID         int
	Topo       *topology.Dragonfly
	PktSize    int
	AllocIters int // separable-allocator iterations (paper: 3)
	RNG        *simcore.RNG
	Ports      []PortSpec

	// Escape subnetwork: output port realizing each ring's next hop
	// (empty when no escape network is configured).
	RingOuts []int

	// PB piggybacking board shared by the router's group (nil when the
	// routing mechanism does not use it).
	PB          *FlagBoard
	PBThreshold float64

	// Arena, when non-nil, backs every slice the router allocates (ports,
	// VC buffers, queue backings, arbiter rows, allocator scratch, cache
	// masks). The network hands all routers of one dragonfly group the same
	// arena so a group's hot state is contiguous; nil keeps plain make.
	Arena *Arena
}

// Router is one input-buffered VCT router.
type Router struct {
	ID    int
	Group int
	Topo  *topology.Dragonfly

	In  []InPort
	Out []OutPort

	PktSize    int
	AllocIters int

	rng         *simcore.RNG
	pb          *FlagBoard
	pbThreshold float64

	ringOuts []int32

	// canonical input-buffer occupancy, tracked incrementally for the
	// congestion-management injection throttle.
	occPhits int
	capPhits int

	// readyVCs counts input VCs holding a routable head: non-empty and not
	// draining. It is maintained incrementally by Arrive/Inject/commit/
	// FinishDrain and is the network activity scheduler's wake predicate —
	// when it is zero, Cycle provably has no side effects (no engine.Route
	// call, no RNG draw, no arbiter movement, no header writes), so the
	// router may be skipped without perturbing the simulation. readyPorts is
	// the port-level projection (bit ip set iff In[ip].ready != 0), kept at
	// the same sites, so Cycle iterates only ports that can hold work.
	readyVCs   int
	readyPorts uint64

	// pbDirty is set whenever the canonical occupancy of a global output
	// port may have changed (credits taken or refunded), i.e. whenever the
	// PB flags this router publishes could differ from their last published
	// values. The network republishes only dirty routers.
	pbDirty bool

	// allocator scratch state (reused every cycle). Request validity and the
	// separable-allocator match state live in bitsets: reqMask[ip] holds the
	// valid-request VC mask of input port ip (rebuilt from scratch each
	// cycle), outCandMask[op] the candidate input-port mask of output port op
	// (cleared as it is consumed). The flattened reqs slots are never
	// cleared — a slot is only read when its reqMask bit is set this cycle,
	// and only a re-evaluation of that (port, vc) writes it, which is what
	// lets route-cache hits skip the write entirely.
	inArb       []LRS
	outArb      []LRS
	reqs        []Request
	reqMask     []uint64
	vcBase      []int32
	candVC      []int32
	outCandMask []uint64
	touchedOut  []int32 // outputs with candidates, in first-touch order
	grants      []Grant

	// Route-cache state (EnableRouteCache). dirty accumulates a bit per
	// output port whose engine-visible state changed since the last
	// formation pass captured it: credits taken (commit) or refunded
	// (AddCredit), busy→free expiry (the nextFree scan at the top of Cycle),
	// link death (FailOutput), ring-edge removal (FailRing) and structural
	// credit surgery (NoteOutMutated). Cycle drains dirty into the cycle's
	// invalidation window; a cached decision is stale iff its read-set mask
	// intersects the window. Live cache entries are re-validated every Cycle
	// (an entry's VC has its ready bit set by definition), with two gaps
	// both covered: a busy input port's entries are skipped for the busy
	// span, so the skipped windows accumulate in pendingDirty[ip]; a
	// sleeping router runs no Cycle at all, so dirty itself accumulates
	// until the next wake captures the union. rngDraws counts RandInt calls:
	// a decision that consumed randomness is never cached, which is what
	// makes replaying a cached decision deterministic.
	cacheOn      bool
	dirty        uint64
	pendingDirty []uint64
	nextFree     int64 // earliest future busy→free transition; MaxInt64 if none
	rngDraws     uint64

	// Port-level formation memo, layered on the per-VC entries: when every
	// ready VC of an input port holds a valid cache entry, the port's whole
	// formation outcome (its request mask) is stored together with the OR of
	// the entries' read sets (portDep), the min of their expiries (portExp)
	// and a formed bit. A later cycle whose dirty window misses portDep, with
	// no head change on the port (headChanged) and no expiry reached, replays
	// the stored mask without touching a single buffer — each per-VC check
	// would have hit with the same outcome, so replay ≡ recompute.
	formed      uint64
	headChanged uint64
	portDep     []uint64
	portExp     []int64
	portReqM    []uint64

	// outBusy mirrors "Out[o].busyUntil > now" under cacheOn: commit sets a
	// port's bit, the nextFree expiry scan clears crossed bits. It lets the
	// scan walk only busy ports and turns the allocator's available-output
	// rebuild into a complement (allOut is the all-ports mask).
	outBusy uint64
	allOut  uint64

	// arena backs late slice allocations (EnableRouteCache) with the same
	// group slab the constructor used; nil for bare test routers.
	arena *Arena

	// prefetchSink absorbs the head-prefetch pass's reads (see Cycle) so the
	// compiler cannot elide them. Write-only scratch: never read, never
	// fingerprinted, never serialized.
	prefetchSink int64
}

// New builds a router from its parameter block.
func New(p Params) *Router {
	r := new(Router)
	NewInto(r, p)
	return r
}

// NewInto initializes a router in place. The network uses it to construct
// all routers of a group into one contiguous []Router slab (with p.Arena
// backing their slices), so the group's entire working set — the Router
// structs and everything they point at — is carved from a few large
// allocations in iteration order.
func NewInto(r *Router, p Params) {
	ar := p.Arena
	*r = Router{
		ID:          p.ID,
		Group:       p.Topo.GroupOf(p.ID),
		Topo:        p.Topo,
		PktSize:     p.PktSize,
		AllocIters:  p.AllocIters,
		rng:         p.RNG,
		pb:          p.PB,
		pbThreshold: p.PBThreshold,
		arena:       ar,
	}
	if r.AllocIters < 1 {
		r.AllocIters = 1
	}
	n := len(p.Ports)
	r.In = ar.InPorts(n)
	r.Out = ar.OutPorts(n)
	r.inArb = ar.LRSs(n)
	r.outArb = ar.LRSs(n)
	r.vcBase = ar.Int32s(n + 1)
	r.candVC = ar.Int32s(n)
	r.reqMask = ar.Uint64s(n)
	r.outCandMask = ar.Uint64s(n)
	total := 0
	for i, ps := range p.Ports {
		r.vcBase[i] = int32(total)
		in := &r.In[i]
		in.Kind = ps.Kind
		in.UpRouter, in.UpPort = ps.UpRouter, ps.UpPort
		if ps.Kind == topology.PortNode {
			in.UpRouter, in.UpPort = -1, -1
		}
		in.VCs = ar.VCBuffers(len(ps.InCaps))
		for vc := range in.VCs {
			ring := -1
			if ps.InRing != nil {
				ring = ps.InRing[vc]
			}
			buf := &in.VCs[vc]
			// Pre-carve the queue backing at the worst-case live length
			// (Capacity/PktSize packets plus the compaction-deferred popped
			// prefix, which FinishDrain bounds at one more live length): the
			// steady state then never appends past the arena cap.
			maxPkts := 1
			if p.PktSize > 0 {
				maxPkts = ps.InCaps[vc]/p.PktSize + 1
			}
			buf.q = ar.PacketSlots(2*maxPkts + 2)
			buf.Init(ps.InCaps[vc], ring)
			if ring < 0 {
				r.capPhits += ps.InCaps[vc]
			}
		}
		out := &r.Out[i]
		out.Kind = ps.Kind
		out.Peer, out.PeerPort = ps.Peer, ps.PeerPort
		if ps.Kind == topology.PortNode {
			out.Peer, out.PeerPort = -1, -1
		}
		out.Latency = ps.Latency
		ringTags := make([]int8, len(ps.OutCaps))
		for vc := range ringTags {
			ringTags[vc] = -1
			if ps.OutRing != nil {
				ringTags[vc] = int8(ps.OutRing[vc])
			}
		}
		out.initOut(ar, ps.OutCaps, ringTags)
		r.inArb[i].initLRS(ar, len(ps.InCaps))
		r.outArb[i].initLRS(ar, n)
		total += len(ps.InCaps)
	}
	r.vcBase[n] = int32(total)
	r.reqs = ar.Requests(total)
	r.ringOuts = ar.Int32s(len(p.RingOuts))
	for i, po := range p.RingOuts {
		r.ringOuts[i] = int32(po)
	}
}

// --- engine-facing helpers ---------------------------------------------------

// RandInt returns a uniform integer in [0,n) from the router's private RNG.
// The draw counter lets Cycle detect decisions that consumed randomness and
// refuse to cache them.
func (r *Router) RandInt(n int) int {
	r.rngDraws++
	return r.rng.Intn(n)
}

// EnableRouteCache turns on dirty-mask-invalidated route memoization. The
// network calls it once, after construction, when the routing engine
// implements CacheableEngine and the config allows caching. Runs are
// bit-identical with the cache on or off (see TestRouteCacheDifferential);
// the cache only skips recomputation of decisions whose inputs provably did
// not change.
func (r *Router) EnableRouteCache() {
	if len(r.Out) > 64 {
		panic("router: route cache requires <= 64 ports (enforced by config validation)")
	}
	r.cacheOn = true
	r.pendingDirty = r.arena.Uint64s(len(r.In))
	r.portDep = r.arena.Uint64s(len(r.In))
	r.portExp = r.arena.Int64s(len(r.In))
	r.portReqM = r.arena.Uint64s(len(r.In))
	r.allOut = ^uint64(0) >> uint(64-len(r.Out))
	r.nextFree = math.MaxInt64
}

// NoteOutMutated records that an output port's credit or peer state was
// rewritten outside the normal commit/refund paths (escape-ring splice
// surgery). Cached decisions that read the port are invalidated.
func (r *Router) NoteOutMutated(port int) {
	if r.cacheOn {
		r.dirty |= 1 << uint(port)
	}
}

// OutBusy reports whether an output port is serializing a previous packet.
func (r *Router) OutBusy(port int, now int64) bool { return r.Out[port].Busy(now) }

// OutOcc returns the canonical occupancy fraction of the downstream buffer.
func (r *Router) OutOcc(port int) float64 { return r.Out[port].Occupancy() }

// OutOccVC returns the occupancy fraction of one downstream VC.
func (r *Router) OutOccVC(port, vc int) float64 {
	op := &r.Out[port]
	if cap := op.VCCap(vc); cap > 0 {
		return 1 - float64(op.Credits(vc))/float64(cap)
	}
	return 0
}

// Avail reports whether output `port` can accept a packet of `size` phits
// right now, returning the canonical VC to use (the one with most credits).
func (r *Router) Avail(port, size int, now int64) (int, bool) {
	op := &r.Out[port]
	if op.Kind == topology.PortNone || op.Busy(now) {
		return -1, false
	}
	if op.Kind == topology.PortNode {
		return 0, true // ejection has no credit constraint
	}
	return op.bestCanonicalVC(size)
}

// VCFits reports whether a specific downstream VC has credits for size phits
// (ejection ports always fit). Dead ports never fit: frozen credits would
// otherwise keep looking available forever.
func (r *Router) VCFits(port, vc, size int) bool {
	op := &r.Out[port]
	if op.dead {
		return false
	}
	if op.Kind == topology.PortNode {
		return true
	}
	return op.Credits(vc) >= size
}

// FailOutput marks one output port's link as failed: the port becomes
// permanently busy and is never granted again. PB flags of a dead global
// link must republish as congested, so the router is marked dirty.
func (r *Router) FailOutput(port int) {
	r.Out[port].Fail()
	if r.cacheOn {
		r.dirty |= 1 << uint(port)
	}
	if r.pb != nil && r.Out[port].Kind == topology.PortGlobal {
		r.pbDirty = true
	}
}

// OutputDead reports whether an output port's link has failed.
func (r *Router) OutputDead(port int) bool {
	return port >= 0 && port < len(r.Out) && r.Out[port].dead
}

// DropBuffered discards every packet buffered in this router's input VCs,
// except heads that already won allocation and are draining (their phits are
// on the crossbar; the pending FinishDrain completes them). Routable heads
// that are dropped decrement the activity counter. Used when the whole
// router fails.
func (r *Router) DropBuffered(visit func(*packet.Packet)) {
	for i := range r.In {
		for vc := range r.In[i].VCs {
			buf := &r.In[i].VCs[vc]
			if buf.Len() > 0 && !buf.Draining() {
				r.readyVCs-- // the routable head is among the dropped
				r.In[i].ready &^= 1 << uint(vc)
			}
			before := buf.Occupied()
			buf.DropQueued(visit)
			if !buf.Escape {
				r.occPhits -= before - buf.Occupied()
			}
		}
		if r.In[i].ready == 0 {
			r.readyPorts &^= 1 << uint(i)
		}
		r.headChanged |= 1 << uint(i)
	}
}

// NumRings returns the number of escape rings configured on this router.
func (r *Router) NumRings() int { return len(r.ringOuts) }

// RingOut returns the output port and escape VC continuing ring `ring` from
// this router, along with that VC's current credits. A failed ring edge
// (FailRing) reports ok == false.
func (r *Router) RingOut(ring int) (port, vc, credits int, ok bool) {
	if ring < 0 || ring >= len(r.ringOuts) {
		return -1, -1, 0, false
	}
	port = int(r.ringOuts[ring])
	if port < 0 {
		return -1, -1, 0, false
	}
	op := &r.Out[port]
	vc, ok = op.bestEscapeVC(ring)
	if !ok {
		return -1, -1, 0, false
	}
	return port, vc, op.Credits(vc), true
}

// FailRing marks this router's outgoing edge of the given escape ring as
// failed (§VII reliability discussion): the ring can no longer be entered
// or continued from here. Packets already queued on the ring upstream exit
// through canonical outputs as usual.
func (r *Router) FailRing(ring int) {
	if ring >= 0 && ring < len(r.ringOuts) {
		if po := r.ringOuts[ring]; po >= 0 && r.cacheOn {
			r.dirty |= 1 << uint(po) // cached RingOut reads of this port are stale
		}
		r.ringOuts[ring] = -1
	}
}

// PBFlag returns the delayed piggybacked congestion flag of group-link
// `link` (0..a·h-1) as seen at cycle now.
func (r *Router) PBFlag(link int, now int64) bool {
	if r.pb == nil {
		return false
	}
	return r.pb.Get(now, link)
}

// UpdatePBFlags publishes the congestion state of this router's own global
// links to the group's flag board. The board stores transitions, so calling
// this only after a credit movement on a global port (see PBDirty) yields
// exactly the same reader-visible flag sequence as calling it every cycle.
func (r *Router) UpdatePBFlags(now int64) {
	if r.pb == nil {
		return
	}
	base := r.Topo.GlobalPortBase()
	rl := r.Topo.LocalIndex(r.ID)
	for k := 0; k < r.Topo.H; k++ {
		op := &r.Out[base+k]
		if op.Kind == topology.PortNone {
			continue
		}
		r.pb.Set(now, rl*r.Topo.H+k, op.dead || op.Occupancy() >= r.pbThreshold)
	}
	r.pbDirty = false
}

// PBDirty reports whether a global output port's occupancy may have changed
// since the last UpdatePBFlags, i.e. whether the router's published PB flags
// could be stale.
func (r *Router) PBDirty() bool { return r.pbDirty }

// --- event-side interface (driven by the network) ---------------------------

// Arrive stores a packet arriving on (port, vc) and updates its header: hop
// counters, per-group flag lifetimes and Valiant-group completion.
func (r *Router) Arrive(port, vc int, p *packet.Packet) {
	inp := &r.In[port]
	buf := &inp.VCs[vc]
	if buf.Len() == 0 && !buf.Draining() {
		r.readyVCs++ // empty → head becomes routable
		inp.ready |= 1 << uint(vc)
		r.readyPorts |= 1 << uint(port)
		r.headChanged |= 1 << uint(port)
	}
	buf.Push(p)
	if !buf.Escape {
		r.occPhits += p.Size
	}
	p.TotalHops++
	if buf.Escape {
		p.RingHops++
	} else {
		switch inp.Kind {
		case topology.PortLocal:
			p.LocalHops++
		case topology.PortGlobal:
			p.GlobalHops++
		}
	}
	p.EnterGroup(r.Group)
	p.BlockedSince = -1
}

// FinishDrain completes the transfer of the head packet of (port, vc),
// freeing its buffer space. It returns the packet and the upstream output
// coordinates that must be refunded (upRouter == -1 for injection buffers).
func (r *Router) FinishDrain(port, vc int) (p *packet.Packet, upRouter, upPort int) {
	inp := &r.In[port]
	buf := &inp.VCs[vc]
	p = buf.FinishDrain()
	if buf.Len() > 0 {
		r.readyVCs++ // the queued packet behind the drained head is now routable
		inp.ready |= 1 << uint(vc)
		r.readyPorts |= 1 << uint(port)
		r.headChanged |= 1 << uint(port)
	}
	if !buf.Escape {
		r.occPhits -= p.Size
	}
	return p, inp.UpRouter, inp.UpPort
}

// AddCredit refunds credits on an output port (a downstream buffer freed
// space).
func (r *Router) AddCredit(port, vc, phits int) {
	r.Out[port].Refund(vc, phits)
	if r.cacheOn {
		r.dirty |= 1 << uint(port)
	}
	if r.pb != nil && r.Out[port].Kind == topology.PortGlobal {
		r.pbDirty = true
	}
}

// InjectionSpace returns the injection VC of node-slot port `port` with the
// most free space, if any fits a packet of `size` phits.
func (r *Router) InjectionSpace(port, size int) (vc int, ok bool) {
	inp := &r.In[port]
	best, bestFree := -1, -1
	for i := range inp.VCs {
		if f := inp.VCs[i].Free(); f >= size && f > bestFree {
			best, bestFree = i, f
		}
	}
	return best, best >= 0
}

// Inject places a freshly generated packet into injection buffer (port, vc).
func (r *Router) Inject(port, vc int, p *packet.Packet, now int64) {
	p.Injected = now
	inp := &r.In[port]
	buf := &inp.VCs[vc]
	if buf.Len() == 0 && !buf.Draining() {
		r.readyVCs++
		inp.ready |= 1 << uint(vc)
		r.readyPorts |= 1 << uint(port)
		r.headChanged |= 1 << uint(port)
	}
	buf.Push(p)
	r.occPhits += p.Size
}

// HasRoutableWork reports whether any input VC holds a routable head (non-
// empty, not draining). When false, Cycle is a guaranteed no-op — it calls
// no engine, draws no randomness and moves no arbiter state — which is the
// contract that lets the network's activity scheduler skip this router
// without changing results (see TestIdleCycleIsPure).
func (r *Router) HasRoutableWork() bool { return r.readyVCs > 0 }

// RoutableVCs returns the number of input VCs with a routable head (test
// and diagnostics hook for the activity-tracking counter).
func (r *Router) RoutableVCs() int { return r.readyVCs }

// CanonicalOccupancy returns the fraction of this router's canonical input
// buffering that is currently occupied — the congestion signal used by the
// injection throttle.
func (r *Router) CanonicalOccupancy() float64 {
	if r.capPhits == 0 {
		return 0
	}
	return float64(r.occPhits) / float64(r.capPhits)
}

// QueuedPhits returns the total phits stored in this router's input buffers
// (used by drain checks and conservation tests).
func (r *Router) QueuedPhits() int {
	total := 0
	for i := range r.In {
		for vc := range r.In[i].VCs {
			total += r.In[i].VCs[vc].Occupied()
		}
	}
	return total
}

// CheckCredits verifies that every output port's missing credits equal the
// downstream buffer occupancy plus in-flight phits accounted by the caller.
// It is used by integration tests; inFlight maps (router,port,vc) → phits.
func (r *Router) CheckCredits(routers []*Router, inFlight func(router, port, vc int) int) error {
	for po := range r.Out {
		op := &r.Out[po]
		if op.Kind == topology.PortNode || op.Kind == topology.PortNone {
			continue
		}
		if op.dead {
			continue // frozen by a fault; never consulted again
		}
		peer := routers[op.Peer]
		for vc := range op.credits {
			missing := op.vcCap[vc] - op.credits[vc]
			down := peer.In[op.PeerPort].VCs[vc].Occupied()
			fl := inFlight(r.ID, po, vc)
			if missing != down+fl {
				return fmt.Errorf("router %d port %d vc %d: missing=%d downstream=%d inflight=%d",
					r.ID, po, vc, missing, down, fl)
			}
		}
	}
	return nil
}

// StateFingerprint folds every piece of router state that a Cycle call may
// mutate — the private RNG stream, the arbiter LRS memories, buffer contents
// and drain state, port serialization deadlines and the occupancy counters —
// into one FNV-1a hash. Tests compare fingerprints across a Cycle call on an
// idle router to prove the call had no side effects (the contract the
// network's activity scheduler relies on). The request scratch slots and the
// grants slice are deliberately excluded: both are reset at the top of every
// Cycle before being read, so stale contents are unobservable. The route
// cache (per-buffer entries, dirty/pendingDirty masks, nextFree, rngDraws) is
// excluded too:
// it is pure memoization of values recomputable from the fingerprinted state,
// and excluding it is what makes cache-on and cache-off runs — which are
// bit-identical by construction — report identical fingerprints.
func (r *Router) StateFingerprint() uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	mixb := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	for _, s := range r.rng.State() {
		mix(s)
	}
	for i := range r.inArb {
		for _, t := range r.inArb[i].lastServed {
			mix(uint64(t))
		}
		for _, t := range r.outArb[i].lastServed {
			mix(uint64(t))
		}
	}
	mix(uint64(r.occPhits))
	mix(uint64(r.readyVCs))
	mixb(r.pbDirty)
	for i := range r.In {
		inp := &r.In[i]
		mix(uint64(inp.busyUntil))
		for vc := range inp.VCs {
			buf := &inp.VCs[vc]
			mix(uint64(buf.Len()))
			mix(uint64(buf.Occupied()))
			mixb(buf.Draining())
		}
		op := &r.Out[i]
		mix(uint64(op.busyUntil))
		mixb(op.dead)
		for vc := range op.credits {
			mix(uint64(op.credits[vc]))
		}
	}
	return h
}

// --- per-cycle routing + switch allocation -----------------------------------

// Cycle runs routing decisions for all routable buffer heads and performs
// the iterative separable switch allocation, committing the winners. It
// returns the cycle's grants; the returned slice is reused next cycle.
//
// With the route cache enabled, a buffer head whose cached decision is still
// valid (read-set mask disjoint from the cycle's dirty window, expiry not
// reached) skips the engine entirely —
// including the Head() dereference and the BlockedSince stamp: a valid entry
// implies the head is the same packet that was evaluated when the entry was
// created, at which point BlockedSince was already set (it only resets when
// the packet wins allocation and drains, which invalidates the entry).
func (r *Router) Cycle(engine Engine, now int64) []Grant {
	var window uint64 // output ports dirtied since the last formation pass
	if r.cacheOn {
		if now >= r.nextFree {
			// One or more output ports crossed busy→free since the last scan;
			// mark them dirty (cached decisions that saw them busy are stale)
			// and find the next future transition. Commits keep nextFree a
			// lower bound on unexpired deadlines and outBusy a superset of
			// the busy ports, so no transition is ever missed.
			newNext := int64(math.MaxInt64)
			for m := r.outBusy; m != 0; m &= m - 1 {
				o := bits.TrailingZeros64(m)
				if bu := r.Out[o].busyUntil; bu > now {
					if bu < newNext {
						newNext = bu
					}
				} else {
					r.dirty |= 1 << uint(o)
					r.outBusy &^= 1 << uint(o)
				}
			}
			r.nextFree = newNext
		}
		window = r.dirty
		r.dirty = 0
	}
	r.grants = r.grants[:0]
	var ce CacheableEngine
	if r.cacheOn {
		ce = engine.(CacheableEngine)
	}
	if r.readyVCs > 2 {
		// Head-prefetch pass: touch the head packet of every ready VC that the
		// main loop below will actually dereference (same skip predicates,
		// evaluated read-only — pendingDirty is peeked, not consumed). The
		// main loop's head loads are dependent chains (port → buffer → q →
		// packet) into pool-recycled packets scattered across the heap, and at
		// saturation they are the single largest stall in the simulator; the
		// touches here are independent loads the CPU can overlap, so the main
		// loop re-walks warm cache lines. Reads only — decisions, RNG streams
		// and all digests are untouched; the sink write defeats dead-code
		// elimination.
		sink := int64(0)
		for pm := r.readyPorts; pm != 0; pm &= pm - 1 {
			ip := bits.TrailingZeros64(pm)
			inp := &r.In[ip]
			if inp.Busy(now) {
				continue
			}
			// The allocator reads this port's input-arbiter timestamps
			// whether its requests are routed fresh or replayed; touch the
			// row now so the LRS scans walk a warm line.
			if arb := r.inArb[ip].lastServed; len(arb) > 0 {
				sink += arb[0]
			}
			if r.cacheOn {
				d := window | r.pendingDirty[ip]
				fbit := uint64(1) << uint(ip)
				if r.formed&fbit != 0 && r.headChanged&fbit == 0 &&
					r.portDep[ip]&d == 0 && now < r.portExp[ip] {
					continue
				}
				for m := inp.ready; m != 0; m &= m - 1 {
					vc := bits.TrailingZeros64(m)
					buf := &inp.VCs[vc]
					if buf.cValid && now < buf.cExpire && buf.cMask&d == 0 {
						continue
					}
					sink += buf.q[buf.head].BlockedSince
					if buf.cMin >= 0 {
						// The engine's first read is the head's minimal output
						// (occupancy, busy state, credits); its header line is
						// another independent load worth overlapping.
						sink += int64(r.Out[buf.cMin].canCredits)
					}
				}
			} else {
				for m := inp.ready; m != 0; m &= m - 1 {
					vc := bits.TrailingZeros64(m)
					buf := &inp.VCs[vc]
					sink += buf.q[buf.head].BlockedSince
					if buf.cMin >= 0 {
						sink += int64(r.Out[buf.cMin].canCredits)
					}
				}
			}
		}
		r.prefetchSink = sink
	}
	var inPend uint64 // input ports with pending (unmatched) requests
	for pm := r.readyPorts; pm != 0; pm &= pm - 1 {
		ip := bits.TrailingZeros64(pm)
		inp := &r.In[ip]
		if inp.Busy(now) {
			if r.cacheOn {
				// This port's live entries miss the current window; bank it
				// so their next validation sees every skipped invalidation.
				r.pendingDirty[ip] |= window
			}
			continue
		}
		d := window
		fbit := uint64(1) << uint(ip)
		if r.cacheOn {
			if r.pendingDirty[ip] != 0 {
				d |= r.pendingDirty[ip]
				r.pendingDirty[ip] = 0
			}
			if r.formed&fbit != 0 && r.headChanged&fbit == 0 &&
				r.portDep[ip]&d == 0 && now < r.portExp[ip] {
				// Whole-port replay: every ready VC would hit with the same
				// outcome, so the stored request mask is the loop's result.
				if m := r.portReqM[ip]; m != 0 {
					r.reqMask[ip] = m
					inPend |= fbit
				}
				continue
			}
			r.headChanged &^= fbit
		}
		base := int(r.vcBase[ip])
		var reqM, depOr uint64
		minExp := int64(math.MaxInt64)
		cacheable := r.cacheOn
		for m := inp.ready; m != 0; m &= m - 1 {
			vc := bits.TrailingZeros64(m)
			buf := &inp.VCs[vc]
			if r.cacheOn && buf.cValid && now < buf.cExpire && buf.cMask&d == 0 {
				if buf.cOK { // replay: the reqs slot still holds the request
					reqM |= 1 << uint(vc)
				}
				depOr |= buf.cMask
				if buf.cExpire < minExp {
					minExp = buf.cExpire
				}
				continue
			}
			p := buf.Head()
			if p.BlockedSince < 0 {
				p.BlockedSince = now
			}
			in := InCtx{
				Port: ip, VC: vc, Kind: inp.Kind,
				Escape: buf.Escape, Ring: int(buf.Ring),
				MinHint: buf.cMin,
			}
			rngBefore := r.rngDraws
			req, ok := engine.Route(r, in, p, now)
			if r.cacheOn {
				mask, expire, minPort := ce.RouteDeps(r, in, p, now)
				buf.cMin = minPort // per-head anchor; survives invalidation
				if r.rngDraws == rngBefore {
					buf.cMask = mask
					buf.cExpire = expire
					buf.cOK = ok
					buf.cValid = true
					depOr |= mask
					if expire < minExp {
						minExp = expire
					}
				} else {
					// The decision consumed randomness; replaying it would
					// skip the draws and desynchronize the RNG stream.
					buf.cValid = false
					cacheable = false
				}
			}
			if ok {
				r.reqs[base+vc] = req
				reqM |= 1 << uint(vc)
			}
		}
		if cacheable {
			r.formed |= fbit
			r.portDep[ip] = depOr
			r.portExp[ip] = minExp
			r.portReqM[ip] = reqM
		} else {
			r.formed &^= fbit
		}
		if reqM != 0 {
			r.reqMask[ip] = reqM
			inPend |= 1 << uint(ip)
		}
	}
	if inPend == 0 {
		return r.grants
	}

	// outAvail starts as the non-busy outputs and loses each granted port,
	// which is exactly the old matchedOut ∪ Busy skip set: port busy state
	// only changes mid-cycle through grants. Under cacheOn the expiry scan
	// above has made outBusy exact for this cycle, so the rebuild is a
	// complement.
	var outAvail uint64
	if r.cacheOn {
		outAvail = ^r.outBusy & r.allOut
	} else {
		for op := range r.Out {
			if !r.Out[op].Busy(now) {
				outAvail |= 1 << uint(op)
			}
		}
	}
	for iter := 0; iter < r.AllocIters; iter++ {
		// Input arbitration: each unmatched input port nominates its
		// least-recently-served VC whose requested output is still free.
		r.touchedOut = r.touchedOut[:0]
		progress := false
		for pm := inPend; pm != 0; pm &= pm - 1 {
			ip := bits.TrailingZeros64(pm)
			base := int(r.vcBase[ip])
			arb := r.inArb[ip].lastServed
			best := -1
			var bestT int64
			for vm := r.reqMask[ip]; vm != 0; vm &= vm - 1 {
				vc := bits.TrailingZeros64(vm)
				if outAvail&(1<<uint(r.reqs[base+vc].Out)) == 0 {
					continue
				}
				if best == -1 || arb[vc] < bestT {
					best, bestT = vc, arb[vc]
				}
			}
			if best < 0 {
				continue
			}
			out := r.reqs[base+best].Out
			r.candVC[ip] = int32(best)
			if r.outCandMask[out] == 0 {
				r.touchedOut = append(r.touchedOut, int32(out))
			}
			r.outCandMask[out] |= 1 << uint(ip)
			progress = true
		}
		if !progress {
			break
		}
		// Output arbitration: each free output grants its least-recently-
		// served requesting input. touchedOut preserves first-touch order
		// (== the old candidate-list creation order), and ascending-bit
		// iteration of the candidate mask matches the old append order, so
		// grants commit in the exact same sequence.
		granted := false
		for _, out32 := range r.touchedOut {
			op := int(out32)
			cm := r.outCandMask[op]
			r.outCandMask[op] = 0
			if outAvail&(1<<uint(op)) == 0 {
				continue
			}
			arb := r.outArb[op].lastServed
			best := -1
			var bestT int64
			for ; cm != 0; cm &= cm - 1 {
				ip := bits.TrailingZeros64(cm)
				if arb[ip] < bestT || best == -1 {
					best, bestT = ip, arb[ip]
				}
			}
			if best < 0 {
				continue
			}
			vc := int(r.candVC[best])
			inPend &^= 1 << uint(best)
			outAvail &^= 1 << uint(op)
			r.inArb[best].Grant(vc, now)
			r.outArb[op].Grant(best, now)
			r.commit(best, vc, r.reqs[int(r.vcBase[best])+vc], now)
			granted = true
		}
		if !granted {
			break
		}
	}
	return r.grants
}

// commit applies one allocation winner: the buffer starts draining, ports
// serialize for the packet duration, credits are consumed, and the request's
// header side effects are applied.
func (r *Router) commit(ip, vc int, req Request, now int64) {
	inp := &r.In[ip]
	buf := &inp.VCs[vc]
	p := buf.Head()
	buf.BeginDrain()
	r.readyVCs-- // the head drains; anything queued behind it must wait
	inp.ready &^= 1 << uint(vc)
	if inp.ready == 0 {
		r.readyPorts &^= 1 << uint(ip)
	}
	size := int64(p.Size)
	inp.busyUntil = now + size
	out := &r.Out[req.Out]
	out.busyUntil = now + size
	if r.cacheOn {
		// Credits and/or busy status of the output changed (ejection still
		// goes busy), and the port will cross back to free at now+size.
		r.dirty |= 1 << uint(req.Out)
		r.outBusy |= 1 << uint(req.Out)
		if bu := now + size; bu < r.nextFree {
			r.nextFree = bu
		}
	}
	eject := out.Kind == topology.PortNode
	if !eject {
		out.Take(req.VC, p.Size)
		if r.pb != nil && out.Kind == topology.PortGlobal {
			r.pbDirty = true
		}
	}
	if req.SetGlobalMis {
		p.GlobalMisrouted = true
	}
	if req.SetLocalMis {
		p.LocalMisrouted = true
		p.MisrouteGroup = r.Group
	}
	if req.EnterRing {
		p.OnRing = true
		p.Ring = req.Ring
	}
	if req.ExitRing {
		p.OnRing = false
		p.Ring = -1
		p.RingExits++
	}
	p.BlockedSince = -1
	r.grants = append(r.grants, Grant{InPort: ip, InVC: vc, Req: req, Pkt: p, Eject: eject})
}
