package router

import (
	"testing"

	"ofar/internal/packet"
	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// BenchmarkCycleIdle measures the per-cycle cost of scanning a router whose
// buffers are empty — the dominant cost in lightly loaded simulations.
func BenchmarkCycleIdle(b *testing.B) {
	r := benchRouter(b, 25, 3)
	eng := scriptEngine{route: func(*Router, InCtx, *packet.Packet, int64) (Request, bool) {
		return Request{}, false
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Cycle(eng, int64(i))
	}
}

// BenchmarkCycleLoaded measures a fully loaded router: every input VC has a
// head packet requesting an output.
func BenchmarkCycleLoaded(b *testing.B) {
	r := benchRouter(b, 25, 3)
	var pool packet.Pool
	for ip := range r.In {
		for vc := range r.In[ip].VCs {
			p := pool.Get()
			p.Size = 8
			r.Arrive(ip, vc, p)
		}
	}
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		return Request{Out: (in.Port + 1) % len(rt.Out), VC: 0}, true
	}}
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		r.Cycle(eng, now)
		now += 8 // ports free again after one packet time
		// Recycle drained packets and credits so the router stays loaded.
		for ip := range r.In {
			for vc := range r.In[ip].VCs {
				buf := &r.In[ip].VCs[vc]
				if buf.Draining() {
					p, _, _ := r.FinishDrain(ip, vc)
					r.Arrive(ip, vc, p) // requeue at the tail
				}
			}
		}
		for op := range r.Out {
			for vc := 0; vc < r.Out[op].NumVCs(); vc++ {
				if miss := r.Out[op].VCCap(vc) - r.Out[op].Credits(vc); miss > 0 {
					r.Out[op].Refund(vc, miss)
				}
			}
		}
	}
}

func benchRouter(b *testing.B, ports, vcs int) *Router {
	b.Helper()
	d, err := topoForBench()
	if err != nil {
		b.Fatal(err)
	}
	caps := make([]int, vcs)
	rings := make([]int, vcs)
	for i := range caps {
		caps[i] = 64
		rings[i] = -1
	}
	specs := make([]PortSpec, ports)
	for i := range specs {
		specs[i] = PortSpec{
			Kind: topology.PortLocal, Peer: 1, PeerPort: 0, UpRouter: 1, UpPort: 0,
			Latency: 10, InCaps: caps, InRing: rings, OutCaps: caps, OutRing: rings,
		}
	}
	return New(Params{ID: 0, Topo: d, PktSize: 8, AllocIters: 3, RNG: benchRNG(), Ports: specs})
}

func topoForBench() (*topology.Dragonfly, error) { return topology.New(1, 2, 1, 0) }

func benchRNG() *simcore.RNG { return simcore.NewRNG(5) }
