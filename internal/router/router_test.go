package router

import (
	"testing"

	"ofar/internal/packet"
	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// scriptEngine lets tests drive routing decisions directly.
type scriptEngine struct {
	route func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool)
}

func (s scriptEngine) Name() string                               { return "script" }
func (s scriptEngine) AtInjection(*Router, *packet.Packet, int64) {}
func (s scriptEngine) Route(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
	return s.route(rt, in, p, now)
}

// testRouter builds a standalone router with 2 injection-style local input
// ports and 2 local output ports, 1 VC each, for allocator tests. The wiring
// fields point nowhere; only Cycle-level behavior is exercised.
func testRouter(t *testing.T, vcsPerPort int) *Router {
	t.Helper()
	d, err := topology.New(1, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int, vcsPerPort)
	rings := make([]int, vcsPerPort)
	for i := range caps {
		caps[i] = 64
		rings[i] = -1
	}
	mk := func() PortSpec {
		return PortSpec{
			Kind: topology.PortLocal, Peer: 1, PeerPort: 0, UpRouter: 1, UpPort: 0,
			Latency: 10, InCaps: caps, InRing: rings, OutCaps: caps, OutRing: rings,
		}
	}
	return New(Params{
		ID: 0, Topo: d, PktSize: 8, AllocIters: 3,
		RNG:   simcore.NewRNG(7),
		Ports: []PortSpec{mk(), mk(), mk()},
	})
}

func push(r *Router, port, vc int, pool *packet.Pool) *packet.Packet {
	p := pool.Get()
	p.Size = 8
	p.Dst = 0
	// Arrive, not a raw buffer Push: Cycle iterates the per-port ready
	// bitsets, which only the router's own entry points maintain.
	r.Arrive(port, vc, p)
	return p
}

// TestAllocatorSingleGrantPerOutput: two inputs requesting the same output
// yield exactly one grant per allocation, and over consecutive packet times
// both inputs get served (LRS fairness).
func TestAllocatorSingleGrantPerOutput(t *testing.T) {
	r := testRouter(t, 1)
	var pool packet.Pool
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		return Request{Out: 2, VC: 0}, true
	}}
	for i := 0; i < 4; i++ {
		push(r, 0, 0, &pool)
		push(r, 1, 0, &pool)
	}
	served := map[int]int{}
	for now := int64(0); now < 64; now++ {
		grants := r.Cycle(eng, now)
		if len(grants) > 1 {
			t.Fatalf("cycle %d: %d grants for one output", now, len(grants))
		}
		for _, g := range grants {
			served[g.InPort]++
		}
		// Complete drains when due so the next head becomes routable.
		for ip := range r.In {
			for vc := range r.In[ip].VCs {
				b := &r.In[ip].VCs[vc]
				if b.Draining() && !r.In[ip].Busy(now+1) {
					r.FinishDrain(ip, vc)
				}
			}
		}
	}
	if served[0] != 4 || served[1] != 4 {
		t.Errorf("served distribution %v, want 4/4", served)
	}
}

// TestAllocatorParallelGrants: requests to distinct outputs are granted in
// the same cycle.
func TestAllocatorParallelGrants(t *testing.T) {
	r := testRouter(t, 1)
	var pool packet.Pool
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		return Request{Out: in.Port, VC: 0}, true // input i -> output i
	}}
	push(r, 0, 0, &pool)
	push(r, 1, 0, &pool)
	push(r, 2, 0, &pool)
	grants := r.Cycle(eng, 0)
	if len(grants) != 3 {
		t.Fatalf("expected 3 parallel grants, got %d", len(grants))
	}
}

// TestAllocatorIterationsRecover: an input that loses output arbitration in
// iteration 1 re-requests through another VC in a later iteration. Input 0
// only wants out1; input 1 wants out1 (VC0) and out2 (VC1). With the
// tie-break favoring input 0 on out1, input 1 must recover via out2 —
// which only a multi-iteration separable allocator finds.
func TestAllocatorIterationsRecover(t *testing.T) {
	r := testRouter(t, 2)
	var pool packet.Pool
	want := map[[2]int]int{{0, 0}: 1, {1, 0}: 1, {1, 1}: 2}
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		out, ok := want[[2]int{in.Port, in.VC}]
		return Request{Out: out, VC: 0}, ok
	}}
	push(r, 0, 0, &pool)
	push(r, 1, 0, &pool)
	push(r, 1, 1, &pool)
	grants := r.Cycle(eng, 0)
	if len(grants) != 2 {
		t.Fatalf("expected 2 grants via iterative allocation, got %d", len(grants))
	}
	got := map[int]int{} // input -> output
	for _, g := range grants {
		got[g.InPort] = g.Req.Out
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("matching %v, want 0->1 and 1->2", got)
	}
}

// TestAllocatorMaximalNotMaximum documents the expected iSLIP-like behavior:
// when input 0 (winning ties) takes the only output input 1 wants, input 0's
// alternative VC request cannot also be served, so one grant is correct.
func TestAllocatorMaximalNotMaximum(t *testing.T) {
	r := testRouter(t, 2)
	var pool packet.Pool
	want := map[[2]int]int{{0, 0}: 2, {0, 1}: 1, {1, 0}: 2}
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		out, ok := want[[2]int{in.Port, in.VC}]
		return Request{Out: out, VC: 0}, ok
	}}
	push(r, 0, 0, &pool)
	push(r, 0, 1, &pool)
	push(r, 1, 0, &pool)
	grants := r.Cycle(eng, 0)
	if len(grants) != 1 || grants[0].Req.Out != 2 {
		t.Fatalf("expected the single out2 grant, got %+v", grants)
	}
}

// TestSerializationBlocksPort: after a grant, both the input port and the
// output port stay busy for packet-size cycles.
func TestSerializationBlocksPort(t *testing.T) {
	r := testRouter(t, 1)
	var pool packet.Pool
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		return Request{Out: 2, VC: 0}, true
	}}
	push(r, 0, 0, &pool)
	push(r, 1, 0, &pool)
	if g := r.Cycle(eng, 0); len(g) != 1 {
		t.Fatalf("grants=%d", len(g))
	}
	for now := int64(1); now < 8; now++ {
		if g := r.Cycle(eng, now); len(g) != 0 {
			t.Fatalf("cycle %d: output granted while serializing", now)
		}
	}
	// At cycle 8 the ports are free again (busyUntil = 8).
	if g := r.Cycle(eng, 8); len(g) != 1 {
		t.Fatal("no grant after serialization finished")
	}
}

// TestCommitConsumesCredits: winning a grant decrements downstream credits;
// AddCredit refunds them.
func TestCommitConsumesCredits(t *testing.T) {
	r := testRouter(t, 1)
	var pool packet.Pool
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		return Request{Out: 1, VC: 0}, true
	}}
	push(r, 0, 0, &pool)
	before := r.Out[1].Credits(0)
	if g := r.Cycle(eng, 0); len(g) != 1 {
		t.Fatal("no grant")
	}
	if got := r.Out[1].Credits(0); got != before-8 {
		t.Errorf("credits=%d want %d", got, before-8)
	}
	r.AddCredit(1, 0, 8)
	if got := r.Out[1].Credits(0); got != before {
		t.Errorf("after refund credits=%d want %d", got, before)
	}
}

// TestCommitAppliesHeaderFlags: misroute/ring request flags land on the
// packet only when the request wins.
func TestCommitAppliesHeaderFlags(t *testing.T) {
	r := testRouter(t, 1)
	var pool packet.Pool
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		return Request{Out: 1, VC: 0, SetGlobalMis: true, SetLocalMis: true}, true
	}}
	p := push(r, 0, 0, &pool)
	if p.GlobalMisrouted || p.LocalMisrouted {
		t.Fatal("flags set prematurely")
	}
	r.Cycle(eng, 0)
	if !p.GlobalMisrouted || !p.LocalMisrouted {
		t.Error("flags not applied on commit")
	}
	if p.MisrouteGroup != r.Group {
		t.Errorf("MisrouteGroup=%d want %d", p.MisrouteGroup, r.Group)
	}
	if p.BlockedSince != -1 {
		t.Error("BlockedSince not reset on commit")
	}
}

// TestBlockedSinceTracking: a head packet that cannot move records when it
// first blocked; the timestamp survives until it moves.
func TestBlockedSinceTracking(t *testing.T) {
	r := testRouter(t, 1)
	var pool packet.Pool
	refuse := true
	eng := scriptEngine{route: func(rt *Router, in InCtx, p *packet.Packet, now int64) (Request, bool) {
		if refuse {
			return Request{}, false
		}
		return Request{Out: 1, VC: 0}, true
	}}
	p := push(r, 0, 0, &pool)
	r.Cycle(eng, 5)
	if p.BlockedSince != 5 {
		t.Fatalf("BlockedSince=%d want 5", p.BlockedSince)
	}
	r.Cycle(eng, 6)
	if p.BlockedSince != 5 {
		t.Fatalf("BlockedSince overwritten: %d", p.BlockedSince)
	}
	refuse = false
	r.Cycle(eng, 7)
	if p.BlockedSince != -1 {
		t.Error("BlockedSince not cleared after grant")
	}
}

// TestArriveUpdatesHeader: hop counters, group-entry flag maintenance.
func TestArriveUpdatesHeader(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	caps := []int{32}
	ring := []int{-1}
	specs := make([]PortSpec, 3)
	specs[0] = PortSpec{Kind: topology.PortNode, Peer: -1, PeerPort: -1, UpRouter: -1, UpPort: -1, Latency: 1, InCaps: caps, InRing: ring, OutCaps: caps, OutRing: ring}
	specs[1] = PortSpec{Kind: topology.PortLocal, Peer: 1, PeerPort: 1, UpRouter: 1, UpPort: 1, Latency: 10, InCaps: caps, InRing: ring, OutCaps: caps, OutRing: ring}
	specs[2] = PortSpec{Kind: topology.PortGlobal, Peer: 8, PeerPort: 2, UpRouter: 8, UpPort: 2, Latency: 100, InCaps: caps, InRing: ring, OutCaps: caps, OutRing: ring}
	r := New(Params{ID: 0, Topo: d, PktSize: 8, AllocIters: 3, RNG: simcore.NewRNG(1), Ports: specs})

	var pool packet.Pool
	p := pool.Get()
	p.Size = 8
	p.LocalMisrouted = true
	p.MisrouteGroup = 5 // set in another group
	p.ValiantGroup = 0  // this router's group is the valiant target
	r.Arrive(1, 0, p)
	if p.LocalHops != 1 || p.GlobalHops != 0 || p.TotalHops != 1 {
		t.Errorf("hops after local arrive: %d/%d/%d", p.LocalHops, p.GlobalHops, p.TotalHops)
	}
	if p.LocalMisrouted {
		t.Error("local-misroute flag not reset on group change")
	}
	if p.ValiantGroup != -1 {
		t.Error("valiant group not cleared on arrival at the target group")
	}
	p2 := pool.Get()
	p2.Size = 8
	r.Arrive(2, 0, p2)
	if p2.GlobalHops != 1 || p2.LocalHops != 0 {
		t.Errorf("hops after global arrive: %d/%d", p2.LocalHops, p2.GlobalHops)
	}
}

func TestInjectionSpaceAndInject(t *testing.T) {
	d, _ := topology.New(1, 2, 1, 0)
	caps := []int{16, 16}
	ring := []int{-1, -1}
	spec := PortSpec{Kind: topology.PortNode, Peer: -1, PeerPort: -1, UpRouter: -1, UpPort: -1, Latency: 1, InCaps: caps, InRing: ring, OutCaps: []int{8}, OutRing: []int{-1}}
	r := New(Params{ID: 0, Topo: d, PktSize: 8, AllocIters: 1, RNG: simcore.NewRNG(1), Ports: []PortSpec{spec}})
	var pool packet.Pool
	for i := 0; i < 4; i++ {
		vc, ok := r.InjectionSpace(0, 8)
		if !ok {
			t.Fatalf("no injection space at %d", i)
		}
		p := pool.Get()
		p.Size = 8
		r.Inject(0, vc, p, int64(i))
		if p.Injected != int64(i) {
			t.Error("Injected timestamp not set")
		}
	}
	if _, ok := r.InjectionSpace(0, 8); ok {
		t.Error("injection space reported in full buffers")
	}
}

func TestRingOutSelection(t *testing.T) {
	d, _ := topology.New(1, 2, 1, 0)
	caps := []int{16, 32}
	ring := []int{-1, 0}
	spec := PortSpec{Kind: topology.PortLocal, Peer: 1, PeerPort: 0, UpRouter: 1, UpPort: 0, Latency: 10, InCaps: caps, InRing: ring, OutCaps: caps, OutRing: ring}
	r := New(Params{ID: 0, Topo: d, PktSize: 8, AllocIters: 1, RNG: simcore.NewRNG(1), Ports: []PortSpec{spec}, RingOuts: []int{0}})
	if r.NumRings() != 1 {
		t.Fatal("ring count")
	}
	port, vc, credits, ok := r.RingOut(0)
	if !ok || port != 0 || vc != 1 || credits != 32 {
		t.Fatalf("RingOut = %d,%d,%d,%v", port, vc, credits, ok)
	}
	if _, _, _, ok := r.RingOut(1); ok {
		t.Error("nonexistent ring reported")
	}
}

func TestUpdatePBFlags(t *testing.T) {
	d, _ := topology.New(1, 2, 1, 0) // ports: 1 node, 1 local, 1 global
	fb := NewFlagBoard(d.A*d.H, 0)
	caps := []int{32}
	ring := []int{-1}
	mk := func(kind topology.PortKind) PortSpec {
		return PortSpec{Kind: kind, Peer: 1, PeerPort: 0, UpRouter: 1, UpPort: 0, Latency: 1, InCaps: caps, InRing: ring, OutCaps: caps, OutRing: ring}
	}
	r := New(Params{ID: 0, Topo: d, PktSize: 8, AllocIters: 1, RNG: simcore.NewRNG(1),
		Ports: []PortSpec{mk(topology.PortNode), mk(topology.PortLocal), mk(topology.PortGlobal)},
		PB:    fb, PBThreshold: 0.5})
	r.UpdatePBFlags(0)
	if r.PBFlag(0, 0) {
		t.Error("uncongested link flagged")
	}
	r.Out[2].Take(0, 24) // 75% occupancy on the global port
	r.UpdatePBFlags(1)
	if !r.PBFlag(0, 1) {
		t.Error("congested link not flagged")
	}
}

func TestRouterAccessors(t *testing.T) {
	r := testRouter(t, 2)
	if v := r.RandInt(5); v < 0 || v >= 5 {
		t.Errorf("RandInt out of range: %d", v)
	}
	if r.OutBusy(1, 0) {
		t.Error("fresh port busy")
	}
	if r.OutOcc(1) != 0 {
		t.Error("fresh port occupied")
	}
	r.Out[1].Take(0, 32)
	if got := r.OutOccVC(1, 0); got != 0.5 {
		t.Errorf("OutOccVC=%f want 0.5", got)
	}
	if got := r.OutOcc(1); got != 0.25 {
		t.Errorf("OutOcc=%f want 0.25 (aggregate of 2 VCs)", got)
	}
	if vc, ok := r.Avail(1, 8, 0); !ok || vc != 1 {
		t.Errorf("Avail=(%d,%v)", vc, ok)
	}
	if !r.VCFits(1, 1, 8) || r.VCFits(1, 0, 33) {
		t.Error("VCFits wrong")
	}
	if r.QueuedPhits() != 0 {
		t.Error("phantom queued phits")
	}
	var pool packet.Pool
	push(r, 0, 0, &pool)
	if r.QueuedPhits() != 8 {
		t.Errorf("QueuedPhits=%d", r.QueuedPhits())
	}
	if r.PBFlag(0, 0) {
		t.Error("PBFlag without a board")
	}
}

func TestVCCapAndEscapeRingAccessors(t *testing.T) {
	var op OutPort
	op.initOut(nil, []int{16, 8}, []int8{-1, 1})
	if op.VCCap(0) != 16 || op.VCCap(1) != 8 {
		t.Error("VCCap")
	}
	if op.EscapeRing(0) != -1 || op.EscapeRing(1) != 1 {
		t.Error("EscapeRing")
	}
}
