package router

import (
	"math"

	"ofar/internal/packet"
	"ofar/internal/simcore"
)

// Snapshot support. EncodeState writes everything a Cycle call can mutate
// plus the structural fields that fault surgery rewrites mid-run (peer
// wiring, link latencies, dead flags, ring-out ports): a restored network
// must not replay faults to rebuild them. The route cache is deliberately
// NOT serialized — it is pure memoization, and DecodeState performs a
// cache-cold reset instead. Cache-on and cache-off runs are bit-identical
// by construction, so resuming cache-cold from a snapshot taken cache-warm
// continues the exact same trajectory.

const (
	maxSnapVCs     = 64      // mirrors config validation (≤64 VCs/ports)
	maxSnapPorts   = 64      //
	maxSnapQueue   = 1 << 24 // packets queued in one VC buffer
	maxBoardLinks  = 1 << 20
	maxBoardDelay  = 1 << 16
	maxSnapRings   = 1 << 16
	maxSnapLatency = 1 << 30
)

// Board returns the group-shared PB flag board, or nil when the routing
// mechanism does not use piggybacking. The network snapshot uses it to
// serialize each board exactly once per group.
func (r *Router) Board() *FlagBoard { return r.pb }

// ForEachPacket visits every packet stored in this router's input buffers,
// including draining heads. The network snapshot uses it to build the
// deduplicated packet table.
func (r *Router) ForEachPacket(f func(*packet.Packet)) {
	for i := range r.In {
		for vc := range r.In[i].VCs {
			buf := &r.In[i].VCs[vc]
			for j := buf.head; j < len(buf.q); j++ {
				f(buf.q[j])
			}
		}
	}
}

// EncodeState appends the router's full mutable state to e.
func (r *Router) EncodeState(e *simcore.Enc) {
	for _, s := range r.rng.State() {
		e.U64(s)
	}
	n := len(r.In)
	e.Int(n)
	for i := 0; i < n; i++ {
		e.Int(len(r.inArb[i].lastServed))
		for _, t := range r.inArb[i].lastServed {
			e.I64(t)
		}
		e.Int(len(r.outArb[i].lastServed))
		for _, t := range r.outArb[i].lastServed {
			e.I64(t)
		}
	}
	for i := range r.In {
		inp := &r.In[i]
		e.I64(inp.busyUntil)
		e.Int(inp.UpRouter)
		e.Int(inp.UpPort)
		e.Int(len(inp.VCs))
		for vc := range inp.VCs {
			buf := &inp.VCs[vc]
			e.Int(buf.Len())
			for j := buf.head; j < len(buf.q); j++ {
				e.U64(uint64(buf.q[j].ID))
			}
			e.Bool(buf.draining)
		}
	}
	for i := range r.Out {
		op := &r.Out[i]
		e.I64(op.busyUntil)
		e.Bool(op.dead)
		e.Int(op.Peer)
		e.Int(op.PeerPort)
		e.Int(op.Latency)
		e.Int(len(op.credits))
		for _, c := range op.credits {
			e.Int(c)
		}
	}
	e.Bool(r.pbDirty)
	e.Int(len(r.ringOuts))
	for _, po := range r.ringOuts {
		e.I64(int64(po))
	}
}

// DecodeState overwrites the router's mutable state from d. pkt resolves a
// packet ID to the restored packet instance (the network maintains the table
// so aliased references — a committed head also in flight as an arrival
// event — decode to one object). now is the restored simulation time, needed
// to rebuild the route cache's busy-port view. Derived state (occupancy,
// ready bitsets, canonical credit aggregates, the entire route cache) is
// recomputed, and the cache restarts cold.
func (r *Router) DecodeState(d *simcore.Dec, pkt func(id uint64) (*packet.Packet, error), now int64) error {
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	if d.Err() == nil {
		if err := r.rng.SetState(st); err != nil {
			d.Fail("router %d rng: %v", r.ID, err)
		}
	}
	n := d.Int()
	if d.Err() == nil && n != len(r.In) {
		d.Fail("router %d has %d ports, snapshot has %d", r.ID, len(r.In), n)
	}
	if d.Err() != nil {
		return d.Err()
	}
	for i := 0; i < n; i++ {
		if ln := d.Len(maxSnapVCs); d.Err() == nil && ln != len(r.inArb[i].lastServed) {
			d.Fail("router %d inArb[%d] sized %d, snapshot %d", r.ID, i, len(r.inArb[i].lastServed), ln)
		}
		for vc := range r.inArb[i].lastServed {
			r.inArb[i].lastServed[vc] = d.I64()
		}
		if ln := d.Len(maxSnapPorts); d.Err() == nil && ln != len(r.outArb[i].lastServed) {
			d.Fail("router %d outArb[%d] sized %d, snapshot %d", r.ID, i, len(r.outArb[i].lastServed), ln)
		}
		for ip := range r.outArb[i].lastServed {
			r.outArb[i].lastServed[ip] = d.I64()
		}
		if d.Err() != nil {
			return d.Err()
		}
	}
	r.occPhits = 0
	r.readyVCs = 0
	r.readyPorts = 0
	for i := range r.In {
		inp := &r.In[i]
		inp.busyUntil = d.I64()
		inp.UpRouter = d.Int()
		inp.UpPort = d.Int()
		if nv := d.Len(maxSnapVCs); d.Err() == nil && nv != len(inp.VCs) {
			d.Fail("router %d port %d has %d VCs, snapshot %d", r.ID, i, len(inp.VCs), nv)
		}
		inp.ready = 0
		for vc := range inp.VCs {
			buf := &inp.VCs[vc]
			nq := d.Len(maxSnapQueue)
			if d.Err() != nil {
				return d.Err()
			}
			buf.q = buf.q[:0]
			buf.head = 0
			buf.occupied = 0
			for j := 0; j < nq; j++ {
				p, err := pkt(d.U64())
				if d.Err() != nil {
					return d.Err()
				}
				if err != nil {
					d.Fail("router %d port %d vc %d: %v", r.ID, i, vc, err)
					return d.Err()
				}
				if buf.occupied+p.Size > buf.Capacity {
					d.Fail("router %d port %d vc %d overflows capacity %d", r.ID, i, vc, buf.Capacity)
					return d.Err()
				}
				buf.q = append(buf.q, p)
				buf.occupied += p.Size
			}
			buf.draining = d.Bool()
			if d.Err() == nil && buf.draining && len(buf.q) == 0 {
				d.Fail("router %d port %d vc %d draining while empty", r.ID, i, vc)
			}
			buf.invalidateCache()
			if !buf.Escape {
				r.occPhits += buf.occupied
			}
			if len(buf.q) > 0 && !buf.draining {
				r.readyVCs++
				inp.ready |= 1 << uint(vc)
			}
		}
		if inp.ready != 0 {
			r.readyPorts |= 1 << uint(i)
		}
		if d.Err() != nil {
			return d.Err()
		}
	}
	for i := range r.Out {
		op := &r.Out[i]
		op.busyUntil = d.I64()
		op.dead = d.Bool()
		op.Peer = d.Int()
		op.PeerPort = d.Int()
		op.Latency = d.Int()
		if d.Err() == nil && (op.Latency < 0 || op.Latency > maxSnapLatency) {
			d.Fail("router %d port %d latency %d out of range", r.ID, i, op.Latency)
		}
		if nv := d.Len(maxSnapVCs); d.Err() == nil && nv != len(op.credits) {
			d.Fail("router %d out port %d has %d VCs, snapshot %d", r.ID, i, len(op.credits), nv)
		}
		op.canCredits = 0
		for vc := range op.credits {
			c := d.Int()
			if d.Err() == nil && (c < 0 || c > op.vcCap[vc]) {
				d.Fail("router %d out port %d vc %d credits %d outside [0,%d]", r.ID, i, vc, c, op.vcCap[vc])
				return d.Err()
			}
			op.credits[vc] = c
			if op.escRing[vc] < 0 {
				op.canCredits += c
			}
		}
		if d.Err() != nil {
			return d.Err()
		}
	}
	r.pbDirty = d.Bool()
	if nr := d.Len(maxSnapRings); d.Err() == nil && nr != len(r.ringOuts) {
		d.Fail("router %d has %d ring outs, snapshot %d", r.ID, len(r.ringOuts), nr)
	}
	for i := range r.ringOuts {
		po := d.I64()
		if d.Err() == nil && (po < -1 || po >= int64(len(r.Out))) {
			d.Fail("router %d ring out %d = %d out of range", r.ID, i, po)
		}
		r.ringOuts[i] = int32(po)
	}
	if d.Err() != nil {
		return d.Err()
	}
	if r.cacheOn {
		// Cold restart of the memoization layer: no cached decisions, every
		// port treated as head-changed and every output as dirty, busy view
		// rebuilt from the restored serialization deadlines.
		r.formed = 0
		r.headChanged = ^uint64(0) >> uint(64-len(r.In))
		r.dirty = r.allOut
		for i := range r.pendingDirty {
			r.pendingDirty[i] = 0
		}
		r.rngDraws = 0
		r.outBusy = 0
		r.nextFree = math.MaxInt64
		for o := range r.Out {
			if bu := r.Out[o].busyUntil; bu > now {
				r.outBusy |= 1 << uint(o)
				if bu < r.nextFree {
					r.nextFree = bu
				}
			}
		}
	}
	return d.Err()
}

// EncodeState appends the board's full state to e.
func (fb *FlagBoard) EncodeState(e *simcore.Enc) {
	e.Int(fb.delay)
	e.Int(fb.links)
	for l := 0; l < fb.links; l++ {
		e.Bool(fb.cur[l])
		e.I64(fb.curAt[l])
	}
	for _, row := range fb.hist {
		for _, v := range row {
			e.Bool(v)
		}
	}
}

// DecodeState overwrites the board state from d. Geometry (links, delay)
// must match the board being restored into.
func (fb *FlagBoard) DecodeState(d *simcore.Dec) error {
	delay, links := d.Len(maxBoardDelay), d.Len(maxBoardLinks)
	if d.Err() == nil && (delay != fb.delay || links != fb.links) {
		d.Fail("flag board %d links/delay %d, snapshot %d/%d", fb.links, fb.delay, links, delay)
	}
	if d.Err() != nil {
		return d.Err()
	}
	for l := 0; l < fb.links; l++ {
		fb.cur[l] = d.Bool()
		fb.curAt[l] = d.I64()
	}
	for i := range fb.hist {
		for l := range fb.hist[i] {
			fb.hist[i][l] = d.Bool()
		}
	}
	return d.Err()
}
