package routing

import (
	"ofar/internal/packet"
	"ofar/internal/router"
	"ofar/internal/topology"
)

// AdaptiveConfig tunes the source-adaptive mechanisms (PB and UGAL-L).
type AdaptiveConfig struct {
	// UgalT is the additive threshold T of the UGAL comparison
	// q_min·H_min > q_val·H_val + T (phits); a larger T biases toward
	// minimal routing.
	UgalT int

	// PBThreshold is the occupancy fraction above which a router marks one
	// of its global channels as congested in the piggybacked broadcast.
	PBThreshold float64

	// PBDelay is the intra-group broadcast delay in cycles (the flags seen
	// by a router are this old). Typically the local link latency.
	PBDelay int
}

// DefaultAdaptiveConfig mirrors the paper's setup: flags propagate with the
// local-link latency; the numeric thresholds were selected empirically (the
// paper reports performing the same kind of empirical threshold study).
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{UgalT: 0, PBThreshold: 0.30, PBDelay: 10}
}

// ugalDecision returns true when the packet should be routed non-minimally
// according to local queue state: compare source-router queue occupancies
// weighted by path lengths (UGAL-L, Kim et al.).
func ugalDecision(d *topology.Dragonfly, rt *router.Router, p *packet.Packet, vg int, cfg AdaptiveConfig) bool {
	minOut := d.MinimalPort(rt.ID, p.Dst)
	valOut := d.PortToGroup(rt.ID, vg)
	qMin := queuedPhits(rt, minOut)
	qVal := queuedPhits(rt, valOut)
	hMin := d.MinimalHops(p.Src, p.Dst)
	hVal := hMin + 2 // one extra global hop plus the intermediate local hop
	return qMin*hMin > qVal*hVal+cfg.UgalT
}

// queuedPhits estimates the backlog toward an output as the occupied phits
// of the downstream buffer (capacity minus credits).
func queuedPhits(rt *router.Router, port int) int {
	op := &rt.Out[port]
	q := 0
	for vc := 0; vc < op.NumVCs(); vc++ {
		if op.EscapeRing(vc) < 0 {
			q += op.VCCap(vc) - op.Credits(vc)
		}
	}
	return q
}

// UGAL is the UGAL-L mechanism (local information only): an extension
// baseline beyond the paper's evaluated set, listed in DESIGN.md.
type UGAL struct {
	d   *topology.Dragonfly
	cfg AdaptiveConfig
}

// NewUGAL returns a UGAL-L engine.
func NewUGAL(d *topology.Dragonfly, cfg AdaptiveConfig) *UGAL {
	return &UGAL{d: d, cfg: cfg}
}

// Name implements router.Engine.
func (e *UGAL) Name() string { return "UGAL-L" }

// AtInjection implements router.Engine.
func (e *UGAL) AtInjection(rt *router.Router, p *packet.Packet, _ int64) {
	if p.DstGroup == p.SrcGroup {
		return // minimal within the group
	}
	vg := pickIntermediate(e.d, rt, p.SrcGroup, p.DstGroup)
	if vg < 0 {
		return
	}
	if ugalDecision(e.d, rt, p, vg, e.cfg) {
		p.ValiantGroup = vg
	}
}

// Route implements router.Engine.
func (e *UGAL) Route(rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	return routeFixed(e.d, rt, in, p, now)
}

// RouteDeps implements router.CacheableEngine (UGAL's adaptivity lives
// entirely in AtInjection; in transit it is a fixed-path engine).
func (e *UGAL) RouteDeps(rt *router.Router, in router.InCtx, p *packet.Packet, _ int64) (uint64, int64, int32) {
	return fixedDeps(e.d, rt, in, p)
}

// PB is the Piggybacking mechanism (Jiang et al., ISCA 2009): UGAL-L
// augmented with global-channel congestion flags broadcast within each
// group, so the injection router knows whether the minimal path's global
// channel — possibly attached to another router of its group — is
// saturated.
type PB struct {
	d   *topology.Dragonfly
	cfg AdaptiveConfig
}

// NewPB returns a PB engine.
func NewPB(d *topology.Dragonfly, cfg AdaptiveConfig) *PB {
	return &PB{d: d, cfg: cfg}
}

// Name implements router.Engine.
func (e *PB) Name() string { return "PB" }

// AtInjection implements router.Engine.
func (e *PB) AtInjection(rt *router.Router, p *packet.Packet, now int64) {
	if p.DstGroup == p.SrcGroup {
		return // minimal within the group
	}
	vg := pickIntermediate(e.d, rt, p.SrcGroup, p.DstGroup)
	if vg < 0 {
		return
	}
	minLink := e.d.GlobalLinkOf(p.SrcGroup, p.DstGroup)
	valLink := e.d.GlobalLinkOf(p.SrcGroup, vg)
	flagMin := rt.PBFlag(minLink, now)
	flagVal := rt.PBFlag(valLink, now)
	switch {
	case flagMin && !flagVal:
		p.ValiantGroup = vg
	case flagMin && flagVal:
		// both candidate global channels congested: stay minimal rather
		// than doubling the load on an equally congested path
	default:
		if ugalDecision(e.d, rt, p, vg, e.cfg) {
			p.ValiantGroup = vg
		}
	}
}

// Route implements router.Engine.
func (e *PB) Route(rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	return routeFixed(e.d, rt, in, p, now)
}

// RouteDeps implements router.CacheableEngine. PB reads its congestion
// flags only at injection time, never in Route, so the delayed FlagBoard
// view needs no epoch coverage — in transit PB is a fixed-path engine.
func (e *PB) RouteDeps(rt *router.Router, in router.InCtx, p *packet.Packet, _ int64) (uint64, int64, int32) {
	return fixedDeps(e.d, rt, in, p)
}
