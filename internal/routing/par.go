package routing

import (
	"ofar/internal/packet"
	"ofar/internal/router"
	"ofar/internal/topology"
)

// PAR implements Progressive Adaptive Routing (Jiang et al., ISCA 2009),
// discussed in the paper's §I/§II: the minimal-vs-Valiant decision is
// re-evaluated at every router of the source group (not only at injection),
// which allows up to two local hops in the source group. Deadlock freedom
// still comes from an ascending VC order, which therefore needs one extra
// local VC: local hops use VC = number of local hops already taken
// (0..3), global hops use VC = global hops taken (0..1). Configurations
// running PAR must provision 4 local VCs.
type PAR struct {
	d   *topology.Dragonfly
	cfg AdaptiveConfig
}

// NewPAR returns a PAR engine.
func NewPAR(d *topology.Dragonfly, cfg AdaptiveConfig) *PAR {
	return &PAR{d: d, cfg: cfg}
}

// Name implements router.Engine.
func (e *PAR) Name() string { return "PAR" }

// AtInjection implements router.Engine: the initial UGAL-style decision.
func (e *PAR) AtInjection(rt *router.Router, p *packet.Packet, _ int64) {
	if p.DstGroup == p.SrcGroup {
		return
	}
	vg := pickIntermediate(e.d, rt, p.SrcGroup, p.DstGroup)
	if vg < 0 {
		return
	}
	if ugalDecision(e.d, rt, p, vg, e.cfg) {
		p.ValiantGroup = vg
	}
}

// Route implements router.Engine. While the packet is still in its source
// group and committed to the minimal path, the decision is revisited with
// the local queue state of the *current* router; switching to Valiant
// mid-group is what distinguishes PAR from UGAL/PB.
func (e *PAR) Route(rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	if in.Kind == topology.PortLocal && // re-evaluation point: after a local hop
		rt.Group == p.SrcGroup &&
		p.ValiantGroup < 0 &&
		p.DstGroup != p.SrcGroup &&
		p.GlobalHops == 0 {
		vg := pickIntermediate(e.d, rt, p.SrcGroup, p.DstGroup)
		if vg >= 0 && ugalDecision(e.d, rt, p, vg, e.cfg) {
			p.ValiantGroup = vg // in-transit divert (PAR's defining move)
		}
	}
	out := nextOut(e.d, rt.ID, p)
	if rt.OutBusy(out, now) {
		return router.Request{}, false
	}
	vc := e.vcFor(e.d.PortKindOf(out), p, rt.Out[out].NumVCs())
	if !rt.VCFits(out, vc, p.Size) {
		return router.Request{}, false
	}
	return router.Request{Out: out, VC: vc}, true
}

// vcFor is PAR's ascending discipline: local hops consume one VC each in
// order (the extra source-group hop is why PAR needs 4 local VCs), globals
// use the shared 2-VC global order.
func (e *PAR) vcFor(kind topology.PortKind, p *packet.Packet, numVCs int) int {
	if kind == topology.PortNode {
		return 0
	}
	var vc int
	if kind == topology.PortGlobal {
		vc = p.GlobalHops
	} else {
		vc = p.LocalHops
	}
	if vc >= numVCs {
		vc = numVCs - 1
	}
	return vc
}
