// Package routing implements the baseline routing mechanisms the paper
// evaluates against OFAR (§V): minimal routing (MIN), Valiant randomized
// routing (VAL), Piggybacking (PB) and — as an extension — UGAL-L. All of
// them decide minimal-vs-nonminimal at injection time and prevent deadlock
// with an ascending virtual-channel order (3 VCs on local links and
// injection queues, 2 on global links).
package routing

import (
	"math"

	"ofar/internal/packet"
	"ofar/internal/router"
	"ofar/internal/topology"
)

// vcFor returns the deadlock-free VC for the next hop under the ascending
// VC discipline: every hop uses VC index = number of global hops already
// taken (locals: 0,1,2; globals: 0,1). Ejection uses VC 0.
func vcFor(kind topology.PortKind, p *packet.Packet, numVCs int) int {
	if kind == topology.PortNode {
		return 0
	}
	vc := p.GlobalHops
	if vc >= numVCs {
		vc = numVCs - 1
	}
	return vc
}

// nextOut returns the output port on the committed path of a baseline
// packet: toward the Valiant intermediate group while one is pending,
// minimal afterwards.
func nextOut(d *topology.Dragonfly, r int, p *packet.Packet) int {
	if p.ValiantGroup >= 0 && d.GroupOf(r) != p.ValiantGroup {
		return d.PortToGroup(r, p.ValiantGroup)
	}
	return d.MinimalPort(r, p.Dst)
}

// fixedOut resolves the committed output port of a baseline packet, using
// the router's cached per-head hint (router.InCtx.MinHint) to skip the
// topology lookup when available. The hint is safe because everything
// nextOut reads — the packet's Valiant state and this router's group — is
// fixed while the packet sits at a buffer head.
func fixedOut(d *topology.Dragonfly, rt *router.Router, in router.InCtx, p *packet.Packet) int {
	if in.MinHint >= 0 {
		return int(in.MinHint)
	}
	return nextOut(d, rt.ID, p)
}

// routeFixed implements Route for every baseline: follow the committed path,
// wait when the required port/VC cannot accept the packet.
func routeFixed(d *topology.Dragonfly, rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	out := fixedOut(d, rt, in, p)
	if rt.OutBusy(out, now) {
		return router.Request{}, false
	}
	vc := vcFor(d.PortKindOf(out), p, rt.Out[out].NumVCs())
	if !rt.VCFits(out, vc, p.Size) {
		return router.Request{}, false
	}
	return router.Request{Out: out, VC: vc}, true
}

// fixedDeps implements router.CacheableEngine's RouteDeps for the fixed-path
// baselines. The engines are stateless and shared across pool workers, so
// rather than recording reads during Route they re-derive them here: the
// only output port routeFixed consults is the committed one, the decision is
// time-independent, and the committed port doubles as the per-head anchor.
func fixedDeps(d *topology.Dragonfly, rt *router.Router, in router.InCtx, p *packet.Packet) (uint64, int64, int32) {
	out := fixedOut(d, rt, in, p)
	return 1 << uint(out), math.MaxInt64, int32(out)
}

// pickIntermediate selects a random intermediate group different from both
// the source and destination groups; it returns -1 when the network has no
// third group.
func pickIntermediate(d *topology.Dragonfly, rt *router.Router, src, dst int) int {
	if d.G < 3 {
		return -1
	}
	if src == dst { // intra-group traffic: exclude only one group
		vg := rt.RandInt(d.G - 1)
		if vg >= src {
			vg++
		}
		return vg
	}
	vg := rt.RandInt(d.G - 2)
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	if vg >= lo {
		vg++
	}
	if vg >= hi {
		vg++
	}
	return vg
}

// Minimal is the MIN mechanism: always the shortest path.
type Minimal struct{ d *topology.Dragonfly }

// NewMinimal returns a MIN engine.
func NewMinimal(d *topology.Dragonfly) *Minimal { return &Minimal{d: d} }

// Name implements router.Engine.
func (e *Minimal) Name() string { return "MIN" }

// AtInjection implements router.Engine.
func (e *Minimal) AtInjection(*router.Router, *packet.Packet, int64) {}

// Route implements router.Engine.
func (e *Minimal) Route(rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	return routeFixed(e.d, rt, in, p, now)
}

// RouteDeps implements router.CacheableEngine.
func (e *Minimal) RouteDeps(rt *router.Router, in router.InCtx, p *packet.Packet, _ int64) (uint64, int64, int32) {
	return fixedDeps(e.d, rt, in, p)
}

// Valiant is the VAL mechanism: every packet visits a random intermediate
// group before traveling minimally to its destination.
type Valiant struct{ d *topology.Dragonfly }

// NewValiant returns a VAL engine.
func NewValiant(d *topology.Dragonfly) *Valiant { return &Valiant{d: d} }

// Name implements router.Engine.
func (e *Valiant) Name() string { return "VAL" }

// AtInjection implements router.Engine.
func (e *Valiant) AtInjection(rt *router.Router, p *packet.Packet, _ int64) {
	p.ValiantGroup = pickIntermediate(e.d, rt, p.SrcGroup, p.DstGroup)
}

// Route implements router.Engine.
func (e *Valiant) Route(rt *router.Router, in router.InCtx, p *packet.Packet, now int64) (router.Request, bool) {
	return routeFixed(e.d, rt, in, p, now)
}

// RouteDeps implements router.CacheableEngine.
func (e *Valiant) RouteDeps(rt *router.Router, in router.InCtx, p *packet.Packet, _ int64) (uint64, int64, int32) {
	return fixedDeps(e.d, rt, in, p)
}
