package routing

import (
	"testing"

	"ofar/internal/packet"
	"ofar/internal/router"
	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// buildRouter constructs router `id` of topology d with paper-style buffer
// profiles (3×32 local/injection VCs, 2×256 global VCs), optionally attached
// to a PB flag board.
func buildRouter(t *testing.T, d *topology.Dragonfly, id int, fb *router.FlagBoard) *router.Router {
	t.Helper()
	specs := make([]router.PortSpec, d.RouterPorts)
	for port := 0; port < d.RouterPorts; port++ {
		kind, peer, peerPort := d.Peer(id, port)
		ps := router.PortSpec{Kind: kind, Peer: peer, PeerPort: peerPort, UpRouter: peer, UpPort: peerPort, Latency: 10}
		switch kind {
		case topology.PortNode:
			ps.Peer, ps.PeerPort, ps.UpRouter, ps.UpPort = -1, -1, -1, -1
			ps.InCaps, ps.InRing = []int{32, 32, 32}, []int{-1, -1, -1}
			ps.OutCaps, ps.OutRing = []int{8}, []int{-1}
		case topology.PortLocal:
			ps.InCaps, ps.InRing = []int{32, 32, 32}, []int{-1, -1, -1}
			ps.OutCaps, ps.OutRing = []int{32, 32, 32}, []int{-1, -1, -1}
		case topology.PortGlobal:
			ps.Latency = 100
			ps.InCaps, ps.InRing = []int{256, 256}, []int{-1, -1}
			ps.OutCaps, ps.OutRing = []int{256, 256}, []int{-1, -1}
		}
		specs[port] = ps
	}
	return router.New(router.Params{
		ID: id, Topo: d, PktSize: 8, AllocIters: 3,
		RNG: simcore.NewRNG(uint64(id) + 11), Ports: specs,
		PB: fb, PBThreshold: 0.30,
	})
}

func newPkt(d *topology.Dragonfly, src, dst int) *packet.Packet {
	p := &packet.Packet{}
	p.Reset()
	p.Size = 8
	p.Src, p.Dst = src, dst
	p.SrcGroup, p.DstGroup = d.GroupOfNode(src), d.GroupOfNode(dst)
	return p
}

func TestVCForDiscipline(t *testing.T) {
	p := &packet.Packet{}
	p.Reset()
	cases := []struct {
		kind   topology.PortKind
		ghops  int
		numVCs int
		wantVC int
	}{
		{topology.PortLocal, 0, 3, 0},
		{topology.PortLocal, 1, 3, 1},
		{topology.PortLocal, 2, 3, 2},
		{topology.PortGlobal, 0, 2, 0},
		{topology.PortGlobal, 1, 2, 1},
		{topology.PortLocal, 5, 3, 2}, // clamped
		{topology.PortNode, 2, 1, 0},
	}
	for _, c := range cases {
		p.GlobalHops = c.ghops
		if got := vcFor(c.kind, p, c.numVCs); got != c.wantVC {
			t.Errorf("vcFor(%v, ghops=%d) = %d, want %d", c.kind, c.ghops, got, c.wantVC)
		}
	}
}

func TestNextOutFollowsValiantThenMinimal(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	p := newPkt(d, 0, d.Nodes-1)
	r0 := 0
	p.ValiantGroup = 4
	out := nextOut(d, r0, p)
	if got := d.PortToGroup(r0, 4); out != got {
		t.Errorf("valiant next out %d, want %d", out, got)
	}
	p.ValiantGroup = -1
	if out := nextOut(d, r0, p); out != d.MinimalPort(r0, p.Dst) {
		t.Error("minimal next out mismatch")
	}
	// Inside the valiant group the packet heads minimally (EnterGroup will
	// have cleared the field on arrival; nextOut must also not loop if the
	// field is stale).
	p.ValiantGroup = 0
	if out := nextOut(d, r0, p); out != d.MinimalPort(r0, p.Dst) {
		t.Error("stale valiant group not ignored inside the group")
	}
}

func TestMinimalRouteRequest(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewMinimal(d)
	dst := d.Nodes - 1
	p := newPkt(d, 0, dst)
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode}, p, 0)
	if !ok {
		t.Fatal("route refused on an idle router")
	}
	if req.Out != d.MinimalPort(0, dst) || req.VC != 0 {
		t.Errorf("req=%+v", req)
	}
	if req.SetGlobalMis || req.SetLocalMis || req.Escape {
		t.Error("minimal routing set misroute/escape flags")
	}
}

// TestMinimalWaitsOnFixedVC: the baseline discipline waits for its class VC
// even when other VCs have credits.
func TestMinimalWaitsOnFixedVC(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewMinimal(d)
	dst := d.Nodes - 1 // remote group; minimal port from router 0
	p := newPkt(d, 0, dst)
	out := d.MinimalPort(0, dst)
	// Exhaust VC0 of the minimal port; VC1 keeps credits.
	rt.Out[out].Take(0, rt.Out[out].Credits(0))
	if _, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode}, p, 0); ok {
		t.Error("baseline used a different VC than its class")
	}
}

func TestValiantAssignsIntermediate(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewValiant(d)
	seen := map[int]bool{}
	for i := 0; i < 400; i++ {
		p := newPkt(d, 0, d.Nodes-1) // src group 0, dst group 8
		e.AtInjection(rt, p, 0)
		if p.ValiantGroup == p.SrcGroup || p.ValiantGroup == p.DstGroup {
			t.Fatalf("valiant group %d collides", p.ValiantGroup)
		}
		if p.ValiantGroup < 0 || p.ValiantGroup >= d.G {
			t.Fatalf("valiant group out of range: %d", p.ValiantGroup)
		}
		seen[p.ValiantGroup] = true
	}
	if len(seen) != d.G-2 {
		t.Errorf("valiant groups used: %d of %d", len(seen), d.G-2)
	}
}

func TestValiantIntraGroup(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewValiant(d)
	seen := map[int]bool{}
	for i := 0; i < 400; i++ {
		p := newPkt(d, 0, d.P*2) // same group, different router
		e.AtInjection(rt, p, 0)
		if p.ValiantGroup == 0 {
			t.Fatal("intra-group valiant picked the source group")
		}
		seen[p.ValiantGroup] = true
	}
	if len(seen) != d.G-1 {
		t.Errorf("intra-group valiant groups used: %d of %d", len(seen), d.G-1)
	}
}

func TestUGALPrefersEmptyMinimal(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewUGAL(d, DefaultAdaptiveConfig())
	p := newPkt(d, 0, d.Nodes-1)
	e.AtInjection(rt, p, 0)
	if p.ValiantGroup >= 0 {
		t.Error("UGAL misroutes on an idle network")
	}
}

func TestUGALMisroutesOnBacklog(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewUGAL(d, DefaultAdaptiveConfig())
	dst := d.Nodes - 1
	minOut := d.MinimalPort(0, dst)
	// Saturate the minimal output queue completely.
	for vc := 0; vc < rt.Out[minOut].NumVCs(); vc++ {
		rt.Out[minOut].Take(vc, rt.Out[minOut].Credits(vc))
	}
	misroutes := 0
	for i := 0; i < 100; i++ {
		p := newPkt(d, 0, dst)
		e.AtInjection(rt, p, 0)
		if p.ValiantGroup >= 0 {
			misroutes++
		}
	}
	// The valiant candidate is random; when it maps to the same (congested)
	// output port the comparison keeps the packet minimal, otherwise it
	// must misroute.
	if misroutes < 50 {
		t.Errorf("only %d/100 packets misrouted with a saturated minimal queue", misroutes)
	}
}

func TestUGALIntraGroupStaysMinimal(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewUGAL(d, DefaultAdaptiveConfig())
	p := newPkt(d, 0, d.P) // same group
	e.AtInjection(rt, p, 0)
	if p.ValiantGroup >= 0 {
		t.Error("UGAL misrouted intra-group traffic")
	}
}

func TestPBFlagForcesMisroute(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	fb := router.NewFlagBoard(d.A*d.H, 0)
	rt := buildRouter(t, d, 0, fb)
	e := NewPB(d, DefaultAdaptiveConfig())
	dst := d.Nodes - 1 // dst group 8
	minLink := d.GlobalLinkOf(0, d.GroupOfNode(dst))
	fb.Set(0, minLink, true) // minimal global channel congested
	misroutes := 0
	for i := 0; i < 200; i++ {
		p := newPkt(d, 0, dst)
		e.AtInjection(rt, p, 0)
		if p.ValiantGroup >= 0 {
			misroutes++
		}
	}
	// Occasionally the random valiant group's channel is also flagged (it
	// is not here) — with only minLink flagged every packet must divert.
	if misroutes != 200 {
		t.Errorf("%d/200 packets diverted under a flagged minimal channel", misroutes)
	}
}

func TestPBBothFlaggedStaysMinimal(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	fb := router.NewFlagBoard(d.A*d.H, 0)
	rt := buildRouter(t, d, 0, fb)
	e := NewPB(d, DefaultAdaptiveConfig())
	dst := d.Nodes - 1
	for l := 0; l < d.A*d.H; l++ {
		fb.Set(0, l, true) // everything congested
	}
	for i := 0; i < 50; i++ {
		p := newPkt(d, 0, dst)
		e.AtInjection(rt, p, 0)
		if p.ValiantGroup >= 0 {
			t.Fatal("PB misrouted with all channels flagged")
		}
	}
}

func TestPBUnflaggedFallsBackToUGAL(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	fb := router.NewFlagBoard(d.A*d.H, 0)
	rt := buildRouter(t, d, 0, fb)
	e := NewPB(d, DefaultAdaptiveConfig())
	p := newPkt(d, 0, d.Nodes-1)
	e.AtInjection(rt, p, 0)
	if p.ValiantGroup >= 0 {
		t.Error("PB misrouted on an idle network without flags")
	}
}

func TestPickIntermediateNeverCollides(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	for src := 0; src < d.G; src++ {
		for dst := 0; dst < d.G; dst++ {
			for i := 0; i < 20; i++ {
				vg := pickIntermediate(d, rt, src, dst)
				if vg == src || vg == dst || vg < 0 || vg >= d.G {
					t.Fatalf("pickIntermediate(%d,%d)=%d", src, dst, vg)
				}
			}
		}
	}
}

func TestPickIntermediateTinyNetwork(t *testing.T) {
	d, _ := topology.New(1, 2, 1, 2) // G=2: no third group
	rt := buildRouter(t, d, 0, nil)
	if vg := pickIntermediate(d, rt, 0, 1); vg != -1 {
		t.Errorf("expected -1 on 2-group network, got %d", vg)
	}
}

// --- PAR tests ---------------------------------------------------------------

func TestPARInTransitDivert(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewPAR(d, DefaultAdaptiveConfig())
	dst := d.Nodes - 1
	p := newPkt(d, d.NodeAt(1, 0), dst) // src on router 1, now at router 0
	p.LocalHops = 1                     // took the l1 hop to get here
	minOut := d.MinimalPort(0, dst)
	// Saturate the minimal output at this router: PAR must divert in
	// transit, something UGAL/PB cannot do.
	for vc := 0; vc < rt.Out[minOut].NumVCs(); vc++ {
		rt.Out[minOut].Take(vc, rt.Out[minOut].Credits(vc))
	}
	diverted := 0
	for i := 0; i < 50; i++ {
		q := *p // copy: Route mutates ValiantGroup
		if _, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal}, &q, 0); ok || q.ValiantGroup >= 0 {
			if q.ValiantGroup >= 0 {
				diverted++
			}
		}
	}
	if diverted < 25 {
		t.Errorf("PAR diverted only %d/50 blocked packets in transit", diverted)
	}
}

func TestPARNoDivertAfterGlobalHop(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewPAR(d, DefaultAdaptiveConfig())
	p := newPkt(d, d.Nodes-1, d.NodeAt(2, 0)) // foreign source, dst in group 0
	p.GlobalHops = 1
	min := d.MinimalPort(0, p.Dst)
	for vc := 0; vc < rt.Out[min].NumVCs(); vc++ {
		rt.Out[min].Take(vc, rt.Out[min].Credits(vc))
	}
	if _, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortLocal}, p, 0); ok {
		t.Error("PAR moved through a saturated port")
	}
	if p.ValiantGroup >= 0 {
		t.Error("PAR diverted outside the source group")
	}
}

func TestPARVCDiscipline(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	e := NewPAR(d, DefaultAdaptiveConfig())
	p := newPkt(d, 0, d.Nodes-1)
	p.LocalHops = 1
	if vc := e.vcFor(topology.PortLocal, p, 4); vc != 1 {
		t.Errorf("second local hop vc=%d want 1", vc)
	}
	p.LocalHops = 3
	if vc := e.vcFor(topology.PortLocal, p, 4); vc != 3 {
		t.Errorf("fourth local hop vc=%d want 3", vc)
	}
	p.GlobalHops = 1
	if vc := e.vcFor(topology.PortGlobal, p, 2); vc != 1 {
		t.Errorf("second global hop vc=%d want 1", vc)
	}
}

func TestEngineNames(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	cfg := DefaultAdaptiveConfig()
	names := map[string]interface{ Name() string }{
		"MIN":    NewMinimal(d),
		"VAL":    NewValiant(d),
		"PB":     NewPB(d, cfg),
		"UGAL-L": NewUGAL(d, cfg),
		"PAR":    NewPAR(d, cfg),
	}
	for want, e := range names {
		if e.Name() != want {
			t.Errorf("Name()=%q want %q", e.Name(), want)
		}
	}
}

func TestValiantRouteFollowsCommittedPath(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewValiant(d)
	p := newPkt(d, 0, d.Nodes-1)
	p.ValiantGroup = 4
	req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode}, p, 0)
	if !ok {
		t.Fatal("route refused")
	}
	if req.Out != d.PortToGroup(0, 4) {
		t.Errorf("VAL did not head to its intermediate group")
	}
}

func TestUGALAndPBRouteAreFixed(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	p := newPkt(d, 0, d.Nodes-1)
	for _, e := range []router.Engine{NewUGAL(d, DefaultAdaptiveConfig()), NewPB(d, DefaultAdaptiveConfig())} {
		req, ok := e.Route(rt, router.InCtx{MinHint: -1, Kind: topology.PortNode}, p, 0)
		if !ok || req.Out != d.MinimalPort(0, p.Dst) {
			t.Errorf("%s route %+v ok=%v", e.Name(), req, ok)
		}
	}
}

func TestPARAtInjectionIdle(t *testing.T) {
	d, _ := topology.New(2, 4, 2, 0)
	rt := buildRouter(t, d, 0, nil)
	e := NewPAR(d, DefaultAdaptiveConfig())
	p := newPkt(d, 0, d.Nodes-1)
	e.AtInjection(rt, p, 0)
	if p.ValiantGroup >= 0 {
		t.Error("PAR misrouted at injection on an idle network")
	}
	intra := newPkt(d, 0, d.P)
	e.AtInjection(rt, intra, 0)
	if intra.ValiantGroup >= 0 {
		t.Error("PAR misrouted intra-group traffic")
	}
}
