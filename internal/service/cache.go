package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// resultCache is the determinism-backed result store: an in-memory LRU over
// point keys with optional disk persistence. Because every simulation here is
// bit-identical given (canonical config, pattern, load, warmup, measure) and
// the key folds in the engine digest, an entry can never be wrong — only
// absent — so the cache needs no TTLs and no revalidation, just capacity
// management.
//
// The disk layer reuses the warm-snapshot cache's layout: one file per entry,
// written to a temp file and atomically renamed, so concurrent writers (or a
// crash mid-write) never leave a half-written entry visible. Each file embeds
// the engine digest that computed it; a load by a build with different
// physics is refused even if the file name were forged, which is the second
// line of defense after the digest-bearing key itself.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[uint64]*list.Element

	dir    string // "" = memory only
	digest uint64 // this build's engine digest; disk entries must match
}

type cacheEntry struct {
	key  uint64
	data []byte
}

// diskResult is the persisted envelope of one cached point result.
type diskResult struct {
	Key    string          `json:"key"`
	Digest string          `json:"digest"` // engine digest that computed Result
	Result json.RawMessage `json:"result"`
}

func newResultCache(capacity int, dir string, digest uint64) (*resultCache, error) {
	if capacity < 1 {
		capacity = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: result cache dir: %w", err)
		}
	}
	return &resultCache{
		cap:    capacity,
		ll:     list.New(),
		items:  make(map[uint64]*list.Element),
		dir:    dir,
		digest: digest,
	}, nil
}

// Get returns the cached result bytes for key, promoting the entry to
// most-recently-used. On a memory miss with a disk layer configured, it
// faults the entry in from disk (verifying the recorded engine digest); an
// entry evicted from the LRU therefore remains servable as long as its file
// survives.
func (c *resultCache) Get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		data := e.Value.(*cacheEntry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	data, ok := c.loadDisk(key)
	if !ok {
		return nil, false
	}
	c.add(key, data, false) // already on disk; do not rewrite
	return data, true
}

// Has reports whether Get would hit without promoting or faulting in — the
// cheap probe the admission path uses.
func (c *resultCache) Has(key uint64) bool {
	c.mu.Lock()
	_, ok := c.items[key]
	c.mu.Unlock()
	if ok || c.dir == "" {
		return ok
	}
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Add stores a computed result, evicting least-recently-used entries beyond
// capacity and persisting to disk when configured.
func (c *resultCache) Add(key uint64, data []byte) { c.add(key, data, true) }

func (c *resultCache) add(key uint64, data []byte, persist bool) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).data = data
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		for c.ll.Len() > c.cap {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.items, back.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	if persist && c.dir != "" {
		// Best-effort: a failed persist degrades to memory-only for this
		// entry; the result itself was already computed and is being served.
		_ = c.writeDisk(key, data)
	}
}

// Len returns the number of in-memory entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *resultCache) path(key uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("res-%016x.json", key))
}

func (c *resultCache) loadDisk(key uint64) ([]byte, bool) {
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var env diskResult
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, false // corrupt or truncated: treat as a miss
	}
	if env.Digest != fmt.Sprintf("%016x", c.digest) || len(env.Result) == 0 {
		return nil, false // written by different physics: never serve it
	}
	return env.Result, true
}

func (c *resultCache) writeDisk(key uint64, data []byte) error {
	env, err := json.Marshal(diskResult{
		Key:    fmt.Sprintf("%016x", key),
		Digest: fmt.Sprintf("%016x", c.digest),
		Result: data,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".res-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
