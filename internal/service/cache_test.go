package service

import (
	"bytes"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ofar"
)

func TestLRUEvictionOrder(t *testing.T) {
	c, err := newResultCache(3, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 3; k++ {
		c.Add(k, []byte{byte(k)})
	}
	// Touch 1 so it becomes most-recently-used; adding 4 must now evict 2,
	// the least recently used.
	if _, ok := c.Get(1); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	c.Add(4, []byte{4})
	if _, ok := c.Get(2); ok {
		t.Error("key 2 survived: LRU should have evicted the least recently used entry")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("key %d evicted out of order", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
	// Updating an existing key must not evict anything.
	c.Add(3, []byte{33})
	if got, _ := c.Get(3); !bytes.Equal(got, []byte{33}) {
		t.Errorf("update of key 3 not visible: %v", got)
	}
	if c.Len() != 3 {
		t.Errorf("len after in-place update = %d, want 3", c.Len())
	}
}

func TestSingleflightDedup(t *testing.T) {
	var g flightGroup
	var calls, sharedCount atomic.Int64
	const n = 8
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, shared, err := g.Do(42, func() ([]byte, error) {
				calls.Add(1)
				time.Sleep(100 * time.Millisecond) // hold the flight open for every waiter
				return []byte("result"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = data
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran the function %d times, want exactly 1", n, got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Errorf("shared count = %d, want %d", got, n-1)
	}
	for i, r := range results {
		if string(r) != "result" {
			t.Errorf("caller %d got %q", i, r)
		}
	}
	if g.Pending(42) {
		t.Error("flight still pending after completion")
	}
}

func TestPointKeyChangesWithEngineDigest(t *testing.T) {
	cfg := ofar.DefaultConfig(2)
	canon, err := ofar.CanonicalConfigJSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := ofar.EngineDigest()
	k1 := pointKey(canon, "UN", 0.5, 1000, 2000, d)
	k2 := pointKey(canon, "UN", 0.5, 1000, 2000, d+1)
	if k1 == k2 {
		t.Fatal("a different engine digest must produce a different cache key — a physics change would serve stale results")
	}
	// Wall-clock-only execution settings canonicalize away: a Workers=4
	// sharded config shares cache entries with the serial one (results are
	// bit-identical by the engine's determinism contract).
	par := cfg
	par.Workers = 4
	par.ShardByGroup = true
	canonPar, err := ofar.CanonicalConfigJSON(par)
	if err != nil {
		t.Fatal(err)
	}
	if k3 := pointKey(canonPar, "UN", 0.5, 1000, 2000, d); k3 != k1 {
		t.Error("execution-only config fields leaked into the cache key")
	}
	// Physics-relevant knobs must move the key.
	seeded := cfg
	seeded.Seed++
	canonSeed, _ := ofar.CanonicalConfigJSON(seeded)
	if pointKey(canonSeed, "UN", 0.5, 1000, 2000, d) == k1 {
		t.Error("seed change did not move the cache key")
	}
	if pointKey(canon, "UN", 0.5000001, 1000, 2000, d) == k1 {
		t.Error("load change did not move the cache key")
	}
	if pointKey(canon, "ADV+2", 0.5, 1000, 2000, d) == k1 {
		t.Error("pattern change did not move the cache key")
	}
	if pointKey(canon, "UN", 0.5, 1000, 2001, d) == k1 {
		t.Error("measurement-window change did not move the cache key")
	}
}

func TestDiskCacheRejectsDifferentDigest(t *testing.T) {
	dir := t.TempDir()
	const key = uint64(7)
	data := []byte(`{"Load":0.5}`)

	c1, err := newResultCache(4, dir, 0x1111)
	if err != nil {
		t.Fatal(err)
	}
	c1.Add(key, data)

	// A fresh cache with the same digest faults the entry in from disk.
	c2, err := newResultCache(4, dir, 0x1111)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get(key); !ok || !bytes.Equal(got, data) {
		t.Fatalf("same-digest disk load: got %q ok=%v, want %q", got, ok, data)
	}
	if !c2.Has(key) {
		t.Error("Has should see the faulted-in entry")
	}

	// A build with different physics must refuse the persisted entry even
	// though the file exists under the same key.
	c3, err := newResultCache(4, dir, 0x2222)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c3.Get(key); ok {
		t.Fatalf("different-digest cache served a stale persisted result: %q", got)
	}
}

func TestDiskCacheSurvivesLRUEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := newResultCache(1, dir, 9)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(1, []byte(`"one"`))
	c.Add(2, []byte(`"two"`)) // evicts key 1 from memory, not from disk
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if got, ok := c.Get(1); !ok || string(got) != `"one"` {
		t.Fatalf("evicted entry not servable from disk: %q ok=%v", got, ok)
	}
}

func TestDiskCacheIgnoresCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := newResultCache(4, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(3, []byte(`"x"`))
	// Truncate the persisted file to simulate a torn write that bypassed the
	// atomic rename (e.g. a copied cache directory).
	if err := writeFile(c.path(3), []byte(`{"key":"000`)); err != nil {
		t.Fatal(err)
	}
	fresh, err := newResultCache(4, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(3); ok {
		t.Error("corrupt disk entry was served")
	}
}

func TestPoolLatencyBoundShedding(t *testing.T) {
	p := newSimPool(1, 100)
	defer p.Close()
	// Projected wait for one new point at a 100ms observed cost exceeds a
	// 50ms bound → shed with a positive Retry-After.
	retry, ok := p.Admit(1, 50*time.Millisecond, 100*time.Millisecond)
	if ok {
		t.Fatal("Admit accepted work whose projected wait exceeds the latency bound")
	}
	if retry <= 0 {
		t.Fatalf("retry-after = %v, want > 0", retry)
	}
	// Without a bound the same work is admitted.
	if _, ok := p.Admit(1, 0, 100*time.Millisecond); !ok {
		t.Fatal("Admit refused work with no latency bound configured")
	}
	p.Release(1)
	// Queue-depth bound: a pool with MaxQueue=2 refuses a third reservation.
	q := newSimPool(1, 2)
	defer q.Close()
	if _, ok := q.Admit(2, 0, 0); !ok {
		t.Fatal("Admit refused work within the queue bound")
	}
	if _, ok := q.Admit(1, 0, 0); ok {
		t.Fatal("Admit exceeded MaxQueue")
	}
	q.Release(2)
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
