package service

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ofar"
)

// metrics is the observable side of the service's perf claims: cache hit
// rate, queue depth, in-flight simulations and per-point service latency are
// exported rather than asserted. Counters are atomics; the latency ring and
// the EWMA sit behind a small mutex (updated once per point, read on scrape).
type metrics struct {
	start time.Time

	requests  atomic.Int64 // POST /sweep calls accepted for processing
	shed      atomic.Int64 // requests refused with 429
	hits      atomic.Int64 // points served from the result cache
	misses    atomic.Int64 // points that led a simulation
	coalesced atomic.Int64 // points that joined an in-flight simulation
	errored   atomic.Int64 // points whose simulation failed
	restored  atomic.Int64 // simulations that skipped warm-up via a warm snapshot

	mu        sync.Mutex
	ewmaNanos float64   // smoothed cost of one simulated point
	ring      []float64 // recent per-point service latencies, seconds
	ringNext  int
	ringFull  bool

	// Per-phase Step timing, accumulated across every measured point (the
	// sweep options install observePhases as the PhaseSink). Answers "where
	// do this service's simulation seconds go" without attaching a profiler.
	phases ofar.PhaseNanos // guarded by mu
}

const latencyRingSize = 1024

func newMetrics() *metrics {
	return &metrics{start: time.Now(), ring: make([]float64, latencyRingSize)}
}

// observeSim records the cost of one actual simulation (the admission
// estimator's unit of work).
func (m *metrics) observeSim(d time.Duration) {
	m.mu.Lock()
	if m.ewmaNanos == 0 {
		m.ewmaNanos = float64(d.Nanoseconds())
	} else {
		m.ewmaNanos = 0.8*m.ewmaNanos + 0.2*float64(d.Nanoseconds())
	}
	m.mu.Unlock()
}

// observePoint records the end-to-end service latency of one point (cache
// lookup, queueing and simulation included) for the latency quantiles.
func (m *metrics) observePoint(d time.Duration) {
	m.mu.Lock()
	m.ring[m.ringNext] = d.Seconds()
	m.ringNext++
	if m.ringNext == len(m.ring) {
		m.ringNext = 0
		m.ringFull = true
	}
	m.mu.Unlock()
}

// observePhases folds one measurement window's per-phase Step breakdown into
// the served totals. Safe for concurrent calls — it is handed to the sweep
// layer as SweepOptions.PhaseSink, which may fire from parallel points.
func (m *metrics) observePhases(p ofar.PhaseNanos) {
	m.mu.Lock()
	m.phases.Add(p)
	m.mu.Unlock()
}

// pointCost returns the smoothed per-simulation cost (0 until one completes).
func (m *metrics) pointCost() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Duration(m.ewmaNanos)
}

// quantiles returns the p50/p90/p99 of recent per-point service latencies in
// seconds, over up to latencyRingSize samples.
func (m *metrics) quantiles() (p50, p90, p99 float64, n int) {
	m.mu.Lock()
	n = m.ringNext
	if m.ringFull {
		n = len(m.ring)
	}
	samples := make([]float64, n)
	copy(samples, m.ring[:n])
	m.mu.Unlock()
	if n == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(samples)
	rank := func(q float64) float64 {
		// Nearest-rank: ceil(q·n) is a 1-based rank, so subtract one. The
		// previous int(q·n) indexing overshot a full rank whenever q·n
		// landed on an integer — the p90 of 10 samples came back as the
		// maximum, and the median of 2 as the larger one (the same bug the
		// utilization summary had).
		i := int(math.Ceil(q*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return samples[i]
	}
	return rank(0.50), rank(0.90), rank(0.99), n
}

// writeTo renders the Prometheus-style text exposition.
func (m *metrics) writeTo(w http.ResponseWriter, pool *simPool, cache *resultCache) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	hits, misses := m.hits.Load(), m.misses.Load()
	var hitRate float64
	if hits+misses+m.coalesced.Load() > 0 {
		hitRate = float64(hits) / float64(hits+misses+m.coalesced.Load())
	}
	p50, p90, p99, n := m.quantiles()
	fmt.Fprintf(w, "sweepd_uptime_seconds %.1f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "sweepd_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "sweepd_requests_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(w, "sweepd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "sweepd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "sweepd_points_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(w, "sweepd_points_errored_total %d\n", m.errored.Load())
	fmt.Fprintf(w, "sweepd_warm_restores_total %d\n", m.restored.Load())
	fmt.Fprintf(w, "sweepd_cache_hit_rate %.4f\n", hitRate)
	fmt.Fprintf(w, "sweepd_cache_entries %d\n", cache.Len())
	fmt.Fprintf(w, "sweepd_queue_depth %d\n", pool.Depth())
	fmt.Fprintf(w, "sweepd_inflight_sims %d\n", pool.Inflight())
	fmt.Fprintf(w, "sweepd_point_cost_seconds %.6f\n", m.pointCost().Seconds())
	fmt.Fprintf(w, "sweepd_point_latency_seconds{quantile=\"0.5\"} %.6f\n", p50)
	fmt.Fprintf(w, "sweepd_point_latency_seconds{quantile=\"0.9\"} %.6f\n", p90)
	fmt.Fprintf(w, "sweepd_point_latency_seconds{quantile=\"0.99\"} %.6f\n", p99)
	fmt.Fprintf(w, "sweepd_point_latency_samples %d\n", n)
	m.mu.Lock()
	ph := m.phases
	m.mu.Unlock()
	sec := func(ns int64) float64 { return float64(ns) / 1e9 }
	fmt.Fprintf(w, "sweepd_step_phase_seconds_total{phase=\"faults\"} %.6f\n", sec(ph.Faults))
	fmt.Fprintf(w, "sweepd_step_phase_seconds_total{phase=\"events\"} %.6f\n", sec(ph.Events))
	fmt.Fprintf(w, "sweepd_step_phase_seconds_total{phase=\"generate\"} %.6f\n", sec(ph.Generate))
	fmt.Fprintf(w, "sweepd_step_phase_seconds_total{phase=\"pb\"} %.6f\n", sec(ph.PB))
	fmt.Fprintf(w, "sweepd_step_phase_seconds_total{phase=\"routers\"} %.6f\n", sec(ph.Routers))
	fmt.Fprintf(w, "sweepd_step_phase_cycles_total %d\n", ph.Cycles)
}
