package service

import (
	"testing"
	"time"
)

// TestQuantilesNearestRank mirrors the utilization-summary regression
// (TestSummarizeUtilizationP95NotMax): int(q·n) indexing overshot a full
// rank whenever q·n landed on an integer, so the p90 of 10 samples was the
// maximum and the median of 2 samples the larger one. Nearest-rank
// (ceil(q·n), 1-based) keeps every quantile on its order statistic.
func TestQuantilesNearestRank(t *testing.T) {
	m := newMetrics()
	m.observePoint(100 * time.Millisecond)
	m.observePoint(300 * time.Millisecond)
	p50, p90, p99, n := m.quantiles()
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if p50 != 0.1 {
		t.Errorf("median of 2 samples = %v, want the 1st order statistic 0.1", p50)
	}
	if p90 != 0.3 || p99 != 0.3 {
		t.Errorf("p90/p99 of 2 samples = %v/%v, want 0.3/0.3", p90, p99)
	}

	// p90 of 10 samples: rank ceil(9) = 9 → the 9th order statistic, not
	// the max. The floor-style indexing returned samples[9] here.
	m = newMetrics()
	for i := 1; i <= 10; i++ {
		m.observePoint(time.Duration(i*100) * time.Millisecond)
	}
	p50, p90, p99, n = m.quantiles()
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
	if p90 != 0.9 {
		t.Errorf("p90 of 1..10 = %v, want 0.9 (not the max 1.0)", p90)
	}
	if p50 != 0.5 {
		t.Errorf("p50 of 1..10 = %v, want 0.5", p50)
	}
	if p99 != 1.0 {
		t.Errorf("p99 of 1..10 = %v, want 1.0", p99)
	}
	if p50 > p90 || p90 > p99 {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p90, p99)
	}
}

func TestQuantilesSingleSample(t *testing.T) {
	m := newMetrics()
	m.observePoint(250 * time.Millisecond)
	p50, p90, p99, n := m.quantiles()
	if n != 1 || p50 != 0.25 || p90 != 0.25 || p99 != 0.25 {
		t.Errorf("single sample: got %v/%v/%v n=%d, want 0.25 across the board", p50, p90, p99, n)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	m := newMetrics()
	p50, p90, p99, n := m.quantiles()
	if n != 0 || p50 != 0 || p90 != 0 || p99 != 0 {
		t.Errorf("empty ring: got %v/%v/%v n=%d, want zeros", p50, p90, p99, n)
	}
}
