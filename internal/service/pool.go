package service

import (
	"runtime"
	"sync"
	"time"
)

// simPool runs point simulations on a bounded set of workers behind an
// admission gate. Two resources are managed:
//
//   - Worker slots (sims): at most this many simulations execute at once.
//   - CPU tokens (capacity = GOMAXPROCS): each running simulation holds as
//     many tokens as its network's router-stage pool can actually engage —
//     simWidth, the same min(Workers, groups) budget RunLoadSweepOpt uses —
//     so the service never oversubscribes the machine beyond what
//     Workers × ShardByGroup already claims. Serial (Workers ≤ 1) points
//     hold one token each; a width-4 sharded point holds four.
//
// Admission is reservation-based: a request reserves one slot per genuinely
// new point (cache miss, no open flight) before anything is enqueued, and the
// reservation is either consumed by the singleflight leader's Submit or
// released when the request finishes. Once reserved + queued would exceed
// MaxQueue — or the projected wait would blow the configured latency bound —
// Admit refuses and the request is shed with 429 + Retry-After instead of
// queueing without bound.
type simPool struct {
	jobs chan func()
	wg   sync.WaitGroup

	sims     int
	maxQueue int

	mu       sync.Mutex
	cond     *sync.Cond
	tokens   int // available CPU tokens
	capacity int
	reserved int // admitted, not yet submitted
	queued   int // submitted, not yet running
	inflight int // simulating right now
}

func newSimPool(sims, maxQueue int) *simPool {
	if sims < 1 {
		sims = 1
	}
	if maxQueue < 1 {
		maxQueue = 1
	}
	capacity := runtime.GOMAXPROCS(0)
	if capacity < 1 {
		capacity = 1
	}
	p := &simPool{
		// Capacity covers every job a reservation can produce plus slack for
		// the rare unreserved submit (a leader that raced past admission), so
		// sends below almost never block — and a blocked send only parks the
		// request's point goroutine, never a pool worker.
		jobs:     make(chan func(), maxQueue+sims+64),
		sims:     sims,
		maxQueue: maxQueue,
		tokens:   capacity,
		capacity: capacity,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < sims; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// Admit reserves n computation slots. It refuses — returning a suggested
// Retry-After and ok=false — when the queue would exceed its depth bound or,
// with a latency bound configured and a cost estimate available, when the
// projected wait for the new work would exceed that bound.
func (p *simPool) Admit(n int, bound, pointCost time.Duration) (retryAfter time.Duration, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	depth := p.reserved + p.queued
	est := p.estimateLocked(depth+n, pointCost)
	if depth+n > p.maxQueue || (bound > 0 && pointCost > 0 && est > bound) {
		if est < time.Second {
			est = time.Second
		}
		return est, false
	}
	p.reserved += n
	return 0, true
}

// estimateLocked projects how long newly admitted work would wait + run:
// every queued/reserved/in-flight point ahead of it plus itself, served by
// sims workers at the observed per-point cost.
func (p *simPool) estimateLocked(depth int, pointCost time.Duration) time.Duration {
	if pointCost <= 0 {
		return 0
	}
	waves := (depth + p.inflight + p.sims - 1) / p.sims
	return time.Duration(waves) * pointCost
}

// Release returns unused reservations (clamped — racing leaders may have
// consumed more than this request reserved).
func (p *simPool) Release(n int) {
	p.mu.Lock()
	p.reserved -= n
	if p.reserved < 0 {
		p.reserved = 0
	}
	p.mu.Unlock()
}

// Submit converts one reservation into a queued job and eventually runs it
// on a pool worker holding `width` CPU tokens.
func (p *simPool) Submit(width int, run func()) {
	p.mu.Lock()
	if p.reserved > 0 {
		p.reserved--
	}
	p.queued++
	p.mu.Unlock()
	p.jobs <- func() {
		p.acquire(width)
		p.mu.Lock()
		p.queued--
		p.inflight++
		p.mu.Unlock()
		run()
		p.mu.Lock()
		p.inflight--
		p.mu.Unlock()
		p.release(width)
	}
}

func (p *simPool) acquire(width int) {
	if width > p.capacity {
		width = p.capacity
	}
	if width < 1 {
		width = 1
	}
	p.mu.Lock()
	for p.tokens < width {
		p.cond.Wait()
	}
	p.tokens -= width
	p.mu.Unlock()
}

func (p *simPool) release(width int) {
	if width > p.capacity {
		width = p.capacity
	}
	if width < 1 {
		width = 1
	}
	p.mu.Lock()
	p.tokens += width
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Depth returns the number of admitted-or-queued (not yet running) points.
func (p *simPool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reserved + p.queued
}

// Inflight returns the number of simulations executing right now.
func (p *simPool) Inflight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inflight
}

// Close stops the workers after the queue drains. The server calls it once
// no more requests are being served.
func (p *simPool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
