package service

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"ofar"
)

// Request is one experiment submission: a configuration (explicit, or the
// paper's DefaultConfig(h) with optional routing/seed overrides — the same
// shorthand the sweep CLI offers), a traffic pattern, a list of offered
// loads, and the warm-up/measurement window. Each (config, pattern, load)
// triple is one independently cacheable point.
type Request struct {
	// H builds the paper's DefaultConfig(h) when Config is absent (default 3).
	H int `json:"h,omitempty"`
	// Config, when present, is used verbatim (then Routing/Seed still apply).
	Config *ofar.Config `json:"config,omitempty"`
	// Routing overrides the mechanism (MIN, VAL, PB, UGAL-L, PAR, OFAR,
	// OFAR-L), with the CLI's conventions: baselines drop the escape ring,
	// PAR gets its 4 local/injection VCs.
	Routing string `json:"routing,omitempty"`
	// Seed overrides the RNG seed (part of the cache key: different seeds
	// are different experiments).
	Seed *uint64 `json:"seed,omitempty"`

	Pattern string    `json:"pattern,omitempty"` // UN, ADV+<n>, MIX1..3, ... (default UN)
	Loads   []float64 `json:"loads"`
	Warmup  int       `json:"warmup,omitempty"`  // cycles (default 3000)
	Measure int       `json:"measure,omitempty"` // cycles (default 5000)

	// Jobs switches the request to a job-level workload (mutually exclusive
	// with Pattern): the ofar.ParseWorkload syntax, e.g.
	// "stencil:4x4x4@0.3,a2a:32@0.5". Loads then act as scale factors on
	// every job's load, and each point's result is an ofar.JobsResult. The
	// workload's canonical name becomes the pattern component of the cache
	// key, so job-set points live in the same cache as classic ones.
	Jobs string `json:"jobs,omitempty"`
	// JobMap is "linear" (default) or "random" placement.
	JobMap string `json:"job_map,omitempty"`
	// Background is uniform load on nodes no job occupies.
	Background float64 `json:"background,omitempty"`
}

// resolved is a fully canonicalized request: a validated configuration and
// pattern plus defaulted windows. Everything that determines the simulation
// is in here; everything that doesn't (field order, absent-vs-zero JSON,
// wall-clock execution settings) has been normalized away.
type resolved struct {
	cfg     ofar.Config
	ps      ofar.PatternSpec
	jobs    *ofar.Workload // non-nil for job-set requests; ps is then unused
	loads   []float64      // offered loads, or scale factors for job sets
	warmup  int
	measure int
	canon   []byte // CanonicalConfigJSON(cfg)
}

// patternName returns the cache-key pattern component: the workload's
// canonical name for job-set requests, the pattern label otherwise.
func (r *resolved) patternName() string {
	if r.jobs != nil {
		return r.jobs.Name()
	}
	return r.ps.Name()
}

const (
	defaultWarmup  = 3000
	defaultMeasure = 5000
	// maxCycles bounds warmup+measure per request: sized far above any
	// experiment in the repo (the paper's runs are ≤ 10^4 cycles) while
	// keeping a single request from monopolizing the service for hours.
	maxCycles = 10_000_000
	// maxWorkers bounds the per-network pool width a request may demand.
	maxWorkers = 64
)

func resolveRequest(req Request, maxLoads int) (resolved, error) {
	var r resolved
	if req.Config != nil {
		r.cfg = *req.Config
	} else {
		h := req.H
		if h == 0 {
			h = 3
		}
		if h < 1 || h > 8 {
			return r, fmt.Errorf("h %d outside [1,8]", h)
		}
		r.cfg = ofar.DefaultConfig(h)
	}
	if req.Seed != nil {
		r.cfg.Seed = *req.Seed
	}
	if req.Routing != "" {
		r.cfg.Routing = ofar.Routing(strings.ToUpper(strings.TrimSpace(req.Routing)))
		if r.cfg.Routing == ofar.PAR && (r.cfg.LocalVCs < 4 || r.cfg.InjVCs < 4) {
			r.cfg.LocalVCs, r.cfg.InjVCs = 4, 4
		}
		switch r.cfg.Routing {
		case ofar.MIN, ofar.VAL, ofar.PB, ofar.UGAL, ofar.PAR:
			r.cfg.Ring = ofar.RingNone
		}
	}
	if r.cfg.Workers > maxWorkers {
		return r, fmt.Errorf("workers %d exceeds the service cap %d", r.cfg.Workers, maxWorkers)
	}
	if err := r.cfg.Validate(); err != nil {
		return r, err
	}
	if req.Jobs != "" {
		if req.Pattern != "" {
			return r, fmt.Errorf("pattern and jobs are mutually exclusive")
		}
		w, err := ofar.ParseWorkload(req.Jobs)
		if err != nil {
			return r, fmt.Errorf("parsing jobs: %w", err)
		}
		switch strings.ToLower(strings.TrimSpace(req.JobMap)) {
		case "", "linear":
		case "random":
			w.RandomMap = true
		default:
			return r, fmt.Errorf("job_map %q: want linear or random", req.JobMap)
		}
		if math.IsNaN(req.Background) || math.IsInf(req.Background, 0) || req.Background < 0 || req.Background > 2 {
			return r, fmt.Errorf("background %v outside [0, 2]", req.Background)
		}
		w.Background = req.Background
		r.jobs = &w
	} else {
		pat := req.Pattern
		if pat == "" {
			pat = "UN"
		}
		ps, err := ofar.ParsePattern(pat, r.cfg.H)
		if err != nil {
			return r, err
		}
		r.ps = ps
	}
	if len(req.Loads) == 0 {
		return r, fmt.Errorf("loads must name at least one offered load")
	}
	if len(req.Loads) > maxLoads {
		return r, fmt.Errorf("%d loads exceed the per-request cap %d", len(req.Loads), maxLoads)
	}
	for _, l := range req.Loads {
		if math.IsNaN(l) || math.IsInf(l, 0) || l <= 0 || l > 2 {
			return r, fmt.Errorf("load %v outside (0, 2]", l)
		}
	}
	r.loads = req.Loads
	r.warmup = req.Warmup
	if r.warmup == 0 {
		r.warmup = defaultWarmup
	}
	r.measure = req.Measure
	if r.measure == 0 {
		r.measure = defaultMeasure
	}
	if r.warmup < 0 || r.measure < 1 {
		return r, fmt.Errorf("warmup/measure must be ≥ 0 / ≥ 1")
	}
	if r.warmup+r.measure > maxCycles {
		return r, fmt.Errorf("warmup+measure %d exceeds the service cap %d cycles", r.warmup+r.measure, maxCycles)
	}
	canon, err := ofar.CanonicalConfigJSON(r.cfg)
	if err != nil {
		return r, err
	}
	r.canon = canon
	return r, nil
}

// pointKey is the cache identity of one sweep point: FNV-1a over the
// canonical (execution-normalized) config JSON, the pattern, the exact load
// bits, the warm-up and measurement windows, and the engine digest. Folding
// the digest in means a build whose physics changed computes disjoint keys —
// a stale result is unreachable, not merely detectable.
func pointKey(canonCfg []byte, pattern string, load float64, warmup, measure int, digest uint64) uint64 {
	h := fnv.New64a()
	h.Write(canonCfg)
	fmt.Fprintf(h, "|%s|%016x|%d|%d|%016x", pattern, math.Float64bits(load), warmup, measure, digest)
	return h.Sum64()
}

// simWidth is the CPU claim of one simulated point: the same
// min(Workers, groups) budget RunLoadSweepOpt charges per network, so the
// service pool and the per-network router pools together never oversubscribe
// GOMAXPROCS.
func simWidth(cfg ofar.Config) int {
	if cfg.Workers <= 1 {
		return 1
	}
	w := cfg.Workers
	if cfg.ShardByGroup {
		groups := cfg.Groups
		if groups == 0 {
			groups = cfg.A*cfg.H + 1
		}
		if groups < w {
			w = groups
		}
	}
	return w
}
