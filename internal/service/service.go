// Package service is the simulation-as-a-service layer: a long-running
// HTTP/JSON server that accepts experiment requests (config + pattern +
// loads + windows), canonicalizes and hashes each point keyed on the
// engine's physics digest, and serves results from a determinism-backed
// cache. Because every run is bit-identical given (config, seed), a cached
// result IS the result: hits return in microseconds with no simulation.
//
// Misses coalesce singleflight-style (N concurrent identical requests → one
// simulation) and run on a bounded worker pool that composes with the
// engine's own parallelism budget; an admission gate sheds load with 429 +
// Retry-After once the queue would blow the configured latency bound.
// Per-point results stream to the client as NDJSON lines as they complete.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ofar"

	"ofar/internal/network"
)

// PointRunner computes one sweep point. The default is ofar.RunSweepPoint
// (the warm-fork path RunLoadSweepOpt uses); tests substitute counting or
// blocking runners.
type PointRunner func(cfg ofar.Config, ps ofar.PatternSpec, load float64, warmup, measure int, opt ofar.SweepOptions) (ofar.SteadyResult, bool, error)

// JobsRunner computes one job-set point (per-job statistics included). The
// default is ofar.RunJobs; tests substitute counting runners.
type JobsRunner func(cfg ofar.Config, w ofar.Workload, scale float64, warmup, measure int) (ofar.JobsResult, error)

// Options configures a Server. Zero values pick sensible defaults.
type Options struct {
	// CacheEntries bounds the in-memory result LRU (default 4096).
	CacheEntries int
	// DiskDir, when set, persists results (DiskDir/results) and warm
	// snapshots (DiskDir/warm) across restarts, both written with the
	// atomic temp-file + rename layout of the PR 6 warm cache.
	DiskDir string
	// Sims bounds concurrently executing simulations (default GOMAXPROCS).
	Sims int
	// MaxQueue bounds admitted-but-not-running points; beyond it requests
	// are shed with 429 (default 256).
	MaxQueue int
	// P99Bound, when > 0, sheds requests whose projected wait (queue depth ×
	// observed per-point cost / workers) exceeds it, keeping service latency
	// bounded under overload instead of queueing without limit.
	P99Bound time.Duration
	// MaxLoads bounds points per request (default 64).
	MaxLoads int
	// Runner substitutes the simulation function (tests).
	Runner PointRunner
	// JobsRunnerFn substitutes the job-set simulation function (tests).
	JobsRunnerFn JobsRunner
}

// Server is the sweep service. It implements http.Handler with three
// endpoints: POST /sweep (NDJSON point stream), GET /healthz, GET /metrics.
type Server struct {
	opts    Options
	digest  uint64
	cache   *resultCache
	flights flightGroup
	pool    *simPool
	met     *metrics
	mux     *http.ServeMux
	warmDir string
	runner  PointRunner
	jobsRun JobsRunner
}

// New assembles a server. Close it when done to stop the worker pool.
func New(opts Options) (*Server, error) {
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 4096
	}
	if opts.Sims <= 0 {
		opts.Sims = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 256
	}
	if opts.MaxLoads <= 0 {
		opts.MaxLoads = 64
	}
	s := &Server{
		opts:   opts,
		digest: ofar.EngineDigest(),
		met:    newMetrics(),
		runner: opts.Runner,
	}
	if s.runner == nil {
		s.runner = ofar.RunSweepPoint
	}
	s.jobsRun = opts.JobsRunnerFn
	if s.jobsRun == nil {
		s.jobsRun = ofar.RunJobs
	}
	resultsDir := ""
	if opts.DiskDir != "" {
		resultsDir = opts.DiskDir + "/results"
		s.warmDir = opts.DiskDir + "/warm"
	}
	var err error
	if s.cache, err = newResultCache(opts.CacheEntries, resultsDir, s.digest); err != nil {
		return nil, err
	}
	s.pool = newSimPool(opts.Sims, opts.MaxQueue)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Close stops the worker pool after the queue drains. Call only once no
// requests are in flight (e.g. after http.Server.Shutdown).
func (s *Server) Close() { s.pool.Close() }

// EngineDigest returns the physics fingerprint baked into every cache key.
func (s *Server) EngineDigest() uint64 { return s.digest }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "ok engine=%016x snapshot=v%d\n", s.digest, network.SnapshotVersion)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.writeTo(w, s.pool, s.cache)
}

// PointResponse is one NDJSON line of a sweep response: a completed point
// with its provenance — "cache" (no simulation), "computed" (this request
// led the simulation) or "coalesced" (joined another request's simulation).
// ElapsedUS is the service time of the point: for cache hits the lookup
// itself, for computed points queueing + simulation.
type PointResponse struct {
	Type      string          `json:"type"` // "point"
	Index     int             `json:"index"`
	Load      float64         `json:"load"`
	Key       string          `json:"key"`
	Source    string          `json:"source"`
	ElapsedUS int64           `json:"elapsed_us"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// SummaryResponse is the final NDJSON line of a sweep response.
type SummaryResponse struct {
	Type      string `json:"type"` // "summary"
	Points    int    `json:"points"`
	CacheHits int    `json:"cache_hits"`
	Computed  int    `json:"computed"`
	Coalesced int    `json:"coalesced"`
	Errors    int    `json:"errors"`
	ElapsedUS int64  `json:"elapsed_us"`
	Engine    string `json:"engine"`
}

// errorResponse is the body of a non-200 answer.
type errorResponse struct {
	Error      string  `json:"error"`
	RetryAfter float64 `json:"retry_after_s,omitempty"`
}

// reqState tracks one request's reservations so unused ones are returned.
type reqState struct {
	reserved int64 // pool slots this request reserved and has not yet used
}

// consume uses one of the request's reservations if any remain; the pool
// clamps over-consumption from racing leaders.
func (rs *reqState) consume() {
	if atomic.AddInt64(&rs.reserved, -1) < 0 {
		atomic.AddInt64(&rs.reserved, 1)
	}
}

func writeJSONError(w http.ResponseWriter, code int, resp errorResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a sweep request"})
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, errorResponse{Error: "parsing request: " + err.Error()})
		return
	}
	res, err := resolveRequest(req, s.opts.MaxLoads)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	keys := make([]uint64, len(res.loads))
	for i, l := range res.loads {
		keys[i] = pointKey(res.canon, res.patternName(), l, res.warmup, res.measure, s.digest)
	}

	// Admission: count the points that would create NEW work — not cached,
	// not already in flight, not duplicated within this request — and
	// reserve pool slots for exactly those before anything streams. A
	// request that only reads the cache or piggybacks on open flights is
	// always admitted; one that would overflow the queue (or the latency
	// bound) is shed before any simulation starts.
	newWork := 0
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		if s.cache.Has(k) || s.flights.Pending(k) {
			continue
		}
		newWork++
	}
	rs := &reqState{}
	if newWork > 0 {
		retry, ok := s.pool.Admit(newWork, s.opts.P99Bound, s.met.pointCost())
		if !ok {
			s.met.shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
			writeJSONError(w, http.StatusTooManyRequests, errorResponse{
				Error:      "overloaded: admission queue full or latency bound exceeded",
				RetryAfter: retry.Seconds(),
			})
			return
		}
		rs.reserved = int64(newWork)
	}
	defer func() {
		if n := atomic.LoadInt64(&rs.reserved); n > 0 {
			s.pool.Release(int(n))
		}
	}()
	s.met.requests.Add(1)

	// Stream points as they complete. Each point runs in its own goroutine
	// (cache hits return instantly; misses wait on the pool), and the
	// response is one NDJSON line per point plus a final summary.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	start := time.Now()
	lines := make(chan PointResponse, len(res.loads))
	for i := range res.loads {
		go func(i int) {
			lines <- s.point(rs, res, keys[i], i)
		}(i)
	}
	var sum SummaryResponse
	enc := json.NewEncoder(w)
	for range res.loads {
		line := <-lines
		sum.Points++
		switch line.Source {
		case "cache":
			sum.CacheHits++
		case "computed":
			sum.Computed++
		case "coalesced":
			sum.Coalesced++
		}
		if line.Error != "" {
			sum.Errors++
		}
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	sum.Type = "summary"
	sum.ElapsedUS = time.Since(start).Microseconds()
	sum.Engine = fmt.Sprintf("%016x", s.digest)
	enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// point produces one sweep point: result cache, then singleflight, then the
// admission-controlled pool. The returned line carries the result bytes
// exactly as the simulation marshaled them, so identical points are
// byte-identical across cache hits, coalesced waits and fresh computations.
func (s *Server) point(rs *reqState, res resolved, key uint64, index int) PointResponse {
	line := PointResponse{
		Type:  "point",
		Index: index,
		Load:  res.loads[index],
		Key:   fmt.Sprintf("%016x", key),
	}
	start := time.Now()
	if data, ok := s.cache.Get(key); ok {
		s.met.hits.Add(1)
		line.Source = "cache"
		line.Result = data
		line.ElapsedUS = time.Since(start).Microseconds()
		s.met.observePoint(time.Since(start))
		return line
	}
	data, shared, err := s.flights.Do(key, func() ([]byte, error) {
		// Double-check under the flight: the leader may have completed
		// between our cache probe and this flight opening.
		if data, ok := s.cache.Get(key); ok {
			return data, nil
		}
		rs.consume()
		var (
			out  []byte
			rerr error
		)
		done := make(chan struct{})
		s.pool.Submit(simWidth(res.cfg), func() {
			defer close(done)
			t0 := time.Now()
			if res.jobs != nil {
				r, err := s.jobsRun(res.cfg, *res.jobs, res.loads[index], res.warmup, res.measure)
				s.met.observeSim(time.Since(t0))
				if err != nil {
					rerr = err
					return
				}
				out, rerr = json.Marshal(r)
				return
			}
			r, restored, err := s.runner(res.cfg, res.ps, res.loads[index], res.warmup, res.measure, s.sweepOptions())
			s.met.observeSim(time.Since(t0))
			if err != nil {
				rerr = err
				return
			}
			if restored {
				s.met.restored.Add(1)
			}
			out, rerr = json.Marshal(r)
		})
		<-done
		if rerr != nil {
			return nil, rerr
		}
		s.cache.Add(key, out)
		return out, nil
	})
	line.ElapsedUS = time.Since(start).Microseconds()
	s.met.observePoint(time.Since(start))
	if shared {
		s.met.coalesced.Add(1)
		line.Source = "coalesced"
	} else {
		s.met.misses.Add(1)
		line.Source = "computed"
	}
	if err != nil {
		s.met.errored.Add(1)
		line.Error = err.Error()
		return line
	}
	line.Result = data
	return line
}

// sweepOptions builds the per-point SweepOptions: serial within the point
// (the pool provides cross-point concurrency); with a disk directory
// configured, the shared warm-snapshot cache so long points warm once and
// fork per load across requests; and the metrics phase sink, so /metrics
// can report where the service's simulation seconds go per Step phase.
func (s *Server) sweepOptions() ofar.SweepOptions {
	return ofar.SweepOptions{
		Parallel:      1,
		CheckpointDir: s.warmDir,
		RestoreDir:    s.warmDir,
		PhaseSink:     s.met.observePhases,
	}
}

// ErrClosed is returned by helpers once the server is closed.
var ErrClosed = errors.New("service: server closed")
