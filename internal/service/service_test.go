package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ofar"
)

// testConfig is the tiny h=2 system (36 routers, 72 nodes) every service
// test simulates: big enough to exercise the real engine, small enough that
// a cold point takes milliseconds.
func testConfig() ofar.Config {
	cfg := ofar.DefaultConfig(2)
	cfg.Seed = 7
	return cfg
}

func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close() // waits for in-flight requests
		srv.Close()
	})
	return srv, ts
}

// sweepResponse is one parsed NDJSON sweep reply.
type sweepResponse struct {
	status  int
	points  []PointResponse
	summary SummaryResponse
	raw     string
}

func postSweep(t *testing.T, url string, req Request) sweepResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := sweepResponse{status: resp.StatusCode}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out.raw = string(raw)
	if resp.StatusCode != http.StatusOK {
		return out
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case "point":
			var p PointResponse
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				t.Fatal(err)
			}
			out.points = append(out.points, p)
		case "summary":
			if err := json.Unmarshal(sc.Bytes(), &out.summary); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown line type %q", probe.Type)
		}
	}
	return out
}

func countingRunner(calls *atomic.Int64) PointRunner {
	return func(cfg ofar.Config, ps ofar.PatternSpec, load float64, warmup, measure int, opt ofar.SweepOptions) (ofar.SteadyResult, bool, error) {
		calls.Add(1)
		return ofar.RunSweepPoint(cfg, ps, load, warmup, measure, opt)
	}
}

// TestServerSmoke is the end-to-end acceptance run: a cold sweep simulates
// every point and matches RunLoadSweepOpt byte for byte; the identical
// second request is served entirely from cache — zero additional
// simulations, ≥100× faster per point than the cold run.
func TestServerSmoke(t *testing.T) {
	var calls atomic.Int64
	_, ts := startServer(t, Options{Sims: 2, MaxQueue: 16, Runner: countingRunner(&calls)})

	cfg := testConfig()
	loads := []float64{0.05, 0.2}
	const warmup, measure = 2000, 1000
	req := Request{Config: &cfg, Loads: loads, Warmup: warmup, Measure: measure}

	cold := postSweep(t, ts.URL, req)
	if cold.status != http.StatusOK {
		t.Fatalf("cold request: HTTP %d: %s", cold.status, cold.raw)
	}
	if len(cold.points) != len(loads) {
		t.Fatalf("cold: %d points, want %d", len(cold.points), len(loads))
	}
	if got := calls.Load(); got != int64(len(loads)) {
		t.Fatalf("cold run simulated %d points, want %d", got, len(loads))
	}
	for _, p := range cold.points {
		if p.Error != "" {
			t.Fatalf("point %d failed: %s", p.Index, p.Error)
		}
		if p.Source != "computed" {
			t.Errorf("cold point %d source = %q, want computed", p.Index, p.Source)
		}
	}

	// (c) Responses must be byte-identical to RunLoadSweepOpt run directly.
	direct, _, err := ofar.RunLoadSweepOpt(cfg, ofar.Uniform(), loads, warmup, measure, ofar.SweepOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cold.points {
		want, err := json.Marshal(direct[p.Index])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Result, want) {
			t.Errorf("point %d differs from direct RunLoadSweepOpt:\n service: %s\n direct:  %s", p.Index, p.Result, want)
		}
	}

	// (a) The repeated identical request hits the cache on every point, runs
	// no simulation, and each point is served ≥100× faster.
	warm := postSweep(t, ts.URL, req)
	if warm.status != http.StatusOK {
		t.Fatalf("warm request: HTTP %d", warm.status)
	}
	if got := calls.Load(); got != int64(len(loads)) {
		t.Fatalf("warm run re-simulated: %d total calls, want still %d", got, len(loads))
	}
	if warm.summary.CacheHits != len(loads) {
		t.Fatalf("warm summary: %d cache hits, want %d (summary %+v)", warm.summary.CacheHits, len(loads), warm.summary)
	}
	for _, p := range warm.points {
		if p.Source != "cache" {
			t.Errorf("warm point %d source = %q, want cache", p.Index, p.Source)
		}
		cold := cold.points[indexOf(t, cold.points, p.Index)]
		if !bytes.Equal(p.Result, cold.Result) {
			t.Errorf("warm point %d bytes differ from cold", p.Index)
		}
		coldUS := cold.ElapsedUS
		warmUS := p.ElapsedUS
		if warmUS < 1 {
			warmUS = 1 // sub-microsecond hit
		}
		if coldUS/warmUS < 100 {
			t.Errorf("point %d: cache hit only %dx faster (cold %dµs, hit %dµs), want ≥100x",
				p.Index, coldUS/warmUS, coldUS, p.ElapsedUS)
		}
	}
}

func indexOf(t *testing.T, points []PointResponse, index int) int {
	t.Helper()
	for i, p := range points {
		if p.Index == index {
			return i
		}
	}
	t.Fatalf("point index %d missing", index)
	return -1
}

// TestConcurrentIdenticalRequestsCoalesce: (b) N=8 concurrent identical cold
// requests trigger exactly one simulation; everyone gets the same bytes.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	var calls atomic.Int64
	_, ts := startServer(t, Options{Sims: 4, MaxQueue: 32, Runner: countingRunner(&calls)})

	cfg := testConfig()
	req := Request{Config: &cfg, Loads: []float64{0.3}, Warmup: 1500, Measure: 800}

	const n = 8
	var wg sync.WaitGroup
	responses := make([]sweepResponse, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i] = postSweep(t, ts.URL, req)
		}(i)
	}
	close(start)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want exactly 1", n, got)
	}
	var first []byte
	for i, r := range responses {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: HTTP %d: %s", i, r.status, r.raw)
		}
		if len(r.points) != 1 || r.points[0].Error != "" {
			t.Fatalf("request %d: bad points %+v", i, r.points)
		}
		if first == nil {
			first = r.points[0].Result
		} else if !bytes.Equal(first, r.points[0].Result) {
			t.Errorf("request %d got different bytes than request 0", i)
		}
		switch r.points[0].Source {
		case "computed", "coalesced", "cache": // one leader; late arrivals may hit the cache
		default:
			t.Errorf("request %d: unexpected source %q", i, r.points[0].Source)
		}
	}
}

// TestOverloadSheds429: (d) once the admission queue is full, requests are
// refused with 429 + Retry-After instead of queueing without bound.
func TestOverloadSheds429(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	blockingRunner := func(cfg ofar.Config, ps ofar.PatternSpec, load float64, warmup, measure int, opt ofar.SweepOptions) (ofar.SteadyResult, bool, error) {
		started <- struct{}{}
		<-block
		return ofar.SteadyResult{Routing: cfg.Routing, Pattern: ps.Name(), Load: load}, false, nil
	}
	srv, ts := startServer(t, Options{Sims: 1, MaxQueue: 1, CacheEntries: 8, Runner: blockingRunner})

	cfg := testConfig()
	mkReq := func(load float64) Request {
		return Request{Config: &cfg, Loads: []float64{load}, Warmup: 100, Measure: 100}
	}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	wg.Add(1)
	go func() { defer wg.Done(); codes[0] = postSweep(t, ts.URL, mkReq(0.1)).status }()
	<-started // the only worker is now occupied

	wg.Add(1)
	go func() { defer wg.Done(); codes[1] = postSweep(t, ts.URL, mkReq(0.2)).status }()
	// Wait until the second request's point is admitted (queued).
	deadline := time.Now().Add(5 * time.Second)
	for srv.pool.Depth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full (MaxQueue=1) + worker busy: the third distinct request must
	// be shed, not queued.
	body, _ := json.Marshal(mkReq(0.3))
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded request: HTTP %d (%s), want 429", resp.StatusCode, msg)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 without a usable Retry-After header (%q)", ra)
	}

	close(block) // let the admitted requests finish
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("admitted request %d: HTTP %d, want 200", i, c)
		}
	}
}

// TestDiskPersistenceAcrossRestart: results persisted by one server instance
// are served from the result cache by a fresh instance (same physics) with
// no simulation — and the warm-snapshot cache is shared the same way.
func TestDiskPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	req := Request{Config: &cfg, Loads: []float64{0.15}, Warmup: 600, Measure: 400}

	var calls1 atomic.Int64
	srv1, err := New(Options{DiskDir: dir, Runner: countingRunner(&calls1)})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	first := postSweep(t, ts1.URL, req)
	ts1.Close()
	srv1.Close()
	if first.status != http.StatusOK || calls1.Load() != 1 {
		t.Fatalf("first instance: HTTP %d, %d sims", first.status, calls1.Load())
	}

	var calls2 atomic.Int64
	_, ts2 := startServer(t, Options{DiskDir: dir, Runner: countingRunner(&calls2)})
	second := postSweep(t, ts2.URL, req)
	if second.status != http.StatusOK {
		t.Fatalf("second instance: HTTP %d", second.status)
	}
	if got := calls2.Load(); got != 0 {
		t.Fatalf("restarted server re-simulated %d points; the persisted result should have served", got)
	}
	if second.points[0].Source != "cache" {
		t.Errorf("source = %q, want cache", second.points[0].Source)
	}
	if !bytes.Equal(first.points[0].Result, second.points[0].Result) {
		t.Error("persisted result differs across instances")
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	var calls atomic.Int64
	_, ts := startServer(t, Options{Runner: countingRunner(&calls)})
	cfg := testConfig()
	req := Request{Config: &cfg, Loads: []float64{0.1}, Warmup: 300, Measure: 200}
	postSweep(t, ts.URL, req)
	postSweep(t, ts.URL, req)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(health), "ok engine=") {
		t.Fatalf("healthz: HTTP %d %q", resp.StatusCode, health)
	}
	if !strings.Contains(string(health), fmt.Sprintf("%016x", ofar.EngineDigest())) {
		t.Error("healthz does not report the engine digest")
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metricsBody)
	for _, want := range []string{
		"sweepd_cache_hits_total 1",
		"sweepd_cache_misses_total 1",
		"sweepd_requests_total 2",
		"sweepd_queue_depth 0",
		"sweepd_inflight_sims 0",
		"sweepd_point_latency_seconds{quantile=\"0.99\"}",
		"sweepd_cache_hit_rate 0.5",
		"sweepd_step_phase_seconds_total{phase=\"generate\"}",
		"sweepd_step_phase_seconds_total{phase=\"routers\"}",
		"sweepd_step_phase_cycles_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := startServer(t, Options{})
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := map[string]string{
		"no loads":        `{"h":2}`,
		"bad pattern":     `{"h":2,"loads":[0.1],"pattern":"NOPE"}`,
		"bad load":        `{"h":2,"loads":[-0.5]}`,
		"bad json":        `{"h":`,
		"bad routing":     `{"h":2,"loads":[0.1],"routing":"WAT"}`,
		"huge window":     `{"h":2,"loads":[0.1],"warmup":9000000,"measure":9000000}`,
		"workers too big": `{"config":{"P":2,"A":4,"H":2,"Workers":999},"loads":[0.1]}`,
	}
	for name, body := range cases {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
	resp, err := http.Get(ts.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sweep: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestServerShorthandRequest exercises the h/routing/pattern shorthand the
// CLI and curl examples use, including the baseline ring-drop convention.
func TestServerShorthandRequest(t *testing.T) {
	var calls atomic.Int64
	_, ts := startServer(t, Options{Runner: countingRunner(&calls)})
	r := postSweep(t, ts.URL, Request{H: 2, Routing: "min", Pattern: "ADV+1", Loads: []float64{0.1}, Warmup: 300, Measure: 300})
	if r.status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", r.status, r.raw)
	}
	if len(r.points) != 1 || r.points[0].Error != "" {
		t.Fatalf("points: %+v", r.points)
	}
	var got ofar.SteadyResult
	if err := json.Unmarshal(r.points[0].Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.Routing != ofar.MIN || got.Pattern != "ADV+1" {
		t.Errorf("result routing/pattern = %v/%q, want MIN/ADV+1", got.Routing, got.Pattern)
	}
}

// TestServerJobsRequest: a job-set request runs through the same queue,
// cache and NDJSON stream as classic sweeps — loads act as scale factors,
// each point carries a full per-job JobsResult, and the identical follow-up
// request is served from cache without re-simulating.
func TestServerJobsRequest(t *testing.T) {
	var calls atomic.Int64
	stub := func(cfg ofar.Config, w ofar.Workload, scale float64, warmup, measure int) (ofar.JobsResult, error) {
		calls.Add(1)
		return ofar.RunJobs(cfg, w, scale, warmup, measure)
	}
	_, ts := startServer(t, Options{Sims: 2, MaxQueue: 8, JobsRunnerFn: stub})
	req := Request{
		H:       2,
		Jobs:    "a2a:12@0.5,ring:12@0.2",
		Loads:   []float64{0.5, 1.0},
		Warmup:  200,
		Measure: 400,
	}
	r := postSweep(t, ts.URL, req)
	if r.status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", r.status, r.raw)
	}
	if len(r.points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.points))
	}
	if calls.Load() != 2 {
		t.Fatalf("cold request simulated %d points, want 2", calls.Load())
	}
	for _, p := range r.points {
		i := p.Index // points stream in completion order
		if p.Error != "" {
			t.Fatalf("point %d: %s", i, p.Error)
		}
		var jr ofar.JobsResult
		if err := json.Unmarshal(p.Result, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Scale != req.Loads[i] {
			t.Errorf("point %d scale %v, want %v", i, jr.Scale, req.Loads[i])
		}
		if len(jr.Jobs) != 2 {
			t.Errorf("point %d carries %d job rows, want 2", i, len(jr.Jobs))
		}
		if jr.Jobs[0].Job != "a2a0" || jr.Jobs[1].Job != "ring1" {
			t.Errorf("point %d job names %q/%q", i, jr.Jobs[0].Job, jr.Jobs[1].Job)
		}
	}

	// Identical request: all cache, no new simulations.
	r2 := postSweep(t, ts.URL, req)
	if r2.status != http.StatusOK {
		t.Fatalf("second request: HTTP %d", r2.status)
	}
	if calls.Load() != 2 {
		t.Errorf("cached request re-simulated: %d calls total, want 2", calls.Load())
	}
	for i, p := range r2.points {
		if p.Source != "cache" {
			t.Errorf("point %d source %q, want cache", i, p.Source)
		}
	}

	// A different mapping is a different cache identity.
	req.JobMap = "random"
	r3 := postSweep(t, ts.URL, req)
	if r3.status != http.StatusOK {
		t.Fatalf("random-map request: HTTP %d", r3.status)
	}
	if calls.Load() != 4 {
		t.Errorf("random-map request hit the linear cache: %d calls, want 4", calls.Load())
	}

	// Jobs and pattern together must be rejected.
	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"h":2,"jobs":"a2a:8@0.5","pattern":"UN","loads":[0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("jobs+pattern: HTTP %d, want 400", resp.StatusCode)
	}
}
