package service

import "sync"

// flightGroup coalesces concurrent computations of the same point key onto
// one execution: the first caller becomes the leader and runs fn, every
// caller that arrives while the flight is open blocks and shares the
// leader's result. This is what turns N identical concurrent cache misses
// into exactly one simulation.
//
// Errors are shared but not cached: once the flight completes, the key is
// forgotten, so a later request retries rather than replaying a transient
// failure forever.
type flightGroup struct {
	mu sync.Mutex
	m  map[uint64]*flight
}

type flight struct {
	wg   sync.WaitGroup
	data []byte
	err  error
}

// Do runs fn for key, unless a flight for key is already open, in which case
// it waits for that flight and returns its result with shared=true.
func (g *flightGroup) Do(key uint64, fn func() ([]byte, error)) (data []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[uint64]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.data, true, f.err
	}
	f := &flight{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.data, f.err = fn()
	f.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return f.data, false, f.err
}

// Pending reports whether a flight for key is currently open. The admission
// path uses it to avoid reserving pool slots for work that is already being
// computed on someone else's behalf.
func (g *flightGroup) Pending(key uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.m[key]
	return ok
}
