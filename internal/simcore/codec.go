package simcore

import (
	"fmt"
	"math"
)

// Enc and Dec are the little-endian binary codec behind simulator snapshots.
// The format is deliberately dumb — fixed-width integers, length-prefixed
// byte strings, no varints, no framing — because the consumers are the
// snapshot writers/readers in the stats, router, topology and network
// packages, which know their own structure and only need the bytes to round
// trip deterministically.
//
// Dec latches its first error: every accessor after a failure returns the
// zero value without advancing, so decode code can run straight-line and
// check Err() once per logical section. Every read is bounds-checked against
// the remaining input; a truncated or corrupted stream produces an error,
// never a panic. Counts must go through Len, which enforces a caller-supplied
// upper bound so a corrupted length can neither allocate unbounded memory nor
// index out of range downstream.

// Enc appends fixed-width values to a growing buffer. Encoding never fails.
type Enc struct {
	b []byte
}

// Data returns the encoded bytes.
func (e *Enc) Data() []byte { return e.b }

// U64 appends one unsigned 64-bit value, little endian.
func (e *Enc) U64(v uint64) {
	e.b = append(e.b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends one signed 64-bit value.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends a machine int as a signed 64-bit value.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// U32 appends one unsigned 32-bit value, little endian.
func (e *Enc) U32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U16 appends one unsigned 16-bit value, little endian.
func (e *Enc) U16(v uint16) { e.b = append(e.b, byte(v), byte(v>>8)) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a strict 0/1 byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 by its IEEE-754 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string.
func (e *Enc) Bytes(b []byte) {
	e.Int(len(b))
	e.b = append(e.b, b...)
}

// Raw appends bytes without a length prefix (fixed-size fields like magic
// strings, where the reader knows the width).
func (e *Enc) Raw(b []byte) { e.b = append(e.b, b...) }

// Dec reads the Enc format back, latching the first error.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec wraps a byte slice for decoding. The slice is not copied.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining reports how many bytes are left unread.
func (d *Dec) Remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.b) - d.off
}

// Fail latches a formatted error (decoders use it for semantic validation —
// a structurally readable value that is impossible for the target state).
func (d *Dec) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("simcore: decode: "+format, args...)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b)-d.off < n {
		d.Fail("truncated input: need %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

// U64 reads one unsigned 64-bit value.
func (d *Dec) U64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

// I64 reads one signed 64-bit value.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads a machine int, failing on values outside the int range.
func (d *Dec) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.Fail("value %d overflows int", v)
		return 0
	}
	return int(v)
}

// U32 reads one unsigned 32-bit value.
func (d *Dec) U32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24
}

// U16 reads one unsigned 16-bit value.
func (d *Dec) U16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return uint16(s[0]) | uint16(s[1])<<8
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

// Bool reads a strict 0/1 byte; any other value is an error (it would mean
// the stream is misaligned, and silently coercing would mask that).
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Fail("invalid boolean byte at offset %d", d.off-1)
		return false
	}
}

// F64 reads a float64 from its bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Len reads a count and validates it against [0, max]. Every decoded count
// must pass through here so corrupted lengths fail instead of driving huge
// allocations or out-of-range indexing.
func (d *Dec) Len(max int) int {
	v := d.I64()
	if v < 0 || v > int64(max) {
		d.Fail("count %d outside [0,%d]", v, max)
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte string of at most max bytes. The
// returned slice aliases the input.
func (d *Dec) Bytes(max int) []byte {
	n := d.Len(max)
	if d.err != nil {
		return nil
	}
	return d.take(n)
}

// Raw reads n bytes without a length prefix.
func (d *Dec) Raw(n int) []byte { return d.take(n) }

// Checksum64 is the FNV-1a hash of a byte string, used to verify snapshot
// payload integrity before any of it is decoded into live state.
func Checksum64(b []byte) uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return h
}
