package simcore

import (
	"math"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Enc
	e.U64(0xdeadbeefcafef00d)
	e.I64(-42)
	e.Int(123456)
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.Bytes([]byte("hello"))
	e.Bytes(nil)
	e.Raw([]byte{9, 9})

	d := NewDec(e.Data())
	if got := d.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 123456 {
		t.Errorf("Int = %d", got)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := string(d.Bytes(16)); got != "hello" {
		t.Errorf("Bytes = %q", got)
	}
	if got := d.Bytes(16); len(got) != 0 {
		t.Errorf("empty Bytes = %v", got)
	}
	if got := d.Raw(2); got[0] != 9 || got[1] != 9 {
		t.Errorf("Raw = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d", d.Remaining())
	}
}

// TestCodecTruncation proves every accessor fails cleanly on short input and
// that the error latches: after the first failure everything returns zero.
func TestCodecTruncation(t *testing.T) {
	d := NewDec([]byte{1, 2, 3})
	if got := d.U64(); got != 0 {
		t.Errorf("truncated U64 = %d", got)
	}
	if d.Err() == nil {
		t.Fatal("truncated U64 did not error")
	}
	// Latched: subsequent reads stay zero and do not panic.
	if d.U8() != 0 || d.Bool() || d.Int() != 0 || d.Bytes(8) != nil || d.Raw(1) != nil {
		t.Error("reads after a latched error returned data")
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining after error = %d", d.Remaining())
	}
}

func TestCodecValidation(t *testing.T) {
	t.Run("bad bool", func(t *testing.T) {
		d := NewDec([]byte{2})
		d.Bool()
		if d.Err() == nil {
			t.Error("boolean byte 2 accepted")
		}
	})
	t.Run("negative length", func(t *testing.T) {
		var e Enc
		e.I64(-1)
		d := NewDec(e.Data())
		d.Len(10)
		if d.Err() == nil {
			t.Error("negative count accepted")
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		var e Enc
		e.I64(11)
		d := NewDec(e.Data())
		d.Len(10)
		if d.Err() == nil {
			t.Error("count above max accepted")
		}
	})
	t.Run("huge bytes length", func(t *testing.T) {
		var e Enc
		e.I64(1 << 40) // length prefix far beyond the input; must not allocate
		d := NewDec(e.Data())
		d.Bytes(64)
		if d.Err() == nil {
			t.Error("huge byte length accepted")
		}
	})
}

func TestRNGSetState(t *testing.T) {
	r := NewRNG(7)
	r.Uint64()
	s := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := NewRNG(99)
	if err := r2.SetState(s); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("draw %d: got %d want %d", i, got, w)
		}
	}
	if err := r2.SetState([4]uint64{}); err == nil {
		t.Error("all-zero state accepted")
	}
}

// TestWheelForEachDelay proves the delay/order contract the snapshot writer
// relies on: re-scheduling the visited (delay, event) pairs into a fresh
// wheel reproduces the original delivery stream exactly.
func TestWheelForEachDelay(t *testing.T) {
	w := NewWheel[int](10)
	w.Advance() // skew now so modular slot indexing is exercised
	w.Advance()
	w.Schedule(10, 100)
	w.Schedule(0, 1)
	w.Schedule(0, 2)
	w.Schedule(3, 30)
	w.Schedule(3, 31)

	w2 := NewWheel[int](10)
	n := 0
	w.ForEachDelay(func(delay int, ev int) {
		w2.Schedule(delay, ev)
		n++
	})
	if n != w.Pending() || w2.Pending() != w.Pending() {
		t.Fatalf("visited %d events, pending %d/%d", n, w.Pending(), w2.Pending())
	}
	for cycle := 0; cycle <= 10; cycle++ {
		a, b := w.Advance(), w2.Advance()
		if len(a) != len(b) {
			t.Fatalf("cycle %d: %v vs %v", cycle, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cycle %d event %d: %d vs %d", cycle, i, a[i], b[i])
			}
		}
	}
}
