// Package simcore provides the low-level machinery shared by the
// single-cycle network simulator: a fast deterministic PRNG and a timing
// wheel that delivers events (packet arrivals, credit returns) at future
// cycles without a priority queue.
package simcore

import "fmt"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded through splitmix64). Every stochastic component of
// the simulator (traffic sources, misroute port selection, allocator tie
// breaks) owns an RNG derived from the run seed, which makes whole
// simulations bit-reproducible regardless of map iteration order or
// scheduling.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, so that
// nearby seeds produce uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state (cannot happen via splitmix64, but keep the
	// invariant explicit).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Derive returns a new independent generator; the stream index separates
// sub-streams derived from the same parent.
func (r *RNG) Derive(stream uint64) *RNG {
	return NewRNG(r.Uint64() ^ (stream * 0x9e3779b97f4a7c15))
}

// State returns a snapshot of the generator's internal state. Two RNGs with
// equal state produce identical streams; tests use this to prove a code path
// consumed no randomness (e.g. that an idle router cycle draws nothing).
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a snapshot taken
// by State, resuming the stream exactly where it was captured. The all-zero
// state is rejected: xoshiro256** is a fixed point there (the stream would
// be all zeros forever), and no reachable generator ever has it.
func (r *RNG) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return fmt.Errorf("simcore: RNG state cannot be all zero")
	}
	r.s = s
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simcore: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return
}
