package simcore

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestRNGDeriveIndependent(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Derive(1)
	parent2 := NewRNG(7)
	_ = parent2.Derive(1)
	c2 := parent2.Derive(2)
	if c1.Uint64() == c2.Uint64() {
		t.Error("derived streams 1 and 2 coincide")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / 100000; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %f, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) missed")
		}
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if math.Abs(float64(hits)/draws-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) rate %f", float64(hits)/draws)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestWheelDeliversInOrder(t *testing.T) {
	w := NewWheel[int](10)
	w.Schedule(0, 100)
	w.Schedule(3, 103)
	w.Schedule(3, 203)
	w.Schedule(10, 110)
	got := map[int64][]int{}
	for c := int64(0); c <= 10; c++ {
		for _, ev := range w.Advance() {
			got[c] = append(got[c], ev)
		}
	}
	if len(got[0]) != 1 || got[0][0] != 100 {
		t.Errorf("cycle 0: %v", got[0])
	}
	if len(got[3]) != 2 {
		t.Errorf("cycle 3: %v", got[3])
	}
	if len(got[10]) != 1 || got[10][0] != 110 {
		t.Errorf("cycle 10: %v", got[10])
	}
	if w.Pending() != 0 {
		t.Errorf("pending=%d", w.Pending())
	}
}

func TestWheelWrapsAround(t *testing.T) {
	w := NewWheel[int](4)
	for round := 0; round < 20; round++ {
		w.Schedule(4, round)
		// delay d is delivered on the (d+1)-th Advance after scheduling.
		for i := 0; i < 4; i++ {
			if evs := w.Advance(); len(evs) != 0 {
				t.Fatalf("round %d: early delivery %v", round, evs)
			}
		}
		evs := w.Advance()
		if len(evs) != 1 || evs[0] != round {
			t.Fatalf("round %d: got %v", round, evs)
		}
	}
}

// TestWheelScheduleDuringAdvanceIteration schedules at delay == horizon —
// the slot that Advance just drained — while iterating the returned slice.
// With the old slot-aliasing Advance, those appends wrote into the backing
// array of the slice being iterated: scheduling two events per consumed
// event overtakes the read position and corrupts the not-yet-read tail.
func TestWheelScheduleDuringAdvanceIteration(t *testing.T) {
	const horizon = 4
	w := NewWheel[int](horizon)
	w.Schedule(0, 1)
	w.Schedule(0, 2)
	w.Schedule(0, 3)
	due := w.Advance()
	var got []int
	for i := 0; i < len(due); i++ {
		got = append(got, due[i])
		w.Schedule(horizon, 100+due[i])
		w.Schedule(horizon, 200+due[i])
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("due slice corrupted by Schedule during iteration: %v", got)
	}
	// The rescheduled events must arrive intact horizon cycles later:
	// delay d is delivered on the (d+1)-th Advance after scheduling.
	for i := 0; i < horizon; i++ {
		if evs := w.Advance(); len(evs) != 0 {
			t.Fatalf("early delivery %v", evs)
		}
	}
	evs := w.Advance()
	want := []int{101, 201, 102, 202, 103, 203}
	if len(evs) != len(want) {
		t.Fatalf("rescheduled events lost: %v", evs)
	}
	for i, v := range want {
		if evs[i] != v {
			t.Fatalf("rescheduled events corrupted: got %v, want %v", evs, want)
		}
	}
	if w.Pending() != 0 {
		t.Errorf("pending=%d", w.Pending())
	}
}

// TestWheelAdvanceClearsDueTail pins the arena-hygiene fix in Advance: the
// recycled due slice is reused across cycles with append(due[:0], ...), so a
// large batch (a burst peak) used to leave its pointers live in the backing
// array's tail for the rest of the run. After a smaller batch, the tail past
// the new length must be zeroed so the old events become collectable.
func TestWheelAdvanceClearsDueTail(t *testing.T) {
	w := NewWheel[*int](4)
	big := make([]*int, 8)
	for i := range big {
		v := i
		big[i] = &v
		w.Schedule(0, big[i])
	}
	if got := w.Advance(); len(got) != len(big) {
		t.Fatalf("burst batch: got %d events, want %d", len(got), len(big))
	}
	// Smaller follow-up batch reuses the same arena.
	v := 99
	w.Schedule(0, &v)
	due := w.Advance()
	if len(due) != 1 || *due[0] != 99 {
		t.Fatalf("follow-up batch: %v", due)
	}
	tail := due[1:cap(due)]
	for j, ev := range tail {
		if ev != nil {
			t.Fatalf("due arena tail[%d] still pins an event from the larger batch", j)
		}
	}
	// An empty batch must clear the single survivor too.
	empty := w.Advance()
	if len(empty) != 0 {
		t.Fatalf("expected empty batch, got %v", empty)
	}
	for j, ev := range empty[:cap(empty)] {
		if ev != nil {
			t.Fatalf("due arena[%d] still pins an event after an empty batch", j)
		}
	}
}

func TestWheelPanicsOutsideHorizon(t *testing.T) {
	w := NewWheel[int](5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.Schedule(6, 1)
}

func TestWheelCounts(t *testing.T) {
	w := NewWheel[string](8)
	w.Schedule(1, "a")
	w.Schedule(2, "b")
	if w.Pending() != 2 {
		t.Fatalf("pending=%d", w.Pending())
	}
	w.Advance()
	w.Advance()
	w.Advance()
	if w.Pending() != 0 || w.Now() != 3 {
		t.Fatalf("pending=%d now=%d", w.Pending(), w.Now())
	}
}
