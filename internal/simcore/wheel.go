package simcore

// Wheel is a timing wheel delivering opaque events at future cycles. The
// simulator uses it for in-flight packets (arrival = departure + link
// latency) and credit returns. The horizon must exceed the largest latency
// scheduled; Schedule panics otherwise, which would indicate a configuration
// bug rather than a runtime condition.
type Wheel[T any] struct {
	slots [][]T
	now   int64
	count int
}

// NewWheel builds a wheel with the given horizon (maximum schedulable delay).
func NewWheel[T any](horizon int) *Wheel[T] {
	if horizon < 1 {
		horizon = 1
	}
	return &Wheel[T]{slots: make([][]T, horizon+1)}
}

// Schedule places ev at delay cycles in the future. delay must be in
// [0, horizon]; delay 0 means "deliverable at the next Advance".
func (w *Wheel[T]) Schedule(delay int, ev T) {
	if delay < 0 || delay >= len(w.slots) {
		panic("simcore: event delay outside wheel horizon")
	}
	idx := (int(w.now) + delay) % len(w.slots)
	w.slots[idx] = append(w.slots[idx], ev)
	w.count++
}

// Advance moves the wheel one cycle forward and returns the events due now.
// The returned slice is owned by the wheel and valid until the slot wraps
// (horizon cycles later); callers must consume it before the next wrap.
func (w *Wheel[T]) Advance() []T {
	idx := int(w.now) % len(w.slots)
	due := w.slots[idx]
	w.slots[idx] = w.slots[idx][:0]
	w.now++
	w.count -= len(due)
	return due
}

// Pending reports how many events are scheduled but not yet delivered.
func (w *Wheel[T]) Pending() int { return w.count }

// Now returns the wheel's current cycle (number of Advance calls so far).
func (w *Wheel[T]) Now() int64 { return w.now }
