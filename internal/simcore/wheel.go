package simcore

// Wheel is a timing wheel delivering opaque events at future cycles. The
// simulator uses it for in-flight packets (arrival = departure + link
// latency) and credit returns. The horizon must exceed the largest latency
// scheduled; Schedule panics otherwise, which would indicate a configuration
// bug rather than a runtime condition.
type Wheel[T any] struct {
	slots [][]T
	due   []T // recycled arena returned by Advance; never aliases a slot
	now   int64
	count int
}

// NewWheel builds a wheel with the given horizon (maximum schedulable delay).
func NewWheel[T any](horizon int) *Wheel[T] {
	if horizon < 1 {
		horizon = 1
	}
	return &Wheel[T]{slots: make([][]T, horizon+1)}
}

// Schedule places ev at delay cycles in the future. delay must be in
// [0, horizon]; delay 0 means "deliverable at the next Advance".
func (w *Wheel[T]) Schedule(delay int, ev T) {
	if delay < 0 || delay >= len(w.slots) {
		panic("simcore: event delay outside wheel horizon")
	}
	idx := (int(w.now) + delay) % len(w.slots)
	w.slots[idx] = append(w.slots[idx], ev)
	w.count++
}

// Advance moves the wheel one cycle forward and returns the events due now.
// The returned slice is valid until the next Advance call and is safe to
// iterate while calling Schedule — including at delay == horizon, which
// lands in the slot just drained. (Returning the slot itself would alias
// its backing array with such appends and corrupt the in-progress
// iteration.) The slice is copied into a recycled arena, so steady-state
// Advance does not allocate.
func (w *Wheel[T]) Advance() []T {
	idx := int(w.now) % len(w.slots)
	slot := w.slots[idx]
	w.slots[idx] = slot[:0]
	w.now++
	w.count -= len(slot)
	prev := len(w.due)
	w.due = append(w.due[:0], slot...)
	if len(slot) < prev {
		// The arena shrank: zero the tail so events from a previous, larger
		// batch don't stay reachable through the backing array — a burst peak
		// would otherwise pin its dead packet pointers long after load drops.
		var zero T
		tail := w.due[len(slot):prev]
		for j := range tail {
			tail[j] = zero
		}
	}
	return w.due
}

// ForEach visits every scheduled-but-undelivered event in an unspecified
// order. It exists for rare structural surgery (fault injection inspects
// in-flight traffic on a dying link); do not mutate the wheel during the
// walk.
func (w *Wheel[T]) ForEach(f func(T)) {
	for _, slot := range w.slots {
		for _, ev := range slot {
			f(ev)
		}
	}
}

// Filter removes every scheduled event for which keep returns false,
// preserving the relative order of the survivors within each slot (and
// therefore their delivery order). Same audience as ForEach: structural
// surgery on faults, not the per-cycle hot path.
func (w *Wheel[T]) Filter(keep func(T) bool) {
	var zero T
	for i, slot := range w.slots {
		kept := slot[:0]
		for _, ev := range slot {
			if keep(ev) {
				kept = append(kept, ev)
			}
		}
		w.count -= len(slot) - len(kept)
		for j := len(kept); j < len(slot); j++ {
			slot[j] = zero // drop references held by removed events
		}
		w.slots[i] = kept
	}
}

// ForEachDelay visits every scheduled-but-undelivered event in delivery
// order: ascending delay (cycles until the event fires, 0 = next Advance),
// and within one delay the slot's append order — which is the order Advance
// will hand them out. Re-scheduling each visited event at its reported delay
// into a fresh wheel therefore reproduces this wheel's observable behavior
// exactly; the snapshot writer relies on that. Do not mutate the wheel
// during the walk.
func (w *Wheel[T]) ForEachDelay(f func(delay int, ev T)) {
	h := len(w.slots)
	for d := 0; d < h; d++ {
		for _, ev := range w.slots[(int(w.now)+d)%h] {
			f(d, ev)
		}
	}
}

// Horizon returns the maximum schedulable delay.
func (w *Wheel[T]) Horizon() int { return len(w.slots) - 1 }

// Pending reports how many events are scheduled but not yet delivered.
func (w *Wheel[T]) Pending() int { return w.count }

// Now returns the wheel's current cycle (number of Advance calls so far).
func (w *Wheel[T]) Now() int64 { return w.now }
