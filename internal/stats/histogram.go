package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a log-bucketed latency histogram: bucket i covers
// [base·2^i, base·2^(i+1)). It supports percentile estimation without
// retaining per-packet samples, which matters at millions of packets.
type Histogram struct {
	base    float64
	buckets []int64
	count   int64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram creates a histogram whose first bucket starts at base
// (values below base land in bucket 0).
func NewHistogram(base float64) *Histogram {
	if base <= 0 {
		base = 1
	}
	return &Histogram{base: base, min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	i := 0
	if v > h.base {
		// Frexp decomposes v/base into frac·2^exp with frac in [0.5, 1),
		// so the ratio lies in [2^(exp-1), 2^exp) and the bucket index is
		// exp-1. Unlike int(Log2(ratio)), this is exact at bucket
		// boundaries: Log2 of a ratio one ulp below 2^k rounds to exactly
		// k and shifts the sample into the wrong bucket.
		_, exp := math.Frexp(v / h.base)
		if i = exp - 1; i < 0 {
			i = 0
		}
	}
	for len(h.buckets) <= i {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the sample mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extrema (±Inf when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observed sample.
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear interpolation
// within the covering bucket. NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	target := q * float64(h.count)
	var cum float64
	for i, c := range h.buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := h.base * math.Pow(2, float64(i))
			hi := lo * 2
			if i == 0 {
				lo = 0
			}
			frac := (target - cum) / float64(c)
			v := lo + frac*(hi-lo)
			// Clamp to the observed range for tight distributions.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// String renders a compact ASCII sketch, useful in examples and debugging.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram: empty"
	}
	var peak int64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "histogram: n=%d mean=%.1f p50=%.0f p99=%.0f max=%.0f\n",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.max)
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := h.base * math.Pow(2, float64(i))
		bar := strings.Repeat("#", int(40*c/peak))
		fmt.Fprintf(&b, "%8.0f.. %8d %s\n", lo, c, bar)
	}
	return b.String()
}

// Replication aggregates a metric across repeated simulations with
// different seeds (the paper notes some of its figures average several
// simulations).
type Replication struct {
	samples []float64
}

// Add records one run's value.
func (r *Replication) Add(v float64) { r.samples = append(r.samples, v) }

// N returns the number of runs.
func (r *Replication) N() int { return len(r.samples) }

// Mean returns the across-run mean (NaN when empty).
func (r *Replication) Mean() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range r.samples {
		s += v
	}
	return s / float64(len(r.samples))
}

// StdDev returns the sample standard deviation (0 for fewer than 2 runs).
func (r *Replication) StdDev() float64 {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	m := r.Mean()
	var ss float64
	for _, v := range r.samples {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the middle sample.
func (r *Replication) Median() float64 {
	n := len(r.samples)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), r.samples...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
