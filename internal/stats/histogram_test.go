package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(8)
	if h.Count() != 0 || !math.IsNaN(h.Mean()) || !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram stats")
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("count=%d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean=%f", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max=%f/%f", h.Min(), h.Max())
	}
	// Log-bucket quantiles are approximate: p50 of 1..100 within a factor 2.
	if q := h.Quantile(0.5); q < 25 || q > 100 {
		t.Errorf("p50=%f", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("p100=%f", q)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Error("invalid q accepted")
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram(4)
	f := func(raw []uint16) bool {
		for _, v := range raw {
			h.Add(float64(v%5000) + 1)
		}
		if h.Count() == 0 {
			return true
		}
		prev := 0.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramBucketBoundaries sweeps every power-of-two bucket boundary
// v = base·2^k and its ±1ulp neighbours: the boundary itself and the value
// one ulp above belong to bucket k, the value one ulp below to bucket k-1.
// The former int(math.Log2(v/base)) formula failed this for the just-below
// neighbour — Log2 rounds to exactly k there, shifting the sample across
// the boundary.
func TestHistogramBucketBoundaries(t *testing.T) {
	bucketOf := func(h *Histogram) int {
		idx, hits := -1, 0
		for i, c := range h.buckets {
			if c != 0 {
				idx = i
				hits += int(c)
			}
		}
		if hits != 1 {
			t.Fatalf("want exactly one occupied bucket, found %d samples", hits)
		}
		return idx
	}
	for _, base := range []float64{1, 3, 8, 10, 0.3} {
		for k := 1; k < 45; k++ {
			bound := base * math.Ldexp(1, k) // exact: scaling by 2^k
			cases := []struct {
				v    float64
				want int
			}{
				{math.Nextafter(bound, 0), k - 1},
				{bound, k},
				{math.Nextafter(bound, math.Inf(1)), k},
			}
			for _, tc := range cases {
				h := NewHistogram(base)
				h.Add(tc.v)
				if got := bucketOf(h); got != tc.want {
					t.Fatalf("base=%v k=%d v=%v: bucket %d, want %d",
						base, k, tc.v, got, tc.want)
				}
			}
		}
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(8)
	if !strings.Contains(h.String(), "empty") {
		t.Error("empty string form")
	}
	for i := 0; i < 64; i++ {
		h.Add(float64(10 + i))
	}
	s := h.String()
	if !strings.Contains(s, "n=64") || !strings.Contains(s, "#") {
		t.Errorf("string form: %q", s)
	}
}

func TestReplication(t *testing.T) {
	var r Replication
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Median()) || r.StdDev() != 0 {
		t.Error("empty replication stats")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 || r.Mean() != 5 {
		t.Errorf("n=%d mean=%f", r.N(), r.Mean())
	}
	if got := r.StdDev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev=%f", got)
	}
	if got := r.Median(); got != 4.5 {
		t.Errorf("median=%f", got)
	}
	var odd Replication
	odd.Add(3)
	odd.Add(1)
	odd.Add(2)
	if odd.Median() != 2 {
		t.Errorf("odd median=%f", odd.Median())
	}
}

func TestRunHistogramIntegration(t *testing.T) {
	r := NewRun(10, 8)
	r.EnableHistogram()
	r.StartMeasurement(0)
	for i := int64(1); i <= 50; i++ {
		r.OnDeliver(0, 0, i*10, 3, 0)
	}
	if r.Histogram().Count() != 50 {
		t.Errorf("histogram count=%d", r.Histogram().Count())
	}
	p50 := r.LatencyQuantile(0.5)
	if math.IsNaN(p50) || p50 <= 0 || p50 > 500 {
		t.Errorf("p50=%f", p50)
	}
	bare := NewRun(10, 8)
	if !math.IsNaN(bare.LatencyQuantile(0.5)) {
		t.Error("quantile without histogram")
	}
}

func TestSummarizeUtilization(t *testing.T) {
	s := SummarizeUtilization(nil, 100)
	if s.Links != 0 || !math.IsNaN(s.Imbalance) {
		t.Error("empty summary")
	}
	s = SummarizeUtilization([]int64{50, 100, 150, 900}, 1000)
	if s.Links != 4 {
		t.Errorf("links=%d", s.Links)
	}
	if math.Abs(s.Mean-0.3) > 1e-9 {
		t.Errorf("mean=%f", s.Mean)
	}
	if s.Max != 0.9 {
		t.Errorf("max=%f", s.Max)
	}
	if math.Abs(s.Imbalance-3.0) > 1e-9 {
		t.Errorf("imbalance=%f", s.Imbalance)
	}
	if s.P95 != 0.9 {
		t.Errorf("p95=%f", s.P95)
	}
}

// TestSummarizeUtilizationP95NotMax pins the nearest-rank definition on a
// 20-link skewed distribution (19 cool links, one hotspot): the 95th
// percentile is the 19th smallest sample, strictly below the hotspot. The
// former Ceil(0.95·(n-1)) index collapsed P95 to Max for every n ≤ 20.
func TestSummarizeUtilizationP95NotMax(t *testing.T) {
	counters := make([]int64, 20)
	for i := range counters {
		counters[i] = int64(100 + i) // 0.100..0.119 at 1000 cycles
	}
	counters[19] = 900 // the hotspot
	s := SummarizeUtilization(counters, 1000)
	if s.Max != 0.9 {
		t.Fatalf("max=%f", s.Max)
	}
	if s.P95 >= s.Max {
		t.Fatalf("p95=%f collapsed to max=%f on a 20-link set", s.P95, s.Max)
	}
	if s.P95 != 0.118 {
		t.Errorf("p95=%f, want 0.118 (19th smallest of 20)", s.P95)
	}
	// Degenerate sizes stay in range.
	one := SummarizeUtilization([]int64{500}, 1000)
	if one.P95 != 0.5 {
		t.Errorf("single link p95=%f", one.P95)
	}
}
