package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(8)
	if h.Count() != 0 || !math.IsNaN(h.Mean()) || !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram stats")
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("count=%d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean=%f", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max=%f/%f", h.Min(), h.Max())
	}
	// Log-bucket quantiles are approximate: p50 of 1..100 within a factor 2.
	if q := h.Quantile(0.5); q < 25 || q > 100 {
		t.Errorf("p50=%f", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("p100=%f", q)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Error("invalid q accepted")
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram(4)
	f := func(raw []uint16) bool {
		for _, v := range raw {
			h.Add(float64(v%5000) + 1)
		}
		if h.Count() == 0 {
			return true
		}
		prev := 0.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(8)
	if !strings.Contains(h.String(), "empty") {
		t.Error("empty string form")
	}
	for i := 0; i < 64; i++ {
		h.Add(float64(10 + i))
	}
	s := h.String()
	if !strings.Contains(s, "n=64") || !strings.Contains(s, "#") {
		t.Errorf("string form: %q", s)
	}
}

func TestReplication(t *testing.T) {
	var r Replication
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Median()) || r.StdDev() != 0 {
		t.Error("empty replication stats")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 || r.Mean() != 5 {
		t.Errorf("n=%d mean=%f", r.N(), r.Mean())
	}
	if got := r.StdDev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev=%f", got)
	}
	if got := r.Median(); got != 4.5 {
		t.Errorf("median=%f", got)
	}
	var odd Replication
	odd.Add(3)
	odd.Add(1)
	odd.Add(2)
	if odd.Median() != 2 {
		t.Errorf("odd median=%f", odd.Median())
	}
}

func TestRunHistogramIntegration(t *testing.T) {
	r := NewRun(10, 8)
	r.EnableHistogram()
	r.StartMeasurement(0)
	for i := int64(1); i <= 50; i++ {
		r.OnDeliver(0, 0, i*10, 3, 0)
	}
	if r.Histogram().Count() != 50 {
		t.Errorf("histogram count=%d", r.Histogram().Count())
	}
	p50 := r.LatencyQuantile(0.5)
	if math.IsNaN(p50) || p50 <= 0 || p50 > 500 {
		t.Errorf("p50=%f", p50)
	}
	bare := NewRun(10, 8)
	if !math.IsNaN(bare.LatencyQuantile(0.5)) {
		t.Error("quantile without histogram")
	}
}

func TestSummarizeUtilization(t *testing.T) {
	s := SummarizeUtilization(nil, 100)
	if s.Links != 0 || !math.IsNaN(s.Imbalance) {
		t.Error("empty summary")
	}
	s = SummarizeUtilization([]int64{50, 100, 150, 900}, 1000)
	if s.Links != 4 {
		t.Errorf("links=%d", s.Links)
	}
	if math.Abs(s.Mean-0.3) > 1e-9 {
		t.Errorf("mean=%f", s.Mean)
	}
	if s.Max != 0.9 {
		t.Errorf("max=%f", s.Max)
	}
	if math.Abs(s.Imbalance-3.0) > 1e-9 {
		t.Errorf("imbalance=%f", s.Imbalance)
	}
	if s.P95 != 0.9 {
		t.Errorf("p95=%f", s.P95)
	}
}
