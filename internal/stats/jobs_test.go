package stats

import (
	"math"
	"testing"

	"ofar/internal/simcore"
)

func jobRun() *Run {
	r := NewRun(20, 8)
	r.EnableJobs([]string{"a", "b", "bg"}, []int{8, 8, 4})
	return r
}

func TestJobCountersAndWindow(t *testing.T) {
	r := jobRun()
	// Pre-window traffic counts toward lifetime totals only.
	r.Generated += 2
	r.JobGenerated(0)
	r.JobGenerated(1)
	r.Delivered++
	r.JobDelivered(0, 50)
	if r.JobMeasured(0) != 0 {
		t.Fatal("pre-window delivery entered the measurement window")
	}

	r.StartMeasurement(100)
	for i := 0; i < 4; i++ {
		r.Generated++
		r.JobGenerated(0)
		r.Delivered++
		r.JobDelivered(0, int64(10*(i+1)))
	}
	r.Generated++
	r.JobGenerated(1)
	r.Dropped++
	r.JobDropped(1)

	g, d, dr := r.JobCounts(0)
	if g != 5 || d != 5 || dr != 0 {
		t.Errorf("job a counts %d/%d/%d, want 5/5/0", g, d, dr)
	}
	g, d, dr = r.JobCounts(1)
	if g != 2 || d != 0 || dr != 1 {
		t.Errorf("job b counts %d/%d/%d, want 2/0/1", g, d, dr)
	}
	if r.JobMeasured(0) != 4 {
		t.Errorf("job a measured %d, want 4", r.JobMeasured(0))
	}
	if got := r.JobAvgLatency(0); got != 25 {
		t.Errorf("job a avg latency %v, want 25", got)
	}
	if !math.IsNaN(r.JobAvgLatency(1)) {
		t.Errorf("job b avg latency %v, want NaN (nothing measured)", r.JobAvgLatency(1))
	}
	if thr := r.JobThroughput(0, 200); thr != 4.0*8/8/100 {
		t.Errorf("job a throughput %v, want 0.04", thr)
	}
	if err := r.CheckJobConservation(); err != nil {
		t.Errorf("conservation: %v", err)
	}
	// Untagged packets (slot -1) must be ignored, not crash or miscount.
	r.JobGenerated(-1)
	r.JobDelivered(-1, 10)
	r.JobDropped(-1)
	if err := r.CheckJobConservation(); err != nil {
		t.Errorf("conservation after untagged events: %v", err)
	}
}

func TestJobConservationDetectsSkew(t *testing.T) {
	r := jobRun()
	r.Generated++ // aggregate moves, no job credited
	if err := r.CheckJobConservation(); err == nil {
		t.Fatal("uncredited generation passed the conservation check")
	}
}

func TestJobStatsSnapshotRoundTrip(t *testing.T) {
	r := jobRun()
	r.StartMeasurement(0)
	for i := 0; i < 10; i++ {
		r.Generated++
		r.JobGenerated(i % 3)
		r.Delivered++
		r.JobDelivered(i%3, int64(5+i))
	}
	r.Dropped++
	r.JobDropped(2)
	r.Generated++
	r.JobGenerated(2)

	var e simcore.Enc
	r.EncodeState(&e)

	fresh := jobRun()
	if err := fresh.DecodeState(simcore.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < r.Jobs(); j++ {
		g1, d1, dr1 := r.JobCounts(j)
		g2, d2, dr2 := fresh.JobCounts(j)
		if g1 != g2 || d1 != d2 || dr1 != dr2 {
			t.Errorf("slot %d: %d/%d/%d decoded as %d/%d/%d", j, g1, d1, dr1, g2, d2, dr2)
		}
		if r.JobMeasured(j) != fresh.JobMeasured(j) {
			t.Errorf("slot %d: measured %d decoded as %d", j, r.JobMeasured(j), fresh.JobMeasured(j))
		}
		if q1, q2 := r.JobLatencyQuantile(j, 0.99), fresh.JobLatencyQuantile(j, 0.99); q1 != q2 && !(math.IsNaN(q1) && math.IsNaN(q2)) {
			t.Errorf("slot %d: p99 %v decoded as %v", j, q1, q2)
		}
	}
	if err := fresh.CheckJobConservation(); err != nil {
		t.Errorf("decoded state fails conservation: %v", err)
	}
}

func TestJobStatsSnapshotRejectsMismatch(t *testing.T) {
	r := jobRun()
	var e simcore.Enc
	r.EncodeState(&e)

	// Fewer slots than the snapshot carries.
	small := NewRun(20, 8)
	small.EnableJobs([]string{"a"}, []int{8})
	if err := small.DecodeState(simcore.NewDec(e.Data())); err == nil {
		t.Error("slot-count mismatch decoded cleanly")
	}
	// Same count, different job names.
	renamed := NewRun(20, 8)
	renamed.EnableJobs([]string{"a", "b", "other"}, []int{8, 8, 4})
	if err := renamed.DecodeState(simcore.NewDec(e.Data())); err == nil {
		t.Error("job-name mismatch decoded cleanly")
	}
	// No job accounting at all.
	plain := NewRun(20, 8)
	if err := plain.DecodeState(simcore.NewDec(e.Data())); err == nil {
		t.Error("job snapshot decoded into a job-less run")
	}
}

func TestJobStatsMeasurementWindowReset(t *testing.T) {
	r := jobRun()
	r.StartMeasurement(0)
	r.Generated++
	r.JobGenerated(0)
	r.Delivered++
	r.JobDelivered(0, 40)
	if r.JobMeasured(0) != 1 {
		t.Fatalf("measured %d, want 1", r.JobMeasured(0))
	}
	r.StartMeasurement(500)
	if r.JobMeasured(0) != 0 {
		t.Errorf("new window starts with %d measured deliveries", r.JobMeasured(0))
	}
	g, d, _ := r.JobCounts(0)
	if g != 1 || d != 1 {
		t.Errorf("lifetime counters reset with the window: %d/%d", g, d)
	}
}
