package stats

import (
	"slices"

	"ofar/internal/simcore"
)

// Snapshot support: Run (with its optional Series, Histogram and utilization
// sinks) serializes every counter, including the live measurement window, so
// a restored simulation reports bit-identical statistics to one that was
// never interrupted. The affected-flow set is written in sorted key order,
// which is what keeps snapshot bytes deterministic across runs.

const (
	maxAffectedFlows = 1 << 28
	maxSeriesBuckets = 1 << 28
	maxHistBuckets   = 1 << 16
	maxUtilCounters  = 1 << 28
	maxJobSlots      = 1 << 20
)

// EncodeState appends the full statistics state to e.
func (r *Run) EncodeState(e *simcore.Enc) {
	e.Int(r.Nodes)
	e.Int(r.PacketSize)
	e.I64(r.Generated)
	e.I64(r.SourceBlocked)
	e.I64(r.Injected)
	e.I64(r.Delivered)
	e.I64(r.GlobalMisroutes)
	e.I64(r.LocalMisroutes)
	e.I64(r.RingEnters)
	e.I64(r.RingExits)
	e.I64(r.RingHops)
	e.I64(r.Dropped)
	e.I64(r.FaultReroutes)

	keys := make([]uint64, 0, len(r.affected))
	for k := range r.affected {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	e.Int(len(keys))
	for _, k := range keys {
		e.U64(k)
	}

	e.Bool(r.measuring)
	e.I64(r.measureStart)
	e.I64(r.mDelivered)
	e.F64(r.mLatSum)
	e.I64(r.mLatCount)
	e.F64(r.mNetLatSum)
	e.I64(r.mHopsSum)
	e.I64(r.mLatMax)
	e.Int(r.mHopsMax)
	e.Int(r.mCanHopsMax)

	e.Bool(r.series != nil)
	if r.series != nil {
		r.series.encodeState(e)
	}
	e.Bool(r.hist != nil)
	if r.hist != nil {
		r.hist.encodeState(e)
	}
	e.Bool(r.util != nil)
	if r.util != nil {
		e.Int(r.ports)
		e.Int(len(r.util))
		for _, v := range r.util {
			e.I64(v)
		}
	}

	e.Int(len(r.jobs))
	for i := range r.jobs {
		s := &r.jobs[i]
		e.Bytes([]byte(s.Name))
		e.Int(s.Nodes)
		e.I64(s.Generated)
		e.I64(s.Delivered)
		e.I64(s.Dropped)
		e.I64(s.mDelivered)
		e.F64(s.mLatSum)
		s.hist.encodeState(e)
	}
}

// DecodeState overwrites the statistics state from d, in place (callers hold
// the *Run pointer across a restore). Nodes/PacketSize must match the sink
// being restored into; a mismatch means the snapshot belongs to a different
// network and is rejected.
func (r *Run) DecodeState(d *simcore.Dec) error {
	nodes, pktSize := d.Int(), d.Int()
	if d.Err() == nil && (nodes != r.Nodes || pktSize != r.PacketSize) {
		d.Fail("stats sized for %d nodes/%d-phit packets, have %d/%d", nodes, pktSize, r.Nodes, r.PacketSize)
	}
	r.Generated = d.I64()
	r.SourceBlocked = d.I64()
	r.Injected = d.I64()
	r.Delivered = d.I64()
	r.GlobalMisroutes = d.I64()
	r.LocalMisroutes = d.I64()
	r.RingEnters = d.I64()
	r.RingExits = d.I64()
	r.RingHops = d.I64()
	r.Dropped = d.I64()
	r.FaultReroutes = d.I64()

	nAff := d.Len(maxAffectedFlows)
	r.affected = nil
	if nAff > 0 {
		r.affected = make(map[uint64]struct{}, nAff)
		for i := 0; i < nAff && d.Err() == nil; i++ {
			r.affected[d.U64()] = struct{}{}
		}
	}

	r.measuring = d.Bool()
	r.measureStart = d.I64()
	r.mDelivered = d.I64()
	r.mLatSum = d.F64()
	r.mLatCount = d.I64()
	r.mNetLatSum = d.F64()
	r.mHopsSum = d.I64()
	r.mLatMax = d.I64()
	r.mHopsMax = d.Int()
	r.mCanHopsMax = d.Int()

	r.series = nil
	if d.Bool() {
		r.series = &Series{}
		r.series.decodeState(d)
	}
	r.hist = nil
	if d.Bool() {
		r.hist = &Histogram{}
		r.hist.decodeState(d)
	}
	r.util = nil
	r.ports = 0
	if d.Bool() {
		r.ports = d.Int()
		n := d.Len(maxUtilCounters)
		if d.Err() == nil {
			r.util = make([]int64, n)
			for i := range r.util {
				r.util[i] = d.I64()
			}
		}
	}

	// Per-job slots are sized by the attached generator before the restore
	// reaches the statistics section, so shape mismatches mean the snapshot
	// was taken under a different workload and must be rejected.
	nJobs := d.Len(maxJobSlots)
	if d.Err() == nil && nJobs != len(r.jobs) {
		d.Fail("stats carry %d job slots, sink has %d", nJobs, len(r.jobs))
	}
	for i := 0; i < nJobs && d.Err() == nil; i++ {
		s := &r.jobs[i]
		name := string(d.Bytes(1 << 16))
		if d.Err() == nil && name != s.Name {
			d.Fail("job slot %d named %q, sink has %q", i, name, s.Name)
		}
		s.Nodes = d.Int()
		s.Generated = d.I64()
		s.Delivered = d.I64()
		s.Dropped = d.I64()
		s.mDelivered = d.I64()
		s.mLatSum = d.F64()
		if d.Err() == nil && (s.Nodes < 0 || s.Generated < 0 || s.Delivered < 0 || s.Dropped < 0 || s.Delivered+s.Dropped > s.Generated) {
			d.Fail("job slot %d counters gen=%d del=%d drop=%d inconsistent", i, s.Generated, s.Delivered, s.Dropped)
		}
		s.hist = &Histogram{}
		s.hist.decodeState(d)
	}
	return d.Err()
}

func (s *Series) encodeState(e *simcore.Enc) {
	e.Int(s.bucket)
	e.Int(len(s.sum))
	for i := range s.sum {
		e.F64(s.sum[i])
		e.I64(s.count[i])
	}
}

func (s *Series) decodeState(d *simcore.Dec) {
	s.bucket = d.Int()
	if d.Err() == nil && s.bucket < 1 {
		d.Fail("series bucket width %d < 1", s.bucket)
	}
	n := d.Len(maxSeriesBuckets)
	if d.Err() != nil {
		return
	}
	s.sum = make([]float64, n)
	s.count = make([]int64, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		s.sum[i] = d.F64()
		s.count[i] = d.I64()
	}
}

func (h *Histogram) encodeState(e *simcore.Enc) {
	e.F64(h.base)
	e.I64(h.count)
	e.F64(h.sum)
	e.F64(h.min)
	e.F64(h.max)
	e.Int(len(h.buckets))
	for _, c := range h.buckets {
		e.I64(c)
	}
}

func (h *Histogram) decodeState(d *simcore.Dec) {
	h.base = d.F64()
	if d.Err() == nil && !(h.base > 0) {
		d.Fail("histogram base %v not positive", h.base)
	}
	h.count = d.I64()
	h.sum = d.F64()
	h.min = d.F64()
	h.max = d.F64()
	n := d.Len(maxHistBuckets)
	if d.Err() != nil {
		return
	}
	h.buckets = make([]int64, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		h.buckets[i] = d.I64()
	}
}
