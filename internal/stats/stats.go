// Package stats accumulates the measurements reported in the paper's
// evaluation: average packet latency, accepted throughput in
// phits/(node·cycle), misrouting and escape-ring counters, per-send-cycle
// latency series for transient experiments (Fig. 6), and per-link
// utilization used to expose the §III local-link hotspots.
package stats

import "math"

// Run accumulates the counters of one simulation.
type Run struct {
	Nodes      int
	PacketSize int

	// Lifetime counters (never reset).
	Generated     int64
	SourceBlocked int64 // Bernoulli draws dropped because the source queue was full
	Injected      int64
	Delivered     int64

	GlobalMisroutes int64
	LocalMisroutes  int64
	RingEnters      int64
	RingExits       int64
	RingHops        int64

	// Fault-injection counters. Dropped counts packets lost to a fault
	// (buffered in a dying router, addressed to a dead node, or arriving at
	// a dead router); it joins Delivered in the conservation identity.
	// FaultReroutes counts adaptive decisions taken because the minimal
	// output port was dead.
	Dropped       int64
	FaultReroutes int64

	affected map[uint64]struct{} // flows (src,dst) touched by a fault

	// Measurement window.
	measuring    bool
	measureStart int64
	mDelivered   int64
	mLatSum      float64
	mLatCount    int64
	mNetLatSum   float64
	mHopsSum     int64
	mLatMax      int64
	mHopsMax     int
	mCanHopsMax  int

	series *Series
	hist   *Histogram
	util   []int64 // flattened per (router,port) busy-phit counter, optional
	ports  int
	jobs   []JobStats // per-job accounting, sized by EnableJobs
}

// NewRun creates a statistics sink for a network of the given size.
func NewRun(nodes, packetSize int) *Run {
	return &Run{Nodes: nodes, PacketSize: packetSize}
}

// NoteAffectedFlow records that a fault touched the (src, dst) flow —
// a packet of the flow was dropped or rerouted around a dead port.
func (r *Run) NoteAffectedFlow(src, dst int) {
	if r.affected == nil {
		r.affected = make(map[uint64]struct{})
	}
	r.affected[uint64(uint32(src))<<32|uint64(uint32(dst))] = struct{}{}
}

// AffectedFlows returns how many distinct (src, dst) flows a fault touched.
func (r *Run) AffectedFlows() int { return len(r.affected) }

// EnableSeries starts collecting the per-send-cycle latency series with the
// given bucket width in cycles.
func (r *Run) EnableSeries(bucket int) { r.series = NewSeries(bucket) }

// Series returns the transient latency series (nil unless enabled).
func (r *Run) Series() *Series { return r.series }

// EnableHistogram starts collecting a log-bucketed latency histogram for
// packets delivered during measurement windows.
func (r *Run) EnableHistogram() { r.hist = NewHistogram(8) }

// Histogram returns the latency histogram (nil unless enabled).
func (r *Run) Histogram() *Histogram { return r.hist }

// LatencyQuantile estimates a latency quantile of the measurement window;
// NaN when the histogram is disabled or empty.
func (r *Run) LatencyQuantile(q float64) float64 {
	if r.hist == nil {
		return math.NaN()
	}
	return r.hist.Quantile(q)
}

// EnableUtilization sizes the per-port utilization counters.
func (r *Run) EnableUtilization(routers, ports int) {
	r.util = make([]int64, routers*ports)
	r.ports = ports
}

// AddUtilization accounts size phits sent through (router, port).
func (r *Run) AddUtilization(router, port, size int) {
	if r.util != nil {
		r.util[router*r.ports+port] += int64(size)
	}
}

// Utilization returns the busy-phit counter of (router, port), or 0 when
// collection is disabled.
func (r *Run) Utilization(router, port int) int64 {
	if r.util == nil {
		return 0
	}
	return r.util[router*r.ports+port]
}

// StartMeasurement begins the measurement window at cycle now (after
// warm-up); previous window data is discarded.
func (r *Run) StartMeasurement(now int64) {
	r.measuring = true
	r.measureStart = now
	r.mDelivered = 0
	r.mLatSum = 0
	r.mNetLatSum = 0
	r.mLatCount = 0
	r.mHopsSum = 0
	r.mLatMax = 0
	r.mHopsMax = 0
	r.mCanHopsMax = 0
	for i := range r.jobs {
		r.jobs[i].mDelivered = 0
		r.jobs[i].mLatSum = 0
	}
}

// StopMeasurement freezes the window (deliveries stop accumulating).
func (r *Run) StopMeasurement() { r.measuring = false }

// OnDeliver accounts one delivered packet. born/injected/done are the packet
// timestamps, hops its total hop count and ringHops the subset taken on the
// escape subnetwork.
func (r *Run) OnDeliver(born, injected, done int64, hops, ringHops int) {
	r.Delivered++
	lat := done - born
	if r.series != nil {
		r.series.Add(born, float64(lat))
	}
	if !r.measuring {
		return
	}
	r.mDelivered++
	if r.hist != nil {
		r.hist.Add(float64(lat))
	}
	r.mLatSum += float64(lat)
	r.mNetLatSum += float64(done - injected)
	r.mLatCount++
	r.mHopsSum += int64(hops)
	if lat > r.mLatMax {
		r.mLatMax = lat
	}
	if hops > r.mHopsMax {
		r.mHopsMax = hops
	}
	if can := hops - ringHops; can > r.mCanHopsMax {
		r.mCanHopsMax = can
	}
}

// Throughput returns the accepted throughput of the measurement window in
// phits/(node·cycle), where now is the cycle the window ended.
func (r *Run) Throughput(now int64) float64 {
	cycles := now - r.measureStart
	if cycles <= 0 || r.Nodes == 0 {
		return 0
	}
	return float64(r.mDelivered) * float64(r.PacketSize) / float64(r.Nodes) / float64(cycles)
}

// AvgLatency returns the mean generation-to-delivery latency (cycles) of
// packets delivered during the measurement window, NaN when none.
func (r *Run) AvgLatency() float64 {
	if r.mLatCount == 0 {
		return math.NaN()
	}
	return r.mLatSum / float64(r.mLatCount)
}

// AvgNetworkLatency returns the mean injection-to-delivery latency.
func (r *Run) AvgNetworkLatency() float64 {
	if r.mLatCount == 0 {
		return math.NaN()
	}
	return r.mNetLatSum / float64(r.mLatCount)
}

// AvgHops returns the mean hop count of measured packets.
func (r *Run) AvgHops() float64 {
	if r.mLatCount == 0 {
		return math.NaN()
	}
	return float64(r.mHopsSum) / float64(r.mLatCount)
}

// MaxLatency returns the largest latency observed in the window.
func (r *Run) MaxLatency() int64 { return r.mLatMax }

// MaxHops returns the largest total hop count observed in the window.
func (r *Run) MaxHops() int { return r.mHopsMax }

// MaxCanonicalHops returns the largest non-escape hop count observed in the
// window — the quantity bounded by each mechanism's routing discipline
// (3 for MIN, 5 for VAL/PB/UGAL, 6 for PAR, 8 for OFAR between ring visits).
func (r *Run) MaxCanonicalHops() int { return r.mCanHopsMax }

// MeasuredPackets returns how many deliveries the window captured.
func (r *Run) MeasuredPackets() int64 { return r.mDelivered }

// Series buckets delivered-packet latencies by generation cycle: the paper's
// transient plots show "the average latency of the packets that are sent
// each cycle" (§VI-B).
type Series struct {
	bucket int
	sum    []float64
	count  []int64
}

// NewSeries creates a series with the given bucket width (cycles).
func NewSeries(bucket int) *Series {
	if bucket < 1 {
		bucket = 1
	}
	return &Series{bucket: bucket}
}

// Add records a packet generated at cycle born with the given latency.
func (s *Series) Add(born int64, latency float64) {
	i := int(born) / s.bucket
	for len(s.sum) <= i {
		s.sum = append(s.sum, 0)
		s.count = append(s.count, 0)
	}
	s.sum[i] += latency
	s.count[i]++
}

// BucketWidth returns the bucket width in cycles.
func (s *Series) BucketWidth() int { return s.bucket }

// Len returns the number of buckets.
func (s *Series) Len() int { return len(s.sum) }

// At returns the start cycle, mean latency and sample count of bucket i.
func (s *Series) At(i int) (cycle int64, mean float64, n int64) {
	cycle = int64(i) * int64(s.bucket)
	n = s.count[i]
	if n > 0 {
		mean = s.sum[i] / float64(n)
	} else {
		mean = math.NaN()
	}
	return
}
