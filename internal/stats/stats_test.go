package stats

import (
	"math"
	"testing"
)

func TestRunMeasurementWindow(t *testing.T) {
	r := NewRun(100, 8)
	// Deliveries before the window must not count toward the averages.
	r.OnDeliver(0, 0, 50, 3, 0)
	r.StartMeasurement(100)
	r.OnDeliver(90, 95, 150, 3, 0) // latency 60
	r.OnDeliver(100, 100, 180, 5, 1)
	if r.Delivered != 3 {
		t.Errorf("lifetime delivered=%d", r.Delivered)
	}
	if r.MeasuredPackets() != 2 {
		t.Errorf("measured=%d", r.MeasuredPackets())
	}
	if got := r.AvgLatency(); got != 70 { // (60+80)/2
		t.Errorf("avg latency=%f", got)
	}
	if got := r.AvgNetworkLatency(); got != (55+80)/2.0 {
		t.Errorf("avg net latency=%f", got)
	}
	if got := r.AvgHops(); got != 4 {
		t.Errorf("avg hops=%f", got)
	}
	if got := r.MaxLatency(); got != 80 {
		t.Errorf("max=%d", got)
	}
	if r.MaxHops() != 5 || r.MaxCanonicalHops() != 4 {
		t.Errorf("hop maxima: %d/%d", r.MaxHops(), r.MaxCanonicalHops())
	}
	// Throughput: 2 packets × 8 phits / 100 nodes / 100 cycles.
	if got := r.Throughput(200); math.Abs(got-0.0016) > 1e-12 {
		t.Errorf("throughput=%f", got)
	}
	r.StopMeasurement()
	r.OnDeliver(120, 120, 300, 3, 0)
	if r.MeasuredPackets() != 2 {
		t.Error("delivery counted after StopMeasurement")
	}
}

func TestRunEmptyWindow(t *testing.T) {
	r := NewRun(10, 8)
	r.StartMeasurement(0)
	if !math.IsNaN(r.AvgLatency()) || !math.IsNaN(r.AvgHops()) {
		t.Error("empty window should report NaN")
	}
	if r.Throughput(0) != 0 {
		t.Error("throughput of empty zero-length window")
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := NewSeries(100)
	s.Add(0, 10)
	s.Add(99, 30)
	s.Add(100, 50)
	s.Add(505, 70)
	if s.Len() != 6 {
		t.Fatalf("len=%d", s.Len())
	}
	cycle, mean, n := s.At(0)
	if cycle != 0 || mean != 20 || n != 2 {
		t.Errorf("bucket 0: %d %f %d", cycle, mean, n)
	}
	cycle, mean, n = s.At(1)
	if cycle != 100 || mean != 50 || n != 1 {
		t.Errorf("bucket 1: %d %f %d", cycle, mean, n)
	}
	_, mean, n = s.At(3)
	if n != 0 || !math.IsNaN(mean) {
		t.Errorf("empty bucket: %f %d", mean, n)
	}
	if s.BucketWidth() != 100 {
		t.Error("bucket width")
	}
}

func TestSeriesMinimumBucket(t *testing.T) {
	s := NewSeries(0)
	if s.BucketWidth() != 1 {
		t.Error("bucket width not clamped to 1")
	}
}

func TestRunSeriesIntegration(t *testing.T) {
	r := NewRun(10, 8)
	r.EnableSeries(10)
	r.OnDeliver(5, 5, 25, 2, 0) // recorded regardless of measurement state
	if r.Series() == nil || r.Series().Len() != 1 {
		t.Fatal("series not collecting")
	}
	_, mean, n := r.Series().At(0)
	if mean != 20 || n != 1 {
		t.Errorf("series bucket: %f %d", mean, n)
	}
}

func TestUtilization(t *testing.T) {
	r := NewRun(10, 8)
	if r.Utilization(0, 0) != 0 {
		t.Error("disabled utilization nonzero")
	}
	r.AddUtilization(1, 2, 8) // no-op while disabled
	r.EnableUtilization(4, 5)
	r.AddUtilization(1, 2, 8)
	r.AddUtilization(1, 2, 8)
	r.AddUtilization(3, 4, 8)
	if r.Utilization(1, 2) != 16 || r.Utilization(3, 4) != 8 || r.Utilization(0, 0) != 0 {
		t.Error("utilization accounting wrong")
	}
}

func TestStartMeasurementResets(t *testing.T) {
	r := NewRun(10, 8)
	r.StartMeasurement(0)
	r.OnDeliver(1, 1, 11, 2, 0)
	r.StartMeasurement(100)
	if r.MeasuredPackets() != 0 || !math.IsNaN(r.AvgLatency()) || r.MaxLatency() != 0 {
		t.Error("window not reset")
	}
}
