package stats

import (
	"math"
	"sort"
)

// UtilizationSummary aggregates per-port utilization counters into the
// statistics the §III discussion is about: how evenly each link class
// carries load, and where the hotspots are.
type UtilizationSummary struct {
	Links int     // ports of this class with any wiring
	Mean  float64 // mean busy fraction
	Max   float64 // hottest link
	P95   float64 // 95th percentile busy fraction
	// Imbalance is Max/Mean (1.0 = perfectly level); NaN when idle.
	Imbalance float64
}

// SummarizeUtilization reduces a set of busy-phit counters to a summary.
// counters are raw phit counts; cycles is the elapsed simulation time.
func SummarizeUtilization(counters []int64, cycles int64) UtilizationSummary {
	s := UtilizationSummary{Links: len(counters), Imbalance: math.NaN()}
	if len(counters) == 0 || cycles <= 0 {
		return s
	}
	utils := make([]float64, len(counters))
	var sum float64
	for i, c := range counters {
		utils[i] = float64(c) / float64(cycles)
		sum += utils[i]
		if utils[i] > s.Max {
			s.Max = utils[i]
		}
	}
	sort.Float64s(utils)
	s.Mean = sum / float64(len(utils))
	// Nearest-rank percentile: the P95 is the Ceil(0.95·n)-th smallest
	// sample (1-based). The former Ceil(0.95·(n-1)) indexed the last
	// element for every n ≤ 20, silently collapsing P95 to Max on all
	// small link classes.
	idx := int(math.Ceil(0.95*float64(len(utils)))) - 1
	if idx < 0 {
		idx = 0
	}
	s.P95 = utils[idx]
	if s.Mean > 0 {
		s.Imbalance = s.Max / s.Mean
	}
	return s
}
