package topology

// Analytic throughput bounds from §III of the paper. These are used by the
// "bounds" experiment and by tests that check the simulator reproduces the
// predicted saturation ceilings.

// MinGlobalWorstCaseThroughput returns the per-node throughput ceiling when
// all 2h² nodes of a group send to the same destination group under minimal
// routing: a single global link (1 phit/cycle) is shared by a·p nodes.
func (d *Dragonfly) MinGlobalWorstCaseThroughput() float64 {
	return 1.0 / float64(d.A*d.P)
}

// MinLocalWorstCaseThroughput returns the per-node throughput ceiling when
// the p nodes of one router send minimally to nodes of a neighbour router of
// the same group: one local link shared by p nodes.
func (d *Dragonfly) MinLocalWorstCaseThroughput() float64 {
	return 1.0 / float64(d.P)
}

// ValiantThroughputBound returns the per-node ceiling imposed by global
// links under Valiant routing (two global hops per packet on average): 1/2.
func (d *Dragonfly) ValiantThroughputBound() float64 { return 0.5 }

// ValiantLocalSaturationBound returns the per-node ceiling imposed by the
// intermediate local link l2 under ADV+n·h traffic with Valiant routing
// (paper §III, Fig. 2a): all traffic entering a router of the intermediate
// group through its h global links must leave through the single local link
// to the next router, so throughput caps at 1/h.
func (d *Dragonfly) ValiantLocalSaturationBound() float64 {
	return 1.0 / float64(d.H)
}

// AdvValiantLocalCap computes, for ADV+offset traffic under Valiant routing
// with uniformly chosen intermediate groups, the per-node throughput ceiling
// imposed by the intermediate local hop l2 (paper §III, Fig. 2a/2b). For an
// intermediate group m, traffic from source group s enters on the global
// link s→m and must continue toward group s+offset; when entry and exit
// routers differ the flow loads one directed local link. Each of the G−2
// intermediate groups receives 1/(G−2) of every source group's a·p·load
// phits/cycle, so the most loaded local link saturates at
//
//	load = (G−2) / (maxFlows · a · p)
//
// where maxFlows is the largest number of flows sharing one directed local
// link. Offsets that are multiples of h concentrate h flows on a single link,
// capping throughput at ≈ 1/h; the returned value is clamped to 1.0.
func (d *Dragonfly) AdvValiantLocalCap(offset int) float64 {
	if d.G < 3 {
		return 1.0
	}
	load := make(map[[2]int]int)
	m := 0 // by symmetry all intermediate groups see the same pattern
	for s := 0; s < d.G; s++ {
		dg := (s + offset) % d.G
		if s == m || dg == m || s == dg {
			continue
		}
		inR, _ := d.GlobalEntry(m, s) // same physical link as s→m
		outR, _ := d.GlobalEntry(m, dg)
		if inR == outR {
			continue // no l2 needed
		}
		load[[2]int{inR, outR}]++
	}
	max := 0
	for _, c := range load {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return 1.0
	}
	cap := float64(d.G-2) / (float64(max) * float64(d.A*d.P))
	if cap > 1.0 {
		cap = 1.0
	}
	return cap
}
