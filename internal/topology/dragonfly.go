// Package topology implements the dragonfly topology used by the OFAR paper
// (García et al., ICPP 2012): a two-level hierarchical direct network where
// routers inside a group form a complete graph over local links and groups
// form a complete graph over global links.
//
// Terminology and parameters follow Kim et al. (ISCA 2008) and the paper:
//
//	p — processing nodes per router
//	a — routers per group
//	h — global links per router
//
// A balanced network uses a = 2p = 2h; the maximum-size network has
// G = a·h + 1 = 2h² + 1 groups. Global wiring follows the consecutive
// ("palm tree") arrangement implied by Fig. 1 of the paper: global link
// ℓ = r·h + k of group i connects to group (i+ℓ+1) mod G, arriving on the
// peer's global link index G−2−ℓ. This arrangement exhibits the paper's
// §III pathology: under ADV+n·h traffic, all misrouted flow entering a
// router of an intermediate group must leave through the single local link
// to the next router.
package topology

import (
	"errors"
	"fmt"
)

// PortKind classifies router ports.
type PortKind uint8

const (
	// PortNode is a processor port: injection on the input side, ejection
	// (consumption) on the output side.
	PortNode PortKind = iota
	// PortLocal connects two routers of the same group.
	PortLocal
	// PortGlobal connects two routers of different groups.
	PortGlobal
	// PortRing is a dedicated physical escape-ring port.
	PortRing
	// PortNone marks an unused port slot.
	PortNone
)

func (k PortKind) String() string {
	switch k {
	case PortNode:
		return "node"
	case PortLocal:
		return "local"
	case PortGlobal:
		return "global"
	case PortRing:
		return "ring"
	default:
		return "none"
	}
}

// Dragonfly describes a dragonfly network instance. All derived indexing
// helpers are methods on this type. The zero value is not usable; call New.
type Dragonfly struct {
	P int // nodes per router
	A int // routers per group
	H int // global links per router
	G int // number of groups

	Routers int // total routers = A·G
	Nodes   int // total nodes = P·A·G

	// RouterPorts is the number of canonical ports per router:
	// P node ports + (A−1) local ports + H global ports.
	RouterPorts int

	wiring []wire // per router, per port: peer coordinates
}

// wire records the remote endpoint of one router output port.
type wire struct {
	kind     PortKind
	peer     int32 // peer router (or node for PortNode)
	peerPort int32 // input-port index on the peer router (undefined for PortNode)
}

// New builds a dragonfly with the given parameters. groups == 0 selects the
// maximum size a·h+1. Groups beyond 2 must not exceed a·h+1; smaller group
// counts leave some global ports unwired (reported as PortNone peers).
func New(p, a, h, groups int) (*Dragonfly, error) {
	if p < 1 || a < 1 || h < 1 {
		return nil, fmt.Errorf("topology: parameters must be positive (p=%d a=%d h=%d)", p, a, h)
	}
	maxG := a*h + 1
	if groups == 0 {
		groups = maxG
	}
	if groups < 1 || groups > maxG {
		return nil, fmt.Errorf("topology: group count %d out of range [1,%d]", groups, maxG)
	}
	d := &Dragonfly{
		P: p, A: a, H: h, G: groups,
		Routers:     a * groups,
		Nodes:       p * a * groups,
		RouterPorts: p + (a - 1) + h,
	}
	d.buildWiring()
	return d, nil
}

// NewBalanced builds the canonical balanced maximum-size dragonfly for a
// given h: p = h, a = 2h, G = 2h²+1.
func NewBalanced(h int) (*Dragonfly, error) {
	return New(h, 2*h, h, 0)
}

// ErrTooSmall is returned by ring constructors when the network is too small
// to stitch an embedded Hamiltonian ring with the chosen group offset.
var ErrTooSmall = errors.New("topology: network too small for Hamiltonian ring stitching")

// --- basic coordinates -----------------------------------------------------

// RouterOf returns the router a node is attached to.
func (d *Dragonfly) RouterOf(node int) int { return node / d.P }

// NodeSlot returns the per-router slot of a node (0..P-1).
func (d *Dragonfly) NodeSlot(node int) int { return node % d.P }

// GroupOf returns the group of a router.
func (d *Dragonfly) GroupOf(router int) int { return router / d.A }

// GroupOfNode returns the group of a node.
func (d *Dragonfly) GroupOfNode(node int) int { return node / (d.P * d.A) }

// LocalIndex returns the index of a router within its group (0..A-1).
func (d *Dragonfly) LocalIndex(router int) int { return router % d.A }

// RouterAt returns the global router id for (group, localIndex).
func (d *Dragonfly) RouterAt(group, local int) int { return group*d.A + local }

// NodeAt returns the global node id for (router, slot).
func (d *Dragonfly) NodeAt(router, slot int) int { return router*d.P + slot }

// --- port layout -------------------------------------------------------------
//
// Canonical port indices on every router:
//
//	[0, P)                 node ports (port i ↔ node slot i)
//	[P, P+A-1)             local ports
//	[P+A-1, P+A-1+H)       global ports
//
// Physical-ring configurations append two PortRing ports after these; the
// topology package only defines the canonical layout and ring orders, the
// router package materializes ring ports.

// NodePort returns the port index serving node slot s.
func (d *Dragonfly) NodePort(s int) int { return s }

// LocalPortBase returns the first local port index.
func (d *Dragonfly) LocalPortBase() int { return d.P }

// GlobalPortBase returns the first global port index.
func (d *Dragonfly) GlobalPortBase() int { return d.P + d.A - 1 }

// PortKindOf classifies a canonical port index.
func (d *Dragonfly) PortKindOf(port int) PortKind {
	switch {
	case port < 0:
		return PortNone
	case port < d.P:
		return PortNode
	case port < d.P+d.A-1:
		return PortLocal
	case port < d.RouterPorts:
		return PortGlobal
	default:
		return PortRing
	}
}

// LocalPortTo returns the local port of router r leading to router t of the
// same group. r and t are global router ids and must differ.
func (d *Dragonfly) LocalPortTo(r, t int) int {
	ri, ti := d.LocalIndex(r), d.LocalIndex(t)
	if ti < ri {
		return d.P + ti
	}
	return d.P + ti - 1
}

// LocalPortPeer returns the router reached through local port `port` of
// router r.
func (d *Dragonfly) LocalPortPeer(r, port int) int {
	j := port - d.P
	ri := d.LocalIndex(r)
	t := j
	if j >= ri {
		t = j + 1
	}
	return d.RouterAt(d.GroupOf(r), t)
}

// --- global wiring -----------------------------------------------------------

// globalLinkIndex returns the group-level link index ℓ owned by (router r,
// global port k), with r given as a local index.
func globalLinkIndex(rLocal, k, h int) int { return rLocal*h + k }

// GlobalLinkTarget returns the group reached through global link ℓ of group g,
// or -1 if the link is unwired (small networks only).
func (d *Dragonfly) GlobalLinkTarget(g, l int) int {
	if l >= d.G-1 {
		return -1 // unwired port on undersized networks
	}
	return (g + l + 1) % d.G
}

// GlobalLinkOf returns the link index of group src leading to group dst
// (src != dst), i.e. the inverse of GlobalLinkTarget.
func (d *Dragonfly) GlobalLinkOf(src, dst int) int {
	return (dst - src - 1 + d.G) % d.G
}

// GlobalEntry returns the router of group src that owns the global link to
// group dst, and the canonical port index of that link on the router.
func (d *Dragonfly) GlobalEntry(src, dst int) (router, port int) {
	l := d.GlobalLinkOf(src, dst)
	return d.RouterAt(src, l/d.H), d.GlobalPortBase() + l%d.H
}

// buildWiring precomputes the peer of every canonical port of every router.
func (d *Dragonfly) buildWiring() {
	d.wiring = make([]wire, d.Routers*d.RouterPorts)
	for r := 0; r < d.Routers; r++ {
		g := d.GroupOf(r)
		rl := d.LocalIndex(r)
		base := r * d.RouterPorts
		// Node ports.
		for s := 0; s < d.P; s++ {
			d.wiring[base+s] = wire{kind: PortNode, peer: int32(d.NodeAt(r, s))}
		}
		// Local ports.
		for j := 0; j < d.A-1; j++ {
			t := j
			if j >= rl {
				t = j + 1
			}
			peer := d.RouterAt(g, t)
			d.wiring[base+d.P+j] = wire{
				kind:     PortLocal,
				peer:     int32(peer),
				peerPort: int32(d.LocalPortTo(peer, r)),
			}
		}
		// Global ports.
		for k := 0; k < d.H; k++ {
			l := globalLinkIndex(rl, k, d.H)
			tg := d.GlobalLinkTarget(g, l)
			slot := base + d.GlobalPortBase() + k
			if tg < 0 {
				d.wiring[slot] = wire{kind: PortNone, peer: -1, peerPort: -1}
				continue
			}
			lp := d.G - 2 - l // peer link index
			peer := d.RouterAt(tg, lp/d.H)
			d.wiring[slot] = wire{
				kind:     PortGlobal,
				peer:     int32(peer),
				peerPort: int32(d.GlobalPortBase() + lp%d.H),
			}
		}
	}
}

// Peer returns the remote endpoint of a canonical output port: for node
// ports the attached node id (peerPort == -1), for local/global ports the
// peer router and its input-port index. kind PortNone marks unwired ports.
func (d *Dragonfly) Peer(router, port int) (kind PortKind, peer, peerPort int) {
	w := d.wiring[router*d.RouterPorts+port]
	if w.kind == PortNode {
		return w.kind, int(w.peer), -1
	}
	return w.kind, int(w.peer), int(w.peerPort)
}

// --- minimal routing ---------------------------------------------------------

// MinimalPort returns the canonical output port of router r on the minimal
// path toward node dst. Minimal paths are l–g–l: at most one local hop in the
// source group, the single global link to the destination group, and at most
// one local hop in the destination group.
func (d *Dragonfly) MinimalPort(r, dst int) int {
	dr := d.RouterOf(dst)
	if dr == r {
		return d.NodePort(d.NodeSlot(dst))
	}
	g, dg := d.GroupOf(r), d.GroupOf(dr)
	if g == dg {
		return d.LocalPortTo(r, dr)
	}
	entry, port := d.GlobalEntry(g, dg)
	if entry == r {
		return port
	}
	return d.LocalPortTo(r, entry)
}

// PortToGroup returns the output port of router r heading (minimally) toward
// group tg: the global port if r owns the link, otherwise the local port to
// the owning router. r's group must differ from tg.
func (d *Dragonfly) PortToGroup(r, tg int) int {
	entry, port := d.GlobalEntry(d.GroupOf(r), tg)
	if entry == r {
		return port
	}
	return d.LocalPortTo(r, entry)
}

// MinimalHops returns the number of router-to-router hops on the minimal
// path between two nodes (0 when both share a router).
func (d *Dragonfly) MinimalHops(src, dst int) int {
	sr, dr := d.RouterOf(src), d.RouterOf(dst)
	if sr == dr {
		return 0
	}
	sg, dg := d.GroupOf(sr), d.GroupOf(dr)
	if sg == dg {
		return 1
	}
	h := 1 // the global hop
	entry, _ := d.GlobalEntry(sg, dg)
	if entry != sr {
		h++
	}
	_, exit, _ := d.Peer(entry, d.PortToGroup(entry, dg))
	if exit != dr {
		h++
	}
	return h
}

// Validate checks structural invariants; it is used by tests and by New in
// debug builds. It returns the first violated invariant.
func (d *Dragonfly) Validate() error {
	for r := 0; r < d.Routers; r++ {
		for p := 0; p < d.RouterPorts; p++ {
			kind, peer, peerPort := d.Peer(r, p)
			switch kind {
			case PortNode:
				if d.RouterOf(peer) != r {
					return fmt.Errorf("router %d node port %d attached to foreign node %d", r, p, peer)
				}
			case PortLocal:
				if d.GroupOf(peer) != d.GroupOf(r) || peer == r {
					return fmt.Errorf("router %d local port %d wired to %d", r, p, peer)
				}
				k2, back, _ := d.Peer(peer, peerPort)
				if k2 != PortLocal || back != r {
					return fmt.Errorf("local link %d:%d not symmetric", r, p)
				}
			case PortGlobal:
				if d.GroupOf(peer) == d.GroupOf(r) {
					return fmt.Errorf("router %d global port %d wired within group", r, p)
				}
				k2, back, backPort := d.Peer(peer, peerPort)
				if k2 != PortGlobal || back != r {
					return fmt.Errorf("global link %d:%d not symmetric", r, p)
				}
				if backPort != p {
					return fmt.Errorf("global link %d:%d asymmetric port map", r, p)
				}
			case PortNone:
				if d.G == a2h2(d.H)+1 && d.A == 2*d.H {
					return fmt.Errorf("router %d port %d unwired in max-size network", r, p)
				}
			}
		}
	}
	return nil
}

func a2h2(h int) int { return 2 * h * h }
