package topology

import (
	"testing"
	"testing/quick"
)

func mustDF(t *testing.T, p, a, h, g int) *Dragonfly {
	t.Helper()
	d, err := New(p, a, h, g)
	if err != nil {
		t.Fatalf("New(%d,%d,%d,%d): %v", p, a, h, g, err)
	}
	return d
}

func TestNewBalancedSizes(t *testing.T) {
	cases := []struct {
		h                 int
		groups, rtrs, nds int
	}{
		{1, 3, 6, 6},
		{2, 9, 36, 72},
		{3, 19, 114, 342},
		{6, 73, 876, 5256},
		{16, 513, 16416, 262656},
	}
	for _, c := range cases {
		d, err := NewBalanced(c.h)
		if err != nil {
			t.Fatalf("h=%d: %v", c.h, err)
		}
		if d.G != c.groups || d.Routers != c.rtrs || d.Nodes != c.nds {
			t.Errorf("h=%d: got G=%d routers=%d nodes=%d, want %d/%d/%d",
				c.h, d.G, d.Routers, d.Nodes, c.groups, c.rtrs, c.nds)
		}
		if want := 4*c.h - 1; d.RouterPorts != want {
			t.Errorf("h=%d: RouterPorts=%d want %d", c.h, d.RouterPorts, want)
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(0, 2, 1, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := New(1, 2, 1, 4); err == nil {
		t.Error("groups beyond a*h+1 accepted")
	}
	if _, err := New(1, 2, 1, -1); err == nil {
		t.Error("negative groups accepted")
	}
}

func TestValidateBalanced(t *testing.T) {
	for _, h := range []int{1, 2, 3, 4} {
		d, err := NewBalanced(h)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("h=%d: %v", h, err)
		}
	}
}

func TestCoordinateRoundTrips(t *testing.T) {
	d := mustDF(t, 3, 6, 3, 0)
	for n := 0; n < d.Nodes; n++ {
		r := d.RouterOf(n)
		if got := d.NodeAt(r, d.NodeSlot(n)); got != n {
			t.Fatalf("node %d round trip -> %d", n, got)
		}
		if d.GroupOfNode(n) != d.GroupOf(r) {
			t.Fatalf("node %d group mismatch", n)
		}
	}
	for r := 0; r < d.Routers; r++ {
		if got := d.RouterAt(d.GroupOf(r), d.LocalIndex(r)); got != r {
			t.Fatalf("router %d round trip -> %d", r, got)
		}
	}
}

func TestLocalPortSymmetry(t *testing.T) {
	d := mustDF(t, 2, 4, 2, 0)
	for g := 0; g < d.G; g++ {
		for i := 0; i < d.A; i++ {
			for j := 0; j < d.A; j++ {
				if i == j {
					continue
				}
				r, tr := d.RouterAt(g, i), d.RouterAt(g, j)
				port := d.LocalPortTo(r, tr)
				if k := d.PortKindOf(port); k != PortLocal {
					t.Fatalf("LocalPortTo(%d,%d)=%d kind %v", r, tr, port, k)
				}
				if got := d.LocalPortPeer(r, port); got != tr {
					t.Fatalf("LocalPortPeer(%d,%d)=%d want %d", r, port, got, tr)
				}
				kind, peer, peerPort := d.Peer(r, port)
				if kind != PortLocal || peer != tr {
					t.Fatalf("Peer(%d,%d) = %v,%d", r, port, kind, peer)
				}
				if _, back, _ := d.Peer(tr, peerPort); back != r {
					t.Fatalf("local wiring not symmetric at %d:%d", r, port)
				}
			}
		}
	}
}

func TestGlobalWiringOnePerGroupPair(t *testing.T) {
	d := mustDF(t, 2, 4, 2, 0) // h=2 max size
	seen := make(map[[2]int]int)
	for r := 0; r < d.Routers; r++ {
		for p := d.GlobalPortBase(); p < d.RouterPorts; p++ {
			kind, peer, _ := d.Peer(r, p)
			if kind != PortGlobal {
				t.Fatalf("router %d port %d kind %v", r, p, kind)
			}
			seen[[2]int{d.GroupOf(r), d.GroupOf(peer)}]++
		}
	}
	for a := 0; a < d.G; a++ {
		for b := 0; b < d.G; b++ {
			if a == b {
				continue
			}
			if seen[[2]int{a, b}] != 1 {
				t.Fatalf("group pair (%d,%d) has %d links, want 1", a, b, seen[[2]int{a, b}])
			}
		}
	}
}

func TestGlobalEntryMatchesWiring(t *testing.T) {
	d := mustDF(t, 3, 6, 3, 0)
	for src := 0; src < d.G; src++ {
		for dst := 0; dst < d.G; dst++ {
			if src == dst {
				continue
			}
			r, port := d.GlobalEntry(src, dst)
			if d.GroupOf(r) != src {
				t.Fatalf("GlobalEntry(%d,%d) router %d not in src group", src, dst, r)
			}
			kind, peer, _ := d.Peer(r, port)
			if kind != PortGlobal || d.GroupOf(peer) != dst {
				t.Fatalf("GlobalEntry(%d,%d) wired to group %d", src, dst, d.GroupOf(peer))
			}
		}
	}
}

// TestMinimalPortReachesDestination walks minimal ports hop by hop and checks
// every node pair is connected within the diameter (3 hops).
func TestMinimalPortReachesDestination(t *testing.T) {
	d := mustDF(t, 2, 4, 2, 0)
	for src := 0; src < d.Nodes; src += 5 {
		for dst := 0; dst < d.Nodes; dst += 3 {
			if src == dst {
				continue
			}
			r := d.RouterOf(src)
			hops := 0
			for {
				port := d.MinimalPort(r, dst)
				kind, peer, _ := d.Peer(r, port)
				if kind == PortNode {
					if peer != dst {
						t.Fatalf("src %d dst %d delivered to %d", src, dst, peer)
					}
					break
				}
				r = peer
				hops++
				if hops > 3 {
					t.Fatalf("src %d dst %d exceeded diameter", src, dst)
				}
			}
			if want := d.MinimalHops(src, dst); hops != want {
				t.Fatalf("src %d dst %d hops %d, MinimalHops says %d", src, dst, hops, want)
			}
		}
	}
}

func TestMinimalPortQuick(t *testing.T) {
	d := mustDF(t, 3, 6, 3, 0)
	f := func(s, ds uint32) bool {
		src := int(s) % d.Nodes
		dst := int(ds) % d.Nodes
		if src == dst {
			return true
		}
		r := d.RouterOf(src)
		for hops := 0; hops <= 3; hops++ {
			port := d.MinimalPort(r, dst)
			kind, peer, _ := d.Peer(r, port)
			if kind == PortNode {
				return peer == dst
			}
			r = peer
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPortToGroup(t *testing.T) {
	d := mustDF(t, 2, 4, 2, 0)
	for r := 0; r < d.Routers; r++ {
		for tg := 0; tg < d.G; tg++ {
			if tg == d.GroupOf(r) {
				continue
			}
			port := d.PortToGroup(r, tg)
			kind, peer, _ := d.Peer(r, port)
			switch kind {
			case PortGlobal:
				if d.GroupOf(peer) != tg {
					t.Fatalf("router %d PortToGroup(%d) lands in group %d", r, tg, d.GroupOf(peer))
				}
			case PortLocal:
				entry, _ := d.GlobalEntry(d.GroupOf(r), tg)
				if peer != entry {
					t.Fatalf("router %d PortToGroup(%d) local hop to %d, want entry %d", r, tg, peer, entry)
				}
			default:
				t.Fatalf("router %d PortToGroup(%d) kind %v", r, tg, kind)
			}
		}
	}
}

func TestMinimalHopsDistribution(t *testing.T) {
	d := mustDF(t, 2, 4, 2, 0)
	// Within a router: 0 hops; same group: 1; remote group: 1..3.
	if got := d.MinimalHops(0, 1); got != 0 {
		t.Errorf("same-router hops=%d", got)
	}
	if got := d.MinimalHops(0, d.P*1); got != 1 {
		t.Errorf("same-group hops=%d", got)
	}
	for dst := 0; dst < d.Nodes; dst++ {
		h := d.MinimalHops(0, dst)
		if h < 0 || h > 3 {
			t.Fatalf("hops out of range: %d", h)
		}
	}
}

func TestPortKindOf(t *testing.T) {
	d := mustDF(t, 2, 4, 2, 0)
	wants := []struct {
		port int
		kind PortKind
	}{
		{0, PortNode}, {1, PortNode},
		{2, PortLocal}, {4, PortLocal},
		{5, PortGlobal}, {6, PortGlobal},
		{7, PortRing},
		{-1, PortNone},
	}
	for _, w := range wants {
		if got := d.PortKindOf(w.port); got != w.kind {
			t.Errorf("PortKindOf(%d)=%v want %v", w.port, got, w.kind)
		}
	}
}

func TestUndersizedNetworkUnwiredPorts(t *testing.T) {
	d := mustDF(t, 2, 4, 2, 5) // 5 of max 9 groups
	none := 0
	for r := 0; r < d.Routers; r++ {
		for p := d.GlobalPortBase(); p < d.RouterPorts; p++ {
			kind, _, _ := d.Peer(r, p)
			if kind == PortNone {
				none++
			} else if kind != PortGlobal {
				t.Fatalf("unexpected kind %v", kind)
			}
		}
	}
	// Each group has G-1=4 wired links out of a*h=8 ports.
	if want := d.G * (8 - 4); none != want {
		t.Errorf("unwired ports = %d, want %d", none, want)
	}
	// Wired pairs must still be consistent.
	for src := 0; src < d.G; src++ {
		for dst := 0; dst < d.G; dst++ {
			if src == dst {
				continue
			}
			r, port := d.GlobalEntry(src, dst)
			kind, peer, _ := d.Peer(r, port)
			if kind != PortGlobal || d.GroupOf(peer) != dst {
				t.Fatalf("GlobalEntry(%d,%d) broken on undersized network", src, dst)
			}
		}
	}
}

func TestAdvValiantLocalCap(t *testing.T) {
	d := mustDF(t, 6, 12, 6, 0) // the paper's h=6 network
	atH := d.AdvValiantLocalCap(d.H)
	at1 := d.AdvValiantLocalCap(1)
	// ADV+h concentrates h flows on one local link: cap ≈ 1/h (paper §III).
	if atH > 0.2 || atH < 0.1 {
		t.Errorf("ADV+h cap = %f, want ≈ 1/h = %f", atH, 1.0/float64(d.H))
	}
	// ADV+1 leaves local links essentially unloaded: cap above the 0.5
	// global-link bound, so globals dominate.
	if at1 <= 0.5 {
		t.Errorf("ADV+1 cap = %f, want > 0.5", at1)
	}
	at2H := d.AdvValiantLocalCap(2 * d.H)
	if at2H > 0.2 {
		t.Errorf("ADV+2h cap = %f, want ≈ 1/h", at2H)
	}
}

func TestAnalyticBounds(t *testing.T) {
	d := mustDF(t, 6, 12, 6, 0)
	if got := d.MinGlobalWorstCaseThroughput(); got != 1.0/72 {
		t.Errorf("global worst case %f", got)
	}
	if got := d.MinLocalWorstCaseThroughput(); got != 1.0/6 {
		t.Errorf("local worst case %f", got)
	}
	if got := d.ValiantLocalSaturationBound(); got != 1.0/6 {
		t.Errorf("valiant local bound %f", got)
	}
}
