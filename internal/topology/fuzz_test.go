package topology

import "testing"

// FuzzTopologyInvariants builds random small dragonflies and checks the
// wiring invariants plus minimal-route validity.
func FuzzTopologyInvariants(f *testing.F) {
	f.Add(1, 2, 1, 0)
	f.Add(2, 4, 2, 0)
	f.Add(2, 4, 2, 5)
	f.Add(3, 6, 3, 19)
	f.Add(1, 3, 2, 4) // unbalanced
	f.Fuzz(func(t *testing.T, p, a, h, groups int) {
		if p < 1 || a < 1 || h < 1 || p > 4 || a > 8 || h > 4 {
			return
		}
		if groups < 0 || groups > a*h+1 {
			return
		}
		d, err := New(p, a, h, groups)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("p=%d a=%d h=%d g=%d: %v", p, a, h, groups, err)
		}
		// Minimal routes reach their destination within the diameter.
		step := d.Nodes/7 + 1
		for src := 0; src < d.Nodes; src += step {
			for dst := 0; dst < d.Nodes; dst += step {
				if src == dst {
					continue
				}
				r := d.RouterOf(src)
				delivered := false
				for hops := 0; hops <= 3; hops++ {
					port := d.MinimalPort(r, dst)
					kind, peer, _ := d.Peer(r, port)
					if kind == PortNode {
						if peer != dst {
							t.Fatalf("misdelivery %d->%d got %d", src, dst, peer)
						}
						delivered = true
						break
					}
					if kind == PortNone {
						t.Fatalf("minimal route via unwired port (src %d dst %d)", src, dst)
					}
					r = peer
				}
				if !delivered {
					t.Fatalf("no delivery within diameter: %d->%d (p=%d a=%d h=%d g=%d)",
						src, dst, p, a, h, groups)
				}
			}
		}
	})
}
