package topology

import (
	"fmt"
)

// Ring is a Hamiltonian ring over all routers of a dragonfly, used as the
// deadlock-free escape subnetwork (paper §IV-C). A ring is described by the
// cyclic router order; consecutive routers are connected either by an
// existing local link, or by the global link stitching one group to the
// next. The ring can be realized physically (dedicated ports) or embedded
// (an extra escape VC on the canonical links it traverses).
type Ring struct {
	// Order is the cyclic sequence of routers; len(Order) == Routers and
	// every router appears exactly once.
	Order []int

	// Offset is the group offset used for stitching (ring j uses j+1).
	Offset int

	next []int32 // successor router per router
	pos  []int32 // position of each router in Order
	port []int32 // canonical output port toward the successor (embedded realization)
	glob []bool  // true when the edge to the successor is a global link
}

// Next returns the successor of router r on the ring.
func (rg *Ring) Next(r int) int { return int(rg.next[r]) }

// Pos returns the position of router r in the ring order.
func (rg *Ring) Pos(r int) int { return int(rg.pos[r]) }

// EmbeddedPort returns the canonical output port of router r that realizes
// the ring edge toward its successor when the ring is embedded.
func (rg *Ring) EmbeddedPort(r int) int { return int(rg.port[r]) }

// EdgeIsGlobal reports whether the ring edge leaving router r is a global
// link (long wire) rather than a local one.
func (rg *Ring) EdgeIsGlobal(r int) bool { return rg.glob[r] }

// DistanceOnRing returns the number of ring hops from router a to router b
// following ring direction.
func (rg *Ring) DistanceOnRing(a, b int) int {
	n := len(rg.Order)
	return (int(rg.pos[b]) - int(rg.pos[a]) + n) % n
}

// HamiltonianRing builds the default escape ring (group offset 1): within
// each group routers are visited on a Hamiltonian path from the entry router
// to router 0, then the offset-1 global link leads to the next group.
func (d *Dragonfly) HamiltonianRing() (*Ring, error) {
	rings, err := d.HamiltonianRings(1)
	if err != nil {
		return nil, err
	}
	return rings[0], nil
}

// HamiltonianRings builds k link-disjoint Hamiltonian rings (paper §VII:
// up to h edge-disjoint rings can be embedded). Each ring stitches groups
// with a fixed group offset; within-group Hamiltonian paths are found by
// backtracking while avoiding local edges used by previous rings. The stitch
// offset for each ring is searched over all offsets coprime with G, since
// the entry/exit routers implied by an offset may make an edge-disjoint path
// decomposition impossible (e.g. two rings sharing both endpoints in K4).
// An error is returned when the requested count cannot be realized.
func (d *Dragonfly) HamiltonianRings(k int) ([]*Ring, error) {
	if k < 1 {
		return nil, fmt.Errorf("topology: ring count %d < 1", k)
	}
	if d.G == 1 {
		return d.singleGroupRings(k)
	}
	if k > d.H {
		return nil, fmt.Errorf("topology: at most h=%d edge-disjoint rings (requested %d)", d.H, k)
	}
	if k > 1 && d.A%2 == 0 && d.G == d.A*d.H+1 {
		// Maximum-size network with even a: use the zigzag Hamiltonian-path
		// decomposition of K_a, which guarantees k ≤ h disjoint rings.
		return d.ringsZigzag(k)
	}
	// forbidden local edges per group, encoded lo*A+hi.
	forbidden := make([]map[int]bool, d.G)
	for g := range forbidden {
		forbidden[g] = make(map[int]bool)
	}
	usedOffset := make(map[int]bool)
	rings := make([]*Ring, 0, k)
	for j := 0; j < k; j++ {
		var rg *Ring
		for off := 1; off < d.G && off <= d.A*d.H; off++ {
			if usedOffset[off] || gcd(off, d.G) != 1 {
				continue
			}
			// Stitch link: group g's link index off-1 (exit router x)
			// arrives at the next group's link index G-1-off (entry e).
			x := (off - 1) / d.H
			e := (d.G - 1 - off) / d.H
			if e == x && d.A > 1 {
				continue
			}
			cand, err := d.assembleRing(off, e, x, forbidden)
			if err != nil {
				continue // try the next offset
			}
			rg = cand
			usedOffset[off] = true
			break
		}
		if rg == nil {
			return nil, fmt.Errorf("%w: no stitch offset admits ring %d", ErrTooSmall, j)
		}
		rings = append(rings, rg)
	}
	return rings, nil
}

// ringsZigzag builds k disjoint rings on a maximum-size network (G = a·h+1,
// a even) using the classical decomposition of K_a into a/2 edge-disjoint
// Hamiltonian paths. Ring j stitches groups with an offset from "row" j
// (offsets j·h+1 .. j·h+h all exit from router j and enter at router a−1−j),
// and the zigzag path of index j is relabeled so its endpoints land exactly
// on that entry/exit pair.
func (d *Dragonfly) ringsZigzag(k int) ([]*Ring, error) {
	m := d.A / 2
	if k > m {
		return nil, fmt.Errorf("topology: zigzag decomposition yields at most %d rings", m)
	}
	rings := make([]*Ring, 0, k)
	for j := 0; j < k; j++ {
		// Pick an offset whose exit router is j and which is coprime with G.
		off := -1
		for r := 0; r < d.H; r++ {
			cand := j*d.H + 1 + r
			if cand < d.G && gcd(cand, d.G) == 1 {
				off = cand
				break
			}
		}
		if off < 0 {
			return nil, fmt.Errorf("topology: no coprime stitch offset with exit router %d (G=%d)", j, d.G)
		}
		x := j           // exit router (owns link off-1)
		e := d.A - 1 - j // entry router (peer of link G-1-off)
		path := zigzagPath(d.A, j)
		for i, v := range path { // relabel σ: endpoints (j, j+m) → (j, a−1−j)
			if v >= m {
				path[i] = d.A - 1 - v + m
			}
		}
		// zigzag ends at j+m → σ → a−1−j = e; orient the path e → x.
		for lo, hi := 0, len(path)-1; lo < hi; lo, hi = lo+1, hi-1 {
			path[lo], path[hi] = path[hi], path[lo]
		}
		if path[0] != e || path[len(path)-1] != x {
			return nil, fmt.Errorf("internal: zigzag ring %d endpoints %d..%d, want %d..%d",
				j, path[0], path[len(path)-1], e, x)
		}
		order := make([]int, 0, d.Routers)
		g := 0
		for i := 0; i < d.G; i++ {
			for _, rl := range path {
				order = append(order, d.RouterAt(g, rl))
			}
			g = (g + off) % d.G
		}
		rings = append(rings, d.ringFromOrder(order, off))
	}
	return rings, nil
}

// zigzagPath returns the j-th path of the standard Hamiltonian-path
// decomposition of K_a (a even): j, j+1, j−1, j+2, j−2, …, j+a/2 (mod a).
func zigzagPath(a, j int) []int {
	path := make([]int, a)
	path[0] = j
	for i := 1; i < a; i++ {
		if i%2 == 1 {
			path[i] = (j + (i+1)/2) % a
		} else {
			path[i] = (j - i/2 + a) % a
		}
	}
	return path
}

// singleGroupRings handles the degenerate one-group network, where rings are
// Hamiltonian cycles of the complete local graph.
func (d *Dragonfly) singleGroupRings(k int) ([]*Ring, error) {
	if d.A < 3 {
		return nil, fmt.Errorf("%w: single group with a=%d", ErrTooSmall, d.A)
	}
	forbidden := []map[int]bool{make(map[int]bool)}
	rings := make([]*Ring, 0, k)
	for j := 0; j < k; j++ {
		// Find a Hamiltonian cycle 0 -> ... -> 0 avoiding used edges.
		path, ok := hamPathAvoid(d.A, 0, -1, forbidden[0], true)
		if !ok {
			return nil, fmt.Errorf("topology: only %d edge-disjoint single-group rings exist", j)
		}
		rg := d.ringFromOrder(path, 1)
		markEdges(forbidden[0], path, d.A, true)
		rings = append(rings, rg)
	}
	return rings, nil
}

// assembleRing builds one ring with the given group offset, per-group entry
// and exit local indices, and forbidden local edge sets (updated on success).
func (d *Dragonfly) assembleRing(off, e, x int, forbidden []map[int]bool) (*Ring, error) {
	order := make([]int, 0, d.Routers)
	type groupPath struct {
		g    int
		path []int
	}
	paths := make([]groupPath, 0, d.G)
	g := 0
	for i := 0; i < d.G; i++ {
		start, end := e, x
		if i == 0 {
			// The first group is "entered" from the last group's stitch,
			// which also lands on e; using e uniformly keeps the cycle closed.
			start = e
		}
		var path []int
		var ok bool
		if d.A == 1 {
			path, ok = []int{0}, true
		} else {
			path, ok = hamPathAvoid(d.A, start, end, forbidden[g], false)
		}
		if !ok {
			return nil, fmt.Errorf("no Hamiltonian path %d→%d avoiding used edges in group %d", start, end, g)
		}
		paths = append(paths, groupPath{g: g, path: path})
		for _, rl := range path {
			order = append(order, d.RouterAt(g, rl))
		}
		g = (g + off) % d.G
	}
	if g != 0 {
		return nil, fmt.Errorf("internal: group walk did not close (ended at %d)", g)
	}
	rg := d.ringFromOrder(order, off)
	for _, gp := range paths {
		markEdges(forbidden[gp.g], gp.path, d.A, false)
	}
	return rg, nil
}

// ringFromOrder finalizes the ring: successor map, positions, embedded ports
// and edge kinds.
func (d *Dragonfly) ringFromOrder(order []int, off int) *Ring {
	rg := &Ring{
		Order:  order,
		Offset: off,
		next:   make([]int32, d.Routers),
		pos:    make([]int32, d.Routers),
		port:   make([]int32, d.Routers),
		glob:   make([]bool, d.Routers),
	}
	n := len(order)
	for i, r := range order {
		nxt := order[(i+1)%n]
		rg.next[r] = int32(nxt)
		rg.pos[r] = int32(i)
		if d.GroupOf(r) == d.GroupOf(nxt) {
			rg.port[r] = int32(d.LocalPortTo(r, nxt))
			rg.glob[r] = false
		} else {
			_, port := d.GlobalEntry(d.GroupOf(r), d.GroupOf(nxt))
			rg.port[r] = int32(port)
			rg.glob[r] = true
		}
	}
	return rg
}

// ReformWithout returns a new ring with router `remove` spliced out: the
// surviving order is unchanged except that remove's predecessor now feeds
// remove's successor directly. This is the degraded-mode escape path after a
// router failure — the bubble condition on a ring is order-independent, so
// the shorter cycle stays deadlock-free. The splice edge need not correspond
// to a canonical link (predecessor and successor can sit in arbitrary
// groups); it is realizable on a physical ring, whose dedicated ports can be
// retargeted, and its EmbeddedPort is -1 when no canonical link matches.
func (d *Dragonfly) ReformWithout(rg *Ring, remove int) (*Ring, error) {
	if remove < 0 || remove >= len(rg.pos) {
		return nil, fmt.Errorf("topology: router %d not on the ring", remove)
	}
	if len(rg.Order) <= 3 {
		return nil, fmt.Errorf("topology: ring of %d routers cannot lose one", len(rg.Order))
	}
	order := make([]int, 0, len(rg.Order)-1)
	for _, r := range rg.Order {
		if r != remove {
			order = append(order, r)
		}
	}
	if len(order) != len(rg.Order)-1 {
		return nil, fmt.Errorf("topology: router %d not on the ring", remove)
	}
	nr := &Ring{
		Order:  order,
		Offset: rg.Offset,
		next:   make([]int32, d.Routers),
		pos:    make([]int32, d.Routers),
		port:   make([]int32, d.Routers),
		glob:   make([]bool, d.Routers),
	}
	for r := range nr.next {
		nr.next[r], nr.pos[r], nr.port[r] = -1, -1, -1
	}
	n := len(order)
	for i, r := range order {
		nxt := order[(i+1)%n]
		nr.pos[r] = int32(i)
		nr.next[r] = int32(nxt)
		if int(rg.next[r]) == nxt {
			// Surviving edge: keep the original realization.
			nr.port[r] = rg.port[r]
			nr.glob[r] = rg.glob[r]
			continue
		}
		// The splice edge prev(remove) → next(remove).
		nr.glob[r] = d.GroupOf(r) != d.GroupOf(nxt)
		if !nr.glob[r] {
			nr.port[r] = int32(d.LocalPortTo(r, nxt))
		} else if er, port := d.GlobalEntry(d.GroupOf(r), d.GroupOf(nxt)); er == r {
			nr.port[r] = int32(port)
		}
	}
	return nr, nil
}

// markEdges records the undirected local edges of a within-group path (or
// cycle) as used.
func markEdges(set map[int]bool, path []int, a int, cycle bool) {
	for i := 0; i+1 < len(path); i++ {
		set[edgeKey(path[i], path[i+1], a)] = true
	}
	if cycle && len(path) > 2 {
		set[edgeKey(path[len(path)-1], path[0], a)] = true
	}
}

func edgeKey(u, v, a int) int {
	if u > v {
		u, v = v, u
	}
	return u*a + v
}

// hamPathAvoid searches for a Hamiltonian path on the complete graph K_a
// from s to t (t == -1 leaves the endpoint free; cycle == true additionally
// requires the last vertex to connect back to s) avoiding forbidden edges.
// Backtracking is fine here: a ≤ 2h is small and rings are built once.
func hamPathAvoid(a, s, t int, forbidden map[int]bool, cycle bool) ([]int, bool) {
	path := make([]int, 0, a)
	used := make([]bool, a)
	path = append(path, s)
	used[s] = true
	var rec func() bool
	rec = func() bool {
		if len(path) == a {
			last := path[len(path)-1]
			if t >= 0 && last != t {
				return false
			}
			if cycle && forbidden[edgeKey(last, s, a)] {
				return false
			}
			return true
		}
		cur := path[len(path)-1]
		for v := 0; v < a; v++ {
			if used[v] || forbidden[edgeKey(cur, v, a)] {
				continue
			}
			// Prune: reserve t for the final slot.
			if t >= 0 && v == t && len(path) != a-1 {
				continue
			}
			used[v] = true
			path = append(path, v)
			if rec() {
				return true
			}
			path = path[:len(path)-1]
			used[v] = false
		}
		return false
	}
	if rec() {
		return path, true
	}
	return nil, false
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
