package topology

import (
	"ofar/internal/simcore"
)

// Ring snapshot support. Rings are rebuilt deterministically by New, but a
// fault can splice a dead router out mid-run (ReformWithout), and the splice
// edge need not correspond to any canonical link — so a restored network
// cannot re-derive its rings from the topology and must carry them verbatim.

const maxRingRouters = 1 << 22

// EncodeState appends the full ring state to e, including the derived
// per-router maps (which after a splice are no longer a pure function of
// Order: spliced-out routers hold -1 sentinels and splice edges can have no
// embedded port).
func (rg *Ring) EncodeState(e *simcore.Enc) {
	e.Int(rg.Offset)
	e.Int(len(rg.Order))
	for _, r := range rg.Order {
		e.Int(r)
	}
	e.Int(len(rg.next))
	for i := range rg.next {
		e.I64(int64(rg.next[i]))
		e.I64(int64(rg.pos[i]))
		e.I64(int64(rg.port[i]))
		e.Bool(rg.glob[i])
	}
}

// DecodeRing reads one ring for a network of `routers` routers. Structural
// bounds are validated (every index inside the router range, Order no longer
// than the maps); deeper invariants are the snapshot writer's responsibility
// and are protected by the payload checksum.
func DecodeRing(d *simcore.Dec, routers int) (*Ring, error) {
	rg := &Ring{Offset: d.Int()}
	nOrder := d.Len(maxRingRouters)
	if d.Err() != nil {
		return nil, d.Err()
	}
	rg.Order = make([]int, nOrder)
	for i := range rg.Order {
		rg.Order[i] = d.Int()
		if d.Err() == nil && (rg.Order[i] < 0 || rg.Order[i] >= routers) {
			d.Fail("ring order entry %d outside [0,%d)", rg.Order[i], routers)
		}
	}
	n := d.Len(maxRingRouters)
	if d.Err() == nil && (n != routers || nOrder > n) {
		d.Fail("ring maps sized %d, network has %d routers (order %d)", n, routers, nOrder)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	rg.next = make([]int32, n)
	rg.pos = make([]int32, n)
	rg.port = make([]int32, n)
	rg.glob = make([]bool, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		rg.next[i] = int32(d.I64())
		rg.pos[i] = int32(d.I64())
		rg.port[i] = int32(d.I64())
		rg.glob[i] = d.Bool()
		if d.Err() == nil {
			if int(rg.next[i]) >= routers || rg.next[i] < -1 ||
				int(rg.pos[i]) >= n || rg.pos[i] < -1 {
				d.Fail("ring map entry %d out of range", i)
			}
		}
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return rg, nil
}
