package topology

import (
	"testing"
)

// checkRing validates the structural invariants of a Hamiltonian ring:
// every router exactly once, every edge realizable (local link within a
// group or the correct global link between groups), and Next/Pos coherent.
func checkRing(t *testing.T, d *Dragonfly, rg *Ring) {
	t.Helper()
	if len(rg.Order) != d.Routers {
		t.Fatalf("ring length %d, want %d", len(rg.Order), d.Routers)
	}
	seen := make([]bool, d.Routers)
	for _, r := range rg.Order {
		if seen[r] {
			t.Fatalf("router %d appears twice", r)
		}
		seen[r] = true
	}
	for i, r := range rg.Order {
		nxt := rg.Order[(i+1)%len(rg.Order)]
		if rg.Next(r) != nxt {
			t.Fatalf("Next(%d)=%d want %d", r, rg.Next(r), nxt)
		}
		if rg.Pos(r) != i {
			t.Fatalf("Pos(%d)=%d want %d", r, rg.Pos(r), i)
		}
		port := rg.EmbeddedPort(r)
		kind, peer, _ := d.Peer(r, port)
		if peer != nxt {
			t.Fatalf("embedded port of %d leads to %d, want %d", r, peer, nxt)
		}
		sameGroup := d.GroupOf(r) == d.GroupOf(nxt)
		if sameGroup && (kind != PortLocal || rg.EdgeIsGlobal(r)) {
			t.Fatalf("intra-group ring edge %d->%d misclassified", r, nxt)
		}
		if !sameGroup && (kind != PortGlobal || !rg.EdgeIsGlobal(r)) {
			t.Fatalf("inter-group ring edge %d->%d misclassified", r, nxt)
		}
	}
}

func TestHamiltonianRingBalanced(t *testing.T) {
	for _, h := range []int{2, 3, 4, 6} {
		d, err := NewBalanced(h)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := d.HamiltonianRing()
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		checkRing(t, d, rg)
	}
}

func TestRingDistance(t *testing.T) {
	d, _ := NewBalanced(2)
	rg, err := d.HamiltonianRing()
	if err != nil {
		t.Fatal(err)
	}
	n := d.Routers
	a, b := rg.Order[0], rg.Order[5]
	if got := rg.DistanceOnRing(a, b); got != 5 {
		t.Errorf("distance=%d want 5", got)
	}
	if got := rg.DistanceOnRing(b, a); got != n-5 {
		t.Errorf("reverse distance=%d want %d", got, n-5)
	}
	if got := rg.DistanceOnRing(a, a); got != 0 {
		t.Errorf("self distance=%d", got)
	}
}

// TestMultiRingEdgeDisjoint checks the §VII extension: k rings share no
// directed link (local or global).
func TestMultiRingEdgeDisjoint(t *testing.T) {
	for _, tc := range []struct{ h, k int }{{2, 2}, {3, 2}, {3, 3}, {6, 3}} {
		d, err := NewBalanced(tc.h)
		if err != nil {
			t.Fatal(err)
		}
		rings, err := d.HamiltonianRings(tc.k)
		if err != nil {
			t.Fatalf("h=%d k=%d: %v", tc.h, tc.k, err)
		}
		if len(rings) != tc.k {
			t.Fatalf("h=%d: got %d rings", tc.h, len(rings))
		}
		type edge struct{ r, port int }
		used := make(map[edge]int)
		for j, rg := range rings {
			checkRing(t, d, rg)
			for _, r := range rg.Order {
				e := edge{r, rg.EmbeddedPort(r)}
				if prev, ok := used[e]; ok {
					t.Fatalf("h=%d: rings %d and %d share edge %v", tc.h, prev, j, e)
				}
				used[e] = j
			}
		}
	}
}

func TestMultiRingTooMany(t *testing.T) {
	d, _ := NewBalanced(2)
	if _, err := d.HamiltonianRings(d.H + 1); err == nil {
		t.Error("expected error for k > h")
	}
	if _, err := d.HamiltonianRings(0); err == nil {
		t.Error("expected error for k = 0")
	}
}

func TestSingleGroupRing(t *testing.T) {
	d := mustDF(t, 2, 4, 2, 1)
	rg, err := d.HamiltonianRing()
	if err != nil {
		t.Fatal(err)
	}
	checkRing(t, d, rg)
	for _, r := range rg.Order {
		if rg.EdgeIsGlobal(r) {
			t.Fatalf("single-group ring has global edge at %d", r)
		}
	}
}
