// Package trace defines the compact binary packet-trace format: every
// packet a simulation generates, as (cycle, src, dst, size) records, behind
// a versioned header in the snapshot (`OFARSNAP`) style — magic, format
// version, the engine's physics digest for provenance, and an FNV-1a
// checksum over the record payload so corruption fails loudly before any
// record is interpreted.
//
// A recorded trace replayed through traffic.TraceReplay reproduces the
// original run bit-identically (same grant digest): generation is the only
// consumer of the traffic RNG, so re-injecting the identical packet stream
// at the identical cycles leaves every router decision unchanged. External
// traces use the same format; the engine digest in the header then simply
// records which physics wrote the file (zero for foreign tools).
//
// Records are 14 bytes each: a uint32 cycle delta from the previous record
// (records must be sorted by cycle — the recorder emits them that way),
// uint32 source and destination node indices, and a uint16 packet size in
// phits.
package trace

import (
	"fmt"
	"io"

	"ofar/internal/simcore"
)

const (
	// Magic identifies a trace file; Version the record layout. Bump
	// Version on any layout change so old readers reject new files.
	Magic   = "OFARTRCE"
	Version = 1

	recordBytes = 4 + 4 + 4 + 2

	// maxRecords bounds a decoded trace (~7 GiB of records) so a corrupt
	// count cannot drive an unbounded allocation.
	maxRecords = 1 << 29
)

// Record is one generated packet: the cycle it was generated, its source
// and destination nodes, and its size in phits.
type Record struct {
	Cycle int64
	Src   int32
	Dst   int32
	Size  uint16
}

// Recorder accumulates generation records in the order the network emits
// them: ascending cycle, ascending source node within a cycle. It attaches
// to a network via SetTraceRecorder and costs one append per generated
// packet.
type Recorder struct {
	recs []Record
}

// Add appends one generated packet.
func (r *Recorder) Add(cycle int64, src, dst, size int) {
	r.recs = append(r.recs, Record{Cycle: cycle, Src: int32(src), Dst: int32(dst), Size: uint16(size)})
}

// Len reports how many packets have been recorded.
func (r *Recorder) Len() int { return len(r.recs) }

// Records returns the recorded packets. The slice is owned by the recorder.
func (r *Recorder) Records() []Record { return r.recs }

// Encode serializes records behind the versioned header. engine is the
// physics digest of the producing build (provenance; zero for external
// producers). Records must be sorted by cycle with non-negative fields.
func Encode(engine uint64, recs []Record) ([]byte, error) {
	var payload simcore.Enc
	payload.Int(len(recs))
	prev := int64(0)
	for i, rec := range recs {
		delta := rec.Cycle - prev
		switch {
		case rec.Cycle < 0:
			return nil, fmt.Errorf("trace: record %d has negative cycle %d", i, rec.Cycle)
		case delta < 0:
			return nil, fmt.Errorf("trace: record %d at cycle %d out of order (previous %d)", i, rec.Cycle, prev)
		case delta > int64(^uint32(0)):
			return nil, fmt.Errorf("trace: record %d cycle gap %d exceeds uint32", i, delta)
		case rec.Src < 0 || rec.Dst < 0:
			return nil, fmt.Errorf("trace: record %d has negative endpoint %d→%d", i, rec.Src, rec.Dst)
		}
		payload.U32(uint32(delta))
		payload.U32(uint32(rec.Src))
		payload.U32(uint32(rec.Dst))
		payload.U16(rec.Size)
		prev = rec.Cycle
	}
	var out simcore.Enc
	out.Raw([]byte(Magic))
	out.U64(Version)
	out.U64(engine)
	out.U64(simcore.Checksum64(payload.Data()))
	out.Raw(payload.Data())
	return out.Data(), nil
}

// Decode parses a trace image, returning the recorded engine digest and the
// records. It never panics on malformed input: the header, checksum and
// every record field are validated, and a structural error surfaces as err.
func Decode(b []byte) (engine uint64, recs []Record, err error) {
	d := simcore.NewDec(b)
	magic := d.Raw(len(Magic))
	if d.Err() == nil && string(magic) != Magic {
		return 0, nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	if v := d.U64(); d.Err() == nil && v != Version {
		return 0, nil, fmt.Errorf("trace: format version %d, this build reads %d", v, Version)
	}
	engine = d.U64()
	sum := d.U64()
	if d.Err() != nil {
		return 0, nil, d.Err()
	}
	payload := d.Raw(d.Remaining())
	if got := simcore.Checksum64(payload); got != sum {
		return 0, nil, fmt.Errorf("trace: payload checksum %016x, header says %016x", got, sum)
	}
	pd := simcore.NewDec(payload)
	n := pd.Len(maxRecords)
	if pd.Err() == nil && pd.Remaining() != n*recordBytes {
		pd.Fail("payload holds %d bytes for %d records, want %d", pd.Remaining(), n, n*recordBytes)
	}
	if pd.Err() != nil {
		return 0, nil, pd.Err()
	}
	recs = make([]Record, n)
	cycle := int64(0)
	for i := range recs {
		cycle += int64(pd.U32())
		recs[i] = Record{Cycle: cycle, Src: int32(pd.U32()), Dst: int32(pd.U32()), Size: pd.U16()}
		if recs[i].Src < 0 || recs[i].Dst < 0 {
			pd.Fail("record %d endpoint outside int32", i)
		}
	}
	if pd.Err() != nil {
		return 0, nil, pd.Err()
	}
	return engine, recs, nil
}

// Write encodes records to w (see Encode).
func Write(w io.Writer, engine uint64, recs []Record) error {
	b, err := Encode(engine, recs)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Read decodes a full trace stream from r (see Decode).
func Read(r io.Reader) (uint64, []Record, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return 0, nil, err
	}
	return Decode(b)
}
