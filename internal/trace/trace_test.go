package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func sample() []Record {
	return []Record{
		{Cycle: 0, Src: 3, Dst: 9, Size: 8},
		{Cycle: 0, Src: 7, Dst: 1, Size: 8},
		{Cycle: 2, Src: 0, Dst: 5, Size: 8},
		{Cycle: 1000, Src: 12, Dst: 12, Size: 16},
	}
}

func TestRoundTrip(t *testing.T) {
	recs := sample()
	b, err := Encode(0xdeadbeef, recs)
	if err != nil {
		t.Fatal(err)
	}
	engine, got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if engine != 0xdeadbeef {
		t.Errorf("engine digest %x", engine)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, recs)
	}

	// Empty traces round-trip too.
	b, err = Encode(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, got, err = Decode(b); err != nil || len(got) != 0 {
		t.Errorf("empty trace: %v, %v", got, err)
	}
}

func TestWriterReader(t *testing.T) {
	var buf bytes.Buffer
	var rec Recorder
	rec.Add(5, 1, 2, 8)
	rec.Add(6, 3, 4, 8)
	if rec.Len() != 2 {
		t.Fatalf("recorder len %d", rec.Len())
	}
	if err := Write(&buf, 42, rec.Records()); err != nil {
		t.Fatal(err)
	}
	engine, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if engine != 42 || len(got) != 2 || got[1].Cycle != 6 {
		t.Errorf("read back engine=%d recs=%v", engine, got)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	cases := map[string][]Record{
		"out of order":   {{Cycle: 10, Src: 1, Dst: 2}, {Cycle: 9, Src: 1, Dst: 2}},
		"negative cycle": {{Cycle: -1, Src: 1, Dst: 2}},
		"negative src":   {{Cycle: 0, Src: -1, Dst: 2}},
		"negative dst":   {{Cycle: 0, Src: 1, Dst: -2}},
	}
	for name, recs := range cases {
		if _, err := Encode(0, recs); err == nil {
			t.Errorf("%s: encode accepted invalid records", name)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b, err := Encode(7, sample())
	if err != nil {
		t.Fatal(err)
	}
	// Bad magic.
	bad := append([]byte(nil), b...)
	bad[0] ^= 0xff
	if _, _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), b...)
	bad[8] = 99
	if _, _, err := Decode(bad); err == nil {
		t.Error("bad version accepted")
	}
	// Flipped payload byte breaks the checksum.
	bad = append([]byte(nil), b...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := Decode(bad); err == nil {
		t.Error("corrupt payload accepted")
	}
	// Truncation anywhere never panics and always errors.
	for i := 0; i < len(b); i++ {
		if _, _, err := Decode(b[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

// FuzzTraceRoundTrip pins two properties: the decoder never panics on
// arbitrary bytes, and any image it accepts re-encodes to a decode-equal
// record list (round-trip identity).
func FuzzTraceRoundTrip(f *testing.F) {
	seed, _ := Encode(0x1234, sample())
	f.Add(seed)
	empty, _ := Encode(0, nil)
	f.Add(empty)
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		engine, recs, err := Decode(data)
		if err != nil {
			return
		}
		b, err := Encode(engine, recs)
		if err != nil {
			t.Fatalf("re-encoding accepted records: %v", err)
		}
		engine2, recs2, err := Decode(b)
		if err != nil {
			t.Fatalf("decoding re-encoded image: %v", err)
		}
		if engine2 != engine || !reflect.DeepEqual(recs2, recs) {
			t.Fatalf("round trip not identity: %v vs %v", recs2, recs)
		}
	})
}
