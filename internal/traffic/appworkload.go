package traffic

import (
	"fmt"

	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// This file models the application-style communication the paper's
// motivation leans on (§I, §III, citing Bhatele et al., SC 2011): HPC codes
// with near-neighbor exchanges whose tasks are laid out consecutively
// ("DEF" mapping) produce heavily skewed local-link load in a dragonfly;
// randomizing the task mapping removes the skew at the cost of locality.
// The paper argues the fix belongs in the network (OFAR) rather than in the
// mapping; these patterns let the repository demonstrate both sides.

// Mapping selects how application tasks are placed on nodes.
type Mapping int

const (
	// MapLinear places task i on node i (the default/DEF mapping that
	// preserves locality and creates the §III hotspots).
	MapLinear Mapping = iota
	// MapRandom places tasks via a seeded random permutation (Bhatele's
	// RDN-style randomization).
	MapRandom
)

func (m Mapping) String() string {
	if m == MapRandom {
		return "random"
	}
	return "linear"
}

// Stencil3D is a 3-dimensional halo-exchange workload: tasks form an
// X×Y×Z torus and every packet goes to one of the task's six neighbors,
// chosen uniformly. Nodes without a task (when X·Y·Z < nodes) fall back to
// uniform traffic so the offered load stays comparable across mappings.
type Stencil3D struct {
	d       *topology.Dragonfly
	dims    [3]int
	mapping Mapping
	nodeOf  []int32 // task -> node
	taskOf  []int32 // node -> task (-1: no task)
	uniform *Uniform
}

// NewStencil3D builds the workload. X·Y·Z must not exceed the node count.
// The permutation for MapRandom derives from seed, so runs stay
// deterministic.
func NewStencil3D(d *topology.Dragonfly, x, y, z int, mapping Mapping, seed uint64) (*Stencil3D, error) {
	tasks := x * y * z
	if x < 1 || y < 1 || z < 1 {
		return nil, fmt.Errorf("traffic: stencil dims must be positive (%d×%d×%d)", x, y, z)
	}
	if tasks > d.Nodes {
		return nil, fmt.Errorf("traffic: %d stencil tasks exceed %d nodes", tasks, d.Nodes)
	}
	s := &Stencil3D{
		d:       d,
		dims:    [3]int{x, y, z},
		mapping: mapping,
		nodeOf:  make([]int32, tasks),
		taskOf:  make([]int32, d.Nodes),
		uniform: NewUniform(d),
	}
	for n := range s.taskOf {
		s.taskOf[n] = -1
	}
	perm := make([]int32, d.Nodes)
	for i := range perm {
		perm[i] = int32(i)
	}
	if mapping == MapRandom {
		rng := simcore.NewRNG(seed ^ 0x57e4c11)
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	for t := 0; t < tasks; t++ {
		s.nodeOf[t] = perm[t]
		s.taskOf[perm[t]] = int32(t)
	}
	return s, nil
}

// Name implements Pattern.
func (s *Stencil3D) Name() string {
	return fmt.Sprintf("STENCIL%dx%dx%d/%s", s.dims[0], s.dims[1], s.dims[2], s.mapping)
}

// Dest implements Pattern: a random face neighbor on the task torus.
func (s *Stencil3D) Dest(rng *simcore.RNG, src int) int {
	task := int(s.taskOf[src])
	if task < 0 {
		return s.uniform.Dest(rng, src)
	}
	x, y, z := s.dims[0], s.dims[1], s.dims[2]
	tx := task % x
	ty := (task / x) % y
	tz := task / (x * y)
	switch rng.Intn(6) {
	case 0:
		tx = (tx + 1) % x
	case 1:
		tx = (tx - 1 + x) % x
	case 2:
		ty = (ty + 1) % y
	case 3:
		ty = (ty - 1 + y) % y
	case 4:
		tz = (tz + 1) % z
	default:
		tz = (tz - 1 + z) % z
	}
	dst := int(s.nodeOf[tx+ty*x+tz*x*y])
	if dst == src { // degenerate dimension (size 1): wraparound hits self
		return s.uniform.Dest(rng, src)
	}
	return dst
}

// Permutation is a fixed random bijection without fixed points: every node
// always sends to the same partner. A classic adversarial-ish pattern that
// concentrates each flow on a single path.
type Permutation struct {
	d    *topology.Dragonfly
	dst  []int32
	seed uint64
}

// NewPermutation builds a derangement of the nodes from seed.
func NewPermutation(d *topology.Dragonfly, seed uint64) *Permutation {
	p := &Permutation{d: d, dst: make([]int32, d.Nodes), seed: seed}
	rng := simcore.NewRNG(seed ^ 0x9e11a7)
	perm := make([]int32, d.Nodes)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Remove fixed points by swapping with a cyclic neighbor.
	for i, v := range perm {
		if int(v) == i {
			j := (i + 1) % len(perm)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	copy(p.dst, perm)
	return p
}

// Name implements Pattern.
func (p *Permutation) Name() string { return fmt.Sprintf("PERM(%d)", p.seed) }

// Dest implements Pattern.
func (p *Permutation) Dest(_ *simcore.RNG, src int) int { return int(p.dst[src]) }
