package traffic

import (
	"math"
	"testing"

	"ofar/internal/simcore"
)

func TestStencilValidation(t *testing.T) {
	d := topo(t)
	if _, err := NewStencil3D(d, 100, 100, 100, MapLinear, 1); err == nil {
		t.Error("oversized stencil accepted")
	}
	if _, err := NewStencil3D(d, 0, 2, 2, MapLinear, 1); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestStencilNeighborsOnly(t *testing.T) {
	d := topo(t) // 72 nodes
	s, err := NewStencil3D(d, 4, 3, 2, MapLinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := simcore.NewRNG(2)
	// With linear mapping, task t sits on node t: verify destinations are
	// torus neighbors of the source task.
	for src := 0; src < 24; src++ {
		for i := 0; i < 30; i++ {
			dst := s.Dest(rng, src)
			if dst == src {
				t.Fatalf("self destination from %d", src)
			}
			if dst >= 24 {
				t.Fatalf("dst %d outside the task set", dst)
			}
			sx, sy, sz := src%4, (src/4)%3, src/12
			dx, dy, dz := dst%4, (dst/4)%3, dst/12
			diff := 0
			if sx != dx {
				diff++
				if (sx+1)%4 != dx && (sx-1+4)%4 != dx {
					t.Fatalf("%d -> %d not an x neighbor", src, dst)
				}
			}
			if sy != dy {
				diff++
				if (sy+1)%3 != dy && (sy-1+3)%3 != dy {
					t.Fatalf("%d -> %d not a y neighbor", src, dst)
				}
			}
			if sz != dz {
				diff++
				if (sz+1)%2 != dz && (sz-1+2)%2 != dz {
					t.Fatalf("%d -> %d not a z neighbor", src, dst)
				}
			}
			if diff != 1 {
				t.Fatalf("%d -> %d differs in %d axes", src, dst, diff)
			}
		}
	}
	// Nodes without a task fall back to uniform.
	if dst := s.Dest(rng, 70); dst == 70 {
		t.Error("taskless node sent to itself")
	}
}

// TestStencilMappingLocality: the §III argument — linear mapping keeps most
// neighbor traffic inside the source group, random mapping spreads it out.
func TestStencilMappingLocality(t *testing.T) {
	d := topo(t)
	rng := simcore.NewRNG(3)
	intraFrac := func(m Mapping) float64 {
		s, err := NewStencil3D(d, 6, 4, 3, m, 7)
		if err != nil {
			t.Fatal(err)
		}
		intra, total := 0, 0
		for src := 0; src < d.Nodes; src++ {
			if s.taskOf[src] < 0 {
				continue
			}
			for i := 0; i < 20; i++ {
				dst := s.Dest(rng, src)
				if d.GroupOfNode(dst) == d.GroupOfNode(src) {
					intra++
				}
				total++
			}
		}
		return float64(intra) / float64(total)
	}
	lin := intraFrac(MapLinear)
	rnd := intraFrac(MapRandom)
	t.Logf("intra-group fraction: linear %.2f, random %.2f", lin, rnd)
	if lin < 2*rnd {
		t.Errorf("linear mapping locality %.2f not clearly above random %.2f", lin, rnd)
	}
}

func TestPermutationDerangement(t *testing.T) {
	d := topo(t)
	p := NewPermutation(d, 5)
	seen := make([]bool, d.Nodes)
	rng := simcore.NewRNG(1)
	for src := 0; src < d.Nodes; src++ {
		dst := p.Dest(rng, src)
		if dst == src {
			t.Fatalf("fixed point at %d", src)
		}
		if seen[dst] {
			t.Fatalf("node %d targeted twice (not a bijection)", dst)
		}
		seen[dst] = true
		// Deterministic: the same source always maps to the same partner.
		if again := p.Dest(rng, src); again != dst {
			t.Fatal("permutation not fixed")
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	d := topo(t)
	a, b := NewPermutation(d, 1), NewPermutation(d, 2)
	rng := simcore.NewRNG(1)
	same := 0
	for src := 0; src < d.Nodes; src++ {
		if a.Dest(rng, src) == b.Dest(rng, src) {
			same++
		}
	}
	if float64(same) > 0.2*float64(d.Nodes) {
		t.Errorf("permutations from different seeds agree on %d/%d nodes", same, d.Nodes)
	}
}

func TestStencilMeanDestDistance(t *testing.T) {
	// Sanity: with random mapping the average minimal hop distance grows.
	d := topo(t)
	rng := simcore.NewRNG(9)
	mean := func(m Mapping) float64 {
		s, _ := NewStencil3D(d, 6, 4, 3, m, 3)
		sum, n := 0.0, 0
		for src := 0; src < 72; src++ {
			if s.taskOf[src] < 0 {
				continue
			}
			for i := 0; i < 10; i++ {
				sum += float64(d.MinimalHops(src, s.Dest(rng, src)))
				n++
			}
		}
		return sum / float64(n)
	}
	lin, rnd := mean(MapLinear), mean(MapRandom)
	if !(lin < rnd) || math.IsNaN(lin) {
		t.Errorf("linear mapping mean distance %.2f not below random %.2f", lin, rnd)
	}
}
