package traffic

import (
	"fmt"
	"math/bits"

	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// Classic synthetic permutation patterns from the interconnection-network
// literature (Dally & Towles; used by BookSim-class simulators). They are
// defined on the node-index bit string of the largest power-of-two subset
// of the network; nodes outside that subset (dragonfly sizes are rarely
// powers of two) fall back to uniform traffic so offered load stays
// comparable. When a transform maps a node to itself the pattern also
// falls back to uniform for that packet.

// bitPattern is the shared machinery: a bijection on [0, 2^k).
type bitPattern struct {
	d       *topology.Dragonfly
	name    string
	k       uint // log2 of the covered node subset
	mask    int
	xform   func(v, k int) int
	uniform *Uniform
}

func newBitPattern(d *topology.Dragonfly, name string, xform func(v, k int) int) *bitPattern {
	k := uint(bits.Len(uint(d.Nodes))) - 1 // largest power of two ≤ nodes
	return &bitPattern{
		d: d, name: name, k: k, mask: (1 << k) - 1,
		xform: xform, uniform: NewUniform(d),
	}
}

// Name implements Pattern.
func (b *bitPattern) Name() string { return b.name }

// Dest implements Pattern.
func (b *bitPattern) Dest(rng *simcore.RNG, src int) int {
	if src > b.mask {
		return b.uniform.Dest(rng, src)
	}
	dst := b.xform(src, int(b.k))
	if dst == src || dst > b.mask || dst >= b.d.Nodes {
		return b.uniform.Dest(rng, src)
	}
	return dst
}

// NewBitComplement sends node b_{k-1}…b_0 to its bitwise complement.
func NewBitComplement(d *topology.Dragonfly) Pattern {
	return newBitPattern(d, "BITCOMP", func(v, k int) int {
		return ^v & ((1 << k) - 1)
	})
}

// NewBitReverse sends node b_{k-1}…b_0 to b_0…b_{k-1}.
func NewBitReverse(d *topology.Dragonfly) Pattern {
	return newBitPattern(d, "BITREV", func(v, k int) int {
		r := 0
		for i := 0; i < k; i++ {
			r = (r << 1) | ((v >> i) & 1)
		}
		return r
	})
}

// NewShuffle sends node b_{k-1}…b_0 to b_{k-2}…b_0 b_{k-1} (perfect
// shuffle / left rotate).
func NewShuffle(d *topology.Dragonfly) Pattern {
	return newBitPattern(d, "SHUFFLE", func(v, k int) int {
		return ((v << 1) | (v >> (k - 1))) & ((1 << k) - 1)
	})
}

// NewTornado is the group-level tornado pattern: every group sends to the
// group ⌈G/2⌉−1 positions away — the classic worst case for ring-like
// arrangements, here equivalent to ADV with the near-half offset.
func NewTornado(d *topology.Dragonfly) Pattern {
	off := (d.G+1)/2 - 1
	if off < 1 {
		off = 1
	}
	a := NewAdv(d, off)
	return &renamed{Pattern: a, name: fmt.Sprintf("TORNADO(+%d)", off)}
}

type renamed struct {
	Pattern
	name string
}

func (r *renamed) Name() string { return r.name }
