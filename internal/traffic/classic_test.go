package traffic

import (
	"strings"
	"testing"

	"ofar/internal/simcore"
)

func TestBitComplementInvolution(t *testing.T) {
	d := topo(t) // 72 nodes -> 64-node power-of-two subset
	p := NewBitComplement(d)
	rng := simcore.NewRNG(1)
	for src := 0; src < 64; src++ {
		dst := p.Dest(rng, src)
		if dst == src {
			t.Fatalf("fixed point at %d", src)
		}
		if dst < 64 {
			back := p.Dest(rng, dst)
			if back != src {
				t.Fatalf("complement not an involution: %d -> %d -> %d", src, dst, back)
			}
		}
	}
	// Nodes beyond the power-of-two subset fall back to uniform.
	for i := 0; i < 10; i++ {
		if dst := p.Dest(rng, 70); dst == 70 {
			t.Fatal("fallback sent to self")
		}
	}
}

func TestBitReverseAndShuffle(t *testing.T) {
	d := topo(t)
	rng := simcore.NewRNG(2)
	rev := NewBitReverse(d)
	// 64-node subset: k=6. 0b000001 -> 0b100000 (1 -> 32).
	if dst := rev.Dest(rng, 1); dst != 32 {
		t.Errorf("bitrev(1)=%d want 32", dst)
	}
	if dst := rev.Dest(rng, 0b110000); dst != 0b000011 {
		t.Errorf("bitrev(48)=%d want 3", dst)
	}
	sh := NewShuffle(d)
	// shuffle(0b100001) = 0b000011.
	if dst := sh.Dest(rng, 0b100001); dst != 0b000011 {
		t.Errorf("shuffle(33)=%d want 3", dst)
	}
	if dst := sh.Dest(rng, 1); dst != 2 {
		t.Errorf("shuffle(1)=%d want 2", dst)
	}
}

func TestTornadoOffset(t *testing.T) {
	d := topo(t) // G=9 -> offset 4
	p := NewTornado(d)
	if !strings.Contains(p.Name(), "+4") {
		t.Errorf("tornado name %q", p.Name())
	}
	rng := simcore.NewRNG(3)
	for src := 0; src < d.Nodes; src += 5 {
		dst := p.Dest(rng, src)
		want := (d.GroupOfNode(src) + 4) % d.G
		if d.GroupOfNode(dst) != want {
			t.Fatalf("tornado %d -> group %d want %d", src, d.GroupOfNode(dst), want)
		}
	}
}
