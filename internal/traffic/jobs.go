package traffic

import (
	"fmt"
	"strings"

	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// This file is the job-level workload layer (ROADMAP item 5, following the
// RAPS frame of SNIPPETS.md §1): dragonflies exist to schedule supercomputer
// jobs onto, so the interesting traffic is N concurrent applications placed
// on node ranges — each with its own communication kind, offered load and
// lifetime — not one homogeneous synthetic pattern. Placement is linear
// (consecutive nodes, the paper's §III hotspot-producing DEF mapping) or a
// seeded random permutation (Bhatele-style RDN); nodes left unplaced can run
// background uniform traffic. The network tags every packet with its
// source's job slot, so Stats reports per-job p99/slowdown/interference.

// JobKind selects a job's communication pattern.
type JobKind uint8

const (
	// JobStencil is a 3-D halo exchange on a task torus (Dims must multiply
	// to the job's node count): each packet targets a random face neighbor.
	JobStencil JobKind = iota
	// JobAll2All models all-to-all phases (e.g. FFT transposes): each packet
	// targets a uniformly random other member of the job.
	JobAll2All
	// JobRing models ring-allreduce phases (reduce-scatter/allgather steps):
	// every rank sends to its successor on the job's rank ring.
	JobRing
	// JobParamServer is parameter-server fan-in: workers send to rank 0, and
	// rank 0 fans updates back out to a random worker.
	JobParamServer
)

// String returns the compact kind tag used in canonical workload names.
func (k JobKind) String() string {
	switch k {
	case JobStencil:
		return "stencil"
	case JobAll2All:
		return "a2a"
	case JobRing:
		return "ring"
	case JobParamServer:
		return "ps"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// JobSpec describes one job of a JobSet.
type JobSpec struct {
	Kind  JobKind
	Nodes int     // nodes the job occupies (ranks 0..Nodes-1)
	Load  float64 // offered load in phits/(node·cycle) while active
	Start int64   // first active cycle
	End   int64   // first inactive cycle; <= 0 means the job never ends
	Dims  [3]int  // stencil task grid; product must equal Nodes (JobStencil only)
}

// JobSetConfig configures a JobSet.
type JobSetConfig struct {
	Jobs       []JobSpec
	Mapping    Mapping // placement of job node ranges onto physical nodes
	Background float64 // uniform load on unplaced nodes, phits/(node·cycle)
	Seed       uint64  // seeds the MapRandom permutation
	PacketSize int
}

// JobSet is the job-level workload generator. It implements Generator,
// StatefulGenerator, CloneableGenerator and JobAware: per-slot emitted
// counters are the mutable progress state carried through snapshots, and the
// static node→job table drives the network's per-job packet tagging. When
// Background > 0 the unplaced nodes form one extra trailing slot, so the
// per-job counters always partition the aggregate ones.
type JobSet struct {
	cfg     JobSetConfig
	name    string
	jobOf   []int32   // node -> slot (-1: unplaced, generates nothing)
	rankOf  []int32   // node -> rank within its job
	nodesOf [][]int32 // slot -> member nodes by rank (nil for the bg slot)
	prob    []float64 // slot -> per-cycle generation probability
	names   []string
	uniform *Uniform

	emitted []int64 // slot -> packets emitted (mutable progress state)
}

// NewJobSet places the jobs onto the topology. Jobs are placed in order:
// under MapLinear job i occupies the nodes right after job i-1's range;
// under MapRandom the ranges index a permutation of all nodes derived from
// Seed. The combined job sizes must fit the node count.
func NewJobSet(d *topology.Dragonfly, cfg JobSetConfig) (*JobSet, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("traffic: job set needs at least one job")
	}
	if cfg.PacketSize < 1 {
		return nil, fmt.Errorf("traffic: job set packet size %d < 1", cfg.PacketSize)
	}
	if cfg.Background < 0 {
		return nil, fmt.Errorf("traffic: negative background load %v", cfg.Background)
	}
	total := 0
	for i, j := range cfg.Jobs {
		if j.Nodes < 1 {
			return nil, fmt.Errorf("traffic: job %d has %d nodes", i, j.Nodes)
		}
		if j.Load < 0 {
			return nil, fmt.Errorf("traffic: job %d has negative load %v", i, j.Load)
		}
		if j.Kind == JobStencil {
			x, y, z := j.Dims[0], j.Dims[1], j.Dims[2]
			if x < 1 || y < 1 || z < 1 || x*y*z != j.Nodes {
				return nil, fmt.Errorf("traffic: job %d stencil grid %dx%dx%d does not cover %d nodes", i, x, y, z, j.Nodes)
			}
		}
		total += j.Nodes
	}
	if total > d.Nodes {
		return nil, fmt.Errorf("traffic: %d job nodes exceed %d network nodes", total, d.Nodes)
	}

	slots := len(cfg.Jobs)
	bgSlot := -1
	if cfg.Background > 0 && total < d.Nodes {
		bgSlot = slots
		slots++
	}
	s := &JobSet{
		cfg:     cfg,
		jobOf:   make([]int32, d.Nodes),
		rankOf:  make([]int32, d.Nodes),
		nodesOf: make([][]int32, slots),
		prob:    make([]float64, slots),
		names:   make([]string, slots),
		uniform: NewUniform(d),
		emitted: make([]int64, slots),
	}
	for n := range s.jobOf {
		s.jobOf[n] = -1
	}
	perm := make([]int32, d.Nodes)
	for i := range perm {
		perm[i] = int32(i)
	}
	if cfg.Mapping == MapRandom {
		rng := simcore.NewRNG(cfg.Seed ^ 0x10b5e7)
		for i := len(perm) - 1; i > 0; i-- {
			k := rng.Intn(i + 1)
			perm[i], perm[k] = perm[k], perm[i]
		}
	}
	next := 0
	for j, spec := range cfg.Jobs {
		members := make([]int32, spec.Nodes)
		for r := 0; r < spec.Nodes; r++ {
			node := perm[next]
			next++
			members[r] = node
			s.jobOf[node] = int32(j)
			s.rankOf[node] = int32(r)
		}
		s.nodesOf[j] = members
		s.prob[j] = spec.Load / float64(cfg.PacketSize)
		s.names[j] = fmt.Sprintf("%s%d", spec.Kind, j)
	}
	if bgSlot >= 0 {
		count := int32(0)
		for _, node := range perm[next:] {
			s.jobOf[node] = int32(bgSlot)
			s.rankOf[node] = count
			count++
		}
		s.prob[bgSlot] = cfg.Background / float64(cfg.PacketSize)
		s.names[bgSlot] = "bg"
	}
	s.name = s.canonicalName()
	return s, nil
}

// canonicalName builds the identity string: it pins the full configuration,
// so a snapshot restored against a differently-shaped JobSet is rejected by
// the generator name check.
func (s *JobSet) canonicalName() string {
	var b strings.Builder
	b.WriteString("jobs(")
	for i, j := range s.cfg.Jobs {
		if i > 0 {
			b.WriteByte(',')
		}
		if j.Kind == JobStencil {
			fmt.Fprintf(&b, "%s:%dx%dx%d@%g", j.Kind, j.Dims[0], j.Dims[1], j.Dims[2], j.Load)
		} else {
			fmt.Fprintf(&b, "%s:%d@%g", j.Kind, j.Nodes, j.Load)
		}
		if j.Start != 0 || j.End > 0 {
			fmt.Fprintf(&b, ":%d-%d", j.Start, j.End)
		}
	}
	fmt.Fprintf(&b, "|%s|bg%g|seed%d)", s.cfg.Mapping, s.cfg.Background, s.cfg.Seed)
	return b.String()
}

// Name implements Generator.
func (s *JobSet) Name() string { return s.name }

// active reports whether job slot j generates at cycle now.
func (s *JobSet) active(j int, now int64) bool {
	if j >= len(s.cfg.Jobs) {
		return true // background runs for the whole simulation
	}
	spec := &s.cfg.Jobs[j]
	return now >= spec.Start && (spec.End <= 0 || now < spec.End)
}

// Next implements Generator. The RNG discipline matches Bernoulli: one
// Bernoulli draw per active node per cycle, destination draws only when a
// packet is generated — so runs are bit-identical across engine variants.
func (s *JobSet) Next(rng *simcore.RNG, node int, now int64) (int, bool) {
	j := int(s.jobOf[node])
	if j < 0 || !s.active(j, now) {
		return 0, false
	}
	if !rng.Bernoulli(s.prob[j]) {
		return 0, false
	}
	s.emitted[j]++
	return s.dest(rng, j, node), true
}

// dest picks the destination for a packet of job slot j generated at node.
// Degenerate jobs (too few members for the kind's structure) fall back to
// uniform traffic so the offered load survives.
func (s *JobSet) dest(rng *simcore.RNG, j, node int) int {
	members := s.nodesOf[j]
	if members == nil || len(members) < 2 { // background slot or 1-node job
		return s.uniform.Dest(rng, node)
	}
	rank := int(s.rankOf[node])
	switch s.cfg.Jobs[j].Kind {
	case JobStencil:
		dims := s.cfg.Jobs[j].Dims
		x, y, z := dims[0], dims[1], dims[2]
		tx, ty, tz := rank%x, (rank/x)%y, rank/(x*y)
		switch rng.Intn(6) {
		case 0:
			tx = (tx + 1) % x
		case 1:
			tx = (tx - 1 + x) % x
		case 2:
			ty = (ty + 1) % y
		case 3:
			ty = (ty - 1 + y) % y
		case 4:
			tz = (tz + 1) % z
		default:
			tz = (tz - 1 + z) % z
		}
		dst := int(members[tx+ty*x+tz*x*y])
		if dst == node { // degenerate dimension: wraparound hits self
			return s.uniform.Dest(rng, node)
		}
		return dst
	case JobRing:
		return int(members[(rank+1)%len(members)])
	case JobParamServer:
		if rank == 0 { // the server fans updates back to a random worker
			return int(members[1+rng.Intn(len(members)-1)])
		}
		return int(members[0])
	default: // JobAll2All: any other member
		o := rng.Intn(len(members) - 1)
		if o >= rank {
			o++
		}
		return int(members[o])
	}
}

// Retract implements Generator: the job's emitted counter rolls back so the
// progress state never counts a packet the network refused.
func (s *JobSet) Retract(node int) {
	if j := s.jobOf[node]; j >= 0 {
		s.emitted[j]--
	}
}

// Done implements Generator: jobs are open-loop sources.
func (s *JobSet) Done() bool { return false }

// NumJobs implements JobAware.
func (s *JobSet) NumJobs() int { return len(s.prob) }

// JobOf implements JobAware.
func (s *JobSet) JobOf(node int) int { return int(s.jobOf[node]) }

// JobName implements JobAware.
func (s *JobSet) JobName(j int) string { return s.names[j] }

// JobNodes implements JobAware.
func (s *JobSet) JobNodes(j int) int {
	if s.nodesOf[j] != nil {
		return len(s.nodesOf[j])
	}
	count := 0
	for _, slot := range s.jobOf {
		if int(slot) == j {
			count++
		}
	}
	return count
}

// EncodeState implements StatefulGenerator: the per-slot emitted counters
// are the job set's entire mutable state, plus their redundant total for the
// decode-time consistency cross-check.
func (s *JobSet) EncodeState(e *simcore.Enc) {
	e.Int(len(s.emitted))
	total := int64(0)
	for _, v := range s.emitted {
		e.I64(v)
		total += v
	}
	e.I64(total)
}

// DecodeState implements StatefulGenerator. The slot count must match the
// attached generator, every counter must be non-negative, and the stored
// total must equal their sum (the Burst lesson: individually-in-range values
// can still be mutually inconsistent).
func (s *JobSet) DecodeState(d *simcore.Dec) error {
	n := d.Len(1 << 20)
	if d.Err() == nil && n != len(s.emitted) {
		d.Fail("job set has %d slots, snapshot carries %d", len(s.emitted), n)
	}
	if d.Err() != nil {
		return d.Err()
	}
	sum := int64(0)
	for i := range s.emitted {
		v := d.I64()
		if d.Err() == nil && v < 0 {
			d.Fail("job slot %d emitted %d < 0", i, v)
		}
		s.emitted[i] = v
		sum += v
	}
	if total := d.I64(); d.Err() == nil && total != sum {
		d.Fail("job set emitted total %d != sum of slots %d", total, sum)
	}
	return d.Err()
}

// CloneGenerator implements CloneableGenerator: the clone shares the
// immutable placement tables but owns its progress counters.
func (s *JobSet) CloneGenerator() Generator {
	c := *s
	c.emitted = append([]int64(nil), s.emitted...)
	return &c
}

// Emitted returns how many packets job slot j has generated so far.
func (s *JobSet) Emitted(j int) int64 { return s.emitted[j] }
