package traffic

import (
	"testing"

	"ofar/internal/simcore"
	"ofar/internal/trace"
)

// jobSetConfig is the shared four-kind mix on the 72-node h=2 test topology.
func jobSetConfig() JobSetConfig {
	return JobSetConfig{
		Jobs: []JobSpec{
			{Kind: JobStencil, Nodes: 8, Load: 0.3, Dims: [3]int{2, 2, 2}},
			{Kind: JobAll2All, Nodes: 8, Load: 0.4},
			{Kind: JobRing, Nodes: 8, Load: 0.2},
			{Kind: JobParamServer, Nodes: 6, Load: 0.3},
		},
		Mapping:    MapLinear,
		Background: 0.1,
		Seed:       1,
		PacketSize: 8,
	}
}

func TestJobSetPlacement(t *testing.T) {
	d := topo(t)
	s, err := NewJobSet(d, jobSetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumJobs() != 5 { // 4 jobs + background
		t.Fatalf("got %d slots, want 5", s.NumJobs())
	}
	// Linear mapping packs jobs onto consecutive nodes in order.
	next := 0
	for j, spec := range jobSetConfig().Jobs {
		for r := 0; r < spec.Nodes; r++ {
			if got := s.JobOf(next); got != j {
				t.Fatalf("node %d in slot %d, want job %d", next, got, j)
			}
			next++
		}
	}
	// The rest is the background slot, and the slot sizes partition the nodes.
	for n := next; n < d.Nodes; n++ {
		if got := s.JobOf(n); got != 4 {
			t.Fatalf("unplaced node %d in slot %d, want background slot 4", n, got)
		}
	}
	total := 0
	for j := 0; j < s.NumJobs(); j++ {
		total += s.JobNodes(j)
	}
	if total != d.Nodes {
		t.Errorf("slot sizes sum to %d, want %d nodes", total, d.Nodes)
	}
	if s.JobName(0) != "stencil0" || s.JobName(4) != "bg" {
		t.Errorf("slot names %q/%q, want stencil0/bg", s.JobName(0), s.JobName(4))
	}
}

func TestJobSetRandomMappingIsSeededPermutation(t *testing.T) {
	d := topo(t)
	cfg := jobSetConfig()
	cfg.Mapping = MapRandom
	a, err := NewJobSet(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewJobSet(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	c, err := NewJobSet(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameAsA, sameAsC := true, true
	for n := 0; n < d.Nodes; n++ {
		if a.JobOf(n) != b.JobOf(n) {
			t.Fatalf("same seed placed node %d differently", n)
		}
		if a.JobOf(n) != c.JobOf(n) {
			sameAsC = false
		}
		lin := -1
		if s, err := NewJobSet(d, jobSetConfig()); err == nil {
			lin = s.JobOf(n)
		}
		if a.JobOf(n) != lin {
			sameAsA = false
		}
	}
	if sameAsC {
		t.Error("different seeds produced identical placements")
	}
	if sameAsA {
		t.Error("random mapping equals linear mapping")
	}
}

// TestJobSetDestinations: each kind's packets go where its communication
// structure says — face neighbors, ring successors, the parameter server, or
// another member — and never to the source itself or outside the job.
func TestJobSetDestinations(t *testing.T) {
	d := topo(t)
	s, err := NewJobSet(d, jobSetConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := simcore.NewRNG(7)
	memberSet := make([]map[int]bool, 4)
	base := 0
	sizes := []int{8, 8, 8, 6}
	for j := range memberSet {
		memberSet[j] = map[int]bool{}
		for r := 0; r < sizes[j]; r++ {
			memberSet[j][base+r] = true
		}
		base += sizes[j]
	}
	for trial := 0; trial < 4000; trial++ {
		for node := 0; node < 30; node++ {
			j := s.JobOf(node)
			dst, ok := s.Next(rng, node, 1000)
			if !ok {
				continue
			}
			s.Retract(node) // keep emitted balanced for the check below
			if dst == node {
				t.Fatalf("job %d node %d sent to itself", j, node)
			}
			if !memberSet[j][dst] {
				t.Fatalf("job %d node %d sent to %d outside the job", j, node, dst)
			}
			switch j {
			case 2: // ring: always the successor
				rank := node - 16
				want := 16 + (rank+1)%8
				if dst != want {
					t.Fatalf("ring rank %d sent to %d, want %d", rank, dst, want)
				}
			case 3: // ps: workers send to rank 0, the server to a worker
				if node != 24 && dst != 24 {
					t.Fatalf("ps worker %d sent to %d, want the server 24", node, dst)
				}
				if node == 24 && dst == 24 {
					t.Fatal("ps server sent to itself")
				}
			}
		}
	}
	for j := 0; j < s.NumJobs(); j++ {
		if s.Emitted(j) != 0 {
			t.Errorf("slot %d emitted %d after balanced retracts, want 0", j, s.Emitted(j))
		}
	}
}

// TestJobSetLifetimeGating: a windowed job generates only inside
// [Start, End), and the background slot runs forever.
func TestJobSetLifetimeGating(t *testing.T) {
	d := topo(t)
	cfg := jobSetConfig()
	cfg.Jobs[1].Start, cfg.Jobs[1].End = 100, 200
	s, err := NewJobSet(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := simcore.NewRNG(3)
	node := 8 // a2a job, ranks 8..15
	for _, tc := range []struct {
		now  int64
		want bool
	}{{0, false}, {99, false}, {100, true}, {199, true}, {200, false}, {5000, false}} {
		generated := false
		for i := 0; i < 2000 && !generated; i++ {
			_, generated = s.Next(rng, node, tc.now)
		}
		if generated != tc.want {
			t.Errorf("a2a at cycle %d: generated=%v, want %v", tc.now, generated, tc.want)
		}
	}
	// Background keeps going regardless.
	generated := false
	for i := 0; i < 2000 && !generated; i++ {
		_, generated = s.Next(rng, d.Nodes-1, 1_000_000)
	}
	if !generated {
		t.Error("background slot idle at cycle 1e6")
	}
}

func TestJobSetValidation(t *testing.T) {
	d := topo(t)
	for name, cfg := range map[string]JobSetConfig{
		"no jobs":      {PacketSize: 8},
		"zero nodes":   {Jobs: []JobSpec{{Kind: JobAll2All, Nodes: 0, Load: 0.1}}, PacketSize: 8},
		"neg load":     {Jobs: []JobSpec{{Kind: JobAll2All, Nodes: 4, Load: -0.1}}, PacketSize: 8},
		"bad grid":     {Jobs: []JobSpec{{Kind: JobStencil, Nodes: 8, Load: 0.1, Dims: [3]int{2, 2, 3}}}, PacketSize: 8},
		"overflow":     {Jobs: []JobSpec{{Kind: JobAll2All, Nodes: d.Nodes + 1, Load: 0.1}}, PacketSize: 8},
		"bad psize":    {Jobs: []JobSpec{{Kind: JobAll2All, Nodes: 4, Load: 0.1}}},
		"neg backgrnd": {Jobs: []JobSpec{{Kind: JobAll2All, Nodes: 4, Load: 0.1}}, Background: -1, PacketSize: 8},
	} {
		if _, err := NewJobSet(d, cfg); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

func TestJobSetCloneIndependence(t *testing.T) {
	d := topo(t)
	s, err := NewJobSet(d, jobSetConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := simcore.NewRNG(5)
	for i := 0; i < 500; i++ {
		s.Next(rng, i%30, 10)
	}
	clone := s.CloneGenerator().(*JobSet)
	for i := 0; i < 500; i++ {
		clone.Next(rng, i%30, 20)
	}
	for j := 0; j < s.NumJobs(); j++ {
		if clone.Emitted(j) < s.Emitted(j) {
			t.Errorf("slot %d: clone emitted %d < original %d", j, clone.Emitted(j), s.Emitted(j))
		}
	}
	// The original must not have moved while the clone generated.
	var before [5]int64
	for j := range before {
		before[j] = s.Emitted(j)
	}
	for i := 0; i < 500; i++ {
		clone.Next(rng, i%30, 30)
	}
	for j := range before {
		if s.Emitted(j) != before[j] {
			t.Errorf("slot %d: original emitted moved %d -> %d while clone ran", j, before[j], s.Emitted(j))
		}
	}
}

func TestJobSetStateRoundTripAndFailures(t *testing.T) {
	d := topo(t)
	s, err := NewJobSet(d, jobSetConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := simcore.NewRNG(11)
	for i := 0; i < 2000; i++ {
		s.Next(rng, i%d.Nodes, 50)
	}
	var e simcore.Enc
	s.EncodeState(&e)
	fresh, err := NewJobSet(d, jobSetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.DecodeState(simcore.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s.NumJobs(); j++ {
		if fresh.Emitted(j) != s.Emitted(j) {
			t.Errorf("slot %d: decoded emitted %d, want %d", j, fresh.Emitted(j), s.Emitted(j))
		}
	}

	corrupt := func(name string, enc func(*simcore.Enc)) {
		var e simcore.Enc
		enc(&e)
		target, err := NewJobSet(d, jobSetConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := target.DecodeState(simcore.NewDec(e.Data())); err == nil {
			t.Errorf("%s: decoded cleanly, want error", name)
		}
	}
	corrupt("slot count mismatch", func(e *simcore.Enc) {
		e.Int(3)
		for i := 0; i < 3; i++ {
			e.I64(1)
		}
		e.I64(3)
	})
	corrupt("negative counter", func(e *simcore.Enc) {
		e.Int(5)
		e.I64(-1)
		for i := 0; i < 4; i++ {
			e.I64(0)
		}
		e.I64(-1)
	})
	corrupt("total mismatch", func(e *simcore.Enc) {
		e.Int(5)
		for i := 0; i < 5; i++ {
			e.I64(2)
		}
		e.I64(99) // sum is 10
	})
	corrupt("truncated", func(e *simcore.Enc) {
		e.Int(5)
		e.I64(1)
	})
}

// TestBurstDecodeRejectsInconsistentTotal: the redundant emitted total must
// equal the sum of the per-node counters, even when every individual value is
// in range.
func TestBurstDecodeRejectsInconsistentTotal(t *testing.T) {
	d := topo(t)
	b := NewBurst(NewUniform(d), 4, d.Nodes)
	var e simcore.Enc
	e.Int(4)       // perNode matches
	e.Int(8)       // emitted: in [0, total] but != sum(sent) below
	e.Int(d.Nodes) // node count matches
	for i := 0; i < d.Nodes; i++ {
		e.Int(0) // all counters zero — sum is 0, not 8
	}
	if err := b.DecodeState(simcore.NewDec(e.Data())); err == nil {
		t.Fatal("inconsistent burst state decoded cleanly, want error")
	}
}

func TestTraceReplayReinjectsExactly(t *testing.T) {
	d := topo(t)
	recs := []trace.Record{
		{Cycle: 5, Src: 0, Dst: 9, Size: 8},
		{Cycle: 5, Src: 3, Dst: 1, Size: 8},
		{Cycle: 7, Src: 0, Dst: 2, Size: 8},
		{Cycle: 12, Src: 3, Dst: 0, Size: 8},
	}
	r, err := NewTraceReplay(recs, d.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	rng := simcore.NewRNG(1)
	// Nothing before the recorded cycles.
	if _, ok := r.Next(rng, 0, 4); ok {
		t.Fatal("replayed a record before its cycle")
	}
	if dst, ok := r.Next(rng, 0, 5); !ok || dst != 9 {
		t.Fatalf("node 0 cycle 5: got (%d,%v), want (9,true)", dst, ok)
	}
	if _, ok := r.Next(rng, 0, 5); ok {
		t.Fatal("node 0 emitted twice at cycle 5")
	}
	if dst, ok := r.Next(rng, 3, 5); !ok || dst != 1 {
		t.Fatalf("node 3 cycle 5: got (%d,%v), want (1,true)", dst, ok)
	}
	// A missed cycle is caught up on the next call (late-record semantics).
	if dst, ok := r.Next(rng, 0, 9); !ok || dst != 2 {
		t.Fatalf("node 0 cycle 9 catch-up: got (%d,%v), want (2,true)", dst, ok)
	}
	if r.Done() {
		t.Fatal("done with one record outstanding")
	}
	// Retract rewinds: the record is offered again.
	if dst, ok := r.Next(rng, 3, 12); !ok || dst != 0 {
		t.Fatalf("node 3 cycle 12: got (%d,%v), want (0,true)", dst, ok)
	}
	r.Retract(3)
	if r.Done() {
		t.Fatal("done right after a retract")
	}
	if dst, ok := r.Next(rng, 3, 13); !ok || dst != 0 {
		t.Fatalf("node 3 retry: got (%d,%v), want (0,true)", dst, ok)
	}
	if !r.Done() {
		t.Fatal("not done after every record replayed")
	}
}

func TestTraceReplayValidation(t *testing.T) {
	for name, recs := range map[string][]trace.Record{
		"src out of range": {{Cycle: 1, Src: 99, Dst: 0, Size: 8}},
		"dst out of range": {{Cycle: 1, Src: 0, Dst: 99, Size: 8}},
		"self-addressed":   {{Cycle: 1, Src: 2, Dst: 2, Size: 8}},
		"cycle regression": {{Cycle: 9, Src: 0, Dst: 1, Size: 8}, {Cycle: 3, Src: 1, Dst: 0, Size: 8}},
	} {
		if _, err := NewTraceReplay(recs, 72); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}
