package traffic

import (
	"fmt"
	"sync/atomic"

	"ofar/internal/simcore"
	"ofar/internal/trace"
)

// TraceReplay re-injects a recorded (or external) packet trace. Each node
// holds its own cursor into its slice of the trace; on every cycle the node
// emits its next record once the record's cycle is due. Replaying a trace
// recorded by this engine reproduces the original run bit-identically —
// generation is the only consumer of the traffic RNG, so an identical
// (cycle, src, dst) stream leaves every router decision unchanged. External
// traces whose cycles the network cannot keep up with (source queue full)
// slip later via Retract, which is the honest backpressure semantics.
type TraceReplay struct {
	name    string
	perNode [][]trace.Record // records of each source, in trace order

	cursor []int // per-node next record index (mutable progress state)
	// remaining is accessed with sync/atomic: under the sharded injection
	// front-end each group shard decrements it concurrently. The count is a
	// commutative sum only *read* at phase quiescence (Done, between cycles),
	// so atomicity is all the cross-shard ordering it needs.
	remaining int64
	total     int
}

// NewTraceReplay validates the trace against a topology of `nodes` nodes and
// indexes it by source. Records must be sorted by cycle (the on-disk format
// guarantees it; in-memory callers must too).
func NewTraceReplay(recs []trace.Record, nodes int) (*TraceReplay, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("traffic: trace replay needs at least 2 nodes, have %d", nodes)
	}
	r := &TraceReplay{
		perNode: make([][]trace.Record, nodes),
		cursor:  make([]int, nodes),
		total:   len(recs),
	}
	prev := int64(0)
	for i, rec := range recs {
		if rec.Cycle < prev {
			return nil, fmt.Errorf("trace: record %d at cycle %d out of order (previous %d)", i, rec.Cycle, prev)
		}
		prev = rec.Cycle
		if rec.Src < 0 || int(rec.Src) >= nodes || rec.Dst < 0 || int(rec.Dst) >= nodes {
			return nil, fmt.Errorf("trace: record %d endpoints %d→%d outside %d nodes", i, rec.Src, rec.Dst, nodes)
		}
		if rec.Src == rec.Dst {
			return nil, fmt.Errorf("trace: record %d sends node %d to itself", i, rec.Src)
		}
		r.perNode[rec.Src] = append(r.perNode[rec.Src], rec)
	}
	r.remaining = int64(r.total)
	// The identity hash covers every record, so restoring a snapshot against
	// a different trace fails the generator name check instead of silently
	// replaying the wrong stream.
	var e simcore.Enc
	for _, rec := range recs {
		e.I64(rec.Cycle)
		e.U32(uint32(rec.Src))
		e.U32(uint32(rec.Dst))
		e.U16(rec.Size)
	}
	r.name = fmt.Sprintf("trace(%d,%016x)", len(recs), simcore.Checksum64(e.Data()))
	return r, nil
}

// Name implements Generator.
func (r *TraceReplay) Name() string { return r.name }

// Next implements Generator: it emits the node's next record once its cycle
// is due. The `<=` makes externally-authored traces self-healing — a record
// whose cycle has already passed (the node was backpressured then) injects
// at the first opportunity instead of being lost.
func (r *TraceReplay) Next(_ *simcore.RNG, node int, now int64) (int, bool) {
	recs := r.perNode[node]
	c := r.cursor[node]
	if c >= len(recs) || recs[c].Cycle > now {
		return 0, false
	}
	r.cursor[node] = c + 1
	atomic.AddInt64(&r.remaining, -1)
	return int(recs[c].Dst), true
}

// Retract implements Generator: the cursor steps back so the record is
// re-offered next cycle.
func (r *TraceReplay) Retract(node int) {
	r.cursor[node]--
	atomic.AddInt64(&r.remaining, 1)
}

// Done implements Generator: a replay is exhausted when every record has
// been injected.
func (r *TraceReplay) Done() bool { return atomic.LoadInt64(&r.remaining) == 0 }

// GroupLocal implements GroupLocalGenerator: the cursors are per-node and
// the remaining count is a commutative atomic.
func (r *TraceReplay) GroupLocal() {}

// Total returns the number of records in the trace.
func (r *TraceReplay) Total() int { return r.total }

// EncodeState implements StatefulGenerator: the per-node cursors plus the
// redundant remaining count for the decode-time cross-check.
func (r *TraceReplay) EncodeState(e *simcore.Enc) {
	e.Int(len(r.cursor))
	for _, c := range r.cursor {
		e.Int(c)
	}
	e.Int(int(r.remaining))
}

// DecodeState implements StatefulGenerator. Each cursor must lie within its
// node's record list and the stored remaining count must equal the records
// the cursors have not yet passed.
func (r *TraceReplay) DecodeState(d *simcore.Dec) error {
	n := d.Len(1 << 26)
	if d.Err() == nil && n != len(r.cursor) {
		d.Fail("trace replay has %d nodes, snapshot carries %d", len(r.cursor), n)
	}
	if d.Err() != nil {
		return d.Err()
	}
	injected := 0
	for i := range r.cursor {
		c := d.Int()
		if d.Err() == nil && (c < 0 || c > len(r.perNode[i])) {
			d.Fail("trace cursor[%d]=%d outside [0,%d]", i, c, len(r.perNode[i]))
		}
		r.cursor[i] = c
		injected += c
	}
	remaining := d.Int()
	if d.Err() == nil && remaining != r.total-injected {
		d.Fail("trace remaining %d != %d records - %d injected", remaining, r.total, injected)
	}
	if d.Err() != nil {
		return d.Err()
	}
	r.remaining = int64(remaining)
	return nil
}

// CloneGenerator implements CloneableGenerator: the clone shares the
// immutable per-node record lists but owns its cursors.
func (r *TraceReplay) CloneGenerator() Generator {
	c := *r
	c.cursor = append([]int(nil), r.cursor...)
	return &c
}
