// Package traffic provides the synthetic traffic patterns and injection
// processes of the paper's evaluation (§V): uniform random (UN),
// adversarial (ADV+N), weighted mixes, Bernoulli steady-state sources,
// fixed-size bursts, and transient pattern switches.
package traffic

import (
	"fmt"

	"ofar/internal/simcore"
	"ofar/internal/topology"
)

// Pattern chooses the destination node for a packet generated at src.
type Pattern interface {
	Name() string
	Dest(rng *simcore.RNG, src int) int
}

// Uniform selects any node except the source itself (the source group is
// included, matching §V).
type Uniform struct{ d *topology.Dragonfly }

// NewUniform returns the UN pattern.
func NewUniform(d *topology.Dragonfly) *Uniform { return &Uniform{d: d} }

// Name implements Pattern.
func (u *Uniform) Name() string { return "UN" }

// Dest implements Pattern.
func (u *Uniform) Dest(rng *simcore.RNG, src int) int {
	dst := rng.Intn(u.d.Nodes - 1)
	if dst >= src {
		dst++
	}
	return dst
}

// Adv is the ADV+N pattern: every source in group i sends to a random node
// of group i+N (mod G).
type Adv struct {
	d *topology.Dragonfly
	n int
}

// NewAdv returns the ADV+n pattern.
func NewAdv(d *topology.Dragonfly, n int) *Adv { return &Adv{d: d, n: n} }

// Name implements Pattern.
func (a *Adv) Name() string { return fmt.Sprintf("ADV+%d", a.n) }

// Offset returns the group offset N.
func (a *Adv) Offset() int { return a.n }

// Dest implements Pattern.
func (a *Adv) Dest(rng *simcore.RNG, src int) int {
	g := (a.d.GroupOfNode(src) + a.n) % a.d.G
	perGroup := a.d.P * a.d.A
	return g*perGroup + rng.Intn(perGroup)
}

// Mix draws each packet's pattern from a weighted set, used for the burst
// mixes MIX1/2/3 (§VI-C).
type Mix struct {
	name     string
	patterns []Pattern
	cum      []float64
}

// NewMix builds a weighted mixture; weights need not sum to 1.
func NewMix(name string, patterns []Pattern, weights []float64) *Mix {
	if len(patterns) == 0 || len(patterns) != len(weights) {
		panic("traffic: mix needs matching patterns and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("traffic: negative mix weight")
		}
		total += w
	}
	m := &Mix{name: name, patterns: patterns, cum: make([]float64, len(weights))}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		m.cum[i] = acc
	}
	return m
}

// Name implements Pattern.
func (m *Mix) Name() string { return m.name }

// Dest implements Pattern.
func (m *Mix) Dest(rng *simcore.RNG, src int) int {
	x := rng.Float64()
	for i, c := range m.cum {
		if x < c {
			return m.patterns[i].Dest(rng, src)
		}
	}
	return m.patterns[len(m.patterns)-1].Dest(rng, src)
}

// Generator produces packets at the sources. Next is called once per node
// per cycle; it returns the destination of a new packet or ok == false.
// Accepted reports whether the network accepted the previous Next result —
// burst generators must not lose packets to source-queue backpressure.
//
// Stream discipline: the rng passed to Next is a per-dragonfly-group stream
// derived deterministically from the run seed — every node of group g draws
// from stream g, in ascending node order within a cycle. The contract stays
// per-node; generators never see which stream they are handed. The network
// may call Next for nodes of *different* groups concurrently (one goroutine
// per group, each with its own stream), but only for generators that opt in
// via GroupLocalGenerator; everything else runs the serial per-group loop
// with identical draws, so results do not depend on which path executed.
type Generator interface {
	Name() string
	Next(rng *simcore.RNG, node int, now int64) (dst int, ok bool)
	// Retract undoes the last Next for a node whose pending queue was full;
	// only generators with a finite budget need to do anything.
	Retract(node int)
	// Done reports whether the generator has produced everything it ever
	// will (always false for open-loop sources).
	Done() bool
}

// StatefulGenerator is implemented by generators that carry mutable progress
// state (currently only Burst). Network snapshots include the state so a
// restored run resumes the source exactly where it stopped; generators not
// implementing this are stateless by contract — calling Next mutates nothing
// but the RNG, which the network snapshots separately.
type StatefulGenerator interface {
	Generator
	EncodeState(e *simcore.Enc)
	DecodeState(d *simcore.Dec) error
}

// CloneableGenerator is implemented by stateful generators that can produce
// an independent deep copy for a forked simulation. Stateless generators
// need no clone: Fork shares them, which is safe because their Next only
// reads immutable pattern state.
type CloneableGenerator interface {
	Generator
	CloneGenerator() Generator
}

// GroupLocalGenerator marks generators whose Next/Retract calls for one node
// touch no state shared with nodes of any other dragonfly group — either
// purely per-node state (cursors, budgets indexed by node) or commutative
// atomics read only at quiescence. The network shards its injection
// front-end by group only for generators carrying this marker; a concurrent
// Next is then a data-race-free reordering whose observable effects the
// commit barrier replays in serial (group, node) order. Burst and JobSet do
// NOT qualify: their shared progress counters (`emitted`) are plain ints
// mutated on every Next, so they keep the serial per-group loop — which
// draws from the identical per-group streams, keeping results bit-identical
// across the two paths.
type GroupLocalGenerator interface {
	Generator
	// GroupLocal is a marker; implementations do nothing.
	GroupLocal()
}

// JobAware is implemented by generators that partition the sources into
// jobs (JobSet). The network uses it to tag every generated packet with its
// source's job slot and to size the per-job statistics, so experiments can
// report per-job latency, throughput and drop counts instead of only the
// aggregate. The node→job assignment must be static for the lifetime of a
// run (placement happens at construction).
type JobAware interface {
	Generator
	// NumJobs returns the number of job slots, including the background
	// slot when background traffic is configured.
	NumJobs() int
	// JobOf returns the job slot of a node, or -1 when the node belongs to
	// no job and generates nothing.
	JobOf(node int) int
	// JobName returns the display name of a job slot.
	JobName(j int) string
	// JobNodes returns how many nodes a job slot occupies.
	JobNodes(j int) int
}

// Bernoulli is the steady-state source: each node independently generates a
// packet with probability load/packetSize per cycle, so the offered load is
// `load` phits/(node·cycle).
type Bernoulli struct {
	pattern Pattern
	prob    float64
}

// NewBernoulli builds an open-loop source with the given offered load in
// phits/(node·cycle) and packet size in phits.
func NewBernoulli(pattern Pattern, load float64, packetSize int) *Bernoulli {
	return &Bernoulli{pattern: pattern, prob: load / float64(packetSize)}
}

// Name implements Generator.
func (b *Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%s)", b.pattern.Name()) }

// Next implements Generator.
func (b *Bernoulli) Next(rng *simcore.RNG, node int, _ int64) (int, bool) {
	if !rng.Bernoulli(b.prob) {
		return 0, false
	}
	return b.pattern.Dest(rng, node), true
}

// Retract implements Generator; open-loop sources drop the packet.
func (b *Bernoulli) Retract(int) {}

// Done implements Generator.
func (b *Bernoulli) Done() bool { return false }

// GroupLocal implements GroupLocalGenerator: Next mutates nothing but the
// caller-owned RNG.
func (b *Bernoulli) GroupLocal() {}

// Transient switches patterns (and optionally load) at a given cycle,
// reproducing the §VI-B transient experiments.
type Transient struct {
	before, after Pattern
	switchAt      int64
	prob          float64
}

// NewTransient builds a Bernoulli source whose pattern changes at switchAt.
func NewTransient(before, after Pattern, switchAt int64, load float64, packetSize int) *Transient {
	return &Transient{before: before, after: after, switchAt: switchAt, prob: load / float64(packetSize)}
}

// Name implements Generator.
func (t *Transient) Name() string {
	return fmt.Sprintf("transient(%s->%s@%d)", t.before.Name(), t.after.Name(), t.switchAt)
}

// Next implements Generator.
func (t *Transient) Next(rng *simcore.RNG, node int, now int64) (int, bool) {
	if !rng.Bernoulli(t.prob) {
		return 0, false
	}
	p := t.before
	if now >= t.switchAt {
		p = t.after
	}
	return p.Dest(rng, node), true
}

// Retract implements Generator.
func (t *Transient) Retract(int) {}

// Done implements Generator.
func (t *Transient) Done() bool { return false }

// GroupLocal implements GroupLocalGenerator: Next mutates nothing but the
// caller-owned RNG.
func (t *Transient) GroupLocal() {}

// Burst gives every node a fixed budget of packets injected as fast as the
// network accepts them (§VI-C: synchronized post-barrier communication).
type Burst struct {
	pattern Pattern
	perNode int
	sent    []int
	total   int
	emitted int
}

// NewBurst builds a burst source of perNode packets for each of nodes nodes.
func NewBurst(pattern Pattern, perNode, nodes int) *Burst {
	return &Burst{pattern: pattern, perNode: perNode, sent: make([]int, nodes), total: perNode * nodes}
}

// Name implements Generator.
func (b *Burst) Name() string { return fmt.Sprintf("burst(%s,%d)", b.pattern.Name(), b.perNode) }

// Next implements Generator.
func (b *Burst) Next(rng *simcore.RNG, node int, _ int64) (int, bool) {
	if b.sent[node] >= b.perNode {
		return 0, false
	}
	b.sent[node]++
	b.emitted++
	return b.pattern.Dest(rng, node), true
}

// Retract implements Generator: the budget is restored so the packet is
// regenerated on a later cycle.
func (b *Burst) Retract(node int) {
	b.sent[node]--
	b.emitted--
}

// Done implements Generator.
func (b *Burst) Done() bool { return b.emitted >= b.total }

// Total returns the overall packet budget of the burst.
func (b *Burst) Total() int { return b.total }

// EncodeState implements StatefulGenerator: the per-node sent counters and
// the emitted total are the burst's entire mutable state.
func (b *Burst) EncodeState(e *simcore.Enc) {
	e.Int(b.perNode)
	e.Int(b.emitted)
	e.Int(len(b.sent))
	for _, s := range b.sent {
		e.Int(s)
	}
}

// DecodeState implements StatefulGenerator. The burst geometry (nodes,
// per-node budget) must match the generator being restored into.
func (b *Burst) DecodeState(d *simcore.Dec) error {
	perNode, emitted := d.Int(), d.Int()
	n := d.Len(1 << 26)
	if d.Err() == nil && (perNode != b.perNode || n != len(b.sent)) {
		d.Fail("burst geometry %d×%d, have %d×%d", n, perNode, len(b.sent), b.perNode)
	}
	if d.Err() != nil {
		return d.Err()
	}
	sum := 0
	for i := range b.sent {
		s := d.Int()
		if d.Err() == nil && (s < 0 || s > b.perNode) {
			d.Fail("burst sent[%d]=%d outside [0,%d]", i, s, b.perNode)
		}
		b.sent[i] = s
		sum += s
	}
	if d.Err() == nil && (emitted < 0 || emitted > b.total) {
		d.Fail("burst emitted %d outside [0,%d]", emitted, b.total)
	}
	// The per-node counters and the emitted total are redundant views of the
	// same progress; a snapshot where they disagree is corrupt even when each
	// value is individually in range (Done() would fire early or never).
	if d.Err() == nil && emitted != sum {
		d.Fail("burst emitted %d != sum of per-node sent %d", emitted, sum)
	}
	b.emitted = emitted
	return d.Err()
}

// CloneGenerator implements CloneableGenerator: the clone shares the
// immutable pattern but owns its progress counters.
func (b *Burst) CloneGenerator() Generator {
	c := *b
	c.sent = append([]int(nil), b.sent...)
	return &c
}
