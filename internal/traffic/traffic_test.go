package traffic

import (
	"math"
	"testing"

	"ofar/internal/simcore"
	"ofar/internal/topology"
)

func topo(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.New(2, 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestUniformExcludesSelf(t *testing.T) {
	d := topo(t)
	u := NewUniform(d)
	rng := simcore.NewRNG(1)
	counts := make([]int, d.Nodes)
	const draws = 20000
	for i := 0; i < draws; i++ {
		dst := u.Dest(rng, 10)
		if dst == 10 {
			t.Fatal("uniform picked the source")
		}
		if dst < 0 || dst >= d.Nodes {
			t.Fatalf("dst out of range: %d", dst)
		}
		counts[dst]++
	}
	want := float64(draws) / float64(d.Nodes-1)
	for n, c := range counts {
		if n == 10 {
			continue
		}
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("node %d drawn %d times, want ~%.0f", n, c, want)
		}
	}
}

func TestAdvTargetsOffsetGroup(t *testing.T) {
	d := topo(t)
	for _, off := range []int{1, 2, d.H, d.G - 1} {
		a := NewAdv(d, off)
		rng := simcore.NewRNG(3)
		for src := 0; src < d.Nodes; src += 7 {
			dst := a.Dest(rng, src)
			wantG := (d.GroupOfNode(src) + off) % d.G
			if d.GroupOfNode(dst) != wantG {
				t.Fatalf("ADV+%d: src %d -> dst %d in group %d, want %d",
					off, src, dst, d.GroupOfNode(dst), wantG)
			}
		}
		if a.Offset() != off {
			t.Errorf("offset getter: %d", a.Offset())
		}
	}
}

func TestMixProportions(t *testing.T) {
	d := topo(t)
	m := NewMix("MIXT",
		[]Pattern{NewAdv(d, 1), NewAdv(d, 2)},
		[]float64{3, 1})
	rng := simcore.NewRNG(9)
	src := 0
	got := map[int]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		got[d.GroupOfNode(m.Dest(rng, src))]++
	}
	f1 := float64(got[1]) / draws
	f2 := float64(got[2]) / draws
	if math.Abs(f1-0.75) > 0.02 || math.Abs(f2-0.25) > 0.02 {
		t.Errorf("mix fractions %.3f/%.3f, want 0.75/0.25", f1, f2)
	}
}

func TestMixValidation(t *testing.T) {
	d := topo(t)
	if !panics(func() { NewMix("x", nil, nil) }) {
		t.Error("empty mix accepted")
	}
	if !panics(func() { NewMix("x", []Pattern{NewUniform(d)}, []float64{-1}) }) {
		t.Error("negative weight accepted")
	}
	if !panics(func() { NewMix("x", []Pattern{NewUniform(d)}, []float64{1, 2}) }) {
		t.Error("length mismatch accepted")
	}
}

func panics(f func()) (p bool) {
	defer func() { p = recover() != nil }()
	f()
	return
}

func TestBernoulliRate(t *testing.T) {
	d := topo(t)
	g := NewBernoulli(NewUniform(d), 0.4, 8) // p = 0.05/cycle
	rng := simcore.NewRNG(4)
	hits := 0
	const cycles = 100000
	for i := 0; i < cycles; i++ {
		if _, ok := g.Next(rng, 0, int64(i)); ok {
			hits++
		}
	}
	rate := float64(hits) / cycles
	if math.Abs(rate-0.05) > 0.003 {
		t.Errorf("generation rate %.4f, want 0.05", rate)
	}
	if g.Done() {
		t.Error("open-loop generator claims done")
	}
}

func TestTransientSwitches(t *testing.T) {
	d := topo(t)
	g := NewTransient(NewAdv(d, 1), NewAdv(d, 2), 1000, 8.0, 8) // always generates
	rng := simcore.NewRNG(5)
	src := 0
	dst, ok := g.Next(rng, src, 999)
	if !ok || d.GroupOfNode(dst) != 1 {
		t.Errorf("before switch: group %d", d.GroupOfNode(dst))
	}
	dst, ok = g.Next(rng, src, 1000)
	if !ok || d.GroupOfNode(dst) != 2 {
		t.Errorf("after switch: group %d", d.GroupOfNode(dst))
	}
}

func TestBurstBudgetAndRetract(t *testing.T) {
	d := topo(t)
	g := NewBurst(NewUniform(d), 3, d.Nodes)
	rng := simcore.NewRNG(6)
	if g.Total() != 3*d.Nodes {
		t.Fatalf("total=%d", g.Total())
	}
	for i := 0; i < 3; i++ {
		if _, ok := g.Next(rng, 0, 0); !ok {
			t.Fatalf("budget exhausted early at %d", i)
		}
	}
	if _, ok := g.Next(rng, 0, 0); ok {
		t.Error("budget exceeded")
	}
	g.Retract(0)
	if _, ok := g.Next(rng, 0, 0); !ok {
		t.Error("retract did not restore budget")
	}
	if g.Done() {
		t.Error("done with other nodes unsent")
	}
	for n := 1; n < d.Nodes; n++ {
		for i := 0; i < 3; i++ {
			g.Next(rng, n, 0)
		}
	}
	if !g.Done() {
		t.Error("not done after full budget")
	}
}
