// Package ofar is a cycle-accurate simulator of dragonfly interconnection
// networks reproducing García et al., "On-the-Fly Adaptive Routing in
// High-Radix Hierarchical Networks" (ICPP 2012).
//
// The package exposes the paper's full experimental apparatus: the balanced
// dragonfly topology with consecutive ("palm tree") global wiring, an
// input-buffered virtual cut-through router model with credit flow control
// and an iterative separable allocator, the routing mechanisms MIN, VAL,
// PB, UGAL-L, OFAR and OFAR-L, the Hamiltonian escape subnetwork (physical
// or embedded, single or multi-ring), the synthetic traffic patterns
// UN/ADV+N/mixes, and drivers for steady-state, transient and burst
// experiments.
//
// Quick start:
//
//	cfg := ofar.DefaultConfig(3)          // balanced h=3 dragonfly, OFAR
//	res, err := ofar.RunSteady(cfg, ofar.Uniform(), 0.3, 2000, 5000)
//	fmt.Println(res.AvgLatency, res.Throughput)
package ofar

import (
	"io"

	"ofar/internal/core"
	"ofar/internal/network"
	"ofar/internal/routing"
	"ofar/internal/stats"
	"ofar/internal/topology"
	"ofar/internal/traffic"
)

// Re-exported configuration types. The aliases keep a single source of
// truth in the internal packages while giving users one import.
type (
	// Config describes a simulated network; see DefaultConfig.
	Config = network.Config
	// RingMode selects the escape-subnetwork realization.
	RingMode = network.RingMode
	// Routing names a routing mechanism.
	Routing = network.Routing
	// OFARConfig tunes the OFAR mechanism (thresholds, escape policy).
	OFARConfig = core.Config
	// AdaptiveConfig tunes the PB/UGAL baselines.
	AdaptiveConfig = routing.AdaptiveConfig
	// Topology is the dragonfly topology (exposed for analysis helpers).
	Topology = topology.Dragonfly
	// RunStats is the raw statistics sink of a simulation.
	RunStats = stats.Run
	// Fault is one scheduled link or router failure (Config.Faults).
	Fault = network.Fault
	// FaultKind names a class of injected failure.
	FaultKind = network.FaultKind
)

// Escape-subnetwork realizations.
const (
	RingNone     = network.RingNone
	RingPhysical = network.RingPhysical
	RingEmbedded = network.RingEmbedded
)

// Routing mechanisms.
const (
	MIN   = network.MIN
	VAL   = network.VAL
	PB    = network.PB
	UGAL  = network.UGAL
	PAR   = network.PAR
	OFAR  = network.OFAR
	OFARL = network.OFARL
)

// Fault kinds.
const (
	FaultLink   = network.FaultLink
	FaultRouter = network.FaultRouter
)

// ParseFaults parses an inline fault schedule such as
// "link@5000:12:7,router@20000:3"; see network.ParseFaults.
func ParseFaults(spec string) ([]Fault, error) { return network.ParseFaults(spec) }

// GlobalLinkFaults builds a schedule killing the first count global links at
// the given cycle (the degradation experiment's workload).
func GlobalLinkFaults(cfg Config, cycle int64, count int) ([]Fault, error) {
	return network.GlobalLinkFaults(cfg, cycle, count)
}

// DefaultConfig returns the paper's §V configuration for a balanced
// maximum-size dragonfly with the given h (the paper evaluates h = 6:
// 5,256 nodes, 876 routers in 73 groups).
func DefaultConfig(h int) Config { return network.DefaultConfig(h) }

// DefaultOFARConfig returns the repository's default OFAR tuning (the
// §IV-B static threshold policy; see core.DefaultConfig for why).
func DefaultOFARConfig() OFARConfig { return core.DefaultConfig() }

// DefaultOFARVariableConfig returns the paper's §V variable-threshold
// tuning (Th_min = 0, Th_non-min = 0.9·Q_min).
func DefaultOFARVariableConfig() OFARConfig { return core.VariablePolicyConfig() }

// Simulator wraps an assembled network for step-level control. Most users
// should prefer the RunSteady/RunTransient/RunBurst drivers.
type Simulator struct {
	net *network.Network
}

// NewSimulator assembles a network from a configuration.
func NewSimulator(cfg Config) (*Simulator, error) {
	n, err := network.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulator{net: n}, nil
}

// Topology returns the simulator's dragonfly instance.
func (s *Simulator) Topology() *Topology { return s.net.Topo }

// Stats returns the simulator's statistics sink.
func (s *Simulator) Stats() *RunStats { return s.net.Stats }

// Now returns the current simulation cycle.
func (s *Simulator) Now() int64 { return s.net.Now() }

// SetTraffic attaches a traffic source built from a pattern spec: an
// open-loop Bernoulli process with the given offered load in
// phits/(node·cycle).
func (s *Simulator) SetTraffic(ps PatternSpec, load float64) {
	p := ps.build(s.net.Topo)
	s.net.SetGenerator(traffic.NewBernoulli(p, load, s.net.Cfg.PacketSize))
}

// Step advances one cycle.
func (s *Simulator) Step() { s.net.Step() }

// Run advances the given number of cycles.
func (s *Simulator) Run(cycles int) { s.net.Run(cycles) }

// Network exposes the underlying assembly for advanced users (examples,
// tests, custom experiment drivers).
func (s *Simulator) Network() *network.Network { return s.net }

// Snapshot writes the simulator's complete state — RNG streams, buffers,
// credits, in-flight events, arbiter and escape-ring state, fault cursor,
// statistics — as a versioned binary image. The image is deterministic and
// restores bit-identically; see network.Snapshot for the format contract.
func (s *Simulator) Snapshot(w io.Writer) error { return s.net.Snapshot(w) }

// Restore overwrites the simulator's state from a snapshot. The simulator
// must be built from the same configuration (modulo worker/scheduler/cache
// settings, which change wall-clock only) by the same simulation physics;
// corrupt input returns an error without panicking.
func (s *Simulator) Restore(r io.Reader) error { return s.net.Restore(r) }

// Fork clones the warm state into a fully independent simulator — own
// routers, event wheel, RNG positions and (when configured) worker pool.
// Close the fork when done.
func (s *Simulator) Fork() (*Simulator, error) {
	n, err := s.net.Fork()
	if err != nil {
		return nil, err
	}
	return &Simulator{net: n}, nil
}

// Close releases the simulator's resources — with Config.Workers > 1, the
// persistent router-stage worker pool. Idempotent; a no-op for serial
// configurations. The RunSteady/RunTransient/RunBurst drivers close their
// networks themselves.
func (s *Simulator) Close() { s.net.Close() }
