package ofar

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(6)
	if cfg.P != 6 || cfg.A != 12 || cfg.H != 6 || cfg.Groups != 0 {
		t.Errorf("topology params: %+v", cfg)
	}
	if cfg.PacketSize != 8 || cfg.LocalLatency != 10 || cfg.GlobalLatency != 100 {
		t.Error("packet/latency params deviate from §V")
	}
	if cfg.LocalBuf != 32 || cfg.GlobalBuf != 256 {
		t.Error("FIFO sizes deviate from §V")
	}
	if cfg.LocalVCs != 3 || cfg.GlobalVCs != 2 || cfg.InjVCs != 3 {
		t.Error("VC counts deviate from §V")
	}
	if cfg.AllocIters != 3 {
		t.Error("allocator iterations deviate from §V")
	}
	if cfg.OFAR.ThMin != 1.0 || cfg.OFAR.StaticNonMin != 0.4 {
		t.Error("OFAR default should be the §IV-B static policy (see core.DefaultConfig)")
	}
	if v := DefaultOFARVariableConfig(); v.ThMin != 0 || v.NonMinFactor != 0.9 || v.StaticNonMin >= 0 {
		t.Error("paper §V variable policy misconfigured")
	}
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Topology()
	if d.Nodes != 5256 || d.Routers != 876 || d.G != 73 {
		t.Errorf("paper network size mismatch: %d nodes %d routers %d groups",
			d.Nodes, d.Routers, d.G)
	}
}

func TestPatternSpecs(t *testing.T) {
	if Uniform().Name() != "UN" {
		t.Error("uniform name")
	}
	if Adv(6).Name() != "ADV+6" {
		t.Error("adv name")
	}
	mixes := PaperMixes(6)
	if len(mixes) != 3 || mixes[0].Name() != "MIX1" || mixes[2].Name() != "MIX3" {
		t.Error("paper mixes")
	}
}

func TestSimulatorStepControl(t *testing.T) {
	cfg := DefaultConfig(2)
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTraffic(Uniform(), 0.3)
	s.Run(500)
	if s.Now() != 500 {
		t.Errorf("now=%d", s.Now())
	}
	s.Step()
	if s.Now() != 501 {
		t.Errorf("now=%d", s.Now())
	}
	if s.Stats().Generated == 0 {
		t.Error("no traffic generated")
	}
	if s.Network() == nil {
		t.Error("network accessor")
	}
}

func TestRunSteadyBasic(t *testing.T) {
	cfg := DefaultConfig(2)
	res, err := RunSteady(cfg, Uniform(), 0.25, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern != "UN" || res.Routing != OFAR || res.Load != 0.25 {
		t.Errorf("metadata: %+v", res)
	}
	// At 25% load the network accepts everything offered.
	if math.Abs(res.Throughput-0.25) > 0.02 {
		t.Errorf("throughput %.3f at load 0.25", res.Throughput)
	}
	// Zero-load latency is bounded below by the physical path: up to
	// 2 local + 1 global traversal plus serialization.
	if res.AvgLatency < 100 || res.AvgLatency > 400 {
		t.Errorf("latency %.1f implausible", res.AvgLatency)
	}
	if res.Delivered == 0 || res.AvgHops < 1 {
		t.Error("delivery stats empty")
	}
}

func TestRunSteadyRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.PacketSize = 0
	if _, err := RunSteady(cfg, Uniform(), 0.1, 10, 10); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRunLoadSweep(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = MIN
	cfg.Ring = RingNone
	loads := []float64{0.1, 0.3}
	rs, err := RunLoadSweep(cfg, Uniform(), loads, 500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results: %d", len(rs))
	}
	if rs[0].Throughput >= rs[1].Throughput {
		t.Errorf("throughput not increasing below saturation: %.3f vs %.3f",
			rs[0].Throughput, rs[1].Throughput)
	}
	if rs[0].AvgLatency > rs[1].AvgLatency {
		t.Errorf("latency decreasing with load: %.1f vs %.1f",
			rs[0].AvgLatency, rs[1].AvgLatency)
	}
}

func TestRunTransientSeries(t *testing.T) {
	cfg := DefaultConfig(2)
	res, err := RunTransient(cfg, Uniform(), Adv(2), 0.14, 2000, 1500, 2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.From != "UN" || !strings.HasPrefix(res.To, "ADV") {
		t.Errorf("metadata: %+v", res)
	}
	if len(res.Points) < 10 {
		t.Fatalf("too few series points: %d", len(res.Points))
	}
	var pre, post float64
	var nPre, nPost int
	for _, p := range res.Points {
		if p.Cycle < 0 {
			pre += p.MeanLatency
			nPre++
		} else if p.Cycle > 500 {
			post += p.MeanLatency
			nPost++
		}
	}
	if nPre == 0 || nPost == 0 {
		t.Fatal("series does not straddle the switch")
	}
	// ADV traffic at equal load has higher latency than UN (longer paths).
	if post/float64(nPost) < pre/float64(nPre) {
		t.Errorf("post-switch latency %.1f below pre-switch %.1f",
			post/float64(nPost), pre/float64(nPre))
	}
}

func TestRunBurstDrains(t *testing.T) {
	cfg := DefaultConfig(2)
	res, err := RunBurst(cfg, PaperMixes(2)[0], 20, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatal("burst not consumed")
	}
	if res.Packets != int64(20*72) {
		t.Errorf("packets=%d", res.Packets)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles elapsed")
	}
}

func TestSaturationLoad(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Routing = MIN
	cfg.Ring = RingNone
	sat, err := SaturationLoad(cfg, Uniform(), 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if sat < 0.3 || sat > 1.0 {
		t.Errorf("UN saturation %.3f out of plausible range", sat)
	}
}

// TestParallelSweepMatchesSerial: parallel execution must be bit-identical
// to the serial sweep (deterministic per-point RNG derivation).
func TestParallelSweepMatchesSerial(t *testing.T) {
	cfg := DefaultConfig(2)
	loads := []float64{0.1, 0.2, 0.3}
	serial, err := RunLoadSweep(cfg, Adv(2), loads, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunLoadSweepParallel(cfg, Adv(2), loads, 500, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Delivered != parallel[i].Delivered ||
			serial[i].AvgLatency != parallel[i].AvgLatency ||
			serial[i].Throughput != parallel[i].Throughput {
			t.Errorf("point %d differs: serial %+v vs parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestStencilPatternEndToEnd: application workload through the public API.
func TestStencilPatternEndToEnd(t *testing.T) {
	cfg := DefaultConfig(2)
	res, err := RunSteady(cfg, Stencil3D(4, 3, 2, false), 0.2, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("stencil delivered nothing")
	}
	rnd, err := RunSteady(cfg, Stencil3D(4, 3, 2, true), 0.2, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Random mapping lengthens paths: hops must rise.
	if rnd.AvgHops <= res.AvgHops {
		t.Errorf("random mapping hops %.2f not above linear %.2f", rnd.AvgHops, res.AvgHops)
	}
}

// TestPermutationPatternEndToEnd: fixed-partner traffic delivers and stays
// conserved.
func TestPermutationPatternEndToEnd(t *testing.T) {
	cfg := DefaultConfig(2)
	res, err := RunSteady(cfg, Permutation(11), 0.3, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("permutation delivered nothing")
	}
}

// TestRunReplicated: multi-seed aggregation has sane statistics.
func TestRunReplicated(t *testing.T) {
	cfg := DefaultConfig(2)
	rep, err := RunReplicated(cfg, Uniform(), 0.2, 800, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 3 {
		t.Errorf("runs=%d", rep.Runs)
	}
	if rep.Throughput.Mean < 0.17 || rep.Throughput.Mean > 0.22 {
		t.Errorf("replicated throughput %.3f", rep.Throughput.Mean)
	}
	if rep.Throughput.Min > rep.Throughput.Max {
		t.Error("min above max")
	}
	if rep.AvgLatency.StdDev < 0 {
		t.Error("negative stddev")
	}
}

// TestSteadyPercentiles: the histogram-backed percentiles are ordered.
func TestSteadyPercentiles(t *testing.T) {
	cfg := DefaultConfig(2)
	res, err := RunSteady(cfg, Uniform(), 0.3, 1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50Latency <= res.P99Latency) {
		t.Errorf("p50 %.1f > p99 %.1f", res.P50Latency, res.P99Latency)
	}
	if res.P99Latency > float64(res.MaxLatency)+1 {
		t.Errorf("p99 %.1f above max %d", res.P99Latency, res.MaxLatency)
	}
	if res.P50Latency < 100 {
		t.Errorf("p50 %.1f below the physical minimum", res.P50Latency)
	}
}
