package ofar

import (
	"fmt"
	"strconv"
	"strings"

	"ofar/internal/topology"
	"ofar/internal/traffic"
)

// PatternSpec describes a synthetic traffic pattern independently of a
// concrete topology; it is instantiated against the simulated network when
// an experiment starts.
type PatternSpec struct {
	kind   patternKind
	offset int
	label  string
	mix    []MixComponent
	dims   [3]int
	flag   bool
	seed   uint64
}

type patternKind uint8

const (
	patternUniform patternKind = iota
	patternAdv
	patternMix
	patternStencil
	patternPerm
	patternBitComp
	patternBitRev
	patternShuffle
	patternTornado
)

// MixComponent is one weighted constituent of a traffic mix.
type MixComponent struct {
	Spec   PatternSpec
	Weight float64
}

// Uniform returns the UN pattern: every packet picks a destination
// uniformly among all other nodes.
func Uniform() PatternSpec { return PatternSpec{kind: patternUniform, label: "UN"} }

// Adv returns the adversarial ADV+n pattern: nodes of group i send to
// random nodes of group i+n. n = h reproduces the paper's worst case for
// local links (§III).
func Adv(n int) PatternSpec {
	return PatternSpec{kind: patternAdv, offset: n, label: fmt.Sprintf("ADV+%d", n)}
}

// Stencil3D returns a 3-D halo-exchange application workload (§I/§III
// motivation): X·Y·Z tasks on a torus, each packet targeting a random face
// neighbor. randomMapping selects Bhatele-style randomized task placement
// instead of the locality-preserving linear mapping.
func Stencil3D(x, y, z int, randomMapping bool) PatternSpec {
	m := "lin"
	if randomMapping {
		m = "rnd"
	}
	return PatternSpec{
		kind:  patternStencil,
		label: fmt.Sprintf("ST%dx%dx%d/%s", x, y, z, m),
		dims:  [3]int{x, y, z},
		flag:  randomMapping,
	}
}

// Permutation returns a fixed random derangement pattern: every node always
// sends to the same partner.
func Permutation(seed uint64) PatternSpec {
	return PatternSpec{kind: patternPerm, label: fmt.Sprintf("PERM(%d)", seed), seed: seed}
}

// BitComplement returns the classic bit-complement permutation.
func BitComplement() PatternSpec { return PatternSpec{kind: patternBitComp, label: "BITCOMP"} }

// BitReverse returns the classic bit-reverse permutation.
func BitReverse() PatternSpec { return PatternSpec{kind: patternBitRev, label: "BITREV"} }

// Shuffle returns the perfect-shuffle permutation.
func Shuffle() PatternSpec { return PatternSpec{kind: patternShuffle, label: "SHUFFLE"} }

// Tornado returns the group-level tornado pattern (ADV with near-half
// group offset).
func Tornado() PatternSpec { return PatternSpec{kind: patternTornado, label: "TORNADO"} }

// MixOf returns a weighted mixture of patterns, as used by the burst
// experiments (§VI-C: MIX1 = 80% UN, 10% ADV+1, 10% ADV+h, etc.).
func MixOf(label string, components ...MixComponent) PatternSpec {
	return PatternSpec{kind: patternMix, label: label, mix: components}
}

// Name returns the pattern's display label.
func (ps PatternSpec) Name() string { return ps.label }

func (ps PatternSpec) build(d *topology.Dragonfly) traffic.Pattern {
	switch ps.kind {
	case patternAdv:
		return traffic.NewAdv(d, ps.offset)
	case patternStencil:
		m := traffic.MapLinear
		if ps.flag {
			m = traffic.MapRandom
		}
		st, err := traffic.NewStencil3D(d, ps.dims[0], ps.dims[1], ps.dims[2], m, ps.seed+1)
		if err != nil {
			panic(err) // dims checked against the topology at experiment start
		}
		return st
	case patternPerm:
		return traffic.NewPermutation(d, ps.seed)
	case patternBitComp:
		return traffic.NewBitComplement(d)
	case patternBitRev:
		return traffic.NewBitReverse(d)
	case patternShuffle:
		return traffic.NewShuffle(d)
	case patternTornado:
		return traffic.NewTornado(d)
	case patternMix:
		pats := make([]traffic.Pattern, len(ps.mix))
		weights := make([]float64, len(ps.mix))
		for i, c := range ps.mix {
			pats[i] = c.Spec.build(d)
			weights[i] = c.Weight
		}
		return traffic.NewMix(ps.label, pats, weights)
	default:
		return traffic.NewUniform(d)
	}
}

// ParsePattern parses a textual pattern name — "UN", "ADV+<n>", "MIX1",
// "MIX2", "MIX3" — as used by the command-line tools. The h parameter
// selects the adversarial component of the MIX patterns (ADV+h).
func ParsePattern(s string, h int) (PatternSpec, error) {
	up := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case up == "UN" || up == "UNIFORM":
		return Uniform(), nil
	case strings.HasPrefix(up, "ADV+"):
		n, err := strconv.Atoi(up[len("ADV+"):])
		if err != nil || n < 1 {
			return PatternSpec{}, fmt.Errorf("ofar: bad ADV offset in %q", s)
		}
		return Adv(n), nil
	case up == "MIX1", up == "MIX2", up == "MIX3":
		return PaperMixes(h)[up[3]-'1'], nil
	case up == "BITCOMP":
		return BitComplement(), nil
	case up == "BITREV":
		return BitReverse(), nil
	case up == "SHUFFLE":
		return Shuffle(), nil
	case up == "TORNADO":
		return Tornado(), nil
	case strings.HasPrefix(up, "PERM"):
		return Permutation(uint64(h) + 1), nil
	}
	return PatternSpec{}, fmt.Errorf("ofar: unknown pattern %q (want UN, ADV+<n>, MIX1..3, BITCOMP, BITREV, SHUFFLE, TORNADO, PERM)", s)
}

// PaperMixes returns the three traffic mixes of the burst experiment
// (§VI-C) for a network with the given h: MIX1 = 80/10/10, MIX2 = 60/20/20,
// MIX3 = 20/40/40 percent of UN / ADV+1 / ADV+h.
func PaperMixes(h int) []PatternSpec {
	mk := func(name string, un, a1, ah float64) PatternSpec {
		return MixOf(name,
			MixComponent{Spec: Uniform(), Weight: un},
			MixComponent{Spec: Adv(1), Weight: a1},
			MixComponent{Spec: Adv(h), Weight: ah},
		)
	}
	return []PatternSpec{
		mk("MIX1", 0.8, 0.1, 0.1),
		mk("MIX2", 0.6, 0.2, 0.2),
		mk("MIX3", 0.2, 0.4, 0.4),
	}
}
