package ofar

import "testing"

func TestParsePattern(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"UN", "UN", true},
		{"uniform", "UN", true},
		{" un ", "UN", true},
		{"ADV+1", "ADV+1", true},
		{"adv+12", "ADV+12", true},
		{"MIX1", "MIX1", true},
		{"mix3", "MIX3", true},
		{"ADV+0", "", false},
		{"ADV+x", "", false},
		{"MIX4", "", false},
		{"", "", false},
		{"bogus", "", false},
	}
	for _, c := range cases {
		ps, err := ParsePattern(c.in, 3)
		if c.ok != (err == nil) {
			t.Errorf("ParsePattern(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && ps.Name() != c.want {
			t.Errorf("ParsePattern(%q) = %q, want %q", c.in, ps.Name(), c.want)
		}
	}
}

func TestPaperMixWeights(t *testing.T) {
	// MIX components must reference ADV+1 and ADV+h.
	for _, h := range []int{2, 6} {
		for i, m := range PaperMixes(h) {
			if len(m.mix) != 3 {
				t.Fatalf("h=%d MIX%d has %d components", h, i+1, len(m.mix))
			}
			if m.mix[1].Spec.Name() != "ADV+1" {
				t.Errorf("MIX%d second component %s", i+1, m.mix[1].Spec.Name())
			}
			if want := Adv(h).Name(); m.mix[2].Spec.Name() != want {
				t.Errorf("MIX%d third component %s want %s", i+1, m.mix[2].Spec.Name(), want)
			}
		}
	}
	// Weights follow 80/10/10, 60/20/20, 20/40/40.
	wants := [][]float64{{0.8, 0.1, 0.1}, {0.6, 0.2, 0.2}, {0.2, 0.4, 0.4}}
	for i, m := range PaperMixes(3) {
		for j, c := range m.mix {
			if c.Weight != wants[i][j] {
				t.Errorf("MIX%d weight[%d]=%f want %f", i+1, j, c.Weight, wants[i][j])
			}
		}
	}
}

func TestPatternBuildAgainstTopology(t *testing.T) {
	s, err := NewSimulator(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d := s.Topology()
	for _, ps := range []PatternSpec{Uniform(), Adv(1), Adv(8), PaperMixes(2)[0]} {
		p := ps.build(d)
		if p == nil {
			t.Fatalf("%s built nil", ps.Name())
		}
	}
}
