package ofar

import "testing"

// Reproduction shape tests: these assert the qualitative results of the
// paper's evaluation section at a reduced scale (h=3: 342 nodes) so the
// full suite stays fast. The benchmark harness regenerates the figures at
// full scale.

func steadyCfg(rt Routing) Config {
	cfg := DefaultConfig(3)
	cfg.Routing = rt
	if rt == MIN || rt == VAL || rt == PB || rt == UGAL {
		cfg.Ring = RingNone
	}
	return cfg
}

// TestFig3Shape: under uniform traffic OFAR saturates no lower than MIN and
// clearly above PB; latency at low load is competitive with MIN while PB
// pays for its misrouted packets.
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction shapes need full runs")
	}
	sat := map[Routing]float64{}
	lat := map[Routing]float64{}
	for _, rt := range []Routing{MIN, PB, OFAR, OFARL} {
		s, err := RunSteady(steadyCfg(rt), Uniform(), 1.0, 2000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		sat[rt] = s.Throughput
		l, err := RunSteady(steadyCfg(rt), Uniform(), 0.1, 2000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		lat[rt] = l.AvgLatency
		t.Logf("%-7s UN: saturation %.3f, latency@0.1 %.1f", rt, s.Throughput, l.AvgLatency)
	}
	if sat[OFAR] < sat[MIN]-0.02 {
		t.Errorf("OFAR saturation %.3f below MIN %.3f", sat[OFAR], sat[MIN])
	}
	if sat[OFAR] < sat[PB] {
		t.Errorf("OFAR saturation %.3f below PB %.3f", sat[OFAR], sat[PB])
	}
	if lat[PB] < lat[MIN] {
		t.Errorf("PB latency %.1f below MIN %.1f (expected misroute penalty)", lat[PB], lat[MIN])
	}
	if lat[OFAR] > lat[PB] {
		t.Errorf("OFAR latency %.1f above PB %.1f", lat[OFAR], lat[PB])
	}
}

// TestFig4Shape: ADV+2 — OFAR saturates above PB and VAL; OFAR ≥ OFAR-L.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction shapes need full runs")
	}
	sat := map[Routing]float64{}
	for _, rt := range []Routing{VAL, PB, OFAR, OFARL} {
		s, err := RunSteady(steadyCfg(rt), Adv(2), 1.0, 2000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		sat[rt] = s.Throughput
		t.Logf("%-7s ADV+2: saturation %.3f", rt, s.Throughput)
	}
	if sat[OFAR] <= sat[PB] || sat[OFAR] <= sat[VAL] {
		t.Errorf("OFAR %.3f must beat PB %.3f and VAL %.3f on ADV+2",
			sat[OFAR], sat[PB], sat[VAL])
	}
	if sat[OFAR] < sat[OFARL]-0.02 {
		t.Errorf("OFAR %.3f below OFAR-L %.3f", sat[OFAR], sat[OFARL])
	}
}

// TestFig5Shape: ADV+h — the paper's key result. Without local misrouting
// every mechanism is stuck near (or below) the 1/h local-link ceiling;
// OFAR's in-transit local misroute lifts throughput far above it, toward
// the 0.5 global-link bound.
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction shapes need full runs")
	}
	h := 3
	sat := map[Routing]float64{}
	for _, rt := range []Routing{MIN, VAL, PB, OFAR, OFARL} {
		s, err := RunSteady(steadyCfg(rt), Adv(h), 1.0, 2000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		sat[rt] = s.Throughput
		t.Logf("%-7s ADV+h: saturation %.3f", rt, s.Throughput)
	}
	// MIN collapses to ~1/(a·p) (single global link for the whole group).
	if sat[MIN] > 0.1 {
		t.Errorf("MIN %.3f should collapse near 1/18", sat[MIN])
	}
	// OFAR clearly above everything else, and well above the 1/h=0.33 cap
	// region where VAL/PB/OFAR-L live.
	for _, rt := range []Routing{VAL, PB, OFARL} {
		if sat[OFAR] < sat[rt]+0.10 {
			t.Errorf("OFAR %.3f does not clearly beat %s %.3f", sat[OFAR], rt, sat[rt])
		}
	}
	if sat[OFAR] < 0.40 {
		t.Errorf("OFAR ADV+h saturation %.3f, want ≥ 0.40 (theoretical bound 0.5)", sat[OFAR])
	}
}

// TestFig7Shape: burst consumption — OFAR finishes faster than PB on every
// mix, and the full model beats its -L variant on average (§VI-C).
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction shapes need full runs")
	}
	h := 3
	patterns := append([]PatternSpec{Uniform(), Adv(2), Adv(h)}, PaperMixes(h)...)
	var ofarFaster, total int
	var ratioSum float64
	for _, ps := range patterns {
		pb, err := RunBurst(steadyCfg(PB), ps, 40, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		of, err := RunBurst(steadyCfg(OFAR), ps, 40, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !pb.Drained || !of.Drained {
			t.Fatalf("%s: burst not drained (pb=%v ofar=%v)", ps.Name(), pb.Drained, of.Drained)
		}
		ratio := float64(of.Cycles) / float64(pb.Cycles)
		ratioSum += ratio
		total++
		if of.Cycles < pb.Cycles {
			ofarFaster++
		}
		t.Logf("%-6s burst: OFAR %d vs PB %d cycles (ratio %.2f)", ps.Name(), of.Cycles, pb.Cycles, ratio)
	}
	if ofarFaster < total-1 {
		t.Errorf("OFAR faster on only %d/%d patterns", ofarFaster, total)
	}
	if avg := ratioSum / float64(total); avg > 0.95 {
		t.Errorf("average OFAR/PB burst ratio %.2f, want < 0.95 (paper: 0.695)", avg)
	}
}

// TestFig8Shape: physical and embedded escape rings perform equivalently
// (§VII) — the ring resolves deadlocks, it does not carry traffic.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction shapes need full runs")
	}
	run := func(mode RingMode) (float64, float64) {
		cfg := steadyCfg(OFAR)
		cfg.Ring = mode
		s, err := RunSteady(cfg, Adv(2), 1.0, 2000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		l, err := RunSteady(cfg, Adv(2), 0.2, 2000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		return s.Throughput, l.AvgLatency
	}
	satP, latP := run(RingPhysical)
	satE, latE := run(RingEmbedded)
	t.Logf("physical: sat %.3f lat %.1f; embedded: sat %.3f lat %.1f", satP, latP, satE, latE)
	if d := satP - satE; d > 0.05 || d < -0.05 {
		t.Errorf("ring realizations differ in throughput: %.3f vs %.3f", satP, satE)
	}
	if d := (latP - latE) / latP; d > 0.15 || d < -0.15 {
		t.Errorf("ring realizations differ in latency: %.1f vs %.1f", latP, latE)
	}
}

// TestFig2bShape: under VAL at saturation, throughput depends strongly on
// the ADV offset; multiples of h are the worst cases and the simulated
// ordering matches the static analysis of §III.
func TestFig2bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction shapes need full runs")
	}
	cfg := steadyCfg(VAL)
	at := func(n int) float64 {
		s, err := RunSteady(cfg, Adv(n), 1.0, 2000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		return s.Throughput
	}
	t1, t3, t6 := at(1), at(3), at(6)
	t.Logf("VAL ADV+1 %.3f, ADV+3 %.3f, ADV+6 %.3f", t1, t3, t6)
	if t3 >= t1 || t6 >= t1 {
		t.Errorf("offsets multiple of h should underperform ADV+1: %.3f/%.3f vs %.3f", t3, t6, t1)
	}
}

// TestFig6Shape: transient adaptation. OFAR's in-transit decisions settle at
// the new steady level essentially immediately after a pattern switch: the
// early post-switch latency (first 600 cycles) must already be close to the
// late steady level, and the ADV→UN direction converges instantly for every
// mechanism.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction shapes need full runs")
	}
	early := func(rt Routing, from, to PatternSpec, load float64) (earlyLat, lateLat float64) {
		res, err := RunTransient(steadyCfg(rt), from, to, load, 4000, 3000, 4000, 200)
		if err != nil {
			t.Fatal(err)
		}
		var eSum, lSum float64
		var eN, lN int
		for _, p := range res.Points {
			if p.Cycle >= 0 && p.Cycle < 600 {
				eSum += p.MeanLatency
				eN++
			}
			if p.Cycle >= 2000 && p.Cycle <= 3000 {
				lSum += p.MeanLatency
				lN++
			}
		}
		if eN == 0 || lN == 0 {
			t.Fatal("transient series too sparse")
		}
		return eSum / float64(eN), lSum / float64(lN)
	}

	// UN -> ADV+2: OFAR settles immediately (early within 15% of late).
	e, l := early(OFAR, Uniform(), Adv(2), 0.14)
	t.Logf("OFAR UN->ADV2: early %.1f late %.1f", e, l)
	if e > 1.15*l+10 {
		t.Errorf("OFAR adapted slowly: early %.1f vs late %.1f", e, l)
	}

	// ADV+2 -> UN: instant for every mechanism (the paper's easy case).
	for _, rt := range []Routing{PB, OFAR, OFARL} {
		e, l := early(rt, Adv(2), Uniform(), 0.14)
		t.Logf("%s ADV2->UN: early %.1f late %.1f", rt, e, l)
		if e > 1.15*l+10 {
			t.Errorf("%s did not converge instantly on ADV->UN: %.1f vs %.1f", rt, e, l)
		}
	}

	// ADV+2 -> ADV+h at 0.12 (the paper's hard case): OFAR stays flat.
	e, l = early(OFAR, Adv(2), Adv(3), 0.12)
	t.Logf("OFAR ADV2->ADVh: early %.1f late %.1f", e, l)
	if e > 1.2*l+10 {
		t.Errorf("OFAR adapted slowly on ADV2->ADVh: %.1f vs %.1f", e, l)
	}
}
