package ofar

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"ofar/internal/network"
	"ofar/internal/topology"
	"ofar/internal/trace"
	"ofar/internal/traffic"
)

// Job-level workloads: instead of one homogeneous synthetic pattern, a
// Workload places N concurrent application jobs (stencil halo exchange,
// all-to-all phases, ring allreduce, parameter-server fan-in) onto node
// ranges, each with its own offered load and lifetime. The drivers below run
// them with per-job statistics, record/replay packet traces, and measure
// inter-job interference (shared-run slowdown versus each job running
// alone).

// JobSpec describes one job of a workload at the API surface. Kind is one of
// "stencil", "a2a", "ring", "ps". Tasks is the node count; stencil jobs give
// their task grid in Dims instead (Tasks is then its product). Load is in
// phits/(node·cycle) before sweep scaling. Start/End bound the job's active
// cycles; End <= 0 means the job runs forever.
type JobSpec struct {
	Kind  string  `json:"kind"`
	Tasks int     `json:"tasks"`
	Dims  [3]int  `json:"dims,omitempty"`
	Load  float64 `json:"load"`
	Start int64   `json:"start,omitempty"`
	End   int64   `json:"end,omitempty"`
}

// Workload is a set of concurrent jobs plus placement policy.
type Workload struct {
	Jobs []JobSpec `json:"jobs"`
	// RandomMap scatters each job's nodes via a seeded permutation instead
	// of packing them onto consecutive nodes (the paper's §III hotspot
	// regime is the consecutive one).
	RandomMap bool `json:"random_map,omitempty"`
	// Background is uniform traffic offered by nodes no job occupies,
	// phits/(node·cycle) before sweep scaling.
	Background float64 `json:"background,omitempty"`
}

var jobKinds = map[string]traffic.JobKind{
	"stencil": traffic.JobStencil,
	"a2a":     traffic.JobAll2All,
	"ring":    traffic.JobRing,
	"ps":      traffic.JobParamServer,
}

// ParseWorkload parses the CLI workload syntax: comma-separated jobs, each
// `kind:size@load` with an optional `:start-end` lifetime window, e.g.
//
//	stencil:4x4x4@0.3,a2a:64@0.5,ps:32@0.2:1000-8000
//
// Stencil sizes are XxYxZ task grids; other kinds give a plain node count.
// Placement and background load are separate knobs on the Workload.
func ParseWorkload(s string) (Workload, error) {
	var w Workload
	if strings.TrimSpace(s) == "" {
		return w, fmt.Errorf("empty workload spec")
	}
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return w, fmt.Errorf("job %q: want kind:size@load[:start-end]", part)
		}
		var j JobSpec
		j.Kind = strings.ToLower(fields[0])
		if _, ok := jobKinds[j.Kind]; !ok {
			return w, fmt.Errorf("job %q: unknown kind %q (stencil, a2a, ring, ps)", part, fields[0])
		}
		size, loadStr, ok := strings.Cut(fields[1], "@")
		if !ok {
			return w, fmt.Errorf("job %q: missing @load", part)
		}
		var err error
		if j.Load, err = strconv.ParseFloat(loadStr, 64); err != nil || j.Load < 0 {
			return w, fmt.Errorf("job %q: bad load %q", part, loadStr)
		}
		if j.Kind == "stencil" {
			dims := strings.Split(size, "x")
			if len(dims) != 3 {
				return w, fmt.Errorf("job %q: stencil size must be XxYxZ, got %q", part, size)
			}
			j.Tasks = 1
			for i, ds := range dims {
				v, err := strconv.Atoi(ds)
				if err != nil || v < 1 {
					return w, fmt.Errorf("job %q: bad stencil dimension %q", part, ds)
				}
				j.Dims[i] = v
				j.Tasks *= v
			}
		} else if j.Tasks, err = strconv.Atoi(size); err != nil || j.Tasks < 1 {
			return w, fmt.Errorf("job %q: bad size %q", part, size)
		}
		if len(fields) == 3 {
			from, to, ok := strings.Cut(fields[2], "-")
			if !ok {
				return w, fmt.Errorf("job %q: lifetime must be start-end, got %q", part, fields[2])
			}
			if j.Start, err = strconv.ParseInt(from, 10, 64); err != nil || j.Start < 0 {
				return w, fmt.Errorf("job %q: bad lifetime start %q", part, from)
			}
			if j.End, err = strconv.ParseInt(to, 10, 64); err != nil || j.End <= j.Start {
				return w, fmt.Errorf("job %q: bad lifetime end %q", part, to)
			}
		}
		w.Jobs = append(w.Jobs, j)
	}
	return w, nil
}

// Name returns the canonical identity string of the workload — used as the
// pattern component of sweep-service cache keys, so it must pin every knob
// that changes the traffic.
func (w Workload) Name() string {
	var b strings.Builder
	b.WriteString("JOBS[")
	for i, j := range w.Jobs {
		if i > 0 {
			b.WriteByte(',')
		}
		if j.Kind == "stencil" {
			fmt.Fprintf(&b, "%s:%dx%dx%d@%s", j.Kind, j.Dims[0], j.Dims[1], j.Dims[2],
				strconv.FormatFloat(j.Load, 'g', -1, 64))
		} else {
			fmt.Fprintf(&b, "%s:%d@%s", j.Kind, j.Tasks, strconv.FormatFloat(j.Load, 'g', -1, 64))
		}
		if j.Start != 0 || j.End > 0 {
			fmt.Fprintf(&b, ":%d-%d", j.Start, j.End)
		}
	}
	mapping := "linear"
	if w.RandomMap {
		mapping = "random"
	}
	fmt.Fprintf(&b, "|map=%s|bg=%s]", mapping, strconv.FormatFloat(w.Background, 'g', -1, 64))
	return b.String()
}

// generator builds the traffic.JobSet for this workload on a topology, with
// every load multiplied by scale (the sweep axis).
func (w Workload) generator(d *topology.Dragonfly, cfg Config, scale float64) (*traffic.JobSet, error) {
	jc := traffic.JobSetConfig{
		Mapping:    traffic.MapLinear,
		Background: w.Background * scale,
		Seed:       cfg.Seed,
		PacketSize: cfg.PacketSize,
	}
	if w.RandomMap {
		jc.Mapping = traffic.MapRandom
	}
	for _, j := range w.Jobs {
		kind, ok := jobKinds[j.Kind]
		if !ok {
			return nil, fmt.Errorf("workload: unknown job kind %q", j.Kind)
		}
		spec := traffic.JobSpec{
			Kind:  kind,
			Nodes: j.Tasks,
			Load:  j.Load * scale,
			Start: j.Start,
			End:   j.End,
			Dims:  j.Dims,
		}
		if kind == traffic.JobStencil && spec.Dims == [3]int{} {
			return nil, fmt.Errorf("workload: stencil job needs a task grid")
		}
		jc.Jobs = append(jc.Jobs, spec)
	}
	return traffic.NewJobSet(d, jc)
}

// JobResult is one job's share of a workload measurement.
type JobResult struct {
	Job        string  `json:"job"`
	Nodes      int     `json:"nodes"`
	Generated  int64   `json:"generated"`
	Delivered  int64   `json:"delivered"`
	Dropped    int64   `json:"dropped"`
	Measured   int64   `json:"measured"` // deliveries inside the window
	AvgLatency float64 `json:"avg_latency"`
	P50Latency float64 `json:"p50_latency"`
	P99Latency float64 `json:"p99_latency"`
	Throughput float64 `json:"throughput"` // phits/(node·cycle), job's own nodes
}

// JobsResult is a workload measurement: the familiar aggregate point plus
// one row per job (the background slot included when configured).
type JobsResult struct {
	Workload string       `json:"workload"`
	Scale    float64      `json:"scale"`
	Agg      SteadyResult `json:"agg"`
	Jobs     []JobResult  `json:"jobs"`
}

// RunJobs measures a job-level workload: warmup cycles, then a measurement
// window, with per-job latency histograms and conservation checked both in
// aggregate and per job. scale multiplies every job's load (and the
// background), making it the sweep axis.
func RunJobs(cfg Config, w Workload, scale float64, warmup, measure int) (JobsResult, error) {
	res, _, err := runJobs(cfg, w, scale, warmup, measure, nil)
	return res, err
}

// RunJobsTraced is RunJobs with trace recording: it additionally returns
// every generated packet as trace records and the run's grant digest, which
// a replay of those records reproduces bit-identically.
func RunJobsTraced(cfg Config, w Workload, scale float64, warmup, measure int) (JobsResult, []TraceRecord, uint64, error) {
	var rec trace.Recorder
	res, digest, err := runJobs(cfg, w, scale, warmup, measure, &rec)
	return res, rec.Records(), digest, err
}

func runJobs(cfg Config, w Workload, scale float64, warmup, measure int, rec *trace.Recorder) (JobsResult, uint64, error) {
	n, err := network.New(cfg)
	if err != nil {
		return JobsResult{}, 0, err
	}
	defer n.Close()
	gen, err := w.generator(n.Topo, cfg, scale)
	if err != nil {
		return JobsResult{}, 0, err
	}
	n.SetGenerator(gen)
	n.Stats.EnableHistogram()
	n.EnableGrantDigest()
	if rec != nil {
		n.SetTraceRecorder(rec)
	}
	n.Run(warmup)
	agg, err := measureSteady(n, w.Name(), scale, measure)
	res := JobsResult{Workload: w.Name(), Scale: scale, Agg: agg, Jobs: collectJobs(n)}
	digest, _ := n.GrantDigest()
	return res, digest, err
}

// collectJobs reads the per-job rows off a measured network.
func collectJobs(n *network.Network) []JobResult {
	now := n.Now()
	out := make([]JobResult, n.Stats.Jobs())
	for j := range out {
		gen, del, drop := n.Stats.JobCounts(j)
		out[j] = JobResult{
			Job:        n.Stats.JobName(j),
			Nodes:      n.Stats.JobNodes(j),
			Generated:  gen,
			Delivered:  del,
			Dropped:    drop,
			Measured:   n.Stats.JobMeasured(j),
			AvgLatency: n.Stats.JobAvgLatency(j),
			P50Latency: n.Stats.JobLatencyQuantile(j, 0.50),
			P99Latency: n.Stats.JobLatencyQuantile(j, 0.99),
			Throughput: n.Stats.JobThroughput(j, now),
		}
	}
	return out
}

// InterferencePoint compares one job's shared-run tail latency with the same
// job running alone on the same placement (other jobs' loads and the
// background zeroed — the topology, mapping and RNG streams are unchanged).
type InterferencePoint struct {
	Job         string  `json:"job"`
	SharedP99   float64 `json:"shared_p99"`
	AloneP99    float64 `json:"alone_p99"`
	SlowdownP99 float64 `json:"slowdown_p99"` // shared/alone
	SharedAvg   float64 `json:"shared_avg"`
	AloneAvg    float64 `json:"alone_avg"`
	SlowdownAvg float64 `json:"slowdown_avg"`
}

// InterferenceResult is the RunInterference report.
type InterferenceResult struct {
	Workload string              `json:"workload"`
	Shared   JobsResult          `json:"shared"`
	Points   []InterferencePoint `json:"points"`
}

// RunInterference measures inter-job interference: the workload runs once
// shared, then each job runs alone (same placement, everything else muted),
// and each job's slowdown is the ratio of its shared to alone latencies.
// The background slot, having no alone baseline of interest, is skipped.
func RunInterference(cfg Config, w Workload, scale float64, warmup, measure int) (InterferenceResult, error) {
	shared, err := RunJobs(cfg, w, scale, warmup, measure)
	if err != nil {
		return InterferenceResult{}, err
	}
	res := InterferenceResult{Workload: w.Name(), Shared: shared}
	for i := range w.Jobs {
		alone := w
		alone.Jobs = append([]JobSpec(nil), w.Jobs...)
		alone.Background = 0
		for k := range alone.Jobs {
			if k != i {
				alone.Jobs[k].Load = 0
			}
		}
		ar, err := RunJobs(cfg, alone, scale, warmup, measure)
		if err != nil {
			return res, err
		}
		pt := InterferencePoint{
			Job:       shared.Jobs[i].Job,
			SharedP99: shared.Jobs[i].P99Latency,
			AloneP99:  ar.Jobs[i].P99Latency,
			SharedAvg: shared.Jobs[i].AvgLatency,
			AloneAvg:  ar.Jobs[i].AvgLatency,
		}
		if pt.AloneP99 > 0 && !math.IsNaN(pt.SharedP99) && !math.IsNaN(pt.AloneP99) {
			pt.SlowdownP99 = pt.SharedP99 / pt.AloneP99
		}
		if pt.AloneAvg > 0 && !math.IsNaN(pt.SharedAvg) && !math.IsNaN(pt.AloneAvg) {
			pt.SlowdownAvg = pt.SharedAvg / pt.AloneAvg
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// TraceRecord is one generated packet of a trace (see internal/trace).
type TraceRecord = trace.Record

// RunSteadyTraced is RunSteady with trace recording: it additionally returns
// the generated-packet records and the run's grant digest.
func RunSteadyTraced(cfg Config, ps PatternSpec, load float64, warmup, measure int) (SteadyResult, []TraceRecord, uint64, error) {
	n, err := network.New(cfg)
	if err != nil {
		return SteadyResult{}, nil, 0, err
	}
	defer n.Close()
	pattern := ps.build(n.Topo)
	n.SetGenerator(traffic.NewBernoulli(pattern, load, cfg.PacketSize))
	n.Stats.EnableHistogram()
	n.EnableGrantDigest()
	var rec trace.Recorder
	n.SetTraceRecorder(&rec)
	n.Run(warmup)
	res, err := measureSteady(n, pattern.Name(), load, measure)
	digest, _ := n.GrantDigest()
	return res, rec.Records(), digest, err
}

// ReplayTrace re-injects a recorded (or external) trace through a fresh
// network and measures it with the standard steady-state window. A trace
// recorded by RunSteadyTraced/RunJobsTraced on the same Config reproduces
// the original run's grant digest bit-identically.
func ReplayTrace(cfg Config, recs []TraceRecord, warmup, measure int) (SteadyResult, uint64, error) {
	n, err := network.New(cfg)
	if err != nil {
		return SteadyResult{}, 0, err
	}
	defer n.Close()
	gen, err := traffic.NewTraceReplay(recs, n.Topo.Nodes)
	if err != nil {
		return SteadyResult{}, 0, err
	}
	n.SetGenerator(gen)
	n.Stats.EnableHistogram()
	n.EnableGrantDigest()
	n.Run(warmup)
	res, err := measureSteady(n, gen.Name(), 0, measure)
	digest, _ := n.GrantDigest()
	return res, digest, err
}

// SaveTrace writes records to path in the versioned binary format, stamped
// with this build's engine digest.
func SaveTrace(path string, recs []TraceRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Write(f, EngineDigest(), recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a trace file, returning the records and the engine digest
// of the build that wrote it (zero for external producers). Callers that
// expect bit-identical replay should compare the digest to EngineDigest().
func LoadTrace(path string) ([]TraceRecord, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	engine, recs, err := trace.Read(f)
	return recs, engine, err
}
