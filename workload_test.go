package ofar

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// testWorkload is the shared four-kind job mix: 30 of the h=2 network's 72
// nodes are occupied, the rest offer light background traffic.
func testWorkload(t *testing.T) Workload {
	t.Helper()
	w, err := ParseWorkload("stencil:2x2x2@0.3,a2a:8@0.4,ring:8@0.2,ps:6@0.3")
	if err != nil {
		t.Fatal(err)
	}
	w.Background = 0.1
	return w
}

func TestParseWorkload(t *testing.T) {
	w, err := ParseWorkload("stencil:2x3x4@0.25,a2a:16@0.5,ring:8@0.1:100-900,ps:5@0.4")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 4 {
		t.Fatalf("got %d jobs, want 4", len(w.Jobs))
	}
	if w.Jobs[0].Kind != "stencil" || w.Jobs[0].Tasks != 24 || w.Jobs[0].Dims != [3]int{2, 3, 4} {
		t.Errorf("stencil parsed as %+v", w.Jobs[0])
	}
	if w.Jobs[2].Start != 100 || w.Jobs[2].End != 900 {
		t.Errorf("lifetime parsed as %d-%d, want 100-900", w.Jobs[2].Start, w.Jobs[2].End)
	}
	if w.Jobs[1].Load != 0.5 || w.Jobs[3].Tasks != 5 {
		t.Errorf("a2a/ps parsed as %+v / %+v", w.Jobs[1], w.Jobs[3])
	}

	for _, bad := range []string{
		"",                         // empty
		"warp:8@0.5",               // unknown kind
		"a2a:8",                    // missing load
		"a2a:0@0.5",                // zero size
		"a2a:8@-0.1",               // negative load
		"stencil:4x4@0.3",          // 2-D grid
		"stencil:2x0x2@0.3",        // zero dimension
		"ring:8@0.2:500",           // lifetime missing end
		"ring:8@0.2:900-100",       // end before start
		"ps:6@0.3:extra:junk:junk", // too many fields
	} {
		if _, err := ParseWorkload(bad); err == nil {
			t.Errorf("ParseWorkload(%q) accepted, want error", bad)
		}
	}
}

// TestWorkloadNamePinsKnobs: the canonical name is a cache key, so every
// traffic-changing knob must show up in it.
func TestWorkloadNamePinsKnobs(t *testing.T) {
	base := testWorkload(t)
	seen := map[string]string{}
	add := func(label string, w Workload) {
		n := w.Name()
		for prev, pn := range seen {
			if pn == n {
				t.Errorf("%s and %s share the name %q", label, prev, n)
			}
		}
		seen[label] = n
	}
	add("base", base)
	random := base
	random.RandomMap = true
	add("random-map", random)
	bg := base
	bg.Background = 0.25
	add("background", bg)
	windowed := base
	windowed.Jobs = append([]JobSpec(nil), base.Jobs...)
	windowed.Jobs[1].Start, windowed.Jobs[1].End = 100, 900
	add("lifetime", windowed)
	load := base
	load.Jobs = append([]JobSpec(nil), base.Jobs...)
	load.Jobs[0].Load = 0.35
	add("job-load", load)
	if !strings.HasPrefix(base.Name(), "JOBS[") {
		t.Errorf("name %q lacks the JOBS[ prefix", base.Name())
	}
}

// TestJobSetBitIdentityMatrix: a job-set run produces the same grant digest
// under every engine variant — worker pool, group sharding, activity
// scheduler and route cache on or off.
func TestJobSetBitIdentityMatrix(t *testing.T) {
	w := testWorkload(t)
	run := func(mutate func(*Config)) (uint64, JobsResult) {
		cfg := DefaultConfig(2)
		if mutate != nil {
			mutate(&cfg)
		}
		res, _, digest, err := RunJobsTraced(cfg, w, 1.0, 400, 800)
		if err != nil {
			t.Fatal(err)
		}
		return digest, res
	}
	baseDigest, baseRes := run(nil)
	if baseDigest == 0 {
		t.Fatal("grant digest is zero — digest not enabled?")
	}
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"workers4", func(c *Config) { c.Workers = 4 }},
		{"shard4", func(c *Config) { c.Workers = 4; c.ShardByGroup = true }},
		{"nosched", func(c *Config) { c.DisableActivitySched = true }},
		{"nocache", func(c *Config) { c.DisableRouteCache = true }},
		{"shard4-nosched", func(c *Config) { c.Workers = 4; c.ShardByGroup = true; c.DisableActivitySched = true }},
	}
	for _, v := range variants {
		digest, res := run(v.mutate)
		if digest != baseDigest {
			t.Errorf("%s: grant digest %016x differs from serial %016x", v.name, digest, baseDigest)
		}
		if res.Agg.Delivered != baseRes.Agg.Delivered {
			t.Errorf("%s: delivered %d differs from serial %d", v.name, res.Agg.Delivered, baseRes.Agg.Delivered)
		}
		for j := range res.Jobs {
			if res.Jobs[j] != baseRes.Jobs[j] {
				t.Errorf("%s: job %s row differs: %+v vs %+v", v.name, res.Jobs[j].Job, res.Jobs[j], baseRes.Jobs[j])
			}
		}
	}
}

// TestTraceRecordReplayDigest: replaying a recorded trace through a fresh
// network reproduces the recording run's grant digest bit-identically — for
// a synthetic pattern, for a job set, and under a fault schedule.
func TestTraceRecordReplayDigest(t *testing.T) {
	t.Run("pattern", func(t *testing.T) {
		cfg := DefaultConfig(2)
		res, recs, digest, err := RunSteadyTraced(cfg, Adv(2), 0.4, 400, 800)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatal("no trace records")
		}
		rres, rdigest, err := ReplayTrace(cfg, recs, 400, 800)
		if err != nil {
			t.Fatal(err)
		}
		if rdigest != digest {
			t.Errorf("replay digest %016x, recorded %016x", rdigest, digest)
		}
		if rres.Delivered != res.Delivered || rres.AvgLatency != res.AvgLatency {
			t.Errorf("replay stats differ: %+v vs %+v", rres, res)
		}
	})
	t.Run("jobs-faulted", func(t *testing.T) {
		cfg := DefaultConfig(2)
		fs, err := ParseFaults("link@300:3:2")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = fs
		res, recs, digest, err := RunJobsTraced(cfg, testWorkload(t), 1.0, 400, 800)
		if err != nil {
			t.Fatal(err)
		}
		rres, rdigest, err := ReplayTrace(cfg, recs, 400, 800)
		if err != nil {
			t.Fatal(err)
		}
		if rdigest != digest {
			t.Errorf("replay digest %016x, recorded %016x", rdigest, digest)
		}
		if rres.Delivered != res.Agg.Delivered || rres.Dropped != res.Agg.Dropped {
			t.Errorf("replay delivered/dropped %d/%d, recorded %d/%d",
				rres.Delivered, rres.Dropped, res.Agg.Delivered, res.Agg.Dropped)
		}
	})
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig(2)
	_, recs, _, err := RunSteadyTraced(cfg, Uniform(), 0.3, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := SaveTrace(path, recs); err != nil {
		t.Fatal(err)
	}
	got, engine, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if engine != EngineDigest() {
		t.Errorf("engine digest %016x, want %016x", engine, EngineDigest())
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, wrote %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

// TestJobStatsConservation: per-job counters partition the aggregates
// exactly — generated = delivered + dropped + in flight per job and summed,
// under faults and across the engine variants.
func TestJobStatsConservation(t *testing.T) {
	w := testWorkload(t)
	for _, v := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"serial", nil},
		{"workers4", func(c *Config) { c.Workers = 4 }},
		{"shard4", func(c *Config) { c.Workers = 4; c.ShardByGroup = true }},
	} {
		t.Run(v.name, func(t *testing.T) {
			cfg := DefaultConfig(2)
			fs, err := ParseFaults("link@400:3:2,router@700:9")
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = fs
			if v.mutate != nil {
				v.mutate(&cfg)
			}
			sim, err := NewSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer sim.Close()
			gen, err := w.generator(sim.Topology(), cfg, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			sim.Network().SetGenerator(gen)
			sim.Run(1500)
			st := sim.Stats()
			if st.Jobs() != len(w.Jobs)+1 { // +1 background slot
				t.Fatalf("got %d job slots, want %d", st.Jobs(), len(w.Jobs)+1)
			}
			var gens, dels, drops int64
			for j := 0; j < st.Jobs(); j++ {
				g, d, dr := st.JobCounts(j)
				if d+dr > g {
					t.Errorf("job %s: delivered %d + dropped %d exceeds generated %d", st.JobName(j), d, dr, g)
				}
				gens, dels, drops = gens+g, dels+d, drops+dr
			}
			if gens != st.Generated || dels != st.Delivered || drops != st.Dropped {
				t.Errorf("per-job sums %d/%d/%d != aggregate %d/%d/%d",
					gens, dels, drops, st.Generated, st.Delivered, st.Dropped)
			}
			if st.Dropped == 0 {
				t.Error("fault schedule dropped nothing — faults not exercised")
			}
			if err := sim.Network().CheckConservation(); err != nil {
				t.Errorf("conservation: %v", err)
			}
		})
	}
}

// TestJobSetSnapshotRoundTrip: a mid-run snapshot of a job-set simulation
// restores bit-identically — per-job emission progress, lifetime windows and
// per-job statistics included.
func TestJobSetSnapshotRoundTrip(t *testing.T) {
	w, err := ParseWorkload("stencil:2x2x2@0.3,a2a:8@0.4,ring:8@0.2:200-600,ps:6@0.3")
	if err != nil {
		t.Fatal(err)
	}
	w.Background = 0.1
	cfg := DefaultConfig(2)
	mk := func() *Simulator {
		sim, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := w.generator(sim.Topology(), cfg, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		sim.Network().SetGenerator(gen)
		return sim
	}
	sim := mk()
	defer sim.Close()
	sim.Run(400) // inside the ring job's lifetime window

	var snap bytes.Buffer
	if err := sim.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored := mk()
	defer restored.Close()
	if err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}

	sim.Run(400)
	restored.Run(400)
	if a, b := sim.Stats().Delivered, restored.Stats().Delivered; a != b {
		t.Fatalf("restored delivered %d, original %d", b, a)
	}
	for j := 0; j < sim.Stats().Jobs(); j++ {
		g1, d1, r1 := sim.Stats().JobCounts(j)
		g2, d2, r2 := restored.Stats().JobCounts(j)
		if g1 != g2 || d1 != d2 || r1 != r2 {
			t.Errorf("job %s diverged: %d/%d/%d vs %d/%d/%d",
				sim.Stats().JobName(j), g1, d1, r1, g2, d2, r2)
		}
	}
	var s1, s2 bytes.Buffer
	if err := sim.Snapshot(&s1); err != nil {
		t.Fatal(err)
	}
	if err := restored.Snapshot(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Error("post-run snapshots differ — restore was not bit-identical")
	}
}

func TestRunInterferenceSmoke(t *testing.T) {
	w, err := ParseWorkload("a2a:12@0.5,ring:12@0.2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	res, err := RunInterference(cfg, w, 1.0, 300, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(w.Jobs) {
		t.Fatalf("got %d interference points, want %d", len(res.Points), len(w.Jobs))
	}
	for i, p := range res.Points {
		if p.Job != res.Shared.Jobs[i].Job {
			t.Errorf("point %d labeled %q, shared row is %q", i, p.Job, res.Shared.Jobs[i].Job)
		}
		if p.SlowdownP99 <= 0 {
			t.Errorf("job %s: non-positive p99 slowdown %v (alone p99 %v)", p.Job, p.SlowdownP99, p.AloneP99)
		}
	}
}
